//! The enterprise features the paper insists disaggregation must keep
//! (introduction: efficient resource utilisation, live migration, memory
//! sharing, dense packing), exercised together across crates.

use xoar_core::migration::{migrate, MigrationConfig};
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::toolstack::{ResourceQuota, Toolstack};
use xoar_devices::blk::BlkOp;
use xoar_devices::sriov::{sharing_analysis, SrIovNic};
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::PciAddress;
use xoar_security::survey;

#[test]
fn consolidation_lifecycle_with_all_features() {
    // A private cloud: quota'd toolstack, dense fleet, dedup, then one VM
    // migrates away under load and the host's audit chain stays intact.
    let mut host_a = Platform::xoar(XoarConfig::default());
    let mut host_b = Platform::xoar(XoarConfig::default());
    let mut ts = Toolstack::new(&host_a, 0).with_quota(ResourceQuota {
        max_vms: 8,
        max_memory_mib: 8 * 1024,
        max_disk_bytes: 200 << 30,
    });

    // Fleet of four, identical images.
    let mut fleet = Vec::new();
    for i in 0..4 {
        let mut cfg = GuestConfig::evaluation_guest(&format!("node-{i}"));
        cfg.memory_mib = 512;
        let g = ts.create(&mut host_a, cfg).unwrap();
        for page in 0..8u64 {
            host_a.hv.mem.write(g, Pfn(40 + page), b"glibc.so").unwrap();
        }
        fleet.push(g);
    }
    // Dedup reclaims the common pages.
    let freed = host_a.dedup_memory();
    assert!(freed >= 3 * 8, "common pages collapsed: {freed}");

    // The fleet does I/O while one node migrates out.
    for &g in &fleet {
        host_a.blk_submit(g, BlkOp::Write, 0, 8).unwrap();
    }
    host_a.process_blkbacks();
    let mover = fleet[1];
    let ts_b = host_b.services.toolstacks[0];
    let report = migrate(
        &mut host_a,
        &mut host_b,
        mover,
        ts_b,
        MigrationConfig::default(),
        |_, _| {},
    )
    .unwrap();
    // The dedup'd page content followed the guest (CoW semantics made the
    // copy private or shared transparently).
    assert_eq!(
        host_b.hv.mem.read(report.new_dom, Pfn(40)).unwrap(),
        b"glibc.so"
    );
    // The rest of the fleet is still serving I/O on host A.
    for &g in &fleet {
        if g == mover {
            continue;
        }
        host_a.blk_submit(g, BlkOp::Write, 8, 8).unwrap();
    }
    assert_eq!(
        host_a.process_blkbacks().completed as usize,
        fleet.len() - 1
    );
    // Quota accounting followed the departure.
    assert_eq!(ts.list(&host_a).len(), fleet.len() - 1);
    // Audit chains on both hosts verify.
    assert_eq!(host_a.audit.verify_chain(), Ok(()));
    assert_eq!(host_b.audit.verify_chain(), Ok(()));
}

#[test]
fn sriov_trades_driver_domains_for_persistent_pciback() {
    // §5.3's irony, end to end: SR-IOV needs PCIBack kept alive.
    let mut p = Platform::xoar(XoarConfig {
        keep_pciback: true,
        ..Default::default()
    });
    let ts = p.services.toolstacks[0];
    let g1 = p
        .create_guest(ts, GuestConfig::evaluation_guest("vf-guest-1"))
        .unwrap();
    let g2 = p
        .create_guest(ts, GuestConfig::evaluation_guest("vf-guest-2"))
        .unwrap();
    let mut nic = SrIovNic::new(PciAddress::new(0, 2, 0), 8);
    let pciback = p.pciback.as_mut().expect("kept alive");
    nic.enable(pciback, 4).unwrap();
    let vf1 = nic.assign_vf(pciback, g1).unwrap();
    let vf2 = nic.assign_vf(pciback, g2).unwrap();
    assert_ne!(vf1, vf2);
    // Static vs dynamic persistent-sharing comparison.
    let a = sharing_analysis(true);
    assert!(a.with_sriov > a.with_driver_domain);
    // And the memory cost is visible: keep_pciback adds its 256 MiB.
    assert_eq!(p.service_memory_mib(), 640 + 256);
}

#[test]
fn surface_survey_tracks_fleet_growth() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let base = survey(&p).total_interfaces();
    for i in 0..3 {
        p.create_guest(ts, GuestConfig::evaluation_guest(&format!("g{i}")))
            .unwrap();
    }
    let grown = survey(&p);
    assert!(grown.total_interfaces() > base);
    // Growth lands on the data-path shards, not on the Builder.
    let builder = grown
        .components
        .iter()
        .find(|c| c.name == "Builder")
        .unwrap();
    assert_eq!(builder.guest_event_channels, 0);
    assert_eq!(builder.guest_grants, 0);
}

#[test]
fn dedup_then_migrate_then_restart_storm() {
    // Torture sequence combining three state-mutating subsystems.
    use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
    let mut a = Platform::xoar(XoarConfig::default());
    let mut b = Platform::xoar(XoarConfig::default());
    let ts_a = a.services.toolstacks[0];
    let ts_b = b.services.toolstacks[0];
    let g1 = a
        .create_guest(ts_a, GuestConfig::evaluation_guest("g1"))
        .unwrap();
    let g2 = a
        .create_guest(ts_a, GuestConfig::evaluation_guest("g2"))
        .unwrap();
    for g in [g1, g2] {
        a.hv.mem.write(g, Pfn(50), b"same-everywhere").unwrap();
    }
    a.dedup_memory();
    let report = migrate(
        &mut a,
        &mut b,
        g1,
        ts_b,
        MigrationConfig::default(),
        |_, _| {},
    )
    .unwrap();
    // Restart storm on the destination's NetBack while the migrant runs.
    let nb = b.services.netbacks[0];
    let mut eng = RestartEngine::new();
    eng.register(&mut b, nb, RestartPolicy::Never, RestartPath::Fast)
        .unwrap();
    for _ in 0..10 {
        eng.restart(&mut b, nb).unwrap();
    }
    // Everyone's data intact everywhere.
    assert_eq!(a.hv.mem.read(g2, Pfn(50)).unwrap(), b"same-everywhere");
    assert_eq!(
        b.hv.mem.read(report.new_dom, Pfn(50)).unwrap(),
        b"same-everywhere"
    );
    assert_eq!(b.hv.rollback_count(nb), 10);
}
