//! Cross-crate property-based tests: platform invariants under random
//! operation sequences.

use proptest::prelude::*;

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::shard::ConstraintTag;
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::{DomId, DomainState};

/// The operations the fuzzer may apply to a platform.
#[derive(Debug, Clone)]
enum Op {
    Create { tag: Option<u8> },
    DestroyNth(u8),
    BlkIoNth(u8),
    NetIoNth(u8),
    XsRestart,
    AdvanceTime(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::option::of(0u8..3).prop_map(|tag| Op::Create { tag }),
        (0u8..8).prop_map(Op::DestroyNth),
        (0u8..8).prop_map(Op::BlkIoNth),
        (0u8..8).prop_map(Op::NetIoNth),
        Just(Op::XsRestart),
        (1u32..1_000_000).prop_map(Op::AdvanceTime),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No sequence of lifecycle/I/O operations can violate the core
    /// invariants: live guests always have live service shards, shard
    /// constraint tags never mix, the audit graph matches reality, and
    /// nothing panics.
    #[test]
    fn platform_invariants_hold_under_random_ops(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut n = 0u32;
        for op in ops {
            match op {
                Op::Create { tag } => {
                    n += 1;
                    let mut cfg = GuestConfig::evaluation_guest(&format!("g{n}"));
                    cfg.memory_mib = 64;
                    if let Some(t) = tag {
                        cfg.constraint = ConstraintTag::group(&format!("t{t}"));
                    }
                    // May fail on constraints or memory: must not panic.
                    let _ = p.create_guest(ts, cfg);
                }
                Op::DestroyNth(i) => {
                    let doms: Vec<DomId> = p.guests().iter().map(|g| g.dom).collect();
                    if let Some(d) = doms.get(i as usize % doms.len().max(1)) {
                        p.destroy_guest(ts, *d).unwrap();
                    }
                }
                Op::BlkIoNth(i) => {
                    let doms: Vec<DomId> = p.guests().iter().map(|g| g.dom).collect();
                    if let Some(d) = doms.get(i as usize % doms.len().max(1)) {
                        let _ = p.blk_submit(*d, BlkOp::Write, 0, 8);
                        p.process_blkbacks();
                        while p.blk_poll(*d).is_some() {}
                    }
                }
                Op::NetIoNth(i) => {
                    let doms: Vec<DomId> = p.guests().iter().map(|g| g.dom).collect();
                    if let Some(d) = doms.get(i as usize % doms.len().max(1)) {
                        let _ = p.net_transmit(*d, 1, 1500);
                        p.process_netbacks();
                        while p.net_receive(*d).is_some() {}
                    }
                }
                Op::XsRestart => p.xs.restart_logic(),
                Op::AdvanceTime(ns) => p.advance_time(ns as u64),
            }

            // Invariant 1: every live guest's shards are live.
            for g in p.guests() {
                for shard in [g.netback, g.blkback] {
                    if let Some(s) = shard {
                        prop_assert_eq!(
                            p.hv.domain(s).unwrap().state,
                            DomainState::Running,
                            "guest {} has dead shard {}", g.dom, s
                        );
                    }
                }
            }
            // Invariant 2: no shard serves two different constraint tags.
            for g1 in p.guests() {
                for g2 in p.guests() {
                    if g1.netback == g2.netback {
                        prop_assert!(
                            g1.constraint.compatible(&g2.constraint),
                            "{} and {} share a netback with different tags", g1.dom, g2.dom
                        );
                    }
                }
            }
            // Invariant 3: the audit dependency graph matches the live
            // attachments.
            let deps = p.audit.dependency_graph_at(u64::MAX);
            for g in p.guests() {
                if let Some(nb) = g.netback {
                    prop_assert!(deps.contains(&(g.dom, nb)));
                }
            }
            // Invariant 4: memory accounting never goes negative / wild.
            prop_assert!(p.hv.mem.free_frames() <= p.hv.mem.total_frames());
        }
    }

    /// Guest creation is all-or-nothing: a failed creation leaves no
    /// residue (no half-attached devices, no audit records, no leaked
    /// image mounts).
    #[test]
    fn failed_creation_leaves_no_residue(tag in 0u8..3) {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        // Occupy the only netback with a tagged guest.
        let mut cfg = GuestConfig::evaluation_guest("occupier");
        cfg.constraint = ConstraintTag::group("occupied");
        p.create_guest(ts, cfg).unwrap();
        let audit_before = p.audit.len();
        let guests_before = p.guests().len();
        // This must fail on the constraint check (different tag).
        let mut cfg = GuestConfig::evaluation_guest("loser");
        cfg.constraint = ConstraintTag::group(&format!("other-{tag}"));
        prop_assert!(p.create_guest(ts, cfg).is_err());
        prop_assert_eq!(p.audit.len(), audit_before);
        prop_assert_eq!(p.guests().len(), guests_before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Toolstack quota accounting never drifts from the live platform
    /// state under arbitrary create/destroy/resize sequences.
    #[test]
    fn toolstack_quota_never_drifts(
        ops in proptest::collection::vec((0u8..3, 1u64..4), 1..30)
    ) {
        use xoar_core::toolstack::{ResourceQuota, Toolstack};
        let mut p = Platform::xoar(XoarConfig::default());
        let mut ts = Toolstack::new(&p, 0).with_quota(ResourceQuota {
            max_vms: 6,
            max_memory_mib: 6 * 1024,
            max_disk_bytes: 120 << 30,
        });
        let mut n = 0u32;
        for (op, size) in ops {
            match op {
                0 => {
                    n += 1;
                    let mut cfg = GuestConfig::evaluation_guest(&format!("q{n}"));
                    cfg.memory_mib = size * 256;
                    let _ = ts.create(&mut p, cfg);
                }
                1 => {
                    if let Some(vm) = ts.list(&p).first() {
                        let dom = vm.dom;
                        ts.destroy(&mut p, dom).unwrap();
                    }
                }
                _ => {
                    if let Some(vm) = ts.list(&p).first() {
                        let dom = vm.dom;
                        let _ = ts.set_memory(&mut p, dom, size * 256);
                    }
                }
            }
            // Invariant: accounted memory equals the sum over live VMs.
            let live: u64 = ts.list(&p).iter().map(|v| v.memory_mib).sum();
            prop_assert_eq!(ts.used_memory_mib(), live);
            // And the quota is never exceeded.
            prop_assert!(live <= 6 * 1024);
        }
    }
}
