//! Cross-crate property-based tests: platform invariants under random
//! operation sequences.

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::shard::ConstraintTag;
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::{DomId, DomainState};
use xoar_sim::prop::{Gen, Runner};

/// The operations the fuzzer may apply to a platform.
#[derive(Debug, Clone)]
enum Op {
    Create { tag: Option<u8> },
    DestroyNth(u8),
    BlkIoNth(u8),
    NetIoNth(u8),
    XsRestart,
    AdvanceTime(u32),
}

fn any_op(g: &mut Gen) -> Op {
    match g.u8(0..6) {
        0 => Op::Create {
            tag: if g.bool() { Some(g.u8(0..3)) } else { None },
        },
        1 => Op::DestroyNth(g.u8(0..8)),
        2 => Op::BlkIoNth(g.u8(0..8)),
        3 => Op::NetIoNth(g.u8(0..8)),
        4 => Op::XsRestart,
        _ => Op::AdvanceTime(g.u32(1..1_000_000)),
    }
}

/// No sequence of lifecycle/I/O operations can violate the core
/// invariants: live guests always have live service shards, shard
/// constraint tags never mix, the audit graph matches reality, and
/// nothing panics.
#[test]
fn platform_invariants_hold_under_random_ops() {
    Runner::cases(24).run("platform invariants hold under random ops", |g| {
        let ops = g.vec(1..60, any_op);
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut n = 0u32;
        for op in ops {
            match op {
                Op::Create { tag } => {
                    n += 1;
                    let mut cfg = GuestConfig::evaluation_guest(&format!("g{n}"));
                    cfg.memory_mib = 64;
                    if let Some(t) = tag {
                        cfg.constraint = ConstraintTag::group(&format!("t{t}"));
                    }
                    // May fail on constraints or memory: must not panic.
                    let _ = p.create_guest(ts, cfg);
                }
                Op::DestroyNth(i) => {
                    let doms: Vec<DomId> = p.guests().iter().map(|g| g.dom).collect();
                    if let Some(d) = doms.get(i as usize % doms.len().max(1)) {
                        p.destroy_guest(ts, *d).unwrap();
                    }
                }
                Op::BlkIoNth(i) => {
                    let doms: Vec<DomId> = p.guests().iter().map(|g| g.dom).collect();
                    if let Some(d) = doms.get(i as usize % doms.len().max(1)) {
                        let _ = p.blk_submit(*d, BlkOp::Write, 0, 8);
                        p.process_blkbacks();
                        while p.blk_poll(*d).is_some() {}
                    }
                }
                Op::NetIoNth(i) => {
                    let doms: Vec<DomId> = p.guests().iter().map(|g| g.dom).collect();
                    if let Some(d) = doms.get(i as usize % doms.len().max(1)) {
                        let _ = p.net_transmit(*d, 1, 1500);
                        p.process_netbacks();
                        while p.net_receive(*d).is_some() {}
                    }
                }
                Op::XsRestart => p.xs.restart_logic(),
                Op::AdvanceTime(ns) => p.advance_time(ns as u64),
            }

            // Invariant 1: every live guest's shards are live.
            for g in p.guests() {
                for shard in [g.netback, g.blkback] {
                    if let Some(s) = shard {
                        assert_eq!(
                            p.hv.domain(s).unwrap().state,
                            DomainState::Running,
                            "guest {} has dead shard {}",
                            g.dom,
                            s
                        );
                    }
                }
            }
            // Invariant 2: no shard serves two different constraint tags.
            for g1 in p.guests() {
                for g2 in p.guests() {
                    if g1.netback == g2.netback {
                        assert!(
                            g1.constraint.compatible(&g2.constraint),
                            "{} and {} share a netback with different tags",
                            g1.dom,
                            g2.dom
                        );
                    }
                }
            }
            // Invariant 3: the audit dependency graph matches the live
            // attachments.
            let deps = p.audit.dependency_graph_at(u64::MAX);
            for g in p.guests() {
                if let Some(nb) = g.netback {
                    assert!(deps.contains(&(g.dom, nb)));
                }
            }
            // Invariant 4: memory accounting never goes negative / wild.
            assert!(p.hv.mem.free_frames() <= p.hv.mem.total_frames());
        }
    });
}

/// Guest creation is all-or-nothing: a failed creation leaves no
/// residue (no half-attached devices, no audit records, no leaked
/// image mounts).
#[test]
fn failed_creation_leaves_no_residue() {
    Runner::cases(24).run("failed creation leaves no residue", |g| {
        let tag = g.u8(0..3);
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        // Occupy the only netback with a tagged guest.
        let mut cfg = GuestConfig::evaluation_guest("occupier");
        cfg.constraint = ConstraintTag::group("occupied");
        p.create_guest(ts, cfg).unwrap();
        let audit_before = p.audit.len();
        let guests_before = p.guests().len();
        // This must fail on the constraint check (different tag).
        let mut cfg = GuestConfig::evaluation_guest("loser");
        cfg.constraint = ConstraintTag::group(&format!("other-{tag}"));
        assert!(p.create_guest(ts, cfg).is_err());
        assert_eq!(p.audit.len(), audit_before);
        assert_eq!(p.guests().len(), guests_before);
    });
}

/// Toolstack quota accounting never drifts from the live platform
/// state under arbitrary create/destroy/resize sequences.
#[test]
fn toolstack_quota_never_drifts() {
    Runner::cases(16).run("toolstack quota never drifts", |g| {
        use xoar_core::toolstack::{ResourceQuota, Toolstack};
        let ops = g.vec(1..30, |g| (g.u8(0..3), g.u64(1..4)));
        let mut p = Platform::xoar(XoarConfig::default());
        let mut ts = Toolstack::new(&p, 0).with_quota(ResourceQuota {
            max_vms: 6,
            max_memory_mib: 6 * 1024,
            max_disk_bytes: 120 << 30,
        });
        let mut n = 0u32;
        for (op, size) in ops {
            match op {
                0 => {
                    n += 1;
                    let mut cfg = GuestConfig::evaluation_guest(&format!("q{n}"));
                    cfg.memory_mib = size * 256;
                    let _ = ts.create(&mut p, cfg);
                }
                1 => {
                    if let Some(vm) = ts.list(&p).first() {
                        let dom = vm.dom;
                        ts.destroy(&mut p, dom).unwrap();
                    }
                }
                _ => {
                    if let Some(vm) = ts.list(&p).first() {
                        let dom = vm.dom;
                        let _ = ts.set_memory(&mut p, dom, size * 256);
                    }
                }
            }
            // Invariant: accounted memory equals the sum over live VMs.
            let live: u64 = ts.list(&p).iter().map(|v| v.memory_mib).sum();
            assert_eq!(ts.used_memory_mib(), live);
            // And the quota is never exceeded.
            assert!(live <= 6 * 1024);
        }
    });
}
