//! The paper's headline evaluation claims, asserted end to end.
//!
//! Each test reproduces one table/figure at reduced scale and checks the
//! *shape* the paper reports: who wins, by roughly what factor, and where
//! the knees fall. The full-scale numbers are produced by the harnesses
//! in `crates/bench/src/bin/` and recorded in EXPERIMENTS.md.

use xoar_core::boot::BootPlan;
use xoar_core::platform::{GuestConfig, Platform, PlatformMode, XoarConfig};
use xoar_core::restart::RestartPath;
use xoar_hypervisor::DomId;
use xoar_sim::workloads::{apache, kernel_build, postmark, restart_sweep, wget};

fn guest_on(p: &mut Platform, name: &str) -> DomId {
    let ts = p.services.toolstacks[0];
    p.create_guest(ts, GuestConfig::evaluation_guest(name))
        .unwrap()
}

#[test]
fn table_6_1_memory_range() {
    // 512–896 MB depending on configuration, vs 750 MB Dom0.
    let min = Platform::xoar(XoarConfig {
        with_console: false,
        ..Default::default()
    });
    let max = Platform::xoar(XoarConfig {
        keep_pciback: true,
        ..Default::default()
    });
    assert_eq!(min.service_memory_mib(), 512);
    assert_eq!(max.service_memory_mib(), 896);
    assert_eq!(Platform::stock_xen().service_memory_mib(), 750);
}

#[test]
fn table_6_2_boot_speedups() {
    let dom0 = BootPlan::stock_xen().simulate();
    let xoar = BootPlan::xoar().simulate();
    assert!((dom0.console_s / xoar.console_s - 1.5).abs() < 0.1);
    assert!((dom0.ping_s / xoar.ping_s - 1.15).abs() < 0.1);
}

#[test]
fn figure_6_1_postmark_parity() {
    let cfg = postmark::PostmarkConfig {
        files: 1_000,
        transactions: 10_000,
        subdirectories: 0,
    };
    let mut dom0 = Platform::stock_xen();
    let g0 = guest_on(&mut dom0, "pm");
    let mut xoar = Platform::xoar(XoarConfig::default());
    let g1 = guest_on(&mut xoar, "pm");
    let r0 = postmark::run(&mut dom0, g0, cfg, 11);
    let r1 = postmark::run(&mut xoar, g1, cfg, 11);
    let ratio = r1.ops_per_sec / r0.ops_per_sec;
    assert!(
        (ratio - 1.0).abs() < 0.03,
        "disk throughput unchanged: {ratio:.3}"
    );
}

#[test]
fn figure_6_2_wget_shape() {
    const SZ: u64 = 96 << 20;
    let mut dom0 = Platform::stock_xen();
    let g0 = guest_on(&mut dom0, "w");
    let mut xoar = Platform::xoar(XoarConfig::default());
    let g1 = guest_on(&mut xoar, "w");
    // Network-only: Xoar slightly behind.
    let n0 = wget::run(&mut dom0, g0, SZ, wget::Sink::DevNull);
    let n1 = wget::run(&mut xoar, g1, SZ, wget::Sink::DevNull);
    let net_delta = 1.0 - n1.throughput_mbps / n0.throughput_mbps;
    assert!(net_delta > 0.005 && net_delta < 0.035, "{net_delta:.3}");
    // Combined: Xoar ahead by ~6.5%.
    let d0 = wget::run(&mut dom0, g0, SZ, wget::Sink::Disk);
    let d1 = wget::run(&mut xoar, g1, SZ, wget::Sink::Disk);
    let gain = d1.throughput_mbps / d0.throughput_mbps - 1.0;
    assert!(gain > 0.03 && gain < 0.12, "{gain:.3}");
}

#[test]
fn figure_6_3_knee_positions() {
    const GB1: u64 = 1 << 30;
    let base = restart_sweep::baseline_mbps(GB1);
    let mut p1 = Platform::xoar(XoarConfig::default());
    let g1 = guest_on(&mut p1, "s");
    let t1 = restart_sweep::run_point(&mut p1, g1, GB1, 1, RestartPath::Slow);
    let mut p10 = Platform::xoar(XoarConfig::default());
    let g10 = guest_on(&mut p10, "s");
    let t10 = restart_sweep::run_point(&mut p10, g10, GB1, 10, RestartPath::Slow);
    // Paper: 58% drop at 1 s; ≤~8% at 10 s.
    assert!(1.0 - t1.throughput_mbps / base > 0.40);
    assert!(1.0 - t10.throughput_mbps / base < 0.12);
    // The measured downtimes are the paper's.
    assert_eq!(t1.downtime_ns, 260_000_000);
}

#[test]
fn figure_6_4_build_overhead_under_one_percent() {
    let mut dom0 = Platform::stock_xen();
    let g0 = guest_on(&mut dom0, "kb");
    let mut xoar = Platform::xoar(XoarConfig::default());
    let g1 = guest_on(&mut xoar, "kb");
    for src in [
        kernel_build::BuildSource::LocalExt3,
        kernel_build::BuildSource::Nfs {
            restart_interval_s: None,
        },
    ] {
        let r0 = kernel_build::run(&mut dom0, g0, src);
        let r1 = kernel_build::run(&mut xoar, g1, src);
        let overhead = r1.build_time_s / r0.build_time_s - 1.0;
        assert!(overhead < 0.01, "{src:?}: {overhead:.4}");
    }
}

#[test]
fn figure_6_5_apache_shape() {
    let dom0 = apache::run(PlatformMode::StockXen, apache::AbConfig::Clean);
    let xoar = apache::run(PlatformMode::Xoar, apache::AbConfig::Clean);
    let r1 = apache::run(
        PlatformMode::Xoar,
        apache::AbConfig::Restarts { interval_s: 1 },
    );
    // Xoar within a few percent of Dom0.
    assert!(xoar.throughput_rps / dom0.throughput_rps > 0.97);
    // 1-second restarts are crippling, with multi-second outliers.
    assert!(r1.throughput_rps / xoar.throughput_rps < 0.5);
    assert!(r1.longest_request_ms > 2_000.0);
    assert!(dom0.longest_request_ms < 25.0);
}

#[test]
fn security_headline_claims() {
    use xoar_security::containment::Verdict;
    let all = xoar_security::corpus();
    assert_eq!(xoar_security::census(&all).total, 44);

    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut cfg = GuestConfig::evaluation_guest("attacker");
    cfg.hvm = true;
    let a = p.create_guest(ts, cfg).unwrap();
    let _v = guest_on(&mut p, "victim");
    let rep = xoar_security::evaluate(&p, a, &all);
    assert_eq!(rep.count(Verdict::ContainedToComponent), 7);
    assert_eq!(rep.count(Verdict::LimitedToSharers), 7);
    assert_eq!(rep.count(Verdict::NotProtected), 1);

    let tcb = xoar_security::tcb_of_guest(&p, _v);
    assert_eq!(tcb.above_hypervisor_source(), 13_000);
}
