//! Differential tests for dirty-epoch (lazy) content hashing.
//!
//! Content hashes feed dedup, CoW-share verification, and the
//! analyzer's integrity audit — none of which run on the page-write hot
//! path. The lazy scheme therefore only queues a rehash on write and
//! materializes at the consumers. These tests pin the equivalence that
//! makes that safe: a memory manager whose hashes are materialized
//! *eagerly after every operation* and one that materializes *only at
//! the built-in seams* must agree on every observable — dedup results,
//! frame accounting, page contents, p2m layout, and the integrity
//! audit — under randomized operation interleavings.

use xoar_analysis::snapshot::ModelSnapshot;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::memory::{MemoryManager, Pfn};
use xoar_hypervisor::DomId;
use xoar_sim::prop::{Gen, Runner};

const DOMS: [DomId; 3] = [DomId(1), DomId(2), DomId(3)];
const PAGES_PER_DOM: u64 = 24;

/// The operations the fuzzer interleaves. Every variant is applied
/// identically to both twins; only the hashing schedule differs.
#[derive(Debug, Clone)]
enum Op {
    /// A small write (inline-hashed on the lazy path).
    WriteSmall { dom: u8, pfn: u8, byte: u8 },
    /// A page-sized write of non-zero content (deferred rehash).
    WritePage { dom: u8, pfn: u8, fill: u8 },
    /// A page-sized all-zero write (canonical zero frame).
    WriteZero { dom: u8, pfn: u8 },
    /// An empty write (truncate to the empty page).
    WriteEmpty { dom: u8, pfn: u8 },
    /// A duplicate of another domain's page (dedup fodder).
    WriteDup { dom: u8, pfn: u8, fill: u8 },
    /// The full dedup sweep.
    Dedup,
    /// CoW break via the exclusive-frame path.
    Exclusive { dom: u8, pfn: u8 },
    /// Toggle write-time dedup.
    ToggleDedupOnWrite(bool),
    /// Freeze a domain (microreboot baseline — a materialize seam).
    Freeze { dom: u8 },
    /// Drain a domain's dirty set (migration round).
    TakeDirty { dom: u8 },
}

fn any_op(g: &mut Gen) -> Op {
    match g.u8(0..12) {
        0 | 1 => Op::WriteSmall {
            dom: g.u8(0..3),
            pfn: g.u8(0..PAGES_PER_DOM as u8),
            byte: g.u8(0..255),
        },
        2 | 3 => Op::WritePage {
            dom: g.u8(0..3),
            pfn: g.u8(0..PAGES_PER_DOM as u8),
            fill: g.u8(1..255),
        },
        4 => Op::WriteZero {
            dom: g.u8(0..3),
            pfn: g.u8(0..PAGES_PER_DOM as u8),
        },
        5 => Op::WriteEmpty {
            dom: g.u8(0..3),
            pfn: g.u8(0..PAGES_PER_DOM as u8),
        },
        6 | 7 => Op::WriteDup {
            dom: g.u8(0..3),
            pfn: g.u8(0..PAGES_PER_DOM as u8),
            fill: g.u8(1..8),
        },
        8 => Op::Dedup,
        9 => Op::Exclusive {
            dom: g.u8(0..3),
            pfn: g.u8(0..PAGES_PER_DOM as u8),
        },
        10 => Op::ToggleDedupOnWrite(g.bool()),
        _ => {
            if g.bool() {
                Op::Freeze { dom: g.u8(0..3) }
            } else {
                Op::TakeDirty { dom: g.u8(0..3) }
            }
        }
    }
}

fn fleet() -> MemoryManager {
    let mut m = MemoryManager::new(DOMS.len() as u64 * PAGES_PER_DOM + 16);
    for &d in &DOMS {
        m.populate(d, PAGES_PER_DOM).unwrap();
    }
    m
}

/// Applies one op to a manager. Returns the op's numeric observable
/// (freed count, dirty-set length, …) so the twins can be compared on
/// return values too, not just end state.
fn apply(m: &mut MemoryManager, op: &Op) -> u64 {
    let dom = |i: u8| DOMS[i as usize % DOMS.len()];
    match *op {
        Op::WriteSmall { dom: d, pfn, byte } => {
            m.write(dom(d), Pfn(pfn as u64), &[byte, byte ^ 0x5a])
                .unwrap();
            0
        }
        Op::WritePage { dom: d, pfn, fill } => {
            // Mix the fill with the pfn so distinct ops rarely collide
            // by accident; duplicates come from WriteDup.
            let body = [fill ^ pfn, fill].repeat(2048);
            m.write(dom(d), Pfn(pfn as u64), &body).unwrap();
            0
        }
        Op::WriteZero { dom: d, pfn } => {
            m.write(dom(d), Pfn(pfn as u64), &[0u8; 4096]).unwrap();
            0
        }
        Op::WriteEmpty { dom: d, pfn } => {
            m.write(dom(d), Pfn(pfn as u64), &[]).unwrap();
            0
        }
        Op::WriteDup { dom: d, pfn, fill } => {
            let body = [0xd0, fill].repeat(2048);
            m.write(dom(d), Pfn(pfn as u64), &body).unwrap();
            0
        }
        Op::Dedup => m.share_identical(),
        Op::Exclusive { dom: d, pfn } => m
            .exclusive_mfn(dom(d), Pfn(pfn as u64))
            .map(|mfn| mfn.0)
            .unwrap_or(u64::MAX),
        Op::ToggleDedupOnWrite(on) => {
            m.set_dedup_on_write(on);
            0
        }
        Op::Freeze { dom: d } => m.freeze(dom(d)),
        Op::TakeDirty { dom: d } => m.take_dirty(dom(d)).len() as u64,
    }
}

/// Everything two schedules must agree on after a run.
fn observe(m: &mut MemoryManager) -> (u64, u64, Vec<u64>, Vec<Vec<(u64, u64)>>, Vec<Vec<Vec<u8>>>) {
    let per_dom_owned = DOMS.iter().map(|&d| m.owned_frames(d)).collect();
    let p2ms = DOMS
        .iter()
        .map(|&d| {
            m.p2m_entries(d)
                .into_iter()
                .map(|(p, mfn)| (p.0, mfn.0))
                .collect()
        })
        .collect();
    let contents = DOMS
        .iter()
        .map(|&d| {
            (0..PAGES_PER_DOM)
                .map(|p| m.read(d, Pfn(p)).unwrap().to_vec())
                .collect()
        })
        .collect();
    (
        m.free_frames(),
        m.shared_frames(),
        per_dom_owned,
        p2ms,
        contents,
    )
}

/// The core differential property: lazy materialization at the built-in
/// seams is observationally equivalent to materializing after every
/// single operation.
#[test]
fn lazy_hashing_equals_eager_hashing_under_random_interleavings() {
    Runner::cases(48).run("lazy hashing ≡ eager hashing", |g| {
        let ops = g.vec(1..80, any_op);
        let mut lazy = fleet();
        let mut eager = fleet();
        eager.materialize_hashes();
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&mut lazy, op);
            let b = apply(&mut eager, op);
            // The eager twin re-hashes after *every* op; the lazy twin
            // only at the seams baked into dedup/freeze/verify.
            eager.materialize_hashes();
            assert_eq!(a, b, "op {i} {op:?} diverged: lazy={a} eager={b}");
        }
        assert_eq!(
            observe(&mut lazy),
            observe(&mut eager),
            "final state diverged after {} ops",
            ops.len()
        );
        // The fleet-wide integrity digests must agree: identical logical
        // memory yields identical `(mfn, hash)` folds regardless of when
        // each twin materialized.
        assert_eq!(lazy.verify_integrity(), eager.verify_integrity());
        assert_eq!(lazy.pending_rehash(), 0, "verify must drain the queue");
        lazy.check_consistency().unwrap();
        eager.check_consistency().unwrap();
    });
}

/// Dedup must see *current* content, not stale hashes: a page that was
/// rewritten to match another page dedups, and a page rewritten away
/// from a match does not.
#[test]
fn dedup_sees_rewritten_content_not_stale_hashes() {
    let mut m = fleet();
    m.write(DomId(1), Pfn(0), &[7u8; 4096]).unwrap();
    m.write(DomId(2), Pfn(0), &[9u8; 4096]).unwrap();
    // Rewrite dom2's page to match dom1 — without materializing.
    m.write(DomId(2), Pfn(0), &[7u8; 4096]).unwrap();
    assert!(m.pending_rehash() > 0, "writes must defer hashing");
    assert_eq!(m.share_identical(), 1, "rewritten match must dedup");
    // Now diverge dom2 again; the share must break and stay broken.
    m.write(DomId(2), Pfn(0), &[8u8; 4096]).unwrap();
    assert_eq!(m.share_identical(), 0, "diverged page must not dedup");
    assert_eq!(m.read(DomId(1), Pfn(0)).unwrap().as_slice(), &[7u8; 4096]);
    assert_eq!(m.read(DomId(2), Pfn(0)).unwrap().as_slice(), &[8u8; 4096]);
}

/// Regression: the analyzer snapshot is a materialize seam. A capture
/// taken right after a burst of writes must never see (or leave behind)
/// a half-hashed frame table.
#[test]
fn analyzer_snapshot_materializes_pending_hashes() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("lazy-snap"))
        .unwrap();
    for pfn in 0..8 {
        p.hv.mem.write(g, Pfn(pfn), &[0xabu8; 4096]).unwrap();
    }
    assert!(p.hv.mem.pending_rehash() > 0, "writes must defer hashing");
    let snap = ModelSnapshot::capture(&mut p);
    assert_eq!(
        p.hv.mem.pending_rehash(),
        0,
        "capture must materialize the rehash queue"
    );
    assert!(snap.domains.contains_key(&g));
    // The audit digest is stable once materialized: a second pass finds
    // no pending work and folds the same `(mfn, hash)` sequence.
    let digest = p.hv.mem.verify_integrity();
    assert_eq!(p.hv.mem.verify_integrity(), digest);
}

/// Regression: sealing a clone template (which freezes the template's
/// frames) is a materialize seam — stale hashes sealed into a template
/// would poison every clone's CoW bookkeeping.
#[test]
fn template_seal_materializes_pending_hashes() {
    // Hypervisor level: `template_arm`'s freeze drains the queue.
    let mut m = MemoryManager::new(64);
    m.populate(DomId(1), 8).unwrap();
    for pfn in 0..8 {
        m.write(DomId(1), Pfn(pfn), &[0xcdu8; 4096]).unwrap();
    }
    assert!(m.pending_rehash() > 0, "writes must defer hashing");
    m.template_arm(DomId(1)).unwrap();
    assert_eq!(
        m.pending_rehash(),
        0,
        "template seal must materialize the rehash queue"
    );

    // Platform level: the first clone of a captured template performs
    // the seal; no stale hash may survive it.
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let tpl = p
        .create_guest(ts, GuestConfig::evaluation_guest("lazy-golden"))
        .unwrap();
    for pfn in 0..8 {
        p.hv.mem.write(tpl, Pfn(pfn), &[0xcdu8; 4096]).unwrap();
    }
    p.capture_template(ts, tpl).unwrap();
    assert!(
        p.hv.mem.pending_rehash() > 0,
        "capture alone must not rehash"
    );
    let c = p.clone_guest(ts, tpl, "lazy-clone").unwrap();
    assert_eq!(
        p.hv.mem.pending_rehash(),
        0,
        "first clone seals the template and must materialize"
    );
    assert_eq!(
        p.hv.mem.read(c, Pfn(3)).unwrap().to_vec(),
        p.hv.mem.read(tpl, Pfn(3)).unwrap().to_vec()
    );
    let digest = p.hv.mem.verify_integrity();
    assert_eq!(p.hv.mem.verify_integrity(), digest);
}
