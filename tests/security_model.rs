//! Cross-crate security invariants: the isolation properties Chapter 3
//! promises, checked against the live platform with the security crate's
//! analysis tooling.

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::shard::ConstraintTag;
use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, HvError, Hypercall, HypercallId};
use xoar_security::containment::{blast_radius, Verdict};
use xoar_security::{corpus, evaluate, tcb_of_guest};

fn xoar_with_two_guests() -> (Platform, DomId, DomId, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let a = p
        .create_guest(ts, GuestConfig::evaluation_guest("a"))
        .unwrap();
    let b = p
        .create_guest(ts, GuestConfig::evaluation_guest("b"))
        .unwrap();
    (p, ts, a, b)
}

#[test]
fn guests_cannot_touch_each_other_through_any_interface() {
    let (mut p, _ts, a, b) = xoar_with_two_guests();
    // Foreign mapping: denied.
    assert!(matches!(
        p.hv.hypercall(
            a,
            Hypercall::MmuMapForeign {
                target: b,
                pfn: Pfn(0)
            }
        ),
        Err(HvError::PermissionDenied { .. })
    ));
    // Event channel: denied (guest↔guest is never a shard pair).
    assert!(p
        .hv
        .hypercall(a, Hypercall::EvtchnAllocUnbound { remote: b })
        .is_err());
    // Grant offer: denied by the same IVC policy.
    assert!(p
        .hv
        .hypercall(
            a,
            Hypercall::GnttabGrantAccess {
                grantee: b,
                pfn: Pfn(0),
                access: GrantAccess::ReadOnly,
            }
        )
        .is_err());
    // XenStore: a cannot read b's tree.
    let key = format!("/local/domain/{}/name", b.0);
    assert!(p.xs.read_str(a, &key).is_err());
}

#[test]
fn no_shard_except_builder_can_map_guest_memory() {
    let (p, _ts, a, _b) = xoar_with_two_guests();
    let s = &p.services;
    let mut cannot = vec![
        s.xenstore,
        s.xenstore_state,
        s.netbacks[0],
        s.blkbacks[0],
        s.toolstacks[0],
    ];
    if let Some(c) = s.console {
        cannot.push(c);
    }
    for shard in cannot {
        let radius = blast_radius(&p, shard);
        assert!(
            !radius.memory_of.contains(&a),
            "{shard} must not reach guest memory"
        );
    }
    let builder = blast_radius(&p, s.builder);
    assert!(
        builder.memory_of.contains(&a),
        "only the Builder retains arbitrary access"
    );
}

#[test]
fn whole_corpus_side_by_side() {
    // The replay totals must balance on both platforms: 19 attacks each.
    let all = corpus::corpus();
    let mut stock = Platform::stock_xen();
    let ts = stock.services.toolstacks[0];
    let mut cfg = GuestConfig::evaluation_guest("attacker");
    cfg.hvm = true;
    let a0 = stock.create_guest(ts, cfg.clone()).unwrap();
    let stock_rep = evaluate(&stock, a0, &all);

    let mut xoar = Platform::xoar(XoarConfig::default());
    let ts = xoar.services.toolstacks[0];
    let a1 = xoar.create_guest(ts, cfg).unwrap();
    let xoar_rep = evaluate(&xoar, a1, &all);

    let total =
        |r: &xoar_security::ContainmentReport| -> usize { r.counts.iter().map(|(_, c)| c).sum() };
    assert_eq!(total(&stock_rep), 19);
    assert_eq!(total(&xoar_rep), 19);
    // Xoar strictly dominates: nothing gets worse, full compromises go
    // from 14 to 0.
    assert_eq!(stock_rep.count(Verdict::FullPlatformCompromise), 14);
    assert_eq!(xoar_rep.count(Verdict::FullPlatformCompromise), 0);
    // Unprotected class identical (the hypervisor exploit).
    assert_eq!(
        stock_rep.count(Verdict::NotProtected),
        xoar_rep.count(Verdict::NotProtected)
    );
}

#[test]
fn constraint_groups_and_audit_compose() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut cfg = GuestConfig::evaluation_guest("tenant-a");
    cfg.constraint = ConstraintTag::group("a");
    let ga = p.create_guest(ts, cfg).unwrap();
    // The audit graph shows exactly which shards serve tenant A…
    let deps = p.audit.dependency_graph_at(u64::MAX);
    let serving: Vec<DomId> = deps
        .iter()
        .filter(|(g, _)| *g == ga)
        .map(|(_, s)| *s)
        .collect();
    assert_eq!(serving.len(), 2, "netback + blkback");
    // …and each of those shards carries tenant A's tag, so no
    // differently-tagged VM can ever share them.
    for s in serving {
        assert_eq!(p.shard_tag(s), Some(&ConstraintTag::group("a")));
    }
}

#[test]
fn microreboot_evicts_attacker_state() {
    let (mut p, _ts, _a, _b) = xoar_with_two_guests();
    let nb = p.services.netbacks[0];
    let builder = p.services.builder;
    // The shard snapshots itself post-boot.
    p.hv.hypercall(nb, Hypercall::VmSnapshot).unwrap();
    // Attacker compromises NetBack and plants persistence.
    p.hv.mem.write(nb, Pfn(5), b"rootkit").unwrap();
    p.hv.mem.write(nb, Pfn(9), b"exfil-buffer").unwrap();
    // The periodic restart rolls it all back.
    p.hv.hypercall(builder, Hypercall::VmRollback { target: nb })
        .unwrap();
    assert_eq!(p.hv.mem.read(nb, Pfn(5)).unwrap(), Vec::<u8>::new());
    assert_eq!(p.hv.mem.read(nb, Pfn(9)).unwrap(), Vec::<u8>::new());
}

#[test]
fn tcb_shrinks_for_every_guest_not_just_one() {
    let (p, _ts, a, b) = xoar_with_two_guests();
    for g in [a, b] {
        let tcb = tcb_of_guest(&p, g);
        assert_eq!(tcb.above_hypervisor_source(), 13_000, "guest {g}");
    }
}

#[test]
fn compromised_toolstack_cannot_escalate_to_builder_powers() {
    let (mut p, ts, a, _b) = xoar_with_two_guests();
    // The attacker owns the toolstack. It can manage its guests…
    p.hv.hypercall(ts, Hypercall::DomctlPauseDomain { target: a })
        .unwrap();
    // …but cannot write guest memory…
    assert!(p
        .hv
        .hypercall(
            ts,
            Hypercall::MmuWriteForeign {
                target: a,
                pfn: Pfn(0),
                data: b"x".to_vec()
            }
        )
        .is_err());
    // …cannot grant itself new privileges (it does not hold them)…
    assert!(p
        .hv
        .hypercall(
            ts,
            Hypercall::DomctlPermitHypercall {
                target: ts,
                id: HypercallId::MmuMapForeign
            }
        )
        .is_err());
    // …and cannot touch the Builder.
    assert!(p
        .hv
        .hypercall(
            ts,
            Hypercall::DomctlDestroyDomain {
                target: p.services.builder
            }
        )
        .is_err());
}

#[test]
fn dos_against_xenstore_is_quota_bounded() {
    let (mut p, _ts, a, b) = xoar_with_two_guests();
    // Guest a floods its own subtree until the node quota stops it.
    let mut created = 0;
    for i in 0..100_000 {
        match p
            .xs
            .write_str(a, &format!("/local/domain/{}/data/n{i}", a.0), "x")
        {
            Ok(()) => created += 1,
            Err(_) => break,
        }
    }
    assert!(
        created < 2_000,
        "quota must bound the flood (created {created})"
    );
    // The store still serves other guests.
    p.xs.write_str(b, &format!("/local/domain/{}/data/ok", b.0), "fine")
        .unwrap();
}

// ---------------------------------------------------------------------
// Spec-backed noninterference: the same claims the probes above make by
// poking implementation interfaces, restated as queries against the
// executable isolation spec advanced in lockstep with the hypervisor.

#[test]
fn spec_model_shows_guests_mutually_invisible() {
    let (mut p, _ts, a, b) = xoar_with_two_guests();
    let h = xoar_analysis::spec::SpecHandle::attach(&mut p.hv);
    // Drive the denied probes under the checker: failed ops must leave
    // the model (and the real state it mirrors) untouched.
    let _ = p.hv.hypercall(
        a,
        Hypercall::MmuMapForeign {
            target: b,
            pfn: Pfn(0),
        },
    );
    let _ = p.hv.hypercall(
        a,
        Hypercall::GnttabGrantAccess {
            grantee: b,
            pfn: Pfn(0),
            access: GrantAccess::ReadOnly,
        },
    );
    let s = h.state();
    assert!(!s.can_see(a, b), "guest a must not observe guest b");
    assert!(!s.can_see(b, a), "guest b must not observe guest a");
    assert_eq!(s.sharing_justification(a, b), None);
    assert!(
        h.divergence().is_none(),
        "spec diverged:\n{}",
        h.report().unwrap_or_default()
    );
}

#[test]
fn spec_model_justifies_backend_reach_by_grant_only() {
    let (mut p, _ts, a, b) = xoar_with_two_guests();
    let backend = p.services.netbacks[0];
    let h = xoar_analysis::spec::SpecHandle::attach(&mut p.hv);
    let gref =
        p.hv.hypercall(
            a,
            Hypercall::GnttabGrantAccess {
                grantee: backend,
                pfn: Pfn(7),
                access: GrantAccess::ReadWrite,
            },
        )
        .unwrap()
        .grant_ref()
        .unwrap();
    let s = h.state();
    // The backend reaches a's page through the grant and nothing wider:
    // no blanket privilege, no privileged-for edge.
    assert!(s.can_see(backend, a));
    assert_eq!(s.sharing_justification(backend, a), Some("grant"));
    assert!(!s.blanket.contains(&backend), "backend holds no blanket");
    assert!(!s.priv_for.contains(&(backend, a)));
    // The grant names exactly one page, and b stays out of the picture.
    let facts = s.grants_by(a);
    assert!(facts
        .iter()
        .any(|&(g, f)| g == gref.0 && f.grantee == backend && f.pfn == 7));
    // Whatever reach the backend has into b (its boot-time ring grants)
    // is grant-shaped too — never blanket or privileged-for.
    if s.can_see(backend, b) {
        assert_eq!(s.sharing_justification(backend, b), Some("grant"));
    }
    assert!(!s.can_see(b, a));
    // Revocation withdraws the visibility in the model too.
    drop(s);
    p.hv.hypercall(a, Hypercall::GnttabEndAccess { gref })
        .unwrap();
    let s = h.state();
    assert!(
        !s.grants_by(a)
            .iter()
            .any(|&(_, f)| f.grantee == backend && f.pfn == 7),
        "revoked grant must leave the model"
    );
    assert!(
        h.divergence().is_none(),
        "spec diverged:\n{}",
        h.report().unwrap_or_default()
    );
}

#[test]
fn spec_model_isolates_clone_template_sharing() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut tool = xoar_core::toolstack::Toolstack::new(&p, 0);
    let bystander = p
        .create_guest(ts, GuestConfig::evaluation_guest("bystander"))
        .unwrap();
    let tpl = tool
        .create(&mut p, GuestConfig::evaluation_guest("golden"))
        .unwrap();
    tool.capture_template(&mut p, tpl).unwrap();
    let h = xoar_analysis::spec::SpecHandle::attach(&mut p.hv);
    let c1 = tool.clone(&mut p, tpl, "fx-1").unwrap();
    let c2 = tool.clone(&mut p, tpl, "fx-2").unwrap();
    let s = h.state();
    // Clones share with their template and siblings — and the model
    // names that justification precisely.
    assert!(s.clone_linked(c1, tpl));
    assert!(s.clone_linked(c1, c2), "siblings share a template");
    assert_eq!(s.sharing_justification(c1, tpl), Some("clone-template"));
    // The fan-out stops at the family boundary: a bystander guest gains
    // no visibility into the clones, nor they into it.
    assert!(!s.clone_linked(c1, bystander));
    assert!(!s.can_see(c1, bystander));
    assert!(!s.can_see(bystander, c1));
    assert_eq!(s.sharing_justification(c2, bystander), None);
    assert!(
        h.divergence().is_none(),
        "spec diverged:\n{}",
        h.report().unwrap_or_default()
    );
}
