//! Fault injection: crashes, mid-flight detaches, restart storms, and
//! resource exhaustion across crate boundaries.

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::{DomId, DomainState, Hypercall};

fn xoar_with_guest() -> (Platform, DomId, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("victim"))
        .unwrap();
    (p, ts, g)
}

#[test]
fn netback_crash_is_survivable_and_recoverable() {
    let (mut p, _ts, g) = xoar_with_guest();
    let nb = p.services.netbacks[0];
    // Traffic in flight when the driver domain dies.
    p.net_transmit(g, 1, 1500).unwrap();
    p.hv.crash_domain(nb).unwrap();
    // The guest survives; the host does not reboot.
    assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Running);
    assert_eq!(p.hv.host_reboot_count(), 0);
    // The guest's event channel to the dead backend is broken.
    let conn = p.guest(g).unwrap().netfront.as_ref().unwrap().conn;
    assert!(!p.hv.event_connected(g, conn.front_port));
}

#[test]
fn blkback_restart_storm_preserves_correctness() {
    let (mut p, _ts, g) = xoar_with_guest();
    let bb = p.services.blkbacks[0];
    let mut engine = RestartEngine::new();
    engine
        .register(
            &mut p,
            bb,
            RestartPolicy::Timer { interval_ns: 1 },
            RestartPath::Fast,
        )
        .unwrap();
    let mut completed = 0u64;
    let mut retransmits = 0u64;
    for round in 0..50u64 {
        // Submit, then sometimes restart before the backend runs.
        let sector = round * 8;
        if p.blk_submit(g, BlkOp::Write, sector, 8).is_err() {
            // Ring detached by a previous restart: frontends renegotiate;
            // the fast path recreated the ring, so retry once.
            retransmits += 1;
            p.blk_submit(g, BlkOp::Write, sector, 8).unwrap();
        }
        if round % 3 == 0 {
            p.advance_time(1_000_000);
            engine.restart(&mut p, bb).unwrap();
            retransmits += 1; // The in-flight request was dropped.
        } else {
            completed += p.process_blkbacks().completed;
            while p.blk_poll(g).is_some() {}
        }
    }
    assert!(completed > 20, "most rounds complete ({completed})");
    assert!(retransmits > 0, "storm actually dropped work");
    assert_eq!(p.hv.rollback_count(bb), engine.total_restarts());
}

#[test]
fn xenstore_logic_restart_storm_loses_nothing_durable() {
    let (mut p, _ts, g) = xoar_with_guest();
    for i in 0..200 {
        let key = format!("/local/domain/{}/data/k{i}", g.0);
        p.xs.write_str(g, &key, &format!("v{i}")).unwrap();
        if i % 7 == 0 {
            p.xs.restart_logic();
        }
    }
    p.xs.restart_logic();
    for i in 0..200 {
        let key = format!("/local/domain/{}/data/k{i}", g.0);
        assert_eq!(p.xs.read_str(g, &key).unwrap(), format!("v{i}"));
    }
    assert!(p.xs.logic_restarts() >= 29);
}

#[test]
fn guest_crash_releases_shard_attachments() {
    let (mut p, ts, g) = xoar_with_guest();
    p.destroy_guest(ts, g).unwrap();
    // The BlkBack image store unmounted the root image: a new guest with
    // the same name can be created (image name collision would fail).
    let g2 = p
        .create_guest(ts, GuestConfig::evaluation_guest("victim2"))
        .unwrap();
    assert!(p.guest(g2).is_some());
    // NetBack serves only the new guest.
    assert_eq!(p.netbacks[0].connections().len(), 1);
}

#[test]
fn memory_exhaustion_fails_cleanly() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut created = 0;
    // 4 GiB host, shards take ~640 MiB-equivalent frames; giant guests
    // must eventually fail without panicking or corrupting state.
    loop {
        let mut cfg = GuestConfig::evaluation_guest(&format!("big-{created}"));
        cfg.memory_mib = 900 * 1024; // Model-scale frames: 900Ki frames each.
        match p.create_guest(ts, cfg) {
            Ok(_) => created += 1,
            Err(_) => break,
        }
        assert!(created < 64, "host memory must be finite");
    }
    // Platform still functional for a reasonable guest.
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("small"))
        .unwrap();
    assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Running);
}

#[test]
fn double_destroy_is_an_error_not_a_panic() {
    let (mut p, ts, g) = xoar_with_guest();
    p.destroy_guest(ts, g).unwrap();
    let err = p.destroy_guest(ts, g);
    assert!(err.is_err());
}

#[test]
fn dead_domain_cannot_act() {
    let (mut p, ts, g) = xoar_with_guest();
    p.destroy_guest(ts, g).unwrap();
    assert!(p.hv.hypercall(g, Hypercall::SchedYield).is_err());
    assert!(p.net_transmit(g, 1, 100).is_err());
}

#[test]
fn restart_before_snapshot_fails_loudly() {
    let (mut p, _ts, _g) = xoar_with_guest();
    let builder = p.services.builder;
    let nb = p.services.netbacks[0];
    // Rollback without a snapshot is refused by the hypervisor.
    let err =
        p.hv.hypercall(builder, Hypercall::VmRollback { target: nb });
    assert!(err.is_err());
}

#[test]
fn wire_flood_does_not_wedge_netback() {
    let (mut p, _ts, g) = xoar_with_guest();
    for i in 0..10_000u64 {
        p.wire
            .send_to_guest(g, xoar_devices::net::NetPacket::meta(1, i, 1500));
    }
    // Several passes drain the flood with bounded per-pass delivery.
    let mut delivered = 0;
    for _ in 0..200 {
        delivered += p.process_netbacks().rx_frames;
        while p.net_receive(g).is_some() {}
        if p.wire.inbound.is_empty() {
            break;
        }
    }
    assert_eq!(delivered, 10_000, "every frame eventually delivered");
}
