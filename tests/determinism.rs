//! Fixed-seed determinism goldens for the machine-memory data path.
//!
//! The PR-2 memory rewrite (shared page buffers, incremental reverse
//! index, content-hash dedup) must preserve *exact* deterministic
//! semantics: the same workloads on the same configuration produce
//! byte-identical counters, run after run and release after release.
//! These tests pin the counters to literal goldens; a change here means
//! the data path's observable behaviour changed, not just its speed.

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::restart::RestartPath;
use xoar_sim::workloads::{density, restart_sweep};

/// One density run at the paper's 10-VMs-per-core packing.
fn density_counters() -> (usize, u64, u64, u64, u64, u64) {
    let mut p = Platform::xoar(XoarConfig::default());
    let r = density::run(&mut p, 10);
    let cpu_sum: u64 = r.per_guest_cpu_ns.iter().map(|(_, t)| *t).sum();
    let cpu_first = r.per_guest_cpu_ns.first().map(|(_, t)| *t).unwrap();
    let cpu_last = r.per_guest_cpu_ns.last().map(|(_, t)| *t).unwrap();
    (
        r.guests,
        r.service_memory_mib,
        r.dedup_frames,
        cpu_sum,
        cpu_first,
        cpu_last,
    )
}

/// One restart-sweep point: a 2 GB fetch with slow-path restarts every
/// 5 simulated seconds.
fn sweep_counters() -> (u64, u64, u64) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("wget"))
        .unwrap();
    let pt = restart_sweep::run_point(&mut p, g, 2 << 30, 5, RestartPath::Slow);
    (pt.throughput_mbps.to_bits(), pt.restarts, pt.downtime_ns)
}

#[test]
fn density_counters_match_goldens() {
    assert_eq!(
        density_counters(),
        (10, 640, 234, 70_588_230, 7_058_823, 7_058_823)
    );
}

#[test]
fn restart_sweep_counters_match_goldens() {
    assert_eq!(sweep_counters(), (0x4059_d1b5_2084_d43f, 74, 260_000_000));
}

#[test]
fn repeated_runs_are_byte_identical() {
    assert_eq!(density_counters(), density_counters());
    assert_eq!(sweep_counters(), sweep_counters());
}
