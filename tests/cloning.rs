//! Snapshot-fork cloning: a stamped clone must be observably equivalent
//! to a freshly built guest — same privileges, same audit-visible region
//! state, byte-identical XenStore view modulo domain ID — and the CoW
//! machinery must compose with PR-5 microreboot snapshots.

use xoar_analysis::reach::Reachability;
use xoar_analysis::rules;
use xoar_analysis::snapshot::ModelSnapshot;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::toolstack::Toolstack;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, DomainState, Hypercall};

/// A Xoar platform with one freshly built guest, one sealed template,
/// and one clone stamped from it.
fn cloned_world() -> (Platform, Toolstack, DomId, DomId, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let mut ts = Toolstack::new(&p, 0);
    let built = ts
        .create(&mut p, GuestConfig::evaluation_guest("fn-a"))
        .unwrap();
    let tpl = ts
        .create(&mut p, GuestConfig::evaluation_guest("golden"))
        .unwrap();
    ts.capture_template(&mut p, tpl).unwrap();
    let clone = ts.clone(&mut p, tpl, "fn-b").unwrap();
    (p, ts, built, tpl, clone)
}

/// Renders everything an auditor can see of one guest, with the domain
/// ID and the guest name normalised out so two guests can be compared.
fn observe_guest(p: &mut Platform, guest: DomId, name: &str) -> String {
    let ts = p.services.toolstacks[0];
    let d = p.hv.domain(guest).unwrap();
    let mut out = String::new();
    out.push_str(&format!(
        "state={:?} role={:?} memory_mib={} vcpus={}\n",
        d.state,
        d.role,
        d.memory_mib,
        d.vcpus.len()
    ));
    out.push_str(&format!(
        "privileges={}\n",
        xoar_codec::to_string(&d.privileges)
    ));
    out.push_str(&format!(
        "parent_toolstack={:?} constraint={:?}\n",
        d.parent_toolstack, d.constraint_group
    ));
    let delegated: Vec<u32> = d.delegated_shards.iter().map(|d| d.0).collect();
    out.push_str(&format!("delegated={delegated:?}\n"));
    // Audit-visible region state: every live grant as (grantee, pfn, rw),
    // sorted — grant refs are allocation order, identical by construction.
    let mut grants: Vec<(u32, u64, bool)> =
        p.hv.grant_table(guest)
            .unwrap()
            .entries_sorted()
            .into_iter()
            .map(|(_, e)| {
                (
                    e.grantee.0,
                    e.pfn.0,
                    e.access == xoar_hypervisor::grant::GrantAccess::ReadWrite,
                )
            })
            .collect();
    grants.sort();
    out.push_str(&format!("grants={grants:?}\n"));
    let mut peers: Vec<u32> = p.hv.peers_of(guest).iter().map(|d| d.0).collect();
    peers.sort();
    out.push_str(&format!("event_peers={peers:?}\n"));
    // XenStore view: depth-first (path, value) walk of the guest's home.
    let root = format!("/local/domain/{}", guest.0);
    let mut stack = vec![String::new()];
    while let Some(prefix) = stack.pop() {
        let node = if prefix.is_empty() {
            root.clone()
        } else {
            format!("{root}/{prefix}")
        };
        if !prefix.is_empty() {
            if let Ok(v) = p.xs.read_str(ts, &node) {
                out.push_str(&format!("xs {prefix} = {v}\n"));
            }
        }
        if let Ok(mut children) = p.xs.directory(ts, &node) {
            children.sort();
            for child in children.into_iter().rev() {
                stack.push(if prefix.is_empty() {
                    child
                } else {
                    format!("{prefix}/{child}")
                });
            }
        }
    }
    // Normalise the two identities a comparison must ignore.
    out.replace(&format!("/{}/", guest.0), "/DOMID/")
        .replace(&guest.0.to_string(), "DOMID")
        .replace(name, "NAME")
}

#[test]
fn cloned_guest_is_observably_equivalent_to_built_guest() {
    let (mut p, _ts, built, _tpl, clone) = cloned_world();
    let a = observe_guest(&mut p, built, "fn-a");
    let b = observe_guest(&mut p, clone, "fn-b");
    assert_eq!(
        a, b,
        "clone must be indistinguishable from a built guest modulo DomId"
    );
}

#[test]
fn clone_shares_template_frames_until_first_write() {
    let (p, _ts, _built, tpl, clone) = cloned_world();
    // Unbroken pages are literally the template's frames.
    let t = p.hv.mem.read(tpl, Pfn(0)).unwrap();
    let c = p.hv.mem.read(clone, Pfn(0)).unwrap();
    assert!(
        xoar_hypervisor::memory::PageRef::ptr_eq(&t, &c),
        "clone reads must hit the template frame"
    );
    // Only the four I/O ring pages (xenstore, console, vif, vbd) were
    // privatized at stamp time; the rest of the address space is shared.
    assert_eq!(p.hv.mem.clone_broken_pages(clone), 4);
}

#[test]
fn clone_write_then_rollback_restores_template_state() {
    let (mut p, _ts, _built, tpl, clone) = cloned_world();
    let golden = p.hv.mem.read(tpl, Pfn(3)).unwrap().to_vec();
    // PR-5 snapshot taken by the clone itself, then a divergent write.
    p.hv.hypercall(clone, Hypercall::VmSnapshot).unwrap();
    p.hv.mem.write(clone, Pfn(3), b"diverged-state").unwrap();
    assert_eq!(
        &p.hv.mem.read(clone, Pfn(3)).unwrap().as_slice()[..14],
        b"diverged-state"
    );
    assert_eq!(
        p.hv.mem.read(tpl, Pfn(3)).unwrap().to_vec(),
        golden,
        "template is sealed; clone writes never reach it"
    );
    // Microreboots go through the Builder (shard whitelist doctrine); the
    // rollback restores the forked-off bytes.
    let builder = p.services.builder;
    p.hv.hypercall(builder, Hypercall::VmRollback { target: clone })
        .unwrap();
    assert_eq!(p.hv.mem.read(clone, Pfn(3)).unwrap().to_vec(), golden);
}

#[test]
fn clone_lifecycle_keeps_all_analyzer_rules_green() {
    let (mut p, mut ts, _built, tpl, _clone) = cloned_world();
    // A busier world: more clones, one diverged by a write.
    let extra: Vec<DomId> = (0..8)
        .map(|i| ts.clone(&mut p, tpl, &format!("fn-x{i}")).unwrap())
        .collect();
    p.hv.mem.write(extra[0], Pfn(0), b"warm").unwrap();
    let snap = ModelSnapshot::capture(&mut p);
    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    assert_eq!(
        violations,
        vec![],
        "clones must introduce no undeclared sharing or cross-region edges"
    );
    // The template/clone aliasing is visible — and visibly declared: every
    // shared frame is hypervisor-managed CoW with a frozen (sealed) mapper.
    assert!(
        !snap.shared_frames.is_empty(),
        "template sharing must be captured"
    );
    for f in &snap.shared_frames {
        assert!(f.cow, "mfn {} captured as raw sharing", f.mfn);
    }
    assert!(
        snap.shared_frames
            .iter()
            .any(|f| f.frozen && f.mappers.contains(&tpl)),
        "template-backed shares carry the frozen provenance"
    );
}

#[test]
fn thousand_clone_fleet_is_dense_and_analyzer_green() {
    // The ~1k checkpoint of the Table-6.1-style density sweep, with the
    // full privilege-flow audit run over the resulting model. (The 10k
    // and 100k rows run in release mode via scripts/ci.sh; the analyzer's
    // reachability matrix is O(n²), so the rule check rides the 1k row.)
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut gc = GuestConfig::evaluation_guest("lambda-golden");
    gc.memory_mib = 64;
    gc.vcpus = 1;
    gc.disk_bytes = 1 << 30;
    let tpl = p.create_guest(ts, gc).unwrap();
    let free_before = p.hv.mem.free_frames();
    for i in 0..1_000 {
        p.hv.hypercall(
            ts,
            Hypercall::DomctlCloneDomain {
                template: tpl,
                name: format!("fx-{i}"),
            },
        )
        .unwrap();
    }
    let actual = free_before - p.hv.mem.free_frames();
    let built_equivalent = 1_000 * 64;
    assert!(
        built_equivalent >= actual * 10,
        "density {}x below the 10x floor",
        built_equivalent / actual.max(1)
    );
    let snap = ModelSnapshot::capture(&mut p);
    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    assert_eq!(violations, vec![], "1k-clone fleet must stay audit-clean");
}

#[test]
fn rollback_does_not_resurrect_grants_revoked_after_snapshot() {
    // Regression guard for the isolation-spec checker's sharpest case:
    // a clone takes a microreboot snapshot, then grants a page and
    // *revokes* it after the snapshot. Rolling back must restore page
    // contents only — if the rollback path ever restored region state
    // wholesale, the revoked capability would come back from the dead
    // and a stale backend mapping would be re-armed.
    let (mut p, _ts, _built, _tpl, clone) = cloned_world();
    let backend = p.services.netbacks[0];
    let h = xoar_analysis::spec::SpecHandle::attach(&mut p.hv);
    p.hv.hypercall(clone, Hypercall::VmSnapshot).unwrap();
    let gref =
        p.hv.hypercall(
            clone,
            Hypercall::GnttabGrantAccess {
                grantee: backend,
                pfn: Pfn(5),
                access: xoar_hypervisor::grant::GrantAccess::ReadWrite,
            },
        )
        .unwrap()
        .grant_ref()
        .unwrap();
    p.hv.mem.write(clone, Pfn(5), b"post-snapshot").unwrap();
    p.hv.hypercall(clone, Hypercall::GnttabEndAccess { gref })
        .unwrap();
    let builder = p.services.builder;
    p.hv.hypercall(builder, Hypercall::VmRollback { target: clone })
        .unwrap();
    // The real table must not hold the revoked capability...
    let resurrected =
        p.hv.grant_table(clone)
            .unwrap()
            .entries_sorted()
            .into_iter()
            .any(|(_, e)| e.grantee == backend && e.pfn == Pfn(5));
    assert!(!resurrected, "rollback resurrected a revoked grant");
    // ...and the lockstep checker agrees: the model still remembers the
    // revocation, and no divergence (in particular no
    // `revoked-grant-resurrected`) fired across the whole sequence.
    assert!(
        h.state()
            .revoked
            .iter()
            .any(|&(granter, f)| granter == clone && f.grantee == backend && f.pfn == 5),
        "model lost the revocation fact"
    );
    assert!(
        h.divergence().is_none(),
        "spec diverged:\n{}",
        h.report().unwrap_or_default()
    );
}

#[test]
fn destroyed_clone_frees_its_private_frames_only() {
    let (mut p, mut ts, _built, tpl, clone) = cloned_world();
    p.hv.mem.write(clone, Pfn(0), b"private").unwrap();
    let free_before = p.hv.mem.free_frames();
    ts.destroy(&mut p, clone).unwrap();
    assert!(
        p.hv.mem.free_frames() > free_before,
        "broken frames return to the allocator"
    );
    // The template is intact and can still be cloned.
    assert_eq!(p.hv.domain(tpl).unwrap().state, DomainState::Paused);
    ts.clone(&mut p, tpl, "fn-again").unwrap();
}
