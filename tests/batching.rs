//! Differential property tests for the batched data path: a random
//! interleaving of batched operations must be observably equivalent to
//! issuing the same operations singly — grants (GNTTABOP-style arrays
//! under one Multicall), events (coalesced sends against poll loops),
//! and rings (batch push/pop against slot-at-a-time).

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_devices::ring::{Ring, RingError};
use xoar_hypervisor::grant::{GrantAccess, GrantOpStatus, GrantRef};
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, HvError, Hypercall, HypercallRet};
use xoar_sim::prop::Runner;

/// A platform with one guest and the first netback, plus `n` grants
/// from the guest to the netback (pfns 20, 21, …).
fn granted_platform(n: u32) -> (Platform, DomId, DomId, Vec<GrantRef>) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("diff"))
        .expect("guest");
    let nb = p.services.netbacks[0];
    let refs: Vec<GrantRef> = (0..n)
        .map(|i| {
            p.hv.hypercall(
                g,
                Hypercall::GnttabGrantAccess {
                    grantee: nb,
                    pfn: Pfn(20 + u64::from(i)),
                    access: GrantAccess::ReadWrite,
                },
            )
            .expect("grant")
            .grant_ref()
            .unwrap()
        })
        .collect();
    (p, g, nb, refs)
}

/// Batched grant map/unmap arrays (inside a Multicall) against the same
/// operations issued one hypercall at a time: every per-entry status and
/// the final table state must match.
#[test]
fn grant_batches_equal_singles() {
    Runner::cases(16).run("grant batches equal singles", |gen| {
        let (mut pa, g, nb, refs) = granted_platform(8);
        let (mut pb, _, _, _) = granted_platform(8);
        let chunks = gen.vec(1..12, |gen| {
            let map = gen.bool();
            // Indexes past the granted range produce BadRef entries —
            // those must not abort the rest of the batch.
            let idx = gen.vec(1..6, |gen| gen.usize(0..12));
            (map, idx)
        });
        for (map, idx) in chunks {
            let batch_refs: Vec<GrantRef> = idx
                .iter()
                .map(|&i| refs.get(i).copied().unwrap_or(GrantRef(999)))
                .collect();
            let call = if map {
                Hypercall::GnttabMapBatch {
                    granter: g,
                    refs: batch_refs.clone().into(),
                }
            } else {
                Hypercall::GnttabUnmapBatch {
                    granter: g,
                    refs: batch_refs.clone().into(),
                }
            };
            // A: the whole chunk as one batch op carried in a Multicall.
            let outer = pa
                .hv
                .hypercall(nb, Hypercall::Multicall { calls: vec![call] })
                .expect("multicall itself is unprivileged")
                .multi()
                .unwrap();
            assert_eq!(outer.len(), 1);
            let batched = outer[0]
                .clone()
                .expect("batch op dispatches")
                .grant_batch()
                .unwrap();
            // B: the same entries, one hypercall each. Singles return rich
            // HvResults; batches return compact per-entry statuses — fold
            // the rich shape down and they must agree entry for entry.
            assert_eq!(batched.len(), batch_refs.len());
            for (i, (&gref, status)) in batch_refs.iter().zip(&batched).enumerate() {
                let call = if map {
                    Hypercall::GnttabMapGrantRef { granter: g, gref }
                } else {
                    Hypercall::GnttabUnmapGrantRef { granter: g, gref }
                };
                match pb.hv.hypercall(nb, call) {
                    Ok(HypercallRet::Mfn(mfn)) => {
                        assert_eq!(*status, GrantOpStatus::Done(mfn), "entry {i} diverged")
                    }
                    Ok(_) => assert!(status.is_ok(), "entry {i}: single ok, batch failed"),
                    Err(HvError::Grant(e)) => {
                        assert_eq!(*status, GrantOpStatus::Grant(e), "entry {i} diverged")
                    }
                    Err(HvError::Memory(e)) => {
                        assert_eq!(*status, GrantOpStatus::Memory(e), "entry {i} diverged")
                    }
                    Err(other) => panic!("unexpected single-op error: {other}"),
                }
            }
        }
        // Final state: ending each grant must succeed/fail identically
        // (an entry still mapped refuses EndAccess in both worlds).
        for &gref in &refs {
            let a = pa.hv.hypercall(g, Hypercall::GnttabEndAccess { gref });
            let b = pb.hv.hypercall(g, Hypercall::GnttabEndAccess { gref });
            assert_eq!(a, b, "end-access diverged for {gref:?}");
        }
    });
}

/// Random bursts of sends on random ports: draining the pending bitmap
/// must yield exactly the set of ports a poll loop yields, and the
/// delivered count (0→1 transitions) must match.
#[test]
fn event_drain_equals_poll_loop() {
    Runner::cases(16).run("event drain equals poll loop", |gen| {
        let (mut pa, g, nb, _) = granted_platform(1);
        let (mut pb, _, _, _) = granted_platform(1);
        let mut ports = Vec::new();
        for _ in 0..4 {
            let mk = |p: &mut Platform| {
                let port =
                    p.hv.hypercall(g, Hypercall::EvtchnAllocUnbound { remote: nb })
                        .expect("alloc")
                        .port()
                        .unwrap();
                p.hv.hypercall(
                    nb,
                    Hypercall::EvtchnBindInterdomain {
                        remote: g,
                        remote_port: port,
                    },
                )
                .expect("bind");
                port
            };
            let pa_port = mk(&mut pa);
            let pb_port = mk(&mut pb);
            assert_eq!(pa_port, pb_port, "port allocation must be identical");
            ports.push(pa_port);
        }
        let sends = gen.vec(1..24, |gen| gen.usize(0..4));
        for &i in &sends {
            let port = ports[i];
            pa.hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
            pb.hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
        }
        assert_eq!(pa.hv.delivered_count(), pb.hv.delivered_count());
        let drained: Vec<u32> = pa.hv.drain_pending(nb).iter().map(|e| e.port).collect();
        let mut polled = Vec::new();
        while let Some(ev) = pb.hv.poll_event(nb) {
            polled.push(ev.port);
        }
        assert_eq!(drained, polled, "drain and poll loop saw different ports");
        assert_eq!(pa.hv.pending_count(nb), 0);
    });
}

/// Ring batch push/pop against slot-at-a-time operation: when a batch
/// fits it must queue exactly what singles would; when it does not fit
/// it must refuse without queueing anything.
#[test]
fn ring_batches_equal_singles() {
    Runner::cases(24).run("ring batches equal singles", |gen| {
        let mut ra: Ring<u64, u64> = Ring::new(16);
        let mut rb: Ring<u64, u64> = Ring::new(16);
        let mut next = 0u64;
        let steps = gen.vec(1..20, |gen| (gen.bool(), gen.usize(1..20)));
        let mut scratch = Vec::new();
        for (push, n) in steps {
            if push {
                let items: Vec<u64> = (0..n as u64).map(|i| next + i).collect();
                let fits = items.len() <= ra.free_slots();
                let got = ra.push_requests(items.clone());
                if fits {
                    assert_eq!(got, Ok(items.len()));
                    for &v in &items {
                        rb.push_request(v).expect("single push fits too");
                    }
                    next += items.len() as u64;
                } else {
                    assert_eq!(got, Err(RingError::Full), "overfull batch must refuse");
                    // All-or-nothing: B queues nothing either.
                }
            } else {
                scratch.clear();
                ra.pop_requests_into(&mut scratch);
                let mut singles = Vec::new();
                while let Some(v) = rb.pop_request() {
                    singles.push(v);
                }
                assert_eq!(scratch, singles, "batch pop diverged from singles");
            }
        }
        assert_eq!(ra.pending_requests(), rb.pending_requests());
    });
}
