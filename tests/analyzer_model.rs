//! Pass A end-to-end: the static privilege-flow analyzer over a live
//! Xoar platform (the same two-guest scenario `security_model.rs` uses).
//!
//! The analyzer must (a) find nothing on the known-good platform, (b)
//! produce byte-identical reports across fresh boots, and (c) fire when
//! over-privilege or undeclared sharing is injected into the snapshot.

use xoar_analysis::reach::Reachability;
use xoar_analysis::rules;
use xoar_analysis::snapshot::{GrantEdge, ModelSnapshot};
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::DomId;

fn xoar_with_two_guests() -> (Platform, DomId, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let a = p
        .create_guest(ts, GuestConfig::evaluation_guest("a"))
        .unwrap();
    let b = p
        .create_guest(ts, GuestConfig::evaluation_guest("b"))
        .unwrap();
    (p, a, b)
}

#[test]
fn standard_boot_platform_passes_all_rules() {
    let (mut p, _a, _b) = xoar_with_two_guests();
    let snap = ModelSnapshot::capture(&mut p);
    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    assert_eq!(violations, vec![], "known-good platform must be clean");
}

#[test]
fn report_is_deterministic_across_boots() {
    let full_report = || {
        let (mut p, _a, _b) = xoar_with_two_guests();
        let snap = ModelSnapshot::capture(&mut p);
        let reach = Reachability::compute(&snap);
        let violations = rules::check(&snap, &reach);
        let mut out = snap.render();
        out.push_str(&reach.render(&snap));
        for v in &violations {
            out.push_str(&v.render());
            out.push('\n');
        }
        out
    };
    assert_eq!(full_report(), full_report());
}

#[test]
fn guests_never_reach_each_other_in_the_matrix() {
    let (mut p, a, b) = xoar_with_two_guests();
    let snap = ModelSnapshot::capture(&mut p);
    let reach = Reachability::compute(&snap);
    assert!(!reach.reaches_memory(a, b));
    assert!(!reach.reaches_memory(b, a));
    // Nor is there any direct signalling channel between them.
    assert!(!reach.signals.contains(&(a.min(b), a.max(b))));
}

#[test]
fn injected_overprivilege_is_caught() {
    let (mut p, _a, _b) = xoar_with_two_guests();
    let mut snap = ModelSnapshot::capture(&mut p);
    let nb = snap
        .live_domains()
        .find(|d| d.kind == "netback")
        .map(|d| d.id)
        .expect("netback present");
    snap.domains
        .get_mut(&nb)
        .unwrap()
        .privileges
        .map_foreign_any = true;
    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    let fired: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    assert!(fired.contains(&"only-builder-blanket"), "{violations:?}");
    assert!(fired.contains(&"backend-grant-only"), "{violations:?}");
}

#[test]
fn injected_undeclared_sharing_is_caught() {
    let (mut p, a, _b) = xoar_with_two_guests();
    let mut snap = ModelSnapshot::capture(&mut p);
    let xs_state = snap
        .live_domains()
        .find(|d| d.kind == "xenstore-state")
        .map(|d| d.id)
        .expect("xenstore-state present");
    snap.grants.push(GrantEdge {
        granter: a,
        grantee: xs_state,
        gref: 9999,
        pfn: 7,
        writable: false,
    });
    snap.grants.sort();
    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    assert!(
        violations.iter().any(|v| v.rule == "undeclared-sharing"),
        "{violations:?}"
    );
}
