//! End-to-end integration: boot, guest lifecycle, I/O, and teardown on
//! both platform configurations.

use xoar_core::platform::{GuestConfig, Platform, PlatformMode, XoarConfig};
use xoar_devices::blk::BlkOp;
use xoar_devices::net::NetPacket;
use xoar_hypervisor::{DomainState, Hypercall};

fn both_platforms() -> Vec<Platform> {
    vec![Platform::stock_xen(), Platform::xoar(XoarConfig::default())]
}

#[test]
fn full_guest_lifecycle_on_both_platforms() {
    for mut p in both_platforms() {
        let ts = p.services.toolstacks[0];
        // Create three guests.
        let guests: Vec<_> = (0..3)
            .map(|i| {
                p.create_guest(ts, GuestConfig::evaluation_guest(&format!("guest-{i}")))
                    .expect("create")
            })
            .collect();
        assert_eq!(p.guests().len(), 3);
        // Every guest is running with both devices connected.
        for &g in &guests {
            assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Running);
            let h = p.guest(g).unwrap();
            assert!(h.netfront.is_some() && h.blkfront.is_some());
        }
        // Destroy them all; resources drain.
        for &g in &guests {
            p.destroy_guest(ts, g).expect("destroy");
        }
        assert!(p.guests().is_empty());
        for &g in &guests {
            assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Dead);
        }
    }
}

#[test]
fn disk_io_round_trip_with_data_integrity_checks() {
    for mut p in both_platforms() {
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("db"))
            .unwrap();
        // Submit a burst larger than one ring's worth.
        let mut submitted = 0u64;
        let mut completed = 0u64;
        for i in 0..100u64 {
            loop {
                match p.blk_submit(g, BlkOp::Write, i * 8, 8) {
                    Ok(_) => break,
                    Err(_) => {
                        p.process_blkbacks();
                        while p.blk_poll(g).is_some() {
                            completed += 1;
                        }
                    }
                }
            }
            submitted += 1;
        }
        p.process_blkbacks();
        while p.blk_poll(g).is_some() {
            completed += 1;
        }
        assert_eq!(submitted, 100);
        assert_eq!(completed, 100, "every write completed ({})", p_name(&p));
    }
}

fn p_name(p: &Platform) -> &'static str {
    match p.mode {
        PlatformMode::StockXen => "stock xen",
        PlatformMode::Xoar => "xoar",
    }
}

#[test]
fn network_echo_through_wire() {
    for mut p in both_platforms() {
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("web"))
            .unwrap();
        // Guest transmits; remote echoes back; guest receives.
        p.net_transmit(g, 7, 9000).unwrap();
        p.process_netbacks();
        let sent = p.wire.take_outbound();
        assert_eq!(sent.len(), 1);
        p.wire
            .send_to_guest(g, NetPacket::meta(7, 99, sent[0].bytes));
        p.process_netbacks();
        // First response is the tx completion, then the echo.
        let completions: Vec<_> = std::iter::from_fn(|| p.net_receive(g)).collect();
        assert!(completions
            .iter()
            .any(|pkt| pkt.seq == 99 && pkt.bytes == 9000));
    }
}

#[test]
fn xenstore_device_tree_is_fully_populated() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("inspect"))
        .unwrap();
    let nb = p.guest(g).unwrap().netback.unwrap();
    let fp = format!("/local/domain/{}/device/vif/0", g.0);
    let bp = format!("/local/domain/{}/backend/vif/{}/0", nb.0, g.0);
    // Both ends Connected, rendezvous details published.
    assert_eq!(p.xs.read_str(ts, &format!("{fp}/state")).unwrap(), "4");
    assert_eq!(p.xs.read_str(ts, &format!("{bp}/state")).unwrap(), "4");
    let ring_ref: u32 =
        p.xs.read_str(ts, &format!("{fp}/ring-ref"))
            .unwrap()
            .parse()
            .unwrap();
    let evtchn: u32 =
        p.xs.read_str(ts, &format!("{fp}/event-channel"))
            .unwrap()
            .parse()
            .unwrap();
    // The published grant exists in the guest's table, granted to NetBack.
    let table = p.hv.grant_table(g).unwrap();
    assert!(table
        .granted_to(nb)
        .iter()
        .any(|(gref, _)| gref.0 == ring_ref));
    // The published event channel is connected.
    assert!(p.hv.event_connected(g, evtchn));
}

#[test]
fn xenstore_logic_restart_under_live_platform() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("persist"))
        .unwrap();
    let key = format!("/local/domain/{}/data/app", g.0);
    p.xs.write_str(g, &key, "checkpoint-1").unwrap();
    // Microreboot the Logic half mid-flight.
    p.xs.restart_logic();
    assert_eq!(p.xs.read_str(g, &key).unwrap(), "checkpoint-1");
    // Device tree survived too: a second guest can still be created.
    let g2 = p
        .create_guest(ts, GuestConfig::evaluation_guest("after"))
        .unwrap();
    assert!(p.guest(g2).is_some());
}

#[test]
fn guest_console_reaches_console_manager() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("noisy"))
        .unwrap();
    p.hv.hypercall(
        g,
        Hypercall::ConsoleWrite {
            data: b"[ OK ] Reached target".to_vec(),
        },
    )
    .unwrap();
    p.console_mgr.process(&mut p.hv);
    assert!(p.console_mgr.log_of(g).starts_with(b"[ OK ]"));
}

#[test]
fn scheduler_accounts_shards_and_guests() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("busy"))
        .unwrap();
    p.hv.sched.set_runnable(g, true);
    let granted = p.hv.sched.account(10_000_000);
    assert!(granted.contains_key(&g), "guest received CPU time");
    let total: u64 = granted.values().sum();
    assert!(total <= 10_000_000 * p.hv.host_config().cpus as u64);
}

#[test]
fn memory_is_reclaimed_after_destroy() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let free_before = p.hv.mem.free_frames();
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("temp"))
        .unwrap();
    assert!(p.hv.mem.free_frames() < free_before);
    p.destroy_guest(ts, g).unwrap();
    // Ring pages stay granted until unmapped; allow a small leak of
    // granted frames, but the bulk must return.
    let leaked = free_before - p.hv.mem.free_frames();
    assert!(
        leaked <= 4,
        "at most the granted ring pages linger: {leaked}"
    );
}

#[test]
fn platform_survives_many_create_destroy_cycles() {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    for i in 0..25 {
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest(&format!("cycle-{i}")))
            .unwrap_or_else(|e| panic!("cycle {i}: {e}"));
        p.blk_submit(g, BlkOp::Write, 0, 8).unwrap();
        p.process_blkbacks();
        p.destroy_guest(ts, g).unwrap();
    }
    assert!(p.guests().is_empty());
    assert_eq!(p.audit.records().len(), 25 * 6, "6 audit records per cycle");
}

#[test]
fn hvm_guest_device_emulation_io() {
    // The emulated path end to end: trapped port I/O dispatches to the
    // stub's device model, and DMA lands in the guest through the real
    // privilege boundary.
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut cfg = GuestConfig::evaluation_guest("hvm");
    cfg.hvm = true;
    let g = p.create_guest(ts, cfg).unwrap();
    let model = p.qemus.get_mut(&g).expect("stub model exists");
    // BIOS banner over the emulated serial port.
    for b in b"SeaBIOS (version 1.6.3)" {
        model.io_write(0x3f8, *b as u32).unwrap();
    }
    assert_eq!(model.serial_output(), b"SeaBIOS (version 1.6.3)");
    // IDE sector latch + DMA of the boot sector.
    model.io_write(0x1f3, 0).unwrap();
    model
        .dma_to_guest(&mut p.hv, xoar_hypervisor::memory::Pfn(8), b"MBR")
        .unwrap();
    assert_eq!(
        p.hv.mem.read(g, xoar_hypervisor::memory::Pfn(8)).unwrap(),
        b"MBR"
    );
    // The model's cost accounting moved.
    let stats = p.qemus.get(&g).unwrap().stats();
    assert!(stats.io_exits >= 24);
    assert_eq!(stats.dma_ops, 1);
}

#[test]
fn xenstore_ring_transport_on_platform() {
    // Guests can reach the store over the boot-time ring transport too.
    use xoar_xenstore::{Request, Response, XsRingTransport};
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("ringer"))
        .unwrap();
    let mut transport = XsRingTransport::new();
    transport.connect(g);
    transport
        .submit(
            g,
            Request::Write {
                txn: None,
                path: format!("/local/domain/{}/data/boot", g.0),
                value: b"ok".to_vec(),
            },
        )
        .unwrap();
    transport.service(&mut p.xs);
    assert!(matches!(transport.poll(g).unwrap().1, Response::Ok));
    assert_eq!(
        p.xs.read_str(g, &format!("/local/domain/{}/data/boot", g.0))
            .unwrap(),
        "ok"
    );
}
