//! Differential properties for the sharded hypervisor core: the same
//! guest workload must produce identical observable state no matter how
//! many runqueues the vcpus are spread over, and the work-stealing
//! scheduler must never starve a vcpu while another runqueue has
//! surplus work.

use xoar_analysis::snapshot::ModelSnapshot;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::DomId;
use xoar_sim::prop::Runner;
use xoar_sim::workloads::smp;

fn smp_platform(vcpus: u32) -> (Platform, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut cfg = GuestConfig::evaluation_guest("smp-guest");
    cfg.vcpus = vcpus;
    let g = p.create_guest(ts, cfg).expect("guest boots");
    (p, g)
}

/// Everything an outside observer can see of a finished run, rendered
/// to bytes: the audit log's hash-chained JSON lines, the analyzer's
/// model snapshot, the event-delivery counters, and each vcpu's
/// private-page stamp.
fn observe(p: &mut Platform, guest: DomId, vcpus: u32) -> String {
    assert_eq!(
        p.audit.verify_chain(),
        Ok(()),
        "audit hash chain must stay intact"
    );
    let mut out = String::new();
    out.push_str(&p.audit.to_json_lines());
    out.push_str(&format!("{:?}\n", ModelSnapshot::capture(p)));
    out.push_str(&format!("delivered={}\n", p.hv.delivered_count()));
    out.push_str(&format!(
        "xs_pending={}\n",
        p.hv.pending_count(p.services.xenstore)
    ));
    for v in 0..vcpus {
        let page = p.hv.mem.read(guest, Pfn(u64::from(v))).expect("stamped");
        out.push_str(&format!("vcpu{v}={:?}\n", &page.as_slice()[..2]));
    }
    out
}

/// The tentpole differential: byte-identical audit log, model snapshot,
/// and guest-visible state at 1, 2, and 4 runqueues for the same
/// workload parameters.
#[test]
fn sharded_run_is_runqueue_invariant() {
    Runner::cases(8).run("sharded run is runqueue invariant", |gen| {
        let vcpus = gen.u32(2..5);
        let rounds = 8 + gen.u64(0..32);
        let mut worlds = Vec::new();
        for runqueues in [1usize, 2, 4] {
            let (mut p, g) = smp_platform(vcpus);
            let res = smp::run(&mut p, g, runqueues, rounds);
            assert_eq!(res.ticks, rounds);
            worlds.push((runqueues, observe(&mut p, g, vcpus)));
        }
        let (_, baseline) = &worlds[0];
        for (runqueues, obs) in &worlds[1..] {
            assert_eq!(
                obs, baseline,
                "observable state diverged between 1 and {runqueues} runqueues"
            );
        }
    });
}

/// Work-stealing liveness: with every vcpu piled onto runqueue 0, idle
/// pcpus must steal, and no vcpu may starve — each one completes at
/// least half its fair share of requests.
#[test]
fn work_stealing_prevents_starvation() {
    Runner::cases(16).run("work stealing prevents starvation", |gen| {
        let vcpus = gen.u32(2..6);
        let runqueues = gen.usize(2..5);
        let rounds = 32;
        let (mut p, g) = smp_platform(vcpus);
        let res = smp::run(&mut p, g, runqueues, rounds);
        assert!(
            res.steals > 0,
            "{vcpus} vcpus start on runqueue 0 of {runqueues}; stealing must occur"
        );
        let fair = res.ops / u64::from(vcpus);
        for (v, &n) in res.ops_by_vcpu.iter().enumerate() {
            assert!(
                n >= fair / 2,
                "vcpu {v} completed {n} of {} ops (fair share {fair}) \
                 across {runqueues} runqueues",
                res.ops
            );
        }
    });
}

/// The scaling acceptance bar from the ablation: 1 → 4 runqueues must
/// buy at least 1.5x throughput for a 4-vcpu guest (it is ~4x here).
#[test]
fn four_runqueues_scale_at_least_1_5x() {
    let (mut p1, g1) = smp_platform(4);
    let (mut p4, g4) = smp_platform(4);
    let one = smp::run(&mut p1, g1, 1, 64);
    let four = smp::run(&mut p4, g4, 4, 64);
    assert!(
        four.ops_per_tick() >= one.ops_per_tick() * 1.5,
        "scaling too weak: 1rq={} ops/tick vs 4rq={} ops/tick",
        one.ops_per_tick(),
        four.ops_per_tick()
    );
}
