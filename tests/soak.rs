//! A week in the life of a Xoar host: long-horizon soak exercising guest
//! churn, timer-driven microreboots, per-request XenStore restarts, page
//! deduplication sweeps, and audit forensics — everything running
//! together for 7 simulated days without leaks or invariant violations.

use xoar_core::deployment::DeploymentScenario;
use xoar_core::platform::GuestConfig;
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::DomId;
use xoar_sim::SimRng;

const SEC: u64 = 1_000_000_000;
const HOUR: u64 = 3_600 * SEC;

#[test]
fn one_week_public_cloud_soak() {
    let mut d = DeploymentScenario::PublicCloud.deploy().unwrap();
    let ts = d.platform.services.toolstacks[0];
    let mut rng = SimRng::new(0x50a6);
    let mut live: Vec<DomId> = Vec::new();
    let mut created = 0u64;
    let mut destroyed = 0u64;
    let mut restarts = 0u64;

    // One step per simulated hour, 7 days.
    for hour in 0..(7 * 24) {
        d.platform.advance_time(HOUR);

        // Tenant churn: arrivals and departures.
        if live.len() < 12 && rng.chance(0.6) {
            created += 1;
            let mut cfg = GuestConfig::evaluation_guest(&format!("tenant-{created}"));
            cfg.memory_mib = 128;
            cfg.disk_bytes = 2 << 30;
            if let Ok(g) = d.platform.create_guest(ts, cfg) {
                live.push(g);
            }
        }
        if live.len() > 2 && rng.chance(0.3) {
            let idx = rng.below(live.len() as u64) as usize;
            let g = live.swap_remove(idx);
            d.platform.destroy_guest(ts, g).unwrap();
            destroyed += 1;
        }

        // Tenant I/O.
        for &g in &live {
            let _ = d.platform.blk_submit(g, BlkOp::Write, (hour % 64) * 8, 8);
            let _ = d.platform.net_transmit(g, 1, 1500);
        }
        d.platform.process_blkbacks();
        d.platform.process_netbacks();
        for &g in &live {
            while d.platform.blk_poll(g).is_some() {}
            while d.platform.net_receive(g).is_some() {}
        }

        // Scheduled microreboots (the deployment's 10 s policy fires many
        // times per hour; execute one batch per step to model the sweep).
        for shard in d.engine.due(d.platform.now_ns()) {
            d.engine.restart(&mut d.platform, shard).unwrap();
            restarts += 1;
        }

        // Nightly dedup sweep.
        if hour % 24 == 3 {
            d.platform.dedup_memory();
        }

        // Continuous invariants.
        assert!(d.platform.hv.mem.free_frames() <= d.platform.hv.mem.total_frames());
        assert_eq!(d.platform.guests().len(), live.len());
    }

    // After a week: the platform is healthy and fully accountable.
    assert!(created > 50, "churn happened: {created} created");
    assert!(destroyed > 20, "{destroyed} destroyed");
    assert!(restarts >= 7 * 24, "restart policy kept firing: {restarts}");
    assert_eq!(
        d.platform.audit.verify_chain(),
        Ok(()),
        "audit chain intact"
    );
    // The audit log can still answer forensic queries over the whole week.
    let nb = d.platform.services.netbacks[0];
    let exposed = d
        .platform
        .audit
        .guests_exposed_to(nb, 0, d.platform.now_ns());
    assert!(
        exposed.len() as u64 >= created,
        "every tenant ever linked is found"
    );
    // Port tables did not leak across churn (the backend reclaims its
    // half-open ends).
    let peers = d.platform.hv.peers_of(nb);
    assert!(
        peers.len() <= live.len() + 1,
        "netback peers {} vs live {}",
        peers.len(),
        live.len()
    );
    // One final end-to-end I/O proves the host is still serving.
    if let Some(&g) = live.first() {
        d.platform.blk_submit(g, BlkOp::Read, 0, 8).unwrap();
        assert_eq!(d.platform.process_blkbacks().completed, 1);
    }
}

#[test]
fn xenstore_per_request_restart_soak() {
    // 5,000 requests, each against a freshly microrebooted Logic.
    let mut d = DeploymentScenario::PublicCloud.deploy().unwrap();
    let ts = d.platform.services.toolstacks[0];
    let g = d
        .platform
        .create_guest(ts, GuestConfig::evaluation_guest("chatty"))
        .unwrap();
    let base = d.platform.xs.logic_restarts();
    for i in 0..5_000u32 {
        let resp = d.platform.xs.handle(
            g,
            xoar_xenstore::Request::Write {
                txn: None,
                path: format!("/local/domain/{}/data/k{}", g.0, i % 50),
                value: vec![b'x'],
            },
        );
        assert!(matches!(resp, xoar_xenstore::Response::Ok), "request {i}");
    }
    assert_eq!(d.platform.xs.logic_restarts() - base, 5_000);
    // All 50 keys durable.
    for i in 0..50 {
        d.platform
            .xs
            .read_str(g, &format!("/local/domain/{}/data/k{i}", g.0))
            .unwrap();
    }
}
