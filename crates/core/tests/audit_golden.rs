//! Golden-file pin of the audit log's on-wire format.
//!
//! The audit log is an *off-host* sink: records written by one build must
//! verify under every later build, so the JSON-lines byte format and the
//! FNV-1a chain hashes are load-bearing. The constants below were
//! produced with `serde_json`-compatible encoding (compact output, struct
//! fields in declaration order, externally tagged enums) and an
//! independent FNV-1a implementation; if `xoar-codec` or `chain_hash`
//! ever drifts, these tests fail before any persisted log does.

use xoar_core::audit::{AuditEvent, AuditLog, AuditRecord};
use xoar_core::shard::ShardKind;
use xoar_hypervisor::DomId;

/// Exact bytes of `AuditLog::to_json_lines` for [`golden_log`].
const GOLDEN_LINES: [&str; 5] = [
    r#"{"seq":0,"at_ns":1000,"event":{"VmCreated":{"guest":5,"name":"web \"fe\"\n\t\\ x\u0001","toolstack":3}},"prev_hash":0,"hash":14923030035726655011}"#,
    r#"{"seq":1,"at_ns":2500,"event":{"ShardLinked":{"guest":5,"shard":7,"kind":"NetBack","release":"netback-1.0"}},"prev_hash":14923030035726655011,"hash":7902263110563374993}"#,
    r#"{"seq":2,"at_ns":3750,"event":{"ShardRestarted":{"shard":7,"pages_restored":42}},"prev_hash":7902263110563374993,"hash":14879105088588695091}"#,
    r#"{"seq":3,"at_ns":5000,"event":{"ShardUnlinked":{"guest":5,"shard":7}},"prev_hash":14879105088588695091,"hash":15598698748109748790}"#,
    r#"{"seq":4,"at_ns":9999,"event":{"VmDestroyed":{"guest":5}},"prev_hash":15598698748109748790,"hash":12953568282839094991}"#,
];

/// The same chain hashes, independently computed.
const GOLDEN_HASHES: [u64; 5] = [
    0xcf19_40c0_7bf8_de23,
    0x6daa_7a6e_5acd_a791,
    0xce7d_333e_c509_4633,
    0xd879_b5dd_af69_7a36,
    0xb3c4_51b8_e864_16cf,
];

/// A log exercising every encoding edge the wire format has: string
/// escapes (quote, backslash, `\n`, `\t`, a raw control byte), an enum
/// payload nested in a struct, and u64 hash values above `i64::MAX`.
fn golden_log() -> AuditLog {
    let mut log = AuditLog::new();
    log.append(
        1_000,
        AuditEvent::VmCreated {
            guest: DomId(5),
            name: "web \"fe\"\n\t\\ x\u{1}".to_string(),
            toolstack: DomId(3),
        },
    );
    log.append(
        2_500,
        AuditEvent::ShardLinked {
            guest: DomId(5),
            shard: DomId(7),
            kind: ShardKind::NetBack,
            release: "netback-1.0".to_string(),
        },
    );
    log.append(
        3_750,
        AuditEvent::ShardRestarted {
            shard: DomId(7),
            pages_restored: 42,
        },
    );
    log.append(
        5_000,
        AuditEvent::ShardUnlinked {
            guest: DomId(5),
            shard: DomId(7),
        },
    );
    log.append(9_999, AuditEvent::VmDestroyed { guest: DomId(5) });
    log
}

#[test]
fn json_lines_bytes_are_pinned() {
    let log = golden_log();
    assert_eq!(log.to_json_lines(), GOLDEN_LINES.join("\n"));
}

#[test]
fn chain_hashes_are_pinned() {
    let log = golden_log();
    let records = log.records();
    assert_eq!(records.len(), GOLDEN_HASHES.len());
    for (r, &expect) in records.iter().zip(&GOLDEN_HASHES) {
        assert_eq!(r.hash, expect, "hash drifted at seq {}", r.seq);
    }
    for pair in records.windows(2) {
        assert_eq!(pair[1].prev_hash, pair[0].hash);
    }
    assert_eq!(log.verify_chain(), Ok(()));
}

#[test]
fn golden_lines_parse_back_to_identical_bytes() {
    for line in GOLDEN_LINES {
        let record: AuditRecord = xoar_codec::from_str(line).expect("golden line parses");
        assert_eq!(xoar_codec::to_string(&record), line);
    }
}
