//! Differential test: fabric-switched delivery ≡ direct wire delivery.
//!
//! The fabric is a data-path reconfiguration inside the NetBack shard:
//! for a guest ↔ external flow, switching through it must be observably
//! identical to the direct `WireEndpoint` path — the same frames on the
//! wire in the same order, the same frames delivered to the guest, the
//! same page handles (no copies), and a byte-identical audit log. Two
//! platforms run the same script and every observable is compared.

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_devices::net::NetPacket;
use xoar_hypervisor::memory::PageRef;
use xoar_hypervisor::DomId;

/// Runs one guest ↔ external flow script and collects every observable.
fn run_script(fabric: bool) -> (Vec<NetPacket>, Vec<NetPacket>, String, Platform) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let guest = p
        .create_guest(ts, GuestConfig::evaluation_guest("web-fe"))
        .expect("guest boots");
    if fabric {
        p.enable_fabric();
    }

    // Guest → external: a burst of tx aggregates on one flow.
    for (seq, bytes) in [(0u64, 1500usize), (1, 64_000), (2, 9000)] {
        let got = p.net_transmit(guest, 7, bytes).expect("tx queued");
        assert_eq!(got, seq);
    }
    // External → guest: replies on the same flow, one carrying a page.
    p.wire.send_to_guest(guest, NetPacket::meta(7, 0, 1500));
    let page = PageRef::new(&[0xabu8; 4096]);
    p.wire.send_page_to_guest(guest, 7, 1, page.clone());
    p.process_netbacks();

    let outbound = p.wire.take_outbound();
    let mut delivered = Vec::new();
    while let Some(pkt) = p.net_receive(guest) {
        delivered.push(pkt);
    }
    // Whichever path carried it, the rx page must arrive by handle.
    let rx_page = delivered
        .iter()
        .find(|pkt| pkt.payload.is_some())
        .expect("page frame delivered");
    assert!(
        PageRef::ptr_eq(&page, rx_page.payload.as_ref().unwrap()),
        "rx page arrives as the same body, not a copy"
    );
    let audit = p.audit.to_json_lines();
    (outbound, delivered, audit, p)
}

#[test]
fn fabric_switched_flow_is_indistinguishable_from_direct_wire() {
    let (wire_out, wire_rx, wire_audit, _) = run_script(false);
    let (fab_out, fab_rx, fab_audit, fab_p) = run_script(true);

    assert_eq!(fab_out, wire_out, "identical frames on the wire, in order");
    assert_eq!(fab_rx, wire_rx, "identical frames delivered to the guest");
    assert_eq!(
        fab_audit, wire_audit,
        "the fabric adds no audit events: byte-identical logs"
    );

    // The fabric really was on the path: it conn-tracked the flow.
    let fab = fab_p.fabric.as_ref().expect("fabric enabled");
    assert_eq!(fab.lifetime_stats().to_uplink, 3, "tx burst switched out");
    assert_eq!(fab.lifetime_stats().to_guests, 2, "replies switched in");
    assert!(fab.flow_count() >= 1);
}

#[test]
fn fabric_survives_netback_microreboot_with_ports_intact() {
    use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};

    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let a = p
        .create_guest(ts, GuestConfig::evaluation_guest("lb"))
        .unwrap();
    let b = p
        .create_guest(ts, GuestConfig::evaluation_guest("web"))
        .unwrap();
    p.enable_fabric();
    assert!(p.fabric_open_flow(1, a, b));

    // Traffic flows guest→guest before the reboot.
    p.net_transmit(a, 1, 1000).unwrap();
    p.process_netbacks();
    assert_eq!(p.net_receive(b).unwrap().bytes, 1000);

    let nb = p.services.netbacks[0];
    let mut eng = RestartEngine::new();
    eng.register(&mut p, nb, RestartPolicy::Never, RestartPath::Fast)
        .unwrap();
    eng.restart(&mut p, nb).expect("microreboot succeeds");

    // Ports and flows survive the microreboot (connections are stable);
    // traffic resumes without renegotiation.
    p.net_transmit(a, 1, 2000).unwrap();
    p.process_netbacks();
    let got = loop {
        match p.net_receive(b) {
            Some(pkt) if pkt.bytes == 2000 => break pkt,
            Some(_) => continue,
            None => panic!("flow did not resume after microreboot"),
        }
    };
    assert_eq!(got.flow, 1);
    assert_eq!(p.audit.verify_chain(), Ok(()));
    assert_eq!(p.hv.rollback_count(nb), 1);
}

#[test]
fn stock_xen_supports_the_fabric_too() {
    let mut p = Platform::stock_xen();
    let ts = p.services.toolstacks[0];
    let a = p
        .create_guest(ts, GuestConfig::evaluation_guest("a"))
        .unwrap();
    let b = p
        .create_guest(ts, GuestConfig::evaluation_guest("b"))
        .unwrap();
    p.enable_fabric();
    assert!(p.fabric_open_flow(3, a, b));
    p.net_transmit(a, 3, 4444).unwrap();
    p.process_netbacks();
    assert_eq!(p.net_receive(b).unwrap().bytes, 4444);
    assert_eq!(p.fabric.as_ref().unwrap().dom, DomId::DOM0);
}
