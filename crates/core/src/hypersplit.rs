//! Hypervisor-split analysis (§7.1, future work).
//!
//! "The hypervisor itself remains unpartitioned, with all the code
//! running with heightened privileges. While operations like guest page
//! table updates, I/O-port management, trap and emulate handlers, etc.,
//! require these capabilities, operations like domain management,
//! profiling and tracing and so on function correctly even when run in a
//! lower privileged hardware protection domain."
//!
//! This module classifies every hypercall the model implements into the
//! ring-0-required set and the deprivilegeable set, and computes how much
//! of the hypercall interface's *risk weight* could move out of ring 0 —
//! the quantitative version of the paper's proposal to split the
//! hypervisor into privileged and non-privileged components communicating
//! over an IPC boundary.

use xoar_hypervisor::HypercallId;

/// Where a hypercall's implementation must live after the split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitSide {
    /// Must stay in ring 0: touches page tables, interrupt routing, or
    /// the machine-memory map directly.
    Ring0,
    /// Can move to the deprivileged component: bookkeeping over
    /// hypervisor-internal data structures, reachable via IPC.
    Deprivileged,
}

/// Classifies one hypercall per §7.1's criteria.
pub fn classify(id: HypercallId) -> SplitSide {
    use HypercallId::*;
    match id {
        // Memory-map and interrupt plumbing: ring 0.
        MmuMapForeign
        | MmuWriteForeign
        | MmuUpdateSelf
        | MemoryPopulate
        | GnttabSetup
        | GnttabMapGrantRef
        | GnttabForeignSetup
        | DomctlIrqPermission
        | DomctlIoPortPermission
        | DomctlMmioPermission
        | DomctlAssignDevice
        | VmSnapshot
        | VmRollback
        | PlatformReboot => SplitSide::Ring0,
        // "Operations like domain management, profiling and tracing and
        // so on function correctly even when run in a lower privileged
        // hardware protection domain."
        DomctlCreateDomain
        | DomctlDestroyDomain
        | DomctlPauseDomain
        | DomctlUnpauseDomain
        | DomctlSetMaxMem
        | DomctlSetVcpus
        | DomctlSetRole
        | DomctlDelegate
        | DomctlSetPrivilegedFor
        | DomctlPermitHypercall
        | SysctlPhysinfo
        | XenVersion
        | SchedOp
        | ConsoleIo
        | EvtchnSend
        | EvtchnAllocUnbound
        | EvtchnBindInterdomain
        | EvtchnBindVirq
        | EvtchnClose => SplitSide::Deprivileged,
        // `#[non_exhaustive]` future IDs default to the safe side.
        _ => SplitSide::Ring0,
    }
}

/// The split's bottom line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitAnalysis {
    /// Hypercalls that must remain in ring 0.
    pub ring0_calls: usize,
    /// Hypercalls that can be deprivileged.
    pub deprivileged_calls: usize,
    /// Total risk weight remaining in ring 0.
    pub ring0_risk: u64,
    /// Total risk weight moved out.
    pub deprivileged_risk: u64,
}

impl SplitAnalysis {
    /// Fraction of the hypercall interface (by count) leaving ring 0.
    pub fn call_fraction_moved(&self) -> f64 {
        self.deprivileged_calls as f64 / (self.ring0_calls + self.deprivileged_calls) as f64
    }
}

/// Analyses the full hypercall interface.
pub fn analyse() -> SplitAnalysis {
    let mut a = SplitAnalysis {
        ring0_calls: 0,
        deprivileged_calls: 0,
        ring0_risk: 0,
        deprivileged_risk: 0,
    };
    for id in HypercallId::all_privileged()
        .into_iter()
        .chain(HypercallId::all_unprivileged())
    {
        match classify(id) {
            SplitSide::Ring0 => {
                a.ring0_calls += 1;
                a.ring0_risk += id.risk_weight() as u64;
            }
            SplitSide::Deprivileged => {
                a.deprivileged_calls += 1;
                a.deprivileged_risk += id.risk_weight() as u64;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_table_and_interrupt_paths_stay_in_ring0() {
        for id in [
            HypercallId::MmuMapForeign,
            HypercallId::MmuUpdateSelf,
            HypercallId::DomctlIrqPermission,
            HypercallId::MemoryPopulate,
        ] {
            assert_eq!(classify(id), SplitSide::Ring0, "{id:?}");
        }
    }

    #[test]
    fn domain_management_deprivileges() {
        for id in [
            HypercallId::DomctlCreateDomain,
            HypercallId::DomctlPauseDomain,
            HypercallId::SysctlPhysinfo,
            HypercallId::SchedOp,
        ] {
            assert_eq!(classify(id), SplitSide::Deprivileged, "{id:?}");
        }
    }

    #[test]
    fn a_majority_of_calls_can_leave_ring0() {
        let a = analyse();
        assert!(a.deprivileged_calls > a.ring0_calls, "{a:?}");
        assert!(a.call_fraction_moved() > 0.5);
        // But the highest-risk machinery remains privileged: per-call,
        // the mean risk left in ring 0 exceeds the mean risk moved out.
        let mean_ring0 = a.ring0_risk as f64 / a.ring0_calls as f64;
        let mean_moved = a.deprivileged_risk as f64 / a.deprivileged_calls as f64;
        assert!(
            mean_ring0 > mean_moved,
            "ring0 {mean_ring0:.1} vs moved {mean_moved:.1}"
        );
    }

    #[test]
    fn every_call_is_classified() {
        let a = analyse();
        let total = HypercallId::all_privileged().len() + HypercallId::all_unprivileged().len();
        assert_eq!(a.ring0_calls + a.deprivileged_calls, total);
    }
}
