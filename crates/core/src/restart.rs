//! Microreboot policies and the driver-restart procedure (§3.3, Fig 6.3).
//!
//! Restartable shards are periodically rolled back to their post-boot
//! snapshot. For driver domains the restart has a measurable *downtime*
//! during which the device is unavailable; the paper measures two
//! variants:
//!
//! * **slow** (~260 ms): "the device hardware state is left untouched
//!   during reboots" but all negotiated software state is lost, so the
//!   frontends renegotiate rings and event channels over XenStore;
//! * **fast** (~140 ms): "some configuration data that would normally be
//!   renegotiated via XenStore is persisted" in the recovery box, skipping
//!   the renegotiation round trips.
//!
//! [`RestartEngine`] owns the per-shard policies and executes restarts
//! against a [`Platform`], producing the downtime windows the simulator
//! feeds into its TCP model.

use std::fmt::Write as _;

use xoar_devices::ring::RingId;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::snapshot::RecoveryBox;
use xoar_hypervisor::{DomId, HvError, HvResult, Hypercall};

use crate::audit::AuditEvent;
use crate::platform::Platform;

/// Nanoseconds per millisecond.
const MS: u64 = 1_000_000;

/// Which restart path a shard uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPath {
    /// Full XenStore renegotiation after rollback (~260 ms downtime).
    Slow,
    /// Ring/event configuration restored from the recovery box (~140 ms).
    Fast,
}

impl RestartPath {
    /// The measured device downtime of this path (§6.1.2).
    pub fn downtime_ns(self) -> u64 {
        match self {
            RestartPath::Slow => 260 * MS,
            RestartPath::Fast => 140 * MS,
        }
    }
}

/// Downtime component breakdown, calibrated to sum to the measured
/// totals: rollback of dirtied pages, device re-initialisation, and
/// either the XenStore renegotiation (slow) or the recovery-box restore
/// (fast).
pub mod downtime {
    use super::MS;

    /// Copy-on-write rollback of the shard image.
    pub const ROLLBACK_NS: u64 = 45 * MS;
    /// Driver re-attach to the (untouched) hardware.
    pub const DEVICE_REINIT_NS: u64 = 75 * MS;
    /// Full frontend/backend renegotiation over XenStore (slow path).
    pub const RENEGOTIATION_NS: u64 = 140 * MS;
    /// Restoring negotiated state from the recovery box (fast path).
    pub const RECOVERY_BOX_NS: u64 = 20 * MS;
}

/// When a shard is restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Never restarted.
    Never,
    /// Restarted every `interval_ns` of simulated time ("restarted on a
    /// timer" — NetBack, BlkBack).
    Timer {
        /// Interval between restarts.
        interval_ns: u64,
    },
    /// Restarted after every request ("restarted on each request" —
    /// XenStore-Logic in Figure 5.1).
    PerRequest,
}

/// Which service table a registered shard lives in, resolved once at
/// registration (`platform.netbacks` / `platform.blkbacks` are aligned
/// with `services.netbacks` / `services.blkbacks` and never reordered).
#[derive(Debug, Clone, Copy)]
enum ServiceSlot {
    /// `platform.netbacks[i]`.
    Net(usize),
    /// `platform.blkbacks[i]`.
    Blk(usize),
}

/// The precompiled restart plan: everything `restart()` would otherwise
/// recompute or reallocate per microreboot is resolved at registration
/// and reused. The scratch buffers are refilled in place each restart —
/// registration may precede guest attach, so the ring list has to track
/// the live attachment table, but its capacity is paid once.
#[derive(Debug, Default)]
struct RestartPlan {
    /// Resolved service-table slot (replaces two `position()` scans per
    /// restart). `None` for shards with no rings (e.g. XenStore).
    slot: Option<ServiceSlot>,
    /// Ring-reattach scratch: the rings to detach and recreate.
    rings: Vec<RingId>,
    /// Event-channel rebind scratch: the shard-local ports kicked (one
    /// batched multicall) to tell frontends their rings are back.
    ports: Vec<u32>,
    /// Audit template: `prefix + pages_restored + "}}"` is byte-identical
    /// to the canonical JSON of `AuditEvent::ShardRestarted`.
    audit_prefix: String,
    /// Reusable payload composition buffer.
    payload: String,
}

impl RestartPlan {
    /// Compiles the plan for `dom` against the platform's service tables.
    fn compile(platform: &Platform, dom: DomId) -> Self {
        let slot = platform
            .services
            .netbacks
            .iter()
            .position(|d| *d == dom)
            .map(ServiceSlot::Net)
            .or_else(|| {
                platform
                    .services
                    .blkbacks
                    .iter()
                    .position(|d| *d == dom)
                    .map(ServiceSlot::Blk)
            });
        RestartPlan {
            slot,
            rings: Vec::new(),
            ports: Vec::new(),
            audit_prefix: format!(
                "{{\"ShardRestarted\":{{\"shard\":{},\"pages_restored\":",
                dom.0
            ),
            payload: String::new(),
        }
    }

    /// Refills the ring/port scratch from the live attachment table,
    /// sorted for deterministic replay order.
    fn refresh(&mut self, platform: &Platform) {
        self.rings.clear();
        self.ports.clear();
        match self.slot {
            Some(ServiceSlot::Net(i)) => {
                for conn in platform.netbacks[i].conn_iter() {
                    self.rings.push(conn.ring);
                    self.ports.push(conn.back_port);
                }
            }
            Some(ServiceSlot::Blk(i)) => {
                for conn in platform.blkbacks[i].conn_iter() {
                    self.rings.push(conn.ring);
                    self.ports.push(conn.back_port);
                }
            }
            None => {}
        }
        self.rings.sort_unstable_by_key(|r| (r.granter.0, r.gref.0));
        self.ports.sort_unstable();
        self.ports.dedup();
    }

    /// Composes the audit payload for this restart into the reusable
    /// buffer and returns it.
    fn compose_audit(&mut self, pages_restored: u64) -> &str {
        self.payload.clear();
        self.payload.push_str(&self.audit_prefix);
        let _ = write!(self.payload, "{pages_restored}");
        self.payload.push_str("}}");
        &self.payload
    }
}

/// A restartable shard registration.
#[derive(Debug)]
struct Registration {
    dom: DomId,
    policy: RestartPolicy,
    path: RestartPath,
    last_restart_ns: u64,
    plan: RestartPlan,
}

/// The outcome of one shard restart.
#[derive(Debug, Clone, Copy)]
pub struct RestartOutcome {
    /// The restarted shard.
    pub shard: DomId,
    /// Pages restored by the rollback.
    pub pages_restored: u64,
    /// Device downtime (ns) — the window the simulator treats the device
    /// as unreachable.
    pub downtime_ns: u64,
    /// Ring requests dropped by the detach (to be retransmitted).
    pub requests_lost: usize,
}

/// The restart engine.
///
/// # Examples
///
/// ```
/// use xoar_core::platform::{Platform, XoarConfig};
/// use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
///
/// let mut p = Platform::xoar(XoarConfig::default());
/// let netback = p.services.netbacks[0];
/// let mut engine = RestartEngine::new();
/// engine
///     .register(&mut p, netback, RestartPolicy::Never, RestartPath::Fast)
///     .unwrap();
/// let outcome = engine.restart(&mut p, netback).unwrap();
/// assert_eq!(outcome.downtime_ns, 140_000_000);
/// ```
#[derive(Debug, Default)]
pub struct RestartEngine {
    registrations: Vec<Registration>,
    total_restarts: u64,
}

impl RestartEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a shard for policy-driven restarts. Takes the post-boot
    /// snapshot (the `vm_snapshot()` of §3.3) and, for the fast path,
    /// registers a recovery box first.
    pub fn register(
        &mut self,
        platform: &mut Platform,
        dom: DomId,
        policy: RestartPolicy,
        path: RestartPath,
    ) -> HvResult<()> {
        if path == RestartPath::Fast {
            // Negotiated ring/event configuration is kept in a dedicated
            // recovery-box page range.
            platform.hv.register_recovery_box(
                dom,
                RecoveryBox {
                    start: Pfn(0),
                    frames: 2,
                },
            )?;
        }
        // The shard snapshots itself once initialised, before serving
        // external interfaces.
        platform.hv.hypercall(dom, Hypercall::VmSnapshot)?;
        let now = platform.now_ns();
        let plan = RestartPlan::compile(platform, dom);
        self.registrations.push(Registration {
            dom,
            policy,
            path,
            last_restart_ns: now,
            plan,
        });
        Ok(())
    }

    /// Builds an engine from the platform's boot configuration: if
    /// `XoarConfig::restart_interval_s` was set, every restartable driver
    /// shard (NetBack, BlkBack) is registered on that timer with the fast
    /// (recovery-box) path, and XenStore-Logic is put on the per-request
    /// policy of Figure 5.1.
    pub fn for_platform(platform: &mut Platform) -> HvResult<Self> {
        let mut engine = RestartEngine::new();
        let Some(interval_s) = platform
            .xoar_config
            .as_ref()
            .and_then(|c| c.restart_interval_s)
        else {
            return Ok(engine);
        };
        let interval_ns = interval_s.saturating_mul(1_000_000_000);
        let drivers: Vec<DomId> = platform
            .services
            .netbacks
            .iter()
            .chain(&platform.services.blkbacks)
            .copied()
            .collect();
        for dom in drivers {
            engine.register(
                platform,
                dom,
                RestartPolicy::Timer { interval_ns },
                RestartPath::Fast,
            )?;
        }
        platform.xs.set_per_request_restart(true);
        Ok(engine)
    }

    /// Which registered shards are due for a timer restart at `now_ns`.
    pub fn due(&self, now_ns: u64) -> Vec<DomId> {
        self.registrations
            .iter()
            .filter(|r| match r.policy {
                RestartPolicy::Timer { interval_ns } => {
                    now_ns.saturating_sub(r.last_restart_ns) >= interval_ns
                }
                _ => false,
            })
            .map(|r| r.dom)
            .collect()
    }

    /// Executes a microreboot of `shard` on `platform` by running the
    /// shard's precompiled [`RestartPlan`].
    ///
    /// The rollback is performed with a real `VmRollback` hypercall issued
    /// by the Builder; the plan's ring list is refreshed from the live
    /// attachment table, every ring is detached (dropping in-flight
    /// requests, which frontends retransmit) and recreated, and the
    /// frontends are re-notified with one batched multicall of event
    /// kicks. For the slow path the connections are fully renegotiated,
    /// for the fast path they are re-established from persisted
    /// configuration — the wall-clock difference is carried in
    /// `downtime_ns`.
    pub fn restart(&mut self, platform: &mut Platform, shard: DomId) -> HvResult<RestartOutcome> {
        let idx = self
            .registrations
            .iter()
            .position(|r| r.dom == shard)
            .ok_or(HvError::NoSuchDomain(shard))?;
        let reg = &mut self.registrations[idx];
        let path = reg.path;
        let builder = platform.services.builder;

        // 1. Roll back to the post-boot image; the hypervisor reports how
        //    many dirty pages it restored (the CoW cost of the reboot).
        let pages_restored = match platform
            .hv
            .hypercall(builder, Hypercall::VmRollback { target: shard })?
        {
            xoar_hypervisor::HypercallRet::Count(n) => n,
            _ => 0,
        };

        // 2. Execute the plan: detach every ring the shard serves
        //    (counting lost work), then recreate each one.
        reg.plan.refresh(platform);
        let mut requests_lost = 0;
        match reg.plan.slot {
            Some(ServiceSlot::Net(_)) => {
                for &ring in &reg.plan.rings {
                    if let Ok(r) = platform.net_hub.get_mut(ring) {
                        requests_lost += r.detach();
                    }
                    platform.net_hub.create(ring);
                }
            }
            Some(ServiceSlot::Blk(_)) => {
                for &ring in &reg.plan.rings {
                    if let Ok(r) = platform.blk_hub.get_mut(ring) {
                        requests_lost += r.detach();
                    }
                    platform.blk_hub.create(ring);
                }
            }
            None => {}
        }

        // 3. Rebind event channels: the restarted backend kicks every
        //    frontend once, batched through a single multicall. Kicks are
        //    best-effort — a stale port fails its sub-call without
        //    aborting the batch.
        if !reg.plan.ports.is_empty() {
            let calls = reg
                .plan
                .ports
                .iter()
                .map(|&port| Hypercall::EvtchnSend { port })
                .collect();
            platform
                .hv
                .hypercall(shard, Hypercall::Multicall { calls })?;
        }

        let downtime_ns = match path {
            RestartPath::Slow => {
                downtime::ROLLBACK_NS + downtime::DEVICE_REINIT_NS + downtime::RENEGOTIATION_NS
            }
            RestartPath::Fast => {
                downtime::ROLLBACK_NS + downtime::DEVICE_REINIT_NS + downtime::RECOVERY_BOX_NS
            }
        };
        let now = platform.now_ns();
        reg.last_restart_ns = now;
        self.total_restarts += 1;

        // 4. Audit from the precompiled template (no per-restart JSON
        //    serialization; byte-identical to the canonical encoding).
        let payload = reg.plan.compose_audit(pages_restored);
        platform.audit.append_composed(
            now,
            AuditEvent::ShardRestarted {
                shard,
                pages_restored,
            },
            payload,
        );
        Ok(RestartOutcome {
            shard,
            pages_restored,
            downtime_ns,
            requests_lost,
        })
    }

    /// Total restarts executed.
    pub fn total_restarts(&self) -> u64 {
        self.total_restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{GuestConfig, XoarConfig};

    fn xoar_with_guest() -> (Platform, DomId, DomId) {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("g"))
            .unwrap();
        let nb = p.services.netbacks[0];
        (p, g, nb)
    }

    #[test]
    fn downtime_matches_paper_measurements() {
        assert_eq!(RestartPath::Slow.downtime_ns(), 260 * MS);
        assert_eq!(RestartPath::Fast.downtime_ns(), 140 * MS);
        // The component breakdown sums to the measured totals.
        assert_eq!(
            downtime::ROLLBACK_NS + downtime::DEVICE_REINIT_NS + downtime::RENEGOTIATION_NS,
            RestartPath::Slow.downtime_ns()
        );
        assert_eq!(
            downtime::ROLLBACK_NS + downtime::DEVICE_REINIT_NS + downtime::RECOVERY_BOX_NS,
            RestartPath::Fast.downtime_ns()
        );
    }

    #[test]
    fn restart_rolls_back_and_logs() {
        let (mut p, _g, nb) = xoar_with_guest();
        let mut eng = RestartEngine::new();
        eng.register(
            &mut p,
            nb,
            RestartPolicy::Timer {
                interval_ns: 10_000 * MS,
            },
            RestartPath::Slow,
        )
        .unwrap();
        // The shard's memory is scribbled on (attack state)…
        p.hv.mem.write(nb, Pfn(1), b"implant").unwrap();
        let outcome = eng.restart(&mut p, nb).unwrap();
        assert_eq!(outcome.shard, nb);
        assert_eq!(outcome.downtime_ns, RestartPath::Slow.downtime_ns());
        // …and wiped by the rollback.
        assert_eq!(p.hv.mem.read(nb, Pfn(1)).unwrap(), Vec::<u8>::new());
        assert_eq!(p.hv.rollback_count(nb), 1);
        assert_eq!(p.audit.restart_count(nb), 1);
    }

    #[test]
    fn restart_drops_in_flight_requests_for_retransmit() {
        let (mut p, g, nb) = xoar_with_guest();
        let mut eng = RestartEngine::new();
        eng.register(&mut p, nb, RestartPolicy::Never, RestartPath::Fast)
            .unwrap();
        // Queue traffic.
        let conn = p.guest(g).unwrap().netfront.as_ref().unwrap().conn;
        p.net_transmit(g, 1, 1500).unwrap();
        p.net_transmit(g, 1, 1500).unwrap();
        let outcome = eng.restart(&mut p, nb).unwrap();
        assert_eq!(outcome.requests_lost, 2);
        // The ring is fresh and usable again (fast path reattach).
        assert_eq!(
            p.guest(g).unwrap().netfront.as_ref().unwrap().conn.ring,
            conn.ring
        );
        p.net_transmit(g, 1, 1500).unwrap();
        let stats = p.process_netbacks();
        assert_eq!(stats.tx_frames, 1);
    }

    #[test]
    fn timer_policy_schedules_restarts() {
        let (mut p, _g, nb) = xoar_with_guest();
        let mut eng = RestartEngine::new();
        eng.register(
            &mut p,
            nb,
            RestartPolicy::Timer {
                interval_ns: 5_000 * MS,
            },
            RestartPath::Slow,
        )
        .unwrap();
        assert!(eng.due(p.now_ns()).is_empty());
        p.advance_time(4_999 * MS);
        assert!(eng.due(p.now_ns()).is_empty());
        p.advance_time(2 * MS);
        assert_eq!(eng.due(p.now_ns()), vec![nb]);
        eng.restart(&mut p, nb).unwrap();
        assert!(eng.due(p.now_ns()).is_empty(), "timer reset after restart");
        p.advance_time(5_001 * MS);
        assert_eq!(eng.due(p.now_ns()), vec![nb]);
    }

    #[test]
    fn unregistered_shard_cannot_be_restarted() {
        let (mut p, _g, nb) = xoar_with_guest();
        let mut eng = RestartEngine::new();
        assert!(eng.restart(&mut p, nb).is_err());
    }

    #[test]
    fn repeated_restarts_accumulate() {
        let (mut p, _g, nb) = xoar_with_guest();
        let mut eng = RestartEngine::new();
        eng.register(
            &mut p,
            nb,
            RestartPolicy::Timer { interval_ns: MS },
            RestartPath::Fast,
        )
        .unwrap();
        for _ in 0..5 {
            p.advance_time(2 * MS);
            eng.restart(&mut p, nb).unwrap();
        }
        assert_eq!(eng.total_restarts(), 5);
        assert_eq!(p.hv.rollback_count(nb), 5);
        assert_eq!(p.audit.restart_count(nb), 5);
    }

    #[test]
    fn fast_path_preserves_recovery_box_contents() {
        let (mut p, _g, nb) = xoar_with_guest();
        // Negotiated config persisted at Pfn(0..2) before registration
        // (the register call snapshots afterwards).
        let mut eng = RestartEngine::new();
        eng.register(&mut p, nb, RestartPolicy::Never, RestartPath::Fast)
            .unwrap();
        p.hv.mem.write(nb, Pfn(0), b"ring-config-v2").unwrap();
        p.hv.mem.write(nb, Pfn(3), b"attacker").unwrap();
        eng.restart(&mut p, nb).unwrap();
        assert_eq!(
            p.hv.mem.read(nb, Pfn(0)).unwrap(),
            b"ring-config-v2",
            "recovery box survives the rollback"
        );
        assert_eq!(p.hv.mem.read(nb, Pfn(3)).unwrap(), Vec::<u8>::new());
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use crate::platform::{GuestConfig, XoarConfig};

    #[test]
    fn engine_from_platform_config() {
        let mut p = Platform::xoar(XoarConfig {
            restart_interval_s: Some(10),
            ..Default::default()
        });
        let ts = p.services.toolstacks[0];
        let _g = p
            .create_guest(ts, GuestConfig::evaluation_guest("g"))
            .unwrap();
        let engine = RestartEngine::for_platform(&mut p).unwrap();
        // Drivers registered on the timer.
        p.advance_time(10_001 * MS);
        let due = engine.due(p.now_ns());
        assert!(due.contains(&p.services.netbacks[0]));
        assert!(due.contains(&p.services.blkbacks[0]));
        // XenStore now restarts Logic on every wire request.
        let before = p.xs.logic_restarts();
        let _ = p.xs.handle(
            ts,
            xoar_xenstore::Request::Read {
                txn: None,
                path: "/local".into(),
            },
        );
        assert_eq!(p.xs.logic_restarts(), before + 1);
    }

    #[test]
    fn no_interval_means_empty_engine() {
        let mut p = Platform::xoar(XoarConfig::default());
        let engine = RestartEngine::for_platform(&mut p).unwrap();
        p.advance_time(1_000_000 * MS);
        assert!(engine.due(p.now_ns()).is_empty());
    }
}
