//! Live migration: pre-copy VM relocation between hosts.
//!
//! The paper leans on live migration repeatedly: it is one of the
//! enterprise features a security redesign must not sacrifice ("the
//! virtualization layer could no longer be used for interposition, which
//! is necessary for live migration" is the argument *against* NoHype,
//! §2.3.1), and the snapshot machinery of §3.3 notes that "virtual
//! machine protocols frequently deal with disconnection and renegotiation
//! of connections during live migration".
//!
//! This module implements the classic pre-copy algorithm of Clark et al.
//! \[12\] on top of the model's real mechanisms:
//!
//! 1. a guest shell is built on the destination host (through its
//!    Builder, with devices negotiated as usual);
//! 2. **pre-copy rounds**: all pages are copied, then only the pages the
//!    still-running guest dirtied since the previous round (the
//!    hypervisor's dirty tracking — the same machinery the snapshot
//!    subsystem uses);
//! 3. **stop-and-copy**: when the dirty set stops shrinking (or a round
//!    budget is reached) the guest pauses, the residue is copied, and the
//!    guest resumes on the destination;
//! 4. the source domain is destroyed and the audit logs of both hosts
//!    record the move.

use xoar_hypervisor::memory::PAGE_SIZE;
use xoar_hypervisor::{DomId, HvError, HvResult, Hypercall};

use crate::audit::AuditEvent;
use crate::platform::{GuestConfig, Platform};

/// Migration tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MigrationConfig {
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
    /// Stop early when a round's dirty set is at most this many pages.
    pub dirty_threshold: usize,
    /// Wire bandwidth for page transfer, bytes/second (the management
    /// network).
    pub wire_bps: u64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            max_rounds: 8,
            dirty_threshold: 8,
            wire_bps: 117_000_000,
        }
    }
}

/// The outcome of a migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The guest's domain ID on the destination host.
    pub new_dom: DomId,
    /// Pre-copy rounds executed (excluding the stop-and-copy).
    pub rounds: u32,
    /// Pages moved in total, across all rounds.
    pub pages_total: u64,
    /// Pages moved during the stop-and-copy (the downtime driver).
    pub pages_final: u64,
    /// Guest-visible downtime in nanoseconds.
    pub downtime_ns: u64,
}

fn transfer_ns(pages: u64, wire_bps: u64) -> u64 {
    (pages as u128 * PAGE_SIZE as u128 * 1_000_000_000 / wire_bps.max(1) as u128) as u64
}

/// Live-migrates `guest` from `src` to `dst`.
///
/// # Examples
///
/// ```
/// use xoar_core::migration::{migrate, MigrationConfig};
/// use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
///
/// let mut src = Platform::xoar(XoarConfig::default());
/// let mut dst = Platform::xoar(XoarConfig::default());
/// let ts_src = src.services.toolstacks[0];
/// let ts_dst = dst.services.toolstacks[0];
/// let g = src.create_guest(ts_src, GuestConfig::evaluation_guest("m")).unwrap();
/// let report = migrate(&mut src, &mut dst, g, ts_dst,
///                      MigrationConfig::default(), |_, _| {}).unwrap();
/// assert!(dst.guest(report.new_dom).is_some());
/// ```
///
/// `workload` is invoked between pre-copy rounds to model the guest still
/// executing (it may dirty source pages through `src.hv.mem`); pass a
/// no-op closure for an idle guest. The guest keeps its name, sizing,
/// and constraint tag; devices are renegotiated on the destination — the
/// renegotiation-friendly protocols of §3.3 are exactly what makes this
/// legal.
pub fn migrate(
    src: &mut Platform,
    dst: &mut Platform,
    guest: DomId,
    dst_toolstack: DomId,
    cfg: MigrationConfig,
    mut workload: impl FnMut(&mut Platform, DomId),
) -> HvResult<MigrationReport> {
    let handle = src.guest(guest).ok_or(HvError::NoSuchDomain(guest))?;
    let name = handle.name.clone();
    let constraint = handle.constraint.clone();
    let src_toolstack = handle.toolstack;
    let d = src.hv.domain(guest)?;
    let memory_mib = d.memory_mib;
    let vcpus = d.vcpus.len() as u32;

    // 1. Build the destination shell with devices.
    let mut gcfg = GuestConfig::evaluation_guest(&name);
    gcfg.memory_mib = memory_mib;
    gcfg.vcpus = vcpus;
    gcfg.constraint = constraint;
    let new_dom = dst.create_guest(dst_toolstack, gcfg)?;
    let dst_builder = dst.services.builder;

    // 2. Pre-copy: round 0 moves everything; later rounds move the dirty
    //    residue. Reset dirty tracking first so rounds see fresh writes.
    let _ = src.hv.mem.take_dirty(guest);
    let entries = src.hv.mem.p2m_entries(guest);
    let mut pages_total = 0u64;
    for (pfn, _) in &entries {
        let data = src.hv.mem.read(guest, *pfn)?;
        if !data.is_empty() {
            dst.hv.hypercall(
                dst_builder,
                Hypercall::MmuWriteForeign {
                    target: new_dom,
                    pfn: *pfn,
                    data: data.to_vec(),
                },
            )?;
        }
        pages_total += 1;
    }
    let mut rounds = 0u32;
    loop {
        // The guest keeps running between rounds.
        workload(src, guest);
        let dirty = src.hv.mem.take_dirty(guest);
        if dirty.len() <= cfg.dirty_threshold || rounds >= cfg.max_rounds {
            // 3. Stop-and-copy.
            src.hv.hypercall(
                src_toolstack,
                Hypercall::DomctlPauseDomain { target: guest },
            )?;
            let residue = {
                let mut residue = dirty;
                residue.extend(src.hv.mem.take_dirty(guest));
                residue
            };
            for (pfn, _) in &residue {
                let data = src.hv.mem.read(guest, *pfn)?;
                dst.hv.hypercall(
                    dst_builder,
                    Hypercall::MmuWriteForeign {
                        target: new_dom,
                        pfn: *pfn,
                        data: data.to_vec(),
                    },
                )?;
            }
            let pages_final = residue.len() as u64;
            pages_total += pages_final;
            let downtime_ns = transfer_ns(pages_final, cfg.wire_bps) + 2_000_000; // + handover.

            // 4. Tear down the source, record on both hosts.
            src.destroy_guest(src_toolstack, guest)?;
            let now_src = src.now_ns();
            src.audit.append(now_src, AuditEvent::VmDestroyed { guest });
            let now_dst = dst.now_ns();
            dst.audit.append(
                now_dst,
                AuditEvent::VmCreated {
                    guest: new_dom,
                    name: format!("{name} (migrated in)"),
                    toolstack: dst_toolstack,
                },
            );
            return Ok(MigrationReport {
                new_dom,
                rounds,
                pages_total,
                pages_final,
                downtime_ns,
            });
        }
        for (pfn, _) in &dirty {
            let data = src.hv.mem.read(guest, *pfn)?;
            dst.hv.hypercall(
                dst_builder,
                Hypercall::MmuWriteForeign {
                    target: new_dom,
                    pfn: *pfn,
                    data: data.to_vec(),
                },
            )?;
        }
        pages_total += dirty.len() as u64;
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::XoarConfig;
    use xoar_hypervisor::memory::Pfn;
    use xoar_hypervisor::DomainState;

    fn two_hosts() -> (Platform, Platform, DomId, DomId) {
        let src = Platform::xoar(XoarConfig::default());
        let dst = Platform::xoar(XoarConfig::default());
        let ts_src = src.services.toolstacks[0];
        let ts_dst = dst.services.toolstacks[0];
        (src, dst, ts_src, ts_dst)
    }

    #[test]
    fn idle_guest_migrates_with_tiny_downtime() {
        let (mut src, mut dst, ts_src, ts_dst) = two_hosts();
        let g = src
            .create_guest(ts_src, GuestConfig::evaluation_guest("mover"))
            .unwrap();
        src.hv.mem.write(g, Pfn(10), b"application state").unwrap();
        let report = migrate(
            &mut src,
            &mut dst,
            g,
            ts_dst,
            MigrationConfig::default(),
            |_, _| {},
        )
        .unwrap();
        // Source gone, destination running with the memory intact.
        assert_eq!(src.hv.domain(g).unwrap().state, DomainState::Dead);
        let nd = report.new_dom;
        assert_eq!(dst.hv.domain(nd).unwrap().state, DomainState::Running);
        assert_eq!(dst.hv.mem.read(nd, Pfn(10)).unwrap(), b"application state");
        // Idle guest: no pre-copy rounds beyond round zero, tiny residue.
        assert_eq!(report.rounds, 0);
        assert!(report.pages_final <= 8);
        assert!(report.downtime_ns < 10_000_000, "{} ns", report.downtime_ns);
    }

    #[test]
    fn busy_guest_needs_more_rounds_and_converges() {
        let (mut src, mut dst, ts_src, ts_dst) = two_hosts();
        let g = src
            .create_guest(ts_src, GuestConfig::evaluation_guest("busy"))
            .unwrap();
        // Dirty 40 pages per round for the first 3 rounds, then go idle.
        let mut round = 0;
        let report = migrate(
            &mut src,
            &mut dst,
            g,
            ts_dst,
            MigrationConfig::default(),
            |p, g| {
                round += 1;
                if round <= 3 {
                    for i in 0..40u64 {
                        p.hv.mem
                            .write(g, Pfn(100 + i), format!("r{round}p{i}").as_bytes())
                            .unwrap();
                    }
                }
            },
        )
        .unwrap();
        assert!(report.rounds >= 3, "rounds {}", report.rounds);
        // The last written values arrived.
        assert_eq!(dst.hv.mem.read(report.new_dom, Pfn(100)).unwrap(), b"r3p0");
    }

    #[test]
    fn hot_guest_is_forced_to_stop_and_copy() {
        let (mut src, mut dst, ts_src, ts_dst) = two_hosts();
        let g = src
            .create_guest(ts_src, GuestConfig::evaluation_guest("hot"))
            .unwrap();
        let cfg = MigrationConfig {
            max_rounds: 4,
            ..Default::default()
        };
        // Dirties 100 pages every round forever: never converges.
        let report = migrate(&mut src, &mut dst, g, ts_dst, cfg, |p, g| {
            for i in 0..100u64 {
                p.hv.mem.write(g, Pfn(200 + i), b"hot").unwrap();
            }
        })
        .unwrap();
        assert_eq!(report.rounds, 4, "round budget enforced");
        assert!(report.pages_final >= 100, "stop-and-copy moved the hot set");
        assert!(
            report.downtime_ns > MigrationConfig::default().wire_bps / 1_000_000,
            "hot migrations pay visible downtime"
        );
    }

    #[test]
    fn migrated_guest_gets_working_devices() {
        let (mut src, mut dst, ts_src, ts_dst) = two_hosts();
        let g = src
            .create_guest(ts_src, GuestConfig::evaluation_guest("io"))
            .unwrap();
        let report = migrate(
            &mut src,
            &mut dst,
            g,
            ts_dst,
            MigrationConfig::default(),
            |_, _| {},
        )
        .unwrap();
        let nd = report.new_dom;
        // Devices were renegotiated on the destination: I/O works.
        dst.blk_submit(nd, xoar_devices::blk::BlkOp::Write, 0, 8)
            .unwrap();
        assert_eq!(dst.process_blkbacks().completed, 1);
        dst.net_transmit(nd, 1, 1500).unwrap();
        assert_eq!(dst.process_netbacks().tx_frames, 1);
    }

    #[test]
    fn migration_respects_destination_constraints() {
        use crate::shard::ConstraintTag;
        let (mut src, mut dst, ts_src, ts_dst) = two_hosts();
        // Destination shards already adopted by a different tenant group.
        let mut other = GuestConfig::evaluation_guest("occupier");
        other.constraint = ConstraintTag::group("other");
        dst.create_guest(ts_dst, other).unwrap();
        // Tagged source guest cannot land there.
        let mut cfg = GuestConfig::evaluation_guest("tagged");
        cfg.constraint = ConstraintTag::group("mine");
        let g = src.create_guest(ts_src, cfg).unwrap();
        let err = migrate(
            &mut src,
            &mut dst,
            g,
            ts_dst,
            MigrationConfig::default(),
            |_, _| {},
        );
        assert!(err.is_err(), "constraint groups hold across hosts");
        // And the source guest is untouched by the failed attempt.
        assert_eq!(src.hv.domain(g).unwrap().state, DomainState::Running);
    }

    #[test]
    fn migrating_nonexistent_guest_fails() {
        let (mut src, mut dst, _ts_src, ts_dst) = two_hosts();
        assert!(matches!(
            migrate(
                &mut src,
                &mut dst,
                DomId(99),
                ts_dst,
                MigrationConfig::default(),
                |_, _| {}
            ),
            Err(HvError::NoSuchDomain(_))
        ));
    }
}
