//! The assembled virtualization platform, in both configurations.
//!
//! [`Platform::stock_xen`] builds the baseline of Figure 2.1: one
//! monolithic control VM (Dom0) hosting XenStore, the console daemon, the
//! toolstack, the VM builder, device emulation, and both driver backends,
//! holding blanket privileges, and whose failure reboots the host.
//!
//! [`Platform::xoar`] builds the architecture of Figure 5.1: the same
//! services decomposed into least-privilege shards, booted in dependency
//! order by a self-destructing Bootstrapper (§5.2), with PCIBack sealed
//! and destroyed once steady state is reached (§5.3).
//!
//! Everything downstream — the workloads of Chapter 6, the security
//! evaluation of §6.2, the examples — drives one of these two values
//! through the same API, so every measured difference is attributable to
//! the decomposition.

use std::collections::HashMap;

use xoar_devices::blk::{BlkFront, BlkRingHub};
use xoar_devices::console::ConsoleManager;
use xoar_devices::emu::QemuDeviceModel;
use xoar_devices::fabric::Fabric;
use xoar_devices::hw::{DiskModel, NicModel};
use xoar_devices::net::{NetFront, NetRingHub, WireEndpoint};
use xoar_devices::pci::{PciBack, PciBus, PciClass};
use xoar_devices::xenbus::{self, DeviceKind};
use xoar_devices::{BlkBack, NetBack};
use xoar_hypervisor::domain::DomainRole;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, DomainState, HvError, HvResult, Hypercall, Hypervisor, PrivilegeSet};
use xoar_xenstore::XenStore;

use crate::audit::{AuditEvent, AuditLog};
use crate::builder::{BuildRequest, Builder, KernelSpec};
use crate::shard::{ConstraintTag, ShardKind, ShardSpec};

/// Which architecture the platform is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformMode {
    /// Monolithic Dom0 (the paper's baseline).
    StockXen,
    /// Disaggregated shards (the paper's contribution).
    Xoar,
}

/// Configuration for a Xoar platform instance.
#[derive(Debug, Clone)]
pub struct XoarConfig {
    /// Whether to run a Console Manager (commercial hosts often don't:
    /// "console access is largely absent rendering the Console Manager
    /// redundant", §6.1.1).
    pub with_console: bool,
    /// Whether to keep PCIBack alive after boot (needed for hotplug /
    /// SR-IOV provisioning; destroyable otherwise, §5.3).
    pub keep_pciback: bool,
    /// Number of toolstack instances (§5.6: "a configurable number of
    /// toolstacks").
    pub toolstacks: usize,
    /// Default restart interval for restartable driver shards, seconds
    /// (None = no timer restarts).
    pub restart_interval_s: Option<u64>,
    /// Enable hypercall tracing from the first boot-time call (used by the
    /// xoar-analysis over-privilege report, which diffs static whitelists
    /// against the recorded trace — including the Bootstrapper's).
    pub trace_hypercalls: bool,
}

impl Default for XoarConfig {
    fn default() -> Self {
        XoarConfig {
            with_console: true,
            keep_pciback: false,
            toolstacks: 1,
            restart_interval_s: None,
            trace_hypercalls: false,
        }
    }
}

/// Identities of the service domains.
///
/// In stock Xen every field is Dom0; in Xoar each is a distinct shard.
#[derive(Debug, Clone)]
pub struct ServiceDoms {
    /// XenStore-Logic host.
    pub xenstore: DomId,
    /// XenStore-State host (same as `xenstore` in stock Xen).
    pub xenstore_state: DomId,
    /// Console Manager host (if any).
    pub console: Option<DomId>,
    /// Builder host.
    pub builder: DomId,
    /// PCIBack host (until destroyed).
    pub pciback: Option<DomId>,
    /// NetBack hosts, one per NIC.
    pub netbacks: Vec<DomId>,
    /// BlkBack hosts, one per disk controller.
    pub blkbacks: Vec<DomId>,
    /// Toolstack hosts.
    pub toolstacks: Vec<DomId>,
}

/// A guest VM plus its device attachments.
#[derive(Debug)]
pub struct GuestHandle {
    /// The guest domain.
    pub dom: DomId,
    /// Guest name.
    pub name: String,
    /// Sharing constraint.
    pub constraint: ConstraintTag,
    /// Managing toolstack.
    pub toolstack: DomId,
    /// Network frontend, if a vif is attached.
    pub netfront: Option<NetFront>,
    /// Block frontend, if a vbd is attached.
    pub blkfront: Option<BlkFront>,
    /// Serving NetBack domain.
    pub netback: Option<DomId>,
    /// Serving BlkBack domain.
    pub blkback: Option<DomId>,
    /// The per-guest device-model domain (HVM guests on Xoar).
    pub qemu: Option<DomId>,
}

/// Per-guest creation parameters.
#[derive(Debug, Clone)]
pub struct GuestConfig {
    /// Guest name.
    pub name: String,
    /// Memory in MiB (the evaluation guests use 1024).
    pub memory_mib: u64,
    /// VCPUs (the evaluation guests use 2).
    pub vcpus: u32,
    /// Kernel selection.
    pub kernel: KernelSpec,
    /// Sharing constraint (§3.2.1).
    pub constraint: ConstraintTag,
    /// Virtual disk size in bytes (the evaluation guests use 15 GB).
    pub disk_bytes: u64,
    /// Whether the guest is HVM and needs device emulation.
    pub hvm: bool,
}

impl GuestConfig {
    /// The evaluation guest: Ubuntu 10.04, 2 VCPUs, 1 GB RAM, 15 GB disk.
    pub fn evaluation_guest(name: &str) -> Self {
        GuestConfig {
            name: name.to_string(),
            memory_mib: 1024,
            vcpus: 2,
            kernel: KernelSpec::Library("vmlinuz-2.6.31-pvops".into()),
            constraint: ConstraintTag::none(),
            disk_bytes: 15 * 1024 * 1024 * 1024,
            hvm: false,
        }
    }
}

/// The assembled platform.
pub struct Platform {
    /// Architecture.
    pub mode: PlatformMode,
    /// The hypervisor.
    pub hv: Hypervisor,
    /// XenStore.
    pub xs: XenStore,
    /// Service-domain identities.
    pub services: ServiceDoms,
    /// The Builder service.
    pub builder: Builder,
    /// The console service.
    pub console_mgr: ConsoleManager,
    /// PCIBack (present until destroyed).
    pub pciback: Option<PciBack>,
    /// NetBack instances, aligned with `services.netbacks`.
    pub netbacks: Vec<NetBack>,
    /// BlkBack instances, aligned with `services.blkbacks`.
    pub blkbacks: Vec<BlkBack>,
    /// Network ring hub.
    pub net_hub: NetRingHub,
    /// Block ring hub.
    pub blk_hub: BlkRingHub,
    /// The external wire.
    pub wire: WireEndpoint,
    /// The virtual network fabric, once enabled ([`Platform::enable_fabric`]).
    /// `None` means NetBacks terminate straight into the wire, as before.
    pub fabric: Option<Fabric>,
    /// The audit log.
    pub audit: AuditLog,
    /// Per-guest QEMU device models, keyed by guest.
    pub qemus: HashMap<DomId, QemuDeviceModel>,
    /// The Xoar configuration this platform booted with (None for the
    /// stock baseline).
    pub xoar_config: Option<XoarConfig>,
    /// Constraint tags currently adopted by shard instances.
    shard_tags: HashMap<DomId, ConstraintTag>,
    guests: HashMap<DomId, GuestHandle>,
    /// Sealed clone templates, keyed by the template domain.
    templates: HashMap<DomId, GuestTemplate>,
}

/// A sealed snapshot-fork template: everything needed to stamp out new
/// guests without a Builder round-trip.
///
/// The memory image lives in the hypervisor (frozen, refcounted frames
/// armed by `DomctlCloneDomain`); this struct carries the platform-level
/// remainder — the XenStore subtree, the device topology, and the root
/// image every clone shares until its first block write.
#[derive(Debug)]
pub struct GuestTemplate {
    /// The sealed template domain.
    pub dom: DomId,
    /// Template guest name (clones get their own names).
    pub name: String,
    /// The capturing toolstack.
    pub toolstack: DomId,
    /// Sharing constraint inherited by clones.
    pub constraint: ConstraintTag,
    /// Memory reservation clones are accounted at, MiB.
    pub memory_mib: u64,
    /// Root disk image clones share (copy-on-write at the image level is
    /// out of scope; clones attach read-mostly to the template's image).
    pub image: String,
    /// Serving NetBack for the template's vif.
    pub netback: Option<DomId>,
    /// Serving BlkBack for the template's vbd.
    pub blkback: Option<DomId>,
    /// Captured `/local/domain/<id>` subtree as (relative path, value).
    guest_nodes: Vec<(String, String)>,
    /// Captured backend rows: (backend, kind, index, relative key, value).
    backend_nodes: Vec<(DomId, DeviceKind, u32, String, String)>,
}

/// Software releases recorded in the audit log at link time.
const NETBACK_RELEASE: &str = "netback-2.6.31";
const BLKBACK_RELEASE: &str = "blkback-2.6.31";

impl Platform {
    // ================= construction =================

    /// Builds the stock Xen baseline: one Dom0 with everything in it.
    pub fn stock_xen() -> Self {
        let mut hv = Hypervisor::with_default_host();
        hv.dom0_failure_is_fatal = true;
        let dom0 = hv
            .create_boot_domain("dom0", DomainRole::ControlVm, 750, PrivilegeSet::dom0())
            .expect("fresh hypervisor accepts dom0");
        let mut xs = XenStore::new();
        xs.set_privileged(dom0, true);

        let bus = PciBus::testbed();
        let nic_addr = bus.of_class(PciClass::Network)[0];
        let disk_addr = bus.of_class(PciClass::Storage)[0];
        let mut pciback = PciBack::new(dom0, bus);
        pciback.assign(nic_addr, dom0).expect("testbed NIC");
        pciback.assign(disk_addr, dom0).expect("testbed disk");

        let mut console_mgr = ConsoleManager::new(dom0);
        console_mgr.register_guest(dom0);

        let mut blkback = BlkBack::new(dom0, DiskModel::sata_7200(disk_addr));
        let _ = &mut blkback;
        Platform {
            mode: PlatformMode::StockXen,
            services: ServiceDoms {
                xenstore: dom0,
                xenstore_state: dom0,
                console: Some(dom0),
                builder: dom0,
                pciback: Some(dom0),
                netbacks: vec![dom0],
                blkbacks: vec![dom0],
                toolstacks: vec![dom0],
            },
            builder: Builder::new(dom0),
            console_mgr,
            pciback: Some(pciback),
            netbacks: vec![NetBack::new(dom0, NicModel::gigabit(nic_addr))],
            blkbacks: vec![blkback],
            net_hub: NetRingHub::new(),
            blk_hub: BlkRingHub::new(),
            wire: WireEndpoint::new(),
            fabric: None,
            audit: AuditLog::new(),
            qemus: HashMap::new(),
            xoar_config: None,
            shard_tags: HashMap::new(),
            guests: HashMap::new(),
            templates: HashMap::new(),
            hv,
            xs,
        }
    }

    /// Builds the Xoar platform, executing the boot sequence of §5.2.
    pub fn xoar(cfg: XoarConfig) -> Self {
        let mut hv = Hypervisor::with_default_host();
        hv.set_tracing(cfg.trace_hypercalls);
        // §5.8: the hypervisor no longer treats a DomId-0 failure as
        // fatal, "to allow the Bootstrapper to complete execution and
        // quit".
        hv.dom0_failure_is_fatal = false;

        // Xen creates the Bootstrapper at host boot.
        let mut boot_privs = PrivilegeSet::default();
        for id in ShardSpec::of(ShardKind::Bootstrapper).hypercall_whitelist() {
            boot_privs.permit_hypercall(id);
        }
        boot_privs.map_foreign_any = true; // nanOS boot builder rights.
        let bootstrapper = hv
            .create_boot_domain("bootstrapper", DomainRole::ControlVm, 32, boot_privs)
            .expect("fresh hypervisor accepts bootstrapper");

        let mut xs = XenStore::new();
        xs.set_privileged(bootstrapper, true);

        // Boot order (§5.2): XenStore (State then Logic) → Console Manager
        // → Builder → PCIBack → driver domains → toolstacks.
        let xenstore_state =
            Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::XenStoreState, 0);
        let xenstore =
            Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::XenStoreLogic, 0);
        xs.set_privileged(xenstore, true); // The store trusts its own host.
        let console = cfg.with_console.then(|| {
            Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::ConsoleManager, 0)
        });
        let builder_dom = Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::Builder, 0);
        let pciback_dom = Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::PciBack, 0);

        let bus = PciBus::testbed();
        let nic_addrs = bus.of_class(PciClass::Network);
        let disk_addrs = bus.of_class(PciClass::Storage);
        let mut pciback = PciBack::new(pciback_dom, bus);

        // PCIBack's udev rules request one driver domain per controller.
        let mut netback_doms = Vec::new();
        let mut netbacks = Vec::new();
        for (i, addr) in nic_addrs.iter().enumerate() {
            let dom = Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::NetBack, i);
            hv.hypercall(
                bootstrapper,
                Hypercall::DomctlAssignDevice {
                    target: dom,
                    device: *addr,
                },
            )
            .expect("NIC passthrough");
            pciback.assign(*addr, dom).expect("bus model assign");
            netbacks.push(NetBack::new(dom, NicModel::gigabit(*addr)));
            netback_doms.push(dom);
        }
        let mut blkback_doms = Vec::new();
        let mut blkbacks = Vec::new();
        for (i, addr) in disk_addrs.iter().enumerate() {
            let dom = Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::BlkBack, i);
            hv.hypercall(
                bootstrapper,
                Hypercall::DomctlAssignDevice {
                    target: dom,
                    device: *addr,
                },
            )
            .expect("disk passthrough");
            pciback.assign(*addr, dom).expect("bus model assign");
            blkbacks.push(BlkBack::new(dom, DiskModel::sata_7200(*addr)));
            blkback_doms.push(dom);
        }

        // §5.8: the hardware privileges stock Xen hard-codes to Dom0 are
        // remapped to the correct shards — "Console Manager requiring
        // signals and console I/O-port access, and PCIBack requiring the
        // remaining I/O-port and MMIO privileges, along with access to
        // the PCI bus."
        if let Some(console_dom) = console {
            hv.hypercall(
                bootstrapper,
                Hypercall::DomctlIoPortPermission {
                    target: console_dom,
                    range: xoar_hypervisor::privilege::IoPortRange::new(0x3f8, 0x3ff),
                },
            )
            .expect("console port remap");
        }
        // PCI configuration-space ports and the device MMIO window.
        hv.hypercall(
            bootstrapper,
            Hypercall::DomctlIoPortPermission {
                target: pciback_dom,
                range: xoar_hypervisor::privilege::IoPortRange::new(0xcf8, 0xcff),
            },
        )
        .expect("pci port remap");
        hv.hypercall(
            bootstrapper,
            Hypercall::DomctlMmioPermission {
                target: pciback_dom,
                range: xoar_hypervisor::privilege::MmioRange {
                    start_mfn: 0xf000_0,
                    frames: 0x1000,
                },
            },
        )
        .expect("pci mmio remap");

        // Toolstacks last.
        let mut toolstacks = Vec::new();
        for i in 0..cfg.toolstacks.max(1) {
            let dom = Self::boot_shard(&mut hv, &mut xs, bootstrapper, ShardKind::Toolstack, i);
            xs.set_privileged(dom, true); // Toolstacks write device trees.
                                          // Delegate every service shard to the toolstack (§3.1's
                                          // allow_delegation, used to authorise shard selection).
            for s in netback_doms.iter().chain(&blkback_doms) {
                hv.hypercall(
                    bootstrapper,
                    Hypercall::DomctlDelegate {
                        target: *s,
                        manager: dom,
                    },
                )
                .expect("delegation at boot");
            }
            toolstacks.push(dom);
        }
        xs.set_privileged(builder_dom, true);

        // Steady state: PCIBack seals and is destroyed — unless kept for
        // dynamic provisioning (hotplug / SR-IOV, §5.3), in which case it
        // stays live and unsealed. The Bootstrapper self-destructs either
        // way.
        let pciback_opt = if cfg.keep_pciback {
            Some(pciback)
        } else {
            pciback.seal();
            hv.crash_domain(pciback_dom).expect("pciback destroyed");
            None
        };
        hv.crash_domain(bootstrapper).expect("bootstrapper exits");

        let mut console_mgr = ConsoleManager::new(console.unwrap_or(builder_dom));
        if let Some(c) = console {
            console_mgr.register_guest(c);
        }

        Platform {
            mode: PlatformMode::Xoar,
            services: ServiceDoms {
                xenstore,
                xenstore_state,
                console,
                builder: builder_dom,
                pciback: cfg.keep_pciback.then_some(pciback_dom),
                netbacks: netback_doms,
                blkbacks: blkback_doms,
                toolstacks,
            },
            builder: Builder::new(builder_dom),
            console_mgr,
            pciback: pciback_opt,
            netbacks,
            blkbacks,
            net_hub: NetRingHub::new(),
            blk_hub: BlkRingHub::new(),
            wire: WireEndpoint::new(),
            fabric: None,
            audit: AuditLog::new(),
            qemus: HashMap::new(),
            xoar_config: Some(cfg),
            shard_tags: HashMap::new(),
            guests: HashMap::new(),
            templates: HashMap::new(),
            hv,
            xs,
        }
    }

    /// Boots one shard with the least privilege of its class.
    fn boot_shard(
        hv: &mut Hypervisor,
        xs: &mut XenStore,
        bootstrapper: DomId,
        kind: ShardKind,
        index: usize,
    ) -> DomId {
        let spec = ShardSpec::of(kind);
        let name = if index == 0 {
            spec.name.to_string()
        } else {
            format!("{}-{}", spec.name, index)
        };
        let dom = hv
            .hypercall(
                bootstrapper,
                Hypercall::DomctlCreateDomain {
                    name,
                    memory_mib: spec.memory_mib,
                    vcpus: 1,
                },
            )
            .expect("boot-time domain creation")
            .dom_id()
            .unwrap();
        hv.hypercall(
            bootstrapper,
            Hypercall::MemoryPopulate {
                target: dom,
                frames: spec.memory_mib.max(4),
            },
        )
        .expect("boot-time populate");
        for id in spec.hypercall_whitelist() {
            hv.hypercall(
                bootstrapper,
                Hypercall::DomctlPermitHypercall { target: dom, id },
            )
            .expect("boot-time whitelist");
        }
        hv.hypercall(bootstrapper, Hypercall::DomctlUnpauseDomain { target: dom })
            .expect("boot-time unpause");
        // Shards are marked as such via the role hypercall — "from the
        // perspective of the hypervisor shards are the only virtual
        // machines capable of invoking privileged functionality".
        hv.hypercall(
            bootstrapper,
            Hypercall::DomctlSetRole {
                target: dom,
                shard: true,
            },
        )
        .expect("boot-time role");
        // §6.2: the Builder alone retains arbitrary guest-memory access.
        hv.domain_mut(dom)
            .expect("just created")
            .privileges
            .map_foreign_any = spec.arbitrary_memory_access();
        let _ = xs.create_domain_home(bootstrapper, dom);
        dom
    }

    // ================= introspection =================

    /// The guest handles, sorted by domain ID.
    pub fn guests(&self) -> Vec<&GuestHandle> {
        let mut v: Vec<&GuestHandle> = self.guests.values().collect();
        v.sort_by_key(|g| g.dom.0);
        v
    }

    /// One guest's handle.
    pub fn guest(&self, dom: DomId) -> Option<&GuestHandle> {
        self.guests.get(&dom)
    }

    /// Mutable guest handle (workload drivers).
    pub fn guest_mut(&mut self, dom: DomId) -> Option<&mut GuestHandle> {
        self.guests.get_mut(&dom)
    }

    /// Total platform memory consumed by service components, MiB.
    ///
    /// For stock Xen this is Dom0's reservation; for Xoar the sum of live
    /// shard reservations — the quantity Table 6.1 reports.
    pub fn service_memory_mib(&self) -> u64 {
        match self.mode {
            PlatformMode::StockXen => self
                .hv
                .domain(self.services.toolstacks[0])
                .map(|d| d.memory_mib)
                .unwrap_or(0),
            PlatformMode::Xoar => self
                .hv
                .domain_ids()
                .into_iter()
                .filter_map(|id| self.hv.domain(id).ok())
                .filter(|d| d.role == DomainRole::Shard && d.state != DomainState::Dead)
                .map(|d| d.memory_mib)
                .sum(),
        }
    }

    /// The constraint tag a shard instance has adopted, if any.
    pub fn shard_tag(&self, shard: DomId) -> Option<&ConstraintTag> {
        self.shard_tags.get(&shard)
    }

    // ================= guest lifecycle =================

    /// Creates a guest VM through `toolstack`, wiring its devices.
    ///
    /// This is the full §5 flow: constraint-checked shard selection, a
    /// Builder request, XenStore device wiring, split-driver negotiation,
    /// BlkBack image provisioning via the proxy daemon, and audit-log
    /// entries for every link.
    pub fn create_guest(&mut self, toolstack: DomId, cfg: GuestConfig) -> HvResult<DomId> {
        if !self.services.toolstacks.contains(&toolstack) {
            return Err(HvError::PermissionDenied {
                caller: toolstack,
                privilege: "toolstack role".into(),
            });
        }
        // Constraint-checked shard selection (§3.2.1): fail VM creation
        // rather than force an undesired sharing configuration.
        let netback = self.select_shard(&self.services.netbacks.clone(), &cfg.constraint)?;
        let blkback = self.select_shard(&self.services.blkbacks.clone(), &cfg.constraint)?;

        // A toolstack may only use shards delegated to it (§5.6).
        for shard in [netback, blkback] {
            let d = self.hv.domain(shard)?;
            let delegated = d.privileges.delegated_to.contains(&toolstack) || d.id == toolstack; // Stock Xen: dom0 is its own backend.
            if !delegated {
                return Err(HvError::PermissionDenied {
                    caller: toolstack,
                    privilege: format!("use of undelegated shard {shard}"),
                });
            }
        }

        let built = self.builder.build(
            &mut self.hv,
            &mut self.xs,
            self.services.xenstore,
            self.services.console.unwrap_or(self.services.xenstore),
            &BuildRequest {
                name: cfg.name.clone(),
                memory_mib: cfg.memory_mib,
                vcpus: cfg.vcpus,
                kernel: cfg.kernel.clone(),
                on_behalf_of: toolstack,
            },
        )?;
        let guest = built.guest;
        {
            let d = self.hv.domain_mut(guest)?;
            d.constraint_group = cfg.constraint.group.clone();
            d.delegated_shards.insert(self.services.xenstore);
            if let Some(c) = self.services.console {
                d.delegated_shards.insert(c);
            }
            d.delegated_shards.insert(netback);
            d.delegated_shards.insert(blkback);
            d.delegated_shards.insert(toolstack);
        }
        let now = self.hv.now_ns();
        self.audit.append(
            now,
            AuditEvent::VmCreated {
                guest,
                name: cfg.name.clone(),
                toolstack,
            },
        );

        // Network device. Ring pages live at fixed guest-local PFNs just
        // past the magic pages the Builder laid out (start-info, store
        // ring, console ring, kernel).
        let vif_ring_pfn = Pfn(4);
        let net_conn = xenbus::negotiate(
            &mut self.hv,
            &mut self.xs,
            &mut self.net_hub,
            toolstack,
            guest,
            netback,
            DeviceKind::Vif,
            0,
            vif_ring_pfn,
        )
        .map_err(|e| HvError::InvalidArgument(format!("vif negotiation: {e}")))?;
        let nb_idx = self
            .services
            .netbacks
            .iter()
            .position(|d| *d == netback)
            .unwrap();
        self.netbacks[nb_idx].attach(net_conn);
        self.fabric_attach(net_conn);
        self.audit.append(
            now,
            AuditEvent::ShardLinked {
                guest,
                shard: netback,
                kind: ShardKind::NetBack,
                release: NETBACK_RELEASE.into(),
            },
        );

        // Block device: provision the image through the proxy daemon, then
        // negotiate.
        let image = format!("{}-root.img", cfg.name);
        let bb_idx = self
            .services
            .blkbacks
            .iter()
            .position(|d| *d == blkback)
            .unwrap();
        self.blkbacks[bb_idx]
            .images
            .create_image(&image, cfg.disk_bytes)
            .map_err(HvError::InvalidArgument)?;
        let vbd_ring_pfn = Pfn(6);
        let blk_conn = xenbus::negotiate(
            &mut self.hv,
            &mut self.xs,
            &mut self.blk_hub,
            toolstack,
            guest,
            blkback,
            DeviceKind::Vbd,
            0,
            vbd_ring_pfn,
        )
        .map_err(|e| HvError::InvalidArgument(format!("vbd negotiation: {e}")))?;
        self.blkbacks[bb_idx]
            .attach(blk_conn, &image)
            .map_err(HvError::InvalidArgument)?;
        self.audit.append(
            now,
            AuditEvent::ShardLinked {
                guest,
                shard: blkback,
                kind: ShardKind::BlkBack,
                release: BLKBACK_RELEASE.into(),
            },
        );

        // Console.
        self.console_mgr.register_guest(guest);

        // Device emulation for HVM guests.
        let qemu = if cfg.hvm {
            Some(self.spawn_device_model(guest)?)
        } else {
            None
        };

        // Adopt constraint tags on first use.
        self.adopt_tag(netback, &cfg.constraint);
        self.adopt_tag(blkback, &cfg.constraint);

        self.guests.insert(
            guest,
            GuestHandle {
                dom: guest,
                name: cfg.name,
                constraint: cfg.constraint,
                toolstack,
                netfront: Some(NetFront::new(net_conn)),
                blkfront: Some(BlkFront::new(blk_conn)),
                netback: Some(netback),
                blkback: Some(blkback),
                qemu,
            },
        );
        Ok(guest)
    }

    /// Spawns the device model for an HVM guest: a per-guest stub QemuVM
    /// in Xoar, or an in-Dom0 process in stock Xen.
    fn spawn_device_model(&mut self, guest: DomId) -> HvResult<DomId> {
        match self.mode {
            PlatformMode::StockXen => {
                let dom0 = self.services.builder;
                self.qemus.insert(guest, QemuDeviceModel::new(dom0, guest));
                Ok(dom0)
            }
            PlatformMode::Xoar => {
                let builder = self.services.builder;
                let spec = ShardSpec::of(ShardKind::QemuVm);
                let qemu_dom = self
                    .hv
                    .hypercall(
                        builder,
                        Hypercall::DomctlCreateDomain {
                            name: format!("qemu-{}", guest.0),
                            memory_mib: spec.memory_mib,
                            vcpus: 1,
                        },
                    )?
                    .dom_id()?;
                self.hv.hypercall(
                    builder,
                    Hypercall::MemoryPopulate {
                        target: qemu_dom,
                        frames: 16,
                    },
                )?;
                for id in spec.hypercall_whitelist() {
                    self.hv.hypercall(
                        builder,
                        Hypercall::DomctlPermitHypercall {
                            target: qemu_dom,
                            id,
                        },
                    )?;
                }
                // The "privileged for another VM" flag of §5.6.
                self.hv.hypercall(
                    builder,
                    Hypercall::DomctlSetPrivilegedFor {
                        subject: qemu_dom,
                        object: guest,
                    },
                )?;
                self.hv
                    .hypercall(builder, Hypercall::DomctlUnpauseDomain { target: qemu_dom })?;
                self.hv.hypercall(
                    builder,
                    Hypercall::DomctlSetRole {
                        target: qemu_dom,
                        shard: true,
                    },
                )?;
                self.qemus
                    .insert(guest, QemuDeviceModel::new(qemu_dom, guest));
                Ok(qemu_dom)
            }
        }
    }

    /// Destroys a guest through its managing toolstack.
    pub fn destroy_guest(&mut self, toolstack: DomId, guest: DomId) -> HvResult<()> {
        // The hypercall enforces the parent-toolstack check.
        self.hv
            .hypercall(toolstack, Hypercall::DomctlDestroyDomain { target: guest })?;
        let now = self.hv.now_ns();
        if let Some(handle) = self.guests.remove(&guest) {
            if let Some(nb) = handle.netback {
                let idx = self
                    .services
                    .netbacks
                    .iter()
                    .position(|d| *d == nb)
                    .unwrap();
                self.netbacks[idx].detach_guest(guest);
                self.net_hub.detach_granter(guest);
                let _ = self.xs.rm(
                    toolstack,
                    &xenbus::backend_path(nb, DeviceKind::Vif, guest, 0),
                );
                self.audit
                    .append(now, AuditEvent::ShardUnlinked { guest, shard: nb });
                self.release_tag_if_unused(nb);
            }
            if let Some(bb) = handle.blkback {
                let idx = self
                    .services
                    .blkbacks
                    .iter()
                    .position(|d| *d == bb)
                    .unwrap();
                self.blkbacks[idx].detach_guest(guest);
                // The root image is deleted with its guest (the toolstack
                // proxies the request to BlkBack's daemon, §5.4).
                let _ = self.blkbacks[idx]
                    .images
                    .delete_image(&format!("{}-root.img", handle.name));
                let _ = self.xs.rm(
                    toolstack,
                    &xenbus::backend_path(bb, DeviceKind::Vbd, guest, 0),
                );
                self.blk_hub.detach_granter(guest);
                self.audit
                    .append(now, AuditEvent::ShardUnlinked { guest, shard: bb });
                self.release_tag_if_unused(bb);
            }
            if let Some(q) = handle.qemu {
                if self.mode == PlatformMode::Xoar {
                    let builder = self.services.builder;
                    let _ = self
                        .hv
                        .hypercall(builder, Hypercall::DomctlDestroyDomain { target: q });
                }
                self.qemus.remove(&guest);
            }
        }
        self.console_mgr.remove_guest(guest);
        let _ = self.xs.remove_domain(self.services.xenstore, guest);
        self.templates.remove(&guest);
        self.audit.append(now, AuditEvent::VmDestroyed { guest });
        Ok(())
    }

    // ================= snapshot-fork cloning =================

    /// The sealed template captured from `dom`, if any.
    pub fn template(&self, dom: DomId) -> Option<&GuestTemplate> {
        self.templates.get(&dom)
    }

    /// Captures a pre-booted guest as a clone template.
    ///
    /// The guest is paused in place; its XenStore subtree (frontend and
    /// backend rows) is recorded so clones can be stamped without the
    /// toolstack re-deriving any of it. The memory image is sealed lazily
    /// by the first `DomctlCloneDomain` (frozen, refcounted frames).
    pub fn capture_template(&mut self, toolstack: DomId, guest: DomId) -> HvResult<()> {
        let handle = self
            .guests
            .get(&guest)
            .ok_or(HvError::NoSuchDomain(guest))?;
        if handle.toolstack != toolstack {
            return Err(HvError::PermissionDenied {
                caller: toolstack,
                privilege: format!("capture of guest {guest} managed elsewhere"),
            });
        }
        if handle.qemu.is_some() {
            return Err(HvError::InvalidArgument(
                "HVM guests with device models cannot be templates".into(),
            ));
        }
        let (name, constraint, netback, blkback) = (
            handle.name.clone(),
            handle.constraint.clone(),
            handle.netback,
            handle.blkback,
        );
        if self.hv.domain(guest)?.state == DomainState::Running {
            self.hv
                .hypercall(toolstack, Hypercall::DomctlPauseDomain { target: guest })?;
        }
        // Capture the guest's own subtree, then the backend rows that
        // reference it (toolstacks are XenStore-privileged, so the walk
        // sees every node).
        let root = format!("/local/domain/{}", guest.0);
        let mut guest_nodes = Vec::new();
        self.walk_subtree(toolstack, &root, "", &mut guest_nodes);
        let mut backend_nodes = Vec::new();
        for (backend, kind) in [(netback, DeviceKind::Vif), (blkback, DeviceKind::Vbd)] {
            let Some(backend) = backend else { continue };
            let bp = xenbus::backend_path(backend, kind, guest, 0);
            let mut rows = Vec::new();
            self.walk_subtree(toolstack, &bp, "", &mut rows);
            backend_nodes.extend(
                rows.into_iter()
                    .map(|(suffix, value)| (backend, kind, 0u32, suffix, value)),
            );
        }
        let memory_mib = self.hv.domain(guest)?.memory_mib;
        self.templates.insert(
            guest,
            GuestTemplate {
                dom: guest,
                name: name.clone(),
                toolstack,
                constraint,
                memory_mib,
                image: format!("{name}-root.img"),
                netback,
                blkback,
                guest_nodes,
                backend_nodes,
            },
        );
        Ok(())
    }

    /// Depth-first capture of a XenStore subtree as (relative path, value).
    fn walk_subtree(
        &mut self,
        actor: DomId,
        root: &str,
        prefix: &str,
        out: &mut Vec<(String, String)>,
    ) {
        let node = if prefix.is_empty() {
            root.to_string()
        } else {
            format!("{root}/{prefix}")
        };
        if !prefix.is_empty() {
            if let Ok(v) = self.xs.read_str(actor, &node) {
                out.push((prefix.to_string(), v));
            }
        }
        let Ok(children) = self.xs.directory(actor, &node) else {
            return;
        };
        for child in children {
            let next = if prefix.is_empty() {
                child
            } else {
                format!("{prefix}/{child}")
            };
            self.walk_subtree(actor, root, &next, out);
        }
    }

    /// Rewrites captured XenStore text for a clone: the template's domain
    /// ID is retargeted wherever the xenbus conventions embed it.
    fn retarget(value: &str, from: DomId, to: DomId) -> String {
        if value == from.0.to_string() {
            return to.0.to_string();
        }
        value
            .replace(
                &format!("/domain/{}/", from.0),
                &format!("/domain/{}/", to.0),
            )
            .replace(&format!("/vif/{}/", from.0), &format!("/vif/{}/", to.0))
            .replace(&format!("/vbd/{}/", from.0), &format!("/vbd/{}/", to.0))
    }

    /// Snapshot-fork fast path: stamps a new guest from a sealed template.
    ///
    /// No Builder round-trip and no page copies: the hypervisor forks the
    /// address space copy-on-write (`DomctlCloneDomain`, which also
    /// replays the template's grant entries against privatised ring
    /// pages), then this method stamps the captured XenStore subtree,
    /// binds fresh event channels, and attaches the clone to the
    /// template's backends — sharing its root image CoW.
    pub fn clone_guest(
        &mut self,
        toolstack: DomId,
        template: DomId,
        name: &str,
    ) -> HvResult<DomId> {
        let tpl = self
            .templates
            .get(&template)
            .ok_or(HvError::NoSuchDomain(template))?;
        if tpl.toolstack != toolstack {
            return Err(HvError::PermissionDenied {
                caller: toolstack,
                privilege: format!("clone of template {template} captured elsewhere"),
            });
        }
        let (constraint, image, netback, blkback) = (
            tpl.constraint.clone(),
            tpl.image.clone(),
            tpl.netback,
            tpl.blkback,
        );
        let clone = self
            .hv
            .hypercall(
                toolstack,
                Hypercall::DomctlCloneDomain {
                    template,
                    name: name.to_string(),
                },
            )?
            .dom_id()?;
        let now = self.hv.now_ns();
        self.audit.append(
            now,
            AuditEvent::VmCloned {
                guest: clone,
                template,
                toolstack,
            },
        );

        // Stamp the captured XenStore subtree under the clone's home.
        self.xs
            .create_domain_home(toolstack, clone)
            .map_err(|e| HvError::InvalidArgument(format!("xenstore: {e}")))?;
        let tpl = &self.templates[&template];
        let home = format!("/local/domain/{}", clone.0);
        let guest_writes: Vec<(String, String)> = tpl
            .guest_nodes
            .iter()
            .map(|(suffix, value)| {
                (
                    format!("{home}/{suffix}"),
                    Self::retarget(value, template, clone),
                )
            })
            .collect();
        let backend_writes: Vec<(String, String)> = tpl
            .backend_nodes
            .iter()
            .map(|(backend, kind, index, suffix, value)| {
                (
                    format!(
                        "{}/{}",
                        xenbus::backend_path(*backend, *kind, clone, *index),
                        suffix
                    ),
                    Self::retarget(value, template, clone),
                )
            })
            .collect();
        for (path, value) in guest_writes.iter().chain(backend_writes.iter()) {
            self.xs
                .write_str(toolstack, path, value)
                .map_err(|e| HvError::InvalidArgument(format!("xenstore: {e}")))?;
        }
        let _ = self.xs.write_str(toolstack, &format!("{home}/name"), name);

        // Wire the split devices against the grants `DomctlCloneDomain`
        // stamped: fresh event channels, same backends, no renegotiation.
        let netfront = match netback {
            Some(nb) => Some(NetFront::new(self.wire_cloned_device(
                clone,
                nb,
                DeviceKind::Vif,
                Pfn(4),
                now,
                ShardKind::NetBack,
                NETBACK_RELEASE,
            )?)),
            None => None,
        };
        let blkfront = match blkback {
            Some(bb) => {
                let conn = self.wire_cloned_device(
                    clone,
                    bb,
                    DeviceKind::Vbd,
                    Pfn(6),
                    now,
                    ShardKind::BlkBack,
                    BLKBACK_RELEASE,
                )?;
                let idx = self
                    .services
                    .blkbacks
                    .iter()
                    .position(|d| *d == bb)
                    .unwrap();
                self.blkbacks[idx]
                    .attach_cow(conn, &image)
                    .map_err(HvError::InvalidArgument)?;
                Some(BlkFront::new(conn))
            }
            None => None,
        };

        self.console_mgr.register_guest(clone);
        self.guests.insert(
            clone,
            GuestHandle {
                dom: clone,
                name: name.to_string(),
                constraint,
                toolstack,
                netfront,
                blkfront,
                netback,
                blkback,
                qemu: None,
            },
        );
        Ok(clone)
    }

    /// Connects one split device of a freshly stamped clone: locates the
    /// grant `DomctlCloneDomain` replayed for the ring page, binds a fresh
    /// event-channel pair, and registers the ring with the hub.
    #[allow(clippy::too_many_arguments)]
    fn wire_cloned_device(
        &mut self,
        clone: DomId,
        backend: DomId,
        kind: DeviceKind,
        ring_pfn: Pfn,
        now: u64,
        shard_kind: ShardKind,
        release: &str,
    ) -> HvResult<xenbus::Connection> {
        let gref = self
            .hv
            .grant_table(clone)
            .ok_or(HvError::NoSuchDomain(clone))?
            .granted_to(backend)
            .into_iter()
            .find(|(_, e)| e.pfn == ring_pfn)
            .map(|(gref, _)| gref)
            .ok_or_else(|| {
                HvError::InvalidArgument(format!("no stamped {} ring grant", kind.name()))
            })?;
        let front_port = self
            .hv
            .hypercall(clone, Hypercall::EvtchnAllocUnbound { remote: backend })?
            .port()?;
        let back_port = self
            .hv
            .hypercall(
                backend,
                Hypercall::EvtchnBindInterdomain {
                    remote: clone,
                    remote_port: front_port,
                },
            )?
            .port()?;
        let ring = xoar_devices::RingId {
            granter: clone,
            gref,
        };
        match kind {
            DeviceKind::Vif => self.net_hub.create(ring),
            _ => self.blk_hub.create(ring),
        };
        let conn = xenbus::Connection {
            guest: clone,
            backend,
            kind,
            index: 0,
            ring,
            front_port,
            back_port,
        };
        if kind == DeviceKind::Vif {
            let idx = self
                .services
                .netbacks
                .iter()
                .position(|d| *d == backend)
                .unwrap();
            self.netbacks[idx].attach(conn);
            self.fabric_attach(conn);
        }
        self.audit.append(
            now,
            AuditEvent::ShardLinked {
                guest: clone,
                shard: backend,
                kind: shard_kind,
                release: release.into(),
            },
        );
        Ok(conn)
    }

    // ================= constraint groups =================

    fn select_shard(&self, candidates: &[DomId], tag: &ConstraintTag) -> HvResult<DomId> {
        // Prefer a shard already serving this tag, then an unadopted one.
        for c in candidates {
            if self.shard_tags.get(c).is_some_and(|t| t.compatible(tag)) {
                return Ok(*c);
            }
        }
        for c in candidates {
            if !self.shard_tags.contains_key(c) {
                return Ok(*c);
            }
        }
        Err(HvError::LimitExceeded(
            "no shard satisfies the constraint group; VM creation fails rather than \
             forcing an undesired sharing configuration",
        ))
    }

    fn adopt_tag(&mut self, shard: DomId, tag: &ConstraintTag) {
        self.shard_tags.entry(shard).or_insert_with(|| tag.clone());
    }

    fn release_tag_if_unused(&mut self, shard: DomId) {
        let still_used = self
            .guests
            .values()
            .any(|g| g.netback == Some(shard) || g.blkback == Some(shard));
        if !still_used {
            self.shard_tags.remove(&shard);
        }
    }

    // ================= data-path convenience =================
    //
    // Workload drivers need a frontend and the ring hub at once; these
    // helpers split the borrows internally.

    /// Transmits an aggregate of `bytes` on `flow` from `guest`'s vif.
    pub fn net_transmit(
        &mut self,
        guest: DomId,
        flow: u64,
        bytes: usize,
    ) -> Result<u64, xoar_devices::ring::RingError> {
        let h = self
            .guests
            .get_mut(&guest)
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let nf = h
            .netfront
            .as_mut()
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        nf.transmit(&mut self.net_hub, flow, bytes)
    }

    /// Transmits a batch of aggregates on `flow` from `guest`'s vif: one
    /// ring operation for all frames, then a single trailing notify to the
    /// backend carried in one [`Hypercall::Multicall`]. N frames cost one
    /// ring push and one hypercall boundary crossing instead of N each.
    /// All-or-nothing: a ring without room for the whole batch queues
    /// nothing and returns `Full`.
    pub fn net_transmit_batch(
        &mut self,
        guest: DomId,
        flow: u64,
        sizes: &[usize],
    ) -> Result<u64, xoar_devices::ring::RingError> {
        let h = self
            .guests
            .get_mut(&guest)
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let nf = h
            .netfront
            .as_mut()
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let first = nf.transmit_many(&mut self.net_hub, flow, sizes)?;
        let port = nf.conn.front_port;
        // Best-effort notify, as in real frontends; repeated notifies
        // coalesce into one pending bit on the backend side.
        let _ = self.hv.hypercall(
            guest,
            Hypercall::Multicall {
                calls: vec![Hypercall::EvtchnSend { port }],
            },
        );
        Ok(first)
    }

    /// Transmits the page at `guest`'s `pfn` on `flow` as a shared handle:
    /// the body is read out of machine memory once and then moves through
    /// the ring, the backend, and onto the wire by refcount — zero copies.
    pub fn net_transmit_page(
        &mut self,
        guest: DomId,
        flow: u64,
        pfn: u64,
    ) -> Result<u64, xoar_devices::ring::RingError> {
        let page = self
            .hv
            .mem
            .read(guest, xoar_hypervisor::memory::Pfn(pfn))
            .map_err(|_| xoar_devices::ring::RingError::NotFound)?;
        let h = self
            .guests
            .get_mut(&guest)
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let nf = h
            .netfront
            .as_mut()
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        nf.transmit_page(&mut self.net_hub, flow, page)
    }

    /// Receives the next frame delivered to `guest`'s vif.
    pub fn net_receive(&mut self, guest: DomId) -> Option<xoar_devices::net::NetPacket> {
        let h = self.guests.get_mut(&guest)?;
        h.netfront.as_mut()?.receive(&mut self.net_hub)
    }

    /// Writes the page at `guest`'s `pfn` to its vbd at `sector`, passing
    /// the body as a shared handle end to end.
    pub fn blk_write_page(
        &mut self,
        guest: DomId,
        sector: u64,
        pfn: u64,
    ) -> Result<u64, xoar_devices::ring::RingError> {
        let page = self
            .hv
            .mem
            .read(guest, xoar_hypervisor::memory::Pfn(pfn))
            .map_err(|_| xoar_devices::ring::RingError::NotFound)?;
        let h = self
            .guests
            .get_mut(&guest)
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let bf = h
            .blkfront
            .as_mut()
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        bf.submit_write_page(&mut self.blk_hub, sector, page)
    }

    /// Submits a block request from `guest`'s vbd.
    pub fn blk_submit(
        &mut self,
        guest: DomId,
        op: xoar_devices::blk::BlkOp,
        sector: u64,
        count: u64,
    ) -> Result<u64, xoar_devices::ring::RingError> {
        let h = self
            .guests
            .get_mut(&guest)
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let bf = h
            .blkfront
            .as_mut()
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        bf.submit(&mut self.blk_hub, op, sector, count)
    }

    /// Submits a batch of block requests from `guest`'s vbd: one ring
    /// operation for the whole batch, then a single trailing notify in one
    /// [`Hypercall::Multicall`]. Returns the contiguous correlation IDs.
    /// All-or-nothing: a ring without room queues nothing (`Full`).
    pub fn blk_submit_batch(
        &mut self,
        guest: DomId,
        ops: &[(xoar_devices::blk::BlkOp, u64, u64)],
    ) -> Result<Vec<u64>, xoar_devices::ring::RingError> {
        let h = self
            .guests
            .get_mut(&guest)
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let bf = h
            .blkfront
            .as_mut()
            .ok_or(xoar_devices::ring::RingError::NotFound)?;
        let ids = bf.submit_batch(&mut self.blk_hub, ops)?;
        let port = bf.conn.front_port;
        let _ = self.hv.hypercall(
            guest,
            Hypercall::Multicall {
                calls: vec![Hypercall::EvtchnSend { port }],
            },
        );
        Ok(ids)
    }

    /// Polls one block completion for `guest`.
    pub fn blk_poll(&mut self, guest: DomId) -> Option<xoar_devices::blk::BlkResponse> {
        let h = self.guests.get_mut(&guest)?;
        h.blkfront.as_mut()?.poll(&mut self.blk_hub)
    }

    /// Runs one processing pass of every NetBack, returning aggregate
    /// statistics. With the fabric enabled, backends terminate into the
    /// switch, a switching pass delivers the batch, and each destination
    /// backend is notified exactly once through the multicall path.
    pub fn process_netbacks(&mut self) -> xoar_devices::net::NetBackStats {
        let mut agg = xoar_devices::net::NetBackStats::default();
        for nb in &mut self.netbacks {
            let s = match self.fabric.as_mut() {
                Some(fab) => nb.process_with_fabric(&mut self.net_hub, fab, &mut self.wire),
                None => nb.process(&mut self.net_hub, &mut self.wire),
            };
            agg.tx_frames += s.tx_frames;
            agg.tx_bytes += s.tx_bytes;
            agg.rx_frames += s.rx_frames;
            agg.rx_bytes += s.rx_bytes;
            agg.dropped += s.dropped;
            agg.service_ns += s.service_ns;
        }
        if let Some(fab) = self.fabric.as_mut() {
            fab.switch(&mut self.net_hub, &mut self.wire);
            // One EvtchnSend per destination backend, batched: the
            // backend signals its frontends' rx work on its own port.
            for &(backend, port) in fab.notify_targets() {
                let _ = self.hv.hypercall(
                    backend,
                    Hypercall::Multicall {
                        calls: vec![Hypercall::EvtchnSend { port }],
                    },
                );
            }
        }
        agg
    }

    // ================= virtual network fabric =================

    /// Enables the virtual network fabric, hosted by the first NetBack
    /// shard. Every existing vif attachment becomes a switch port;
    /// subsequent attaches (guest creation, cloning, renegotiation) are
    /// added automatically. Idempotent; appends nothing to the audit log
    /// (the fabric is a data-path reconfiguration inside the NetBack
    /// shard, not a new trust link).
    pub fn enable_fabric(&mut self) {
        if self.fabric.is_some() {
            return;
        }
        let host = self.services.netbacks[0];
        let mut fab = Fabric::new(host);
        for nb in &self.netbacks {
            for conn in nb.conn_iter() {
                fab.attach_port(*conn);
            }
        }
        self.fabric = Some(fab);
    }

    /// Adds `conn` as a fabric port, when the fabric is enabled.
    fn fabric_attach(&mut self, conn: xenbus::Connection) {
        if let Some(fab) = self.fabric.as_mut() {
            if conn.kind == DeviceKind::Vif {
                fab.attach_port(conn);
            }
        }
    }

    /// Opens a fabric connection `flow: src → dst` (see
    /// [`Fabric::open_flow`]). Returns false when the fabric is disabled
    /// or NAT ports are exhausted.
    pub fn fabric_open_flow(&mut self, flow: u64, src: DomId, dst: DomId) -> bool {
        self.fabric
            .as_mut()
            .is_some_and(|f| f.open_flow(flow, src, dst).is_some())
    }

    /// Closes a fabric connection, releasing its NAT port if any.
    pub fn fabric_close_flow(&mut self, flow: u64, src: DomId, dst: DomId) -> bool {
        self.fabric
            .as_mut()
            .is_some_and(|f| f.close_flow(flow, src, dst))
    }

    /// Runs one processing pass of every BlkBack, returning aggregate
    /// statistics.
    pub fn process_blkbacks(&mut self) -> xoar_devices::blk::BlkBackStats {
        let mut agg = xoar_devices::blk::BlkBackStats::default();
        for bb in &mut self.blkbacks {
            let s = bb.process(&mut self.blk_hub);
            agg.completed += s.completed;
            agg.errors += s.errors;
            agg.bytes += s.bytes;
            agg.service_ns += s.service_ns;
        }
        agg
    }

    /// Runs one content-based page-deduplication pass over the whole
    /// host (the memory-density feature of the paper's introduction:
    /// "further packing density is achieved by sharing identical pages of
    /// memory between VMs"). Returns the number of frames reclaimed.
    pub fn dedup_memory(&mut self) -> u64 {
        self.hv.mem.share_identical()
    }

    // ================= hypervisor replacement (§7.1) =================

    /// Replaces the hypervisor under executing VMs — the ReHype-style
    /// controlled reboot the paper proposes as future work: "using
    /// controlled reboots to safely replace Xen, allowing the complete
    /// virtualization platform to be upgraded and restarted without
    /// disturbing the hosted VMs."
    ///
    /// Persistent state (domains, their memory, privileges, XenStore)
    /// survives; volatile state (event channels, ring mappings) is lost
    /// and every guest's device connections are renegotiated through the
    /// standard xenbus handshake — the same renegotiation the
    /// microreboot machinery already relies on. Returns the number of
    /// guests recovered.
    pub fn rehype_restart(&mut self) -> HvResult<u64> {
        // 1. Gracefully tear down every device connection while the old
        //    hypervisor's channel state is still coherent.
        let guests: Vec<DomId> = self.guests.keys().copied().collect();
        for &g in &guests {
            let (net_conn, blk_conn) = {
                let h = self.guests.get(&g).expect("listed");
                (
                    h.netfront.as_ref().map(|f| f.conn),
                    h.blkfront.as_ref().map(|f| f.conn),
                )
            };
            if let Some(conn) = net_conn {
                let _ = xenbus::teardown(&mut self.hv, &mut self.xs, &mut self.net_hub, &conn);
                if let Some(idx) = self
                    .services
                    .netbacks
                    .iter()
                    .position(|d| *d == conn.backend)
                {
                    self.netbacks[idx].detach_guest(g);
                }
            }
            if let Some(conn) = blk_conn {
                let _ = xenbus::teardown(&mut self.hv, &mut self.xs, &mut self.blk_hub, &conn);
                if let Some(idx) = self
                    .services
                    .blkbacks
                    .iter()
                    .position(|d| *d == conn.backend)
                {
                    self.blkbacks[idx].detach_guest(g);
                }
            }
        }

        // 2. The hypervisor restart: volatile channel state vanishes.
        self.hv.reset_event_channels();
        self.net_hub = NetRingHub::new();
        self.blk_hub = BlkRingHub::new();

        // 3. Renegotiate every guest's devices against the new hypervisor.
        let mut recovered = 0;
        for &g in &guests {
            let (toolstack, name, netback, blkback) = {
                let h = self.guests.get(&g).expect("listed");
                (h.toolstack, h.name.clone(), h.netback, h.blkback)
            };
            if let Some(nb) = netback {
                let conn = xenbus::negotiate(
                    &mut self.hv,
                    &mut self.xs,
                    &mut self.net_hub,
                    toolstack,
                    g,
                    nb,
                    DeviceKind::Vif,
                    0,
                    Pfn(4),
                )
                .map_err(|e| HvError::InvalidArgument(format!("vif renegotiation: {e}")))?;
                let idx = self
                    .services
                    .netbacks
                    .iter()
                    .position(|d| *d == nb)
                    .unwrap();
                self.netbacks[idx].attach(conn);
                self.fabric_attach(conn);
                self.guests.get_mut(&g).expect("listed").netfront = Some(NetFront::new(conn));
            }
            if let Some(bb) = blkback {
                let conn = xenbus::negotiate(
                    &mut self.hv,
                    &mut self.xs,
                    &mut self.blk_hub,
                    toolstack,
                    g,
                    bb,
                    DeviceKind::Vbd,
                    0,
                    Pfn(6),
                )
                .map_err(|e| HvError::InvalidArgument(format!("vbd renegotiation: {e}")))?;
                let idx = self
                    .services
                    .blkbacks
                    .iter()
                    .position(|d| *d == bb)
                    .unwrap();
                self.blkbacks[idx]
                    .attach(conn, &format!("{name}-root.img"))
                    .map_err(HvError::InvalidArgument)?;
                self.guests.get_mut(&g).expect("listed").blkfront = Some(BlkFront::new(conn));
            }
            recovered += 1;
        }
        let now = self.hv.now_ns();
        self.audit.append(
            now,
            AuditEvent::HypervisorRestarted {
                guests_recovered: recovered,
            },
        );
        Ok(recovered)
    }

    // ================= time =================

    /// Current simulated time.
    pub fn now_ns(&self) -> u64 {
        self.hv.now_ns()
    }

    /// Advances simulated time.
    pub fn advance_time(&mut self, delta_ns: u64) {
        self.hv.advance_time(delta_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_hypervisor::memory::PageRef;

    fn xoar() -> Platform {
        Platform::xoar(XoarConfig::default())
    }

    #[test]
    fn stock_xen_is_monolithic() {
        let p = Platform::stock_xen();
        let dom0 = p.services.builder;
        assert_eq!(dom0, DomId::DOM0);
        assert_eq!(p.services.xenstore, dom0);
        assert_eq!(p.services.netbacks, vec![dom0]);
        assert_eq!(p.services.blkbacks, vec![dom0]);
        assert_eq!(p.services.toolstacks, vec![dom0]);
        assert!(p.hv.dom0_failure_is_fatal);
        assert_eq!(p.service_memory_mib(), 750, "XenServer default Dom0");
    }

    #[test]
    fn xoar_is_disaggregated() {
        let p = xoar();
        let s = &p.services;
        let mut doms = vec![s.xenstore, s.xenstore_state, s.console.unwrap(), s.builder];
        doms.extend(&s.netbacks);
        doms.extend(&s.blkbacks);
        doms.extend(&s.toolstacks);
        let unique: std::collections::BTreeSet<_> = doms.iter().collect();
        assert_eq!(unique.len(), doms.len(), "every service in its own domain");
        assert!(!p.hv.dom0_failure_is_fatal);
        // Bootstrapper (dom0) destroyed after boot, PCIBack destroyed too.
        assert_eq!(p.hv.domain(DomId::DOM0).unwrap().state, DomainState::Dead);
        assert!(s.pciback.is_none());
    }

    #[test]
    fn xoar_memory_in_table_6_1_range() {
        let p = xoar();
        let mem = p.service_memory_mib();
        // Full config minus destroyed PCIBack (256) and Bootstrapper:
        // 32+32+128+64+128+128+128 = 640.
        assert_eq!(mem, 640);
        // With console dropped: 512 (the table's lower bound).
        let p2 = Platform::xoar(XoarConfig {
            with_console: false,
            ..Default::default()
        });
        assert_eq!(p2.service_memory_mib(), 512);
        // With PCIBack retained: 896 (the upper bound).
        let p3 = Platform::xoar(XoarConfig {
            keep_pciback: true,
            ..Default::default()
        });
        assert_eq!(p3.service_memory_mib(), 640 + 256);
    }

    #[test]
    fn create_guest_wires_devices_on_both_platforms() {
        for mut p in [Platform::stock_xen(), xoar()] {
            let ts = p.services.toolstacks[0];
            let g = p
                .create_guest(ts, GuestConfig::evaluation_guest("guest-a"))
                .unwrap();
            let h = p.guest(g).unwrap();
            assert!(h.netfront.is_some());
            assert!(h.blkfront.is_some());
            assert_eq!(p.hv.domain(g).unwrap().parent_toolstack, Some(ts));
            // Audit has creation + two links.
            assert!(p.audit.len() >= 3);
            let deps = p.audit.dependency_graph_at(u64::MAX);
            assert!(deps.contains(&(g, h.netback.unwrap())));
            assert!(deps.contains(&(g, h.blkback.unwrap())));
        }
    }

    #[test]
    fn guest_io_flows_end_to_end() {
        let mut p = xoar();
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("io-guest"))
            .unwrap();
        // Block write through the split driver.
        let h = p.guests.get_mut(&g).unwrap();
        let bf = h.blkfront.as_mut().unwrap();
        bf.submit(&mut p.blk_hub, xoar_devices::blk::BlkOp::Write, 0, 8)
            .unwrap();
        let stats = p.blkbacks[0].process(&mut p.blk_hub);
        assert_eq!(stats.completed, 1);
        // Network transmit to the wire.
        let h = p.guests.get_mut(&g).unwrap();
        let nf = h.netfront.as_mut().unwrap();
        nf.transmit(&mut p.net_hub, 1, 1500).unwrap();
        let stats = p.netbacks[0].process(&mut p.net_hub, &mut p.wire);
        assert_eq!(stats.tx_frames, 1);
        assert_eq!(p.wire.take_outbound().len(), 1);
    }

    #[test]
    fn foreign_toolstack_cannot_destroy() {
        let mut p = Platform::xoar(XoarConfig {
            toolstacks: 2,
            ..Default::default()
        });
        let ts1 = p.services.toolstacks[0];
        let ts2 = p.services.toolstacks[1];
        let g = p
            .create_guest(ts1, GuestConfig::evaluation_guest("g"))
            .unwrap();
        let err = p.destroy_guest(ts2, g).unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
        p.destroy_guest(ts1, g).unwrap();
        assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Dead);
        assert!(p.guest(g).is_none());
    }

    #[test]
    fn non_toolstack_cannot_create() {
        let mut p = xoar();
        let rogue = p.services.netbacks[0];
        let err = p
            .create_guest(rogue, GuestConfig::evaluation_guest("evil"))
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
    }

    #[test]
    fn constraint_groups_isolate_tenants() {
        // One NetBack/BlkBack on the testbed: tenant A adopts them, tenant
        // B with a different tag must be refused.
        let mut p = xoar();
        let ts = p.services.toolstacks[0];
        let mut cfg_a = GuestConfig::evaluation_guest("tenant-a");
        cfg_a.constraint = ConstraintTag::group("a");
        let ga = p.create_guest(ts, cfg_a).unwrap();
        assert_eq!(
            p.shard_tag(p.services.netbacks[0]).unwrap(),
            &ConstraintTag::group("a")
        );
        let mut cfg_b = GuestConfig::evaluation_guest("tenant-b");
        cfg_b.constraint = ConstraintTag::group("b");
        let err = p.create_guest(ts, cfg_b.clone()).unwrap_err();
        assert!(
            matches!(err, HvError::LimitExceeded(_)),
            "creation fails, no forced sharing"
        );
        // Same group shares fine.
        let mut cfg_a2 = GuestConfig::evaluation_guest("tenant-a2");
        cfg_a2.constraint = ConstraintTag::group("a");
        p.create_guest(ts, cfg_a2).unwrap();
        // After both A guests die, B can be placed.
        let a2 = p.guests().last().unwrap().dom;
        p.destroy_guest(ts, ga).unwrap();
        p.destroy_guest(ts, a2).unwrap();
        p.create_guest(ts, cfg_b).unwrap();
    }

    #[test]
    fn hvm_guest_gets_stub_domain_in_xoar() {
        let mut p = xoar();
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest("windows");
        cfg.hvm = true;
        let g = p.create_guest(ts, cfg).unwrap();
        let q = p.guest(g).unwrap().qemu.unwrap();
        assert_ne!(q, p.services.builder, "stub domain, not the builder");
        // The stub may DMA into its guest…
        let model = p.qemus.get_mut(&g).unwrap();
        model.dma_to_guest(&mut p.hv, Pfn(6), b"bios").unwrap();
        // …and its privileged_for edge names exactly that guest.
        assert!(p.hv.domain(q).unwrap().privileged_for.contains(&g));
        assert_eq!(p.hv.domain(q).unwrap().privileged_for.len(), 1);
    }

    #[test]
    fn hvm_guest_in_stock_xen_uses_dom0_model() {
        let mut p = Platform::stock_xen();
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest("windows");
        cfg.hvm = true;
        let g = p.create_guest(ts, cfg).unwrap();
        assert_eq!(p.guest(g).unwrap().qemu, Some(DomId::DOM0));
    }

    #[test]
    fn dom0_crash_kills_guests_only_in_stock_xen() {
        let mut p = Platform::stock_xen();
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("victim"))
            .unwrap();
        p.hv.crash_domain(DomId::DOM0).unwrap();
        assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Dead);
        assert_eq!(p.hv.host_reboot_count(), 1);
    }

    #[test]
    fn netback_crash_leaves_guests_running_in_xoar() {
        let mut p = xoar();
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("survivor"))
            .unwrap();
        let nb = p.services.netbacks[0];
        p.hv.crash_domain(nb).unwrap();
        assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Running);
        assert_eq!(p.hv.host_reboot_count(), 0);
    }

    #[test]
    fn page_dedup_reclaims_identical_guest_pages_safely() {
        let mut p = xoar();
        let ts = p.services.toolstacks[0];
        let a = p
            .create_guest(ts, GuestConfig::evaluation_guest("a"))
            .unwrap();
        let b = p
            .create_guest(ts, GuestConfig::evaluation_guest("b"))
            .unwrap();
        // Same kernel image ⇒ identical pages.
        for g in [a, b] {
            for pfn in 10..20u64 {
                p.hv.mem.write(g, Pfn(pfn), b"shared-library-text").unwrap();
            }
        }
        let freed = p.dedup_memory();
        assert!(freed >= 19, "20 identical pages collapse: freed {freed}");
        // Density without interference: a write by one guest never leaks.
        p.hv.mem.write(a, Pfn(10), b"a-owned").unwrap();
        assert_eq!(p.hv.mem.read(b, Pfn(10)).unwrap(), b"shared-library-text");
        // And I/O still works after dedup (ring pages were never merged).
        p.blk_submit(a, xoar_devices::blk::BlkOp::Write, 0, 8)
            .unwrap();
        assert_eq!(p.process_blkbacks().completed, 1);
    }

    #[test]
    fn guest_page_reaches_wire_and_disk_by_shared_handle() {
        let mut p = xoar();
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("zc"))
            .unwrap();
        p.hv.mem.write(g, Pfn(40), b"payload-body").unwrap();
        let page = p.hv.mem.read(g, Pfn(40)).unwrap();

        // Network: the frame on the wire holds the guest's page body.
        p.net_transmit_page(g, 7, 40).unwrap();
        assert_eq!(p.process_netbacks().tx_frames, 1);
        let out = p.wire.take_outbound();
        assert!(PageRef::ptr_eq(&page, out[0].payload.as_ref().unwrap()));

        // Block: the stored image page is that same allocation.
        p.blk_write_page(g, 8, 40).unwrap();
        assert_eq!(p.process_blkbacks().completed, 1);
        while p.blk_poll(g).is_some() {}
        p.blk_submit(g, xoar_devices::blk::BlkOp::Read, 8, 8)
            .unwrap();
        p.process_blkbacks();
        let resp = p.blk_poll(g).unwrap();
        assert!(PageRef::ptr_eq(&page, resp.payload.as_ref().unwrap()));
    }

    #[test]
    fn audit_exposure_query_spans_guest_lifetime() {
        let mut p = xoar();
        let ts = p.services.toolstacks[0];
        let g1 = p
            .create_guest(ts, GuestConfig::evaluation_guest("g1"))
            .unwrap();
        p.advance_time(1_000_000_000);
        let g2 = p
            .create_guest(ts, GuestConfig::evaluation_guest("g2"))
            .unwrap();
        let nb = p.services.netbacks[0];
        // Compromise window covering only g2's creation still exposes g1
        // (linked before, still live).
        let exposed = p.audit.guests_exposed_to(nb, 500_000_000, 2_000_000_000);
        assert!(exposed.contains(&g1));
        assert!(exposed.contains(&g2));
    }
}

#[cfg(test)]
mod section_5_8_tests {
    use super::*;

    #[test]
    fn io_port_privileges_remapped_to_correct_shards() {
        let p = Platform::xoar(XoarConfig::default());
        let console = p.services.console.unwrap();
        let nb = p.services.netbacks[0];
        // The Console Manager holds the COM1 ports…
        p.hv.check_io_port(console, 0x3f8).unwrap();
        p.hv.check_io_port(console, 0x3ff).unwrap();
        // …and nothing else.
        assert!(p.hv.check_io_port(console, 0xcf8).is_err());
        // PCIBack would hold the PCI config ports; it is destroyed after
        // boot in the default configuration, so verify on a kept one.
        let kept = Platform::xoar(XoarConfig {
            keep_pciback: true,
            ..Default::default()
        });
        let pb = kept.services.pciback.unwrap();
        kept.hv.check_io_port(pb, 0xcf8).unwrap();
        kept.hv.check_mmio(pb, 0xf0010).unwrap();
        // Ordinary shards and guests hold neither.
        assert!(p.hv.check_io_port(nb, 0x3f8).is_err());
        assert!(p.hv.check_mmio(nb, 0xf0010).is_err());
    }

    #[test]
    fn stock_xen_dom0_holds_all_ports() {
        let p = Platform::stock_xen();
        // The monolithic arrangement: every port, one domain.
        p.hv.check_io_port(DomId::DOM0, 0x3f8).unwrap();
        p.hv.check_io_port(DomId::DOM0, 0xcf8).unwrap();
        p.hv.check_io_port(DomId::DOM0, 0x1f0).unwrap();
    }
}

#[cfg(test)]
mod rehype_tests {
    use super::*;
    use xoar_devices::blk::BlkOp;

    #[test]
    fn guests_survive_a_hypervisor_replacement() {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let g1 = p
            .create_guest(ts, GuestConfig::evaluation_guest("a"))
            .unwrap();
        let g2 = p
            .create_guest(ts, GuestConfig::evaluation_guest("b"))
            .unwrap();
        // Application state in guest memory.
        p.hv.mem.write(g1, Pfn(30), b"in-memory-db").unwrap();

        let recovered = p.rehype_restart().unwrap();
        assert_eq!(recovered, 2);

        // Domains never stopped running; memory intact.
        for g in [g1, g2] {
            assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Running);
        }
        assert_eq!(p.hv.mem.read(g1, Pfn(30)).unwrap(), b"in-memory-db");

        // Devices renegotiated and serving on the new hypervisor.
        p.blk_submit(g1, BlkOp::Write, 0, 8).unwrap();
        p.blk_submit(g2, BlkOp::Write, 0, 8).unwrap();
        assert_eq!(p.process_blkbacks().completed, 2);
        p.net_transmit(g1, 1, 1500).unwrap();
        assert_eq!(p.process_netbacks().tx_frames, 1);

        // The event channels are fresh (new hypervisor): ports reconnect.
        let conn = p.guest(g1).unwrap().netfront.as_ref().unwrap().conn;
        assert!(p.hv.event_connected(g1, conn.front_port));
        // And the audit log recorded the platform upgrade.
        assert!(p.audit.records().iter().any(|r| matches!(
            r.event,
            AuditEvent::HypervisorRestarted {
                guests_recovered: 2
            }
        )));
        assert_eq!(p.audit.verify_chain(), Ok(()));
    }

    #[test]
    fn rehype_with_no_guests_is_a_noop() {
        let mut p = Platform::xoar(XoarConfig::default());
        assert_eq!(p.rehype_restart().unwrap(), 0);
    }

    #[test]
    fn repeated_replacements_are_stable() {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("steady"))
            .unwrap();
        for round in 0..5 {
            assert_eq!(p.rehype_restart().unwrap(), 1, "round {round}");
            p.blk_submit(g, BlkOp::Write, round * 8, 8).unwrap();
            assert_eq!(p.process_blkbacks().completed, 1);
        }
    }
}
