//! # xoar-core
//!
//! The Xoar platform (SOSP 2011): disaggregation of the control VM into
//! least-privilege shards.

#![warn(missing_docs)]

pub mod audit;
pub mod boot;
pub mod builder;
pub mod deployment;
pub mod ha;
pub mod hypersplit;
pub mod migration;
pub mod platform;
pub mod restart;
pub mod shard;
pub mod toolstack;

pub use audit::{AuditEvent, AuditLog};
pub use boot::{BootPlan, BootTimes};
pub use builder::{BuildRequest, Builder, KernelSpec};
pub use deployment::{Deployment, DeploymentScenario};
pub use ha::HaSession;
pub use migration::{migrate, MigrationConfig, MigrationReport};
pub use platform::{GuestConfig, Platform, PlatformMode, XoarConfig};
pub use restart::{RestartEngine, RestartPath, RestartPolicy};
pub use shard::{ConstraintTag, ShardKind, ShardSpec};
pub use toolstack::{ResourceQuota, Toolstack, VmInfo};
