//! System-boot modelling (§5.2, §6.1.3, Table 6.2).
//!
//! Boot is a dependency graph of component initialisations. Stock Xen
//! boots strictly serially inside one Linux image: hardware init, PCI
//! enumeration, driver init, daemons, login. Xoar boots the same work as
//! a DAG of small VMs — "the improved boot time is a result of parallel
//! booting that can occur due to the compartmentalisation of components"
//! — and its Console Manager skips PCI enumeration entirely (§5.5).
//!
//! Per-step durations are calibrated against the paper's measured end
//! points (Dom0: 38.9 s to console, 42.2 s to ping; Xoar: 25.9 s / 36.6 s,
//! Table 6.2); the *structure* — what depends on what, what is skipped,
//! what runs in parallel — is the model.

use std::collections::HashMap;

use crate::shard::ShardKind;

/// Milliseconds, the unit of the boot model.
pub type Ms = u64;

/// One step in a boot plan.
#[derive(Debug, Clone)]
pub struct BootStep {
    /// Step name.
    pub name: &'static str,
    /// Duration in milliseconds.
    pub duration_ms: Ms,
    /// Names of steps that must complete first.
    pub deps: Vec<&'static str>,
    /// Which milestone(s) this step unlocks.
    pub provides_console: bool,
    /// Whether the network milestone needs this step.
    pub provides_network: bool,
}

/// The outcome of simulating a boot plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootTimes {
    /// Time until the console accepts user input, seconds.
    pub console_s: f64,
    /// Time until the system answers external pings, seconds.
    pub ping_s: f64,
}

/// Common platform bring-up before any OS runs: firmware POST plus the
/// hypervisor's own initialisation.
const FIRMWARE_MS: Ms = 9_000;

/// A boot plan: a named DAG of steps.
///
/// Steps must be declared in topological order — every dependency names
/// an *earlier* step. [`BootPlan::new`] resolves names to indices once,
/// so simulation is a single forward pass with no name lookups and no
/// fixpoint iteration (the old retain-loop re-scanned the whole step
/// list per wave, which made the 11-step Xoar DAG slower to *evaluate*
/// than the stock serial chain — backwards, given the plan exists to
/// show boot-time wins).
#[derive(Debug, Clone)]
pub struct BootPlan {
    /// Plan name.
    pub name: &'static str,
    steps: Vec<BootStep>,
    /// Per-step dependencies resolved to indices into `steps`.
    dep_idx: Vec<Vec<usize>>,
}

impl BootPlan {
    /// Builds a plan, resolving dependency names to step indices.
    ///
    /// # Panics
    ///
    /// Panics if a step names a dependency that was not declared before
    /// it (which also rules out cycles) or duplicates a step name.
    pub fn new(name: &'static str, steps: Vec<BootStep>) -> Self {
        let mut index: HashMap<&'static str, usize> = HashMap::with_capacity(steps.len());
        let mut dep_idx = Vec::with_capacity(steps.len());
        for (i, step) in steps.iter().enumerate() {
            let resolved = step
                .deps
                .iter()
                .map(|d| {
                    *index.get(d).unwrap_or_else(|| {
                        panic!(
                            "{name}: step {:?} depends on {d:?}, which is not declared before it",
                            step.name
                        )
                    })
                })
                .collect();
            assert!(
                index.insert(step.name, i).is_none(),
                "{name}: duplicate step {:?}",
                step.name
            );
            dep_idx.push(resolved);
        }
        BootPlan {
            name,
            steps,
            dep_idx,
        }
    }

    /// The stock Xen Dom0 boot: one serial chain through a full Linux.
    /// The chain is broken into the phases a real Dom0 serialises —
    /// kernel, PCI, drivers, daemons, getty — with per-phase durations
    /// that preserve the Table 6.2 milestones (38.9 s console, 42.2 s
    /// ping) as prefix sums.
    pub fn stock_xen() -> Self {
        let chain: [(&'static str, Ms, bool, bool); 14] = [
            ("xen+firmware", FIRMWARE_MS, false, false),
            ("dom0-kernel-early", 3_900, false, false),
            ("dom0-kernel-late", 3_500, false, false),
            ("pci-enumeration", 4_000, false, false),
            ("pci-bridge-scan", 2_500, false, false),
            ("storage-driver-init", 4_300, false, false),
            ("net-driver-init", 3_500, false, false),
            ("xenstored", 1_700, false, false),
            ("xenconsoled", 1_500, false, false),
            ("udev-settle", 1_400, false, false),
            ("getty-spawn", 1_200, false, false),
            ("login-prompt", 2_400, true, false),
            ("network-stack", 1_900, false, false),
            ("dhcp-lease", 1_400, false, true),
        ];
        let mut steps = Vec::new();
        let mut prev: Option<&'static str> = None;
        for (name, d, con, net) in chain {
            steps.push(BootStep {
                name,
                duration_ms: d,
                deps: prev.into_iter().collect(),
                provides_console: con,
                provides_network: net,
            });
            prev = Some(name);
        }
        BootPlan::new("stock-xen", steps)
    }

    /// The Xoar boot DAG of §5.2: Bootstrapper → XenStore → Console
    /// Manager → Builder → PCIBack → driver domains (via udev rules) →
    /// toolstacks, with independent branches booting in parallel.
    pub fn xoar() -> Self {
        let steps = vec![
            BootStep {
                name: "xen+firmware",
                duration_ms: FIRMWARE_MS,
                deps: vec![],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                name: "bootstrapper",
                duration_ms: 600, // nanOS: near-instant.
                deps: vec!["xen+firmware"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                name: "xenstore",
                duration_ms: 1_400, // miniOS pair: State then Logic.
                deps: vec!["bootstrapper"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                // Linux, but §5.5: skips PCI enumeration, jumping from
                // early boot to I/O-port init — hence far cheaper than the
                // Dom0 chain. Reaching a login prompt needs only this
                // branch.
                name: "console-manager",
                duration_ms: 14_900,
                deps: vec!["xenstore"],
                provides_console: true,
                provides_network: false,
            },
            BootStep {
                // The Builder and PCIBack need console *services*, which
                // are available once the Console Manager's daemon is up —
                // well before its login prompt. Model that as an early
                // sub-milestone.
                name: "console-manager-early",
                duration_ms: 6_000,
                deps: vec!["xenstore"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                name: "builder",
                duration_ms: 700, // nanOS.
                deps: vec!["xenstore", "console-manager-early"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                // Full Linux including the PCI enumeration Dom0 would do.
                name: "pciback",
                duration_ms: 8_000,
                deps: vec!["builder"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                // udev rule fires; Builder instantiates NetBack (Linux +
                // NIC driver); BlkBack boots in parallel on the same edge.
                name: "netback",
                duration_ms: 9_900,
                deps: vec!["pciback"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                name: "blkback",
                duration_ms: 9_900,
                deps: vec!["pciback"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                name: "toolstack",
                duration_ms: 2_600,
                deps: vec!["builder"],
                provides_console: false,
                provides_network: false,
            },
            BootStep {
                // Network reachability: NetBack live + bridge configured.
                name: "network-ready",
                duration_ms: 1_000,
                deps: vec!["netback", "toolstack"],
                provides_console: false,
                provides_network: true,
            },
        ];
        BootPlan::new("xoar", steps)
    }

    /// The steps of the plan.
    pub fn steps(&self) -> &[BootStep] {
        &self.steps
    }

    /// Per-step finish times in declaration (topological) order: each
    /// step starts as soon as its dependencies finish (unbounded
    /// parallelism across VMs — the host has 4 cores and boot steps are
    /// I/O-bound). One forward pass over pre-resolved indices.
    fn finish_by_index(&self) -> Vec<Ms> {
        let mut finish = vec![0; self.steps.len()];
        for (i, s) in self.steps.iter().enumerate() {
            let start = self.dep_idx[i]
                .iter()
                .map(|&d| finish[d])
                .max()
                .unwrap_or(0);
            finish[i] = start + s.duration_ms;
        }
        finish
    }

    /// Per-step finish times keyed by name.
    pub fn finish_times(&self) -> HashMap<&'static str, Ms> {
        self.steps
            .iter()
            .zip(self.finish_by_index())
            .map(|(s, t)| (s.name, t))
            .collect()
    }

    /// Runs the plan and reports the Table 6.2 milestones.
    pub fn simulate(&self) -> BootTimes {
        let finish = self.finish_by_index();
        let console = self
            .steps
            .iter()
            .zip(&finish)
            .filter(|(s, _)| s.provides_console)
            .map(|(_, &t)| t)
            .max()
            .unwrap_or(0);
        let ping = self
            .steps
            .iter()
            .zip(&finish)
            .filter(|(s, _)| s.provides_network)
            .map(|(_, &t)| t)
            .max()
            .unwrap_or(0); // Ping implies the system is up.
        BootTimes {
            console_s: console as f64 / 1000.0,
            ping_s: ping.max(console) as f64 / 1000.0,
        }
    }

    /// The boot order of shard kinds implied by the Xoar plan (§5.2),
    /// used by the platform constructor and asserted in tests.
    pub fn xoar_shard_order() -> Vec<ShardKind> {
        vec![
            ShardKind::Bootstrapper,
            ShardKind::XenStoreState,
            ShardKind::XenStoreLogic,
            ShardKind::ConsoleManager,
            ShardKind::Builder,
            ShardKind::PciBack,
            ShardKind::NetBack,
            ShardKind::BlkBack,
            ShardKind::Toolstack,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_6_2_console_times() {
        let dom0 = BootPlan::stock_xen().simulate();
        let xoar = BootPlan::xoar().simulate();
        // Paper: 38.9 s vs 25.9 s (1.5×).
        assert!(
            (dom0.console_s - 38.9).abs() < 1.0,
            "dom0 console {:.1}",
            dom0.console_s
        );
        assert!(
            (xoar.console_s - 25.9).abs() < 1.0,
            "xoar console {:.1}",
            xoar.console_s
        );
        let speedup = dom0.console_s / xoar.console_s;
        assert!((speedup - 1.5).abs() < 0.1, "console speedup {speedup:.2}");
    }

    #[test]
    fn table_6_2_ping_times() {
        let dom0 = BootPlan::stock_xen().simulate();
        let xoar = BootPlan::xoar().simulate();
        // Paper: 42.2 s vs 36.6 s (1.15×).
        assert!(
            (dom0.ping_s - 42.2).abs() < 1.0,
            "dom0 ping {:.1}",
            dom0.ping_s
        );
        assert!(
            (xoar.ping_s - 36.6).abs() < 1.0,
            "xoar ping {:.1}",
            xoar.ping_s
        );
        let speedup = dom0.ping_s / xoar.ping_s;
        assert!((speedup - 1.15).abs() < 0.1, "ping speedup {speedup:.2}");
    }

    #[test]
    fn milestones_are_exact_prefix_sums() {
        let finish = BootPlan::stock_xen().finish_times();
        assert_eq!(finish["login-prompt"], 38_900);
        assert_eq!(finish["dhcp-lease"], 42_200);
    }

    #[test]
    #[should_panic(expected = "not declared before")]
    fn forward_dependency_is_rejected() {
        BootPlan::new(
            "bad",
            vec![
                BootStep {
                    name: "first",
                    duration_ms: 1,
                    deps: vec!["second"],
                    provides_console: false,
                    provides_network: false,
                },
                BootStep {
                    name: "second",
                    duration_ms: 1,
                    deps: vec![],
                    provides_console: false,
                    provides_network: false,
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate step")]
    fn duplicate_step_name_is_rejected() {
        let step = BootStep {
            name: "twice",
            duration_ms: 1,
            deps: vec![],
            provides_console: false,
            provides_network: false,
        };
        BootPlan::new("bad", vec![step.clone(), step]);
    }

    #[test]
    fn stock_boot_is_serial() {
        // Total = sum of all steps: no parallelism in a monolith.
        let plan = BootPlan::stock_xen();
        let total: Ms = plan.steps().iter().map(|s| s.duration_ms).sum();
        let finish = plan.finish_times();
        assert_eq!(*finish.values().max().unwrap(), total);
    }

    #[test]
    fn xoar_boot_is_parallel() {
        // Total wall time is strictly less than the sum of step times.
        let plan = BootPlan::xoar();
        let total: Ms = plan.steps().iter().map(|s| s.duration_ms).sum();
        let finish = plan.finish_times();
        assert!(*finish.values().max().unwrap() < total);
    }

    #[test]
    fn console_branch_independent_of_driver_branch() {
        // The Console Manager milestone must not wait for NetBack/BlkBack.
        let plan = BootPlan::xoar();
        let finish = plan.finish_times();
        assert!(finish["console-manager"] < finish["netback"]);
        assert!(finish["console-manager"] < finish["blkback"]);
    }

    #[test]
    fn netback_and_blkback_boot_concurrently() {
        let plan = BootPlan::xoar();
        let finish = plan.finish_times();
        assert_eq!(finish["netback"], finish["blkback"]);
    }

    #[test]
    fn ping_never_precedes_console_claim() {
        for plan in [BootPlan::stock_xen(), BootPlan::xoar()] {
            let t = plan.simulate();
            assert!(t.ping_s >= t.console_s * 0.99, "{}", plan.name);
        }
    }

    #[test]
    fn shard_boot_order_consistent_with_dependencies() {
        use crate::shard::ShardSpec;
        let order = BootPlan::xoar_shard_order();
        for (i, kind) in order.iter().enumerate() {
            for dep in ShardSpec::of(*kind).depends_on {
                let pos = order.iter().position(|k| k == dep).unwrap();
                assert!(pos < i, "{kind:?} booted before its dependency {dep:?}");
            }
        }
    }
}
