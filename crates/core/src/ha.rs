//! Remus-style high availability: asynchronous checkpoint replication.
//!
//! The paper's introduction lists high availability among the enterprise
//! features a virtualization platform must support ("live migration …
//! is used to provide high availability in the face of unexpected
//! failures" — Remus, Cully et al. \[16\]), and interposition-dependent
//! features like this are exactly what §2.3.1 says a security redesign
//! must not sacrifice.
//!
//! [`HaSession`] keeps a paused shadow of a protected guest on a backup
//! host and periodically replicates the primary's dirty pages into it
//! (the same hypervisor dirty tracking the snapshot and migration
//! machinery uses). On primary failure, [`HaSession::failover`] resumes
//! the shadow from the last committed checkpoint — bounded state loss,
//! zero shared storage.

use xoar_hypervisor::{DomId, HvError, HvResult, Hypercall};

use crate::platform::{GuestConfig, Platform};

/// A protection session for one guest.
#[derive(Debug)]
pub struct HaSession {
    /// The protected guest on the primary host.
    pub guest: DomId,
    /// The paused shadow on the backup host.
    pub shadow: DomId,
    /// The managing toolstack on the backup host.
    backup_toolstack: DomId,
    /// Committed checkpoint epochs.
    pub epochs: u64,
    /// Pages replicated across all epochs.
    pub pages_replicated: u64,
    failed_over: bool,
}

impl HaSession {
    /// Starts protecting `guest`: builds the shadow on `backup` (paused,
    /// devices negotiated) and takes the initial full checkpoint.
    pub fn protect(
        primary: &mut Platform,
        backup: &mut Platform,
        guest: DomId,
        backup_toolstack: DomId,
    ) -> HvResult<HaSession> {
        let handle = primary.guest(guest).ok_or(HvError::NoSuchDomain(guest))?;
        let name = format!("{}-shadow", handle.name);
        let constraint = handle.constraint.clone();
        let d = primary.hv.domain(guest)?;
        let mut cfg = GuestConfig::evaluation_guest(&name);
        cfg.memory_mib = d.memory_mib;
        cfg.vcpus = d.vcpus.len() as u32;
        cfg.constraint = constraint;
        let shadow = backup.create_guest(backup_toolstack, cfg)?;
        // The shadow must not execute until failover.
        backup.hv.hypercall(
            backup_toolstack,
            Hypercall::DomctlPauseDomain { target: shadow },
        )?;
        let mut session = HaSession {
            guest,
            shadow,
            backup_toolstack,
            epochs: 0,
            pages_replicated: 0,
            failed_over: false,
        };
        // Epoch 0: full copy.
        let _ = primary.hv.mem.take_dirty(guest);
        let builder = backup.services.builder;
        for (pfn, _) in primary.hv.mem.p2m_entries(guest) {
            let data = primary.hv.mem.read(guest, pfn)?;
            if !data.is_empty() {
                backup.hv.hypercall(
                    builder,
                    Hypercall::MmuWriteForeign {
                        target: shadow,
                        pfn,
                        data: data.to_vec(),
                    },
                )?;
                session.pages_replicated += 1;
            }
        }
        session.epochs = 1;
        Ok(session)
    }

    /// Commits one checkpoint epoch: the primary's dirty pages since the
    /// previous epoch are copied to the shadow. Returns the number of
    /// pages shipped.
    pub fn checkpoint(&mut self, primary: &mut Platform, backup: &mut Platform) -> HvResult<u64> {
        if self.failed_over {
            return Err(HvError::InvalidDomainState {
                dom: self.shadow,
                expected: "not yet failed over",
            });
        }
        let dirty = primary.hv.mem.take_dirty(self.guest);
        let builder = backup.services.builder;
        let mut shipped = 0;
        for (pfn, _) in dirty {
            let data = primary.hv.mem.read(self.guest, pfn)?;
            backup.hv.hypercall(
                builder,
                Hypercall::MmuWriteForeign {
                    target: self.shadow,
                    pfn,
                    data: data.to_vec(),
                },
            )?;
            shipped += 1;
        }
        self.epochs += 1;
        self.pages_replicated += shipped;
        Ok(shipped)
    }

    /// Fails over after the primary died: the shadow resumes from the
    /// last committed epoch.
    pub fn failover(&mut self, backup: &mut Platform) -> HvResult<DomId> {
        backup.hv.hypercall(
            self.backup_toolstack,
            Hypercall::DomctlUnpauseDomain {
                target: self.shadow,
            },
        )?;
        self.failed_over = true;
        Ok(self.shadow)
    }

    /// Whether failover has happened.
    pub fn is_failed_over(&self) -> bool {
        self.failed_over
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::XoarConfig;
    use xoar_devices::blk::BlkOp;
    use xoar_hypervisor::memory::Pfn;
    use xoar_hypervisor::DomainState;

    fn hosts() -> (Platform, Platform, DomId, DomId) {
        let primary = Platform::xoar(XoarConfig::default());
        let backup = Platform::xoar(XoarConfig::default());
        let ts_p = primary.services.toolstacks[0];
        let ts_b = backup.services.toolstacks[0];
        (primary, backup, ts_p, ts_b)
    }

    #[test]
    fn shadow_stays_paused_until_failover() {
        let (mut p, mut b, ts_p, ts_b) = hosts();
        let g = p
            .create_guest(ts_p, GuestConfig::evaluation_guest("db"))
            .unwrap();
        let s = HaSession::protect(&mut p, &mut b, g, ts_b).unwrap();
        assert_eq!(b.hv.domain(s.shadow).unwrap().state, DomainState::Paused);
        assert_eq!(s.epochs, 1);
    }

    #[test]
    fn checkpoints_ship_only_dirty_pages() {
        let (mut p, mut b, ts_p, ts_b) = hosts();
        let g = p
            .create_guest(ts_p, GuestConfig::evaluation_guest("db"))
            .unwrap();
        let mut s = HaSession::protect(&mut p, &mut b, g, ts_b).unwrap();
        // Idle epoch: nothing to ship.
        assert_eq!(s.checkpoint(&mut p, &mut b).unwrap(), 0);
        // Three writes, three pages.
        for pfn in [10u64, 11, 12] {
            p.hv.mem.write(g, Pfn(pfn), b"txn-log").unwrap();
        }
        assert_eq!(s.checkpoint(&mut p, &mut b).unwrap(), 3);
        assert_eq!(b.hv.mem.read(s.shadow, Pfn(10)).unwrap(), b"txn-log");
    }

    #[test]
    fn failover_resumes_from_last_epoch() {
        let (mut p, mut b, ts_p, ts_b) = hosts();
        let g = p
            .create_guest(ts_p, GuestConfig::evaluation_guest("db"))
            .unwrap();
        let mut s = HaSession::protect(&mut p, &mut b, g, ts_b).unwrap();
        p.hv.mem.write(g, Pfn(20), b"committed").unwrap();
        s.checkpoint(&mut p, &mut b).unwrap();
        // Post-checkpoint write: lost by design (bounded staleness).
        p.hv.mem.write(g, Pfn(21), b"uncommitted").unwrap();
        // Primary host dies.
        p.hv.crash_domain(g).unwrap();
        let survivor = s.failover(&mut b).unwrap();
        assert_eq!(b.hv.domain(survivor).unwrap().state, DomainState::Running);
        assert_eq!(b.hv.mem.read(survivor, Pfn(20)).unwrap(), b"committed");
        assert_eq!(
            b.hv.mem.read(survivor, Pfn(21)).unwrap(),
            Vec::<u8>::new(),
            "the uncheckpointed write is lost, as Remus semantics dictate"
        );
        // The survivor serves I/O on the backup host.
        b.blk_submit(survivor, BlkOp::Write, 0, 8).unwrap();
        assert_eq!(b.process_blkbacks().completed, 1);
    }

    #[test]
    fn no_checkpoints_after_failover() {
        let (mut p, mut b, ts_p, ts_b) = hosts();
        let g = p
            .create_guest(ts_p, GuestConfig::evaluation_guest("db"))
            .unwrap();
        let mut s = HaSession::protect(&mut p, &mut b, g, ts_b).unwrap();
        s.failover(&mut b).unwrap();
        assert!(s.is_failed_over());
        assert!(s.checkpoint(&mut p, &mut b).is_err());
    }

    #[test]
    fn protecting_missing_guest_fails() {
        let (mut p, mut b, _ts_p, ts_b) = hosts();
        assert!(matches!(
            HaSession::protect(&mut p, &mut b, DomId(99), ts_b),
            Err(HvError::NoSuchDomain(_))
        ));
    }
}
