//! The Toolstack: the administrative front end (§4.6, §5.6).
//!
//! Xoar runs "a configurable number of toolstacks", each a shard built on
//! the xenlight library (libxl). A toolstack creates guests *by passing
//! parameters to the Builder* — it holds no memory-mapping privileges of
//! its own — and is thereafter "assigned VM-management privileges … for
//! all VMs that it requests built. A toolstack can only manage these VMs,
//! and an attempt to manage any other guests is blocked by the
//! hypervisor."
//!
//! [`Toolstack`] is the libxl-flavoured facade over those rights: VM
//! listing, lifecycle operations, per-user resource quotas (§3.4.2:
//! "resource usage quotas enforced by the virtualization platform"), and
//! proxied disk-image administration via BlkBack's daemon (§5.4).

use std::collections::HashMap;

use xoar_hypervisor::{DomId, DomainState, HvError, HvResult, Hypercall};

use crate::platform::{GuestConfig, Platform};

/// Per-toolstack resource quotas (private-cloud slices, §3.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceQuota {
    /// Maximum concurrently running VMs.
    pub max_vms: usize,
    /// Maximum total memory across this toolstack's VMs, MiB.
    pub max_memory_mib: u64,
    /// Maximum total virtual disk bytes.
    pub max_disk_bytes: u64,
}

xoar_codec::impl_json_struct!(ResourceQuota {
    max_vms,
    max_memory_mib,
    max_disk_bytes
});

impl ResourceQuota {
    /// An effectively unlimited quota (public-cloud single toolstack).
    pub fn unlimited() -> Self {
        ResourceQuota {
            max_vms: usize::MAX,
            max_memory_mib: u64::MAX,
            max_disk_bytes: u64::MAX,
        }
    }
}

/// A row of `xl list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmInfo {
    /// Domain ID.
    pub dom: DomId,
    /// Guest name.
    pub name: String,
    /// Lifecycle state.
    pub state: DomainState,
    /// Memory reservation, MiB.
    pub memory_mib: u64,
    /// VCPU count.
    pub vcpus: usize,
    /// Restart count (microreboots of this VM, if any).
    pub restarts: u64,
}

/// The administrative toolstack facade.
///
/// Holds no references into the platform: every operation takes
/// `&mut Platform` and issues hypercalls *as the toolstack's domain*, so
/// the hypervisor's parent-toolstack check — not this struct — is what
/// enforces the management boundary.
#[derive(Debug)]
pub struct Toolstack {
    /// The shard domain this toolstack runs in.
    pub dom: DomId,
    quota: ResourceQuota,
    /// Accumulated usage counted against the quota.
    used_memory_mib: u64,
    used_disk_bytes: u64,
    /// What each live guest was actually charged at creation time
    /// (memory MiB, disk bytes), so destroy releases exactly that —
    /// clones charge zero disk, and resizes keep the books straight.
    reservations: HashMap<DomId, (u64, u64)>,
}

impl Toolstack {
    /// Wraps toolstack instance `index` of `platform`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the platform's toolstacks.
    pub fn new(platform: &Platform, index: usize) -> Self {
        Toolstack {
            dom: platform.services.toolstacks[index],
            quota: ResourceQuota::unlimited(),
            used_memory_mib: 0,
            used_disk_bytes: 0,
            reservations: HashMap::new(),
        }
    }

    /// Applies a resource quota (private-cloud slice).
    pub fn with_quota(mut self, quota: ResourceQuota) -> Self {
        self.quota = quota;
        self
    }

    /// The current quota.
    pub fn quota(&self) -> ResourceQuota {
        self.quota
    }

    /// `xl create` — requests a build from the Builder, after checking
    /// this toolstack's resource quota.
    pub fn create(&mut self, platform: &mut Platform, cfg: GuestConfig) -> HvResult<DomId> {
        let running = self.list(platform).len();
        if running >= self.quota.max_vms {
            return Err(HvError::LimitExceeded("toolstack VM quota"));
        }
        if self.used_memory_mib.saturating_add(cfg.memory_mib) > self.quota.max_memory_mib {
            return Err(HvError::LimitExceeded("toolstack memory quota"));
        }
        if self.used_disk_bytes.saturating_add(cfg.disk_bytes) > self.quota.max_disk_bytes {
            return Err(HvError::LimitExceeded("toolstack disk quota"));
        }
        let mem = cfg.memory_mib;
        let disk = cfg.disk_bytes;
        let guest = platform.create_guest(self.dom, cfg)?;
        self.used_memory_mib += mem;
        self.used_disk_bytes += disk;
        self.reservations.insert(guest, (mem, disk));
        Ok(guest)
    }

    /// `xl snapshot-capture` — seals a running guest as a clone template.
    pub fn capture_template(&self, platform: &mut Platform, guest: DomId) -> HvResult<()> {
        platform.capture_template(self.dom, guest)
    }

    /// `xl clone` — the snapshot-fork fast path: stamps a new guest from
    /// a sealed template with no Builder round-trip. Clones are charged
    /// their memory reservation but zero disk (they share the template's
    /// root image copy-on-write).
    pub fn clone(
        &mut self,
        platform: &mut Platform,
        template: DomId,
        name: &str,
    ) -> HvResult<DomId> {
        if self.list(platform).len() >= self.quota.max_vms {
            return Err(HvError::LimitExceeded("toolstack VM quota"));
        }
        let mem = platform
            .template(template)
            .ok_or(HvError::NoSuchDomain(template))?
            .memory_mib;
        if self.used_memory_mib.saturating_add(mem) > self.quota.max_memory_mib {
            return Err(HvError::LimitExceeded("toolstack memory quota"));
        }
        let guest = platform.clone_guest(self.dom, template, name)?;
        self.used_memory_mib += mem;
        self.reservations.insert(guest, (mem, 0));
        Ok(guest)
    }

    /// `xl destroy`.
    pub fn destroy(&mut self, platform: &mut Platform, guest: DomId) -> HvResult<()> {
        platform.destroy_guest(self.dom, guest)?;
        // Release exactly what this guest was charged — not an assumed
        // config — so quotas don't drift across create/destroy churn.
        let (mem, disk) = self.reservations.remove(&guest).unwrap_or((0, 0));
        self.used_memory_mib = self.used_memory_mib.saturating_sub(mem);
        self.used_disk_bytes = self.used_disk_bytes.saturating_sub(disk);
        Ok(())
    }

    /// `xl pause`.
    pub fn pause(&self, platform: &mut Platform, guest: DomId) -> HvResult<()> {
        platform
            .hv
            .hypercall(self.dom, Hypercall::DomctlPauseDomain { target: guest })
            .map(|_| ())
    }

    /// `xl unpause`.
    pub fn unpause(&self, platform: &mut Platform, guest: DomId) -> HvResult<()> {
        platform
            .hv
            .hypercall(self.dom, Hypercall::DomctlUnpauseDomain { target: guest })
            .map(|_| ())
    }

    /// `xl mem-set`.
    pub fn set_memory(&mut self, platform: &mut Platform, guest: DomId, mib: u64) -> HvResult<()> {
        let old = platform.hv.domain(guest)?.memory_mib;
        let new_used = self.used_memory_mib.saturating_sub(old).saturating_add(mib);
        if new_used > self.quota.max_memory_mib {
            return Err(HvError::LimitExceeded("toolstack memory quota"));
        }
        platform.hv.hypercall(
            self.dom,
            Hypercall::DomctlSetMaxMem {
                target: guest,
                memory_mib: mib,
            },
        )?;
        self.used_memory_mib = new_used;
        if let Some(r) = self.reservations.get_mut(&guest) {
            r.0 = mib;
        }
        Ok(())
    }

    /// `xl vcpu-set`.
    pub fn set_vcpus(&self, platform: &mut Platform, guest: DomId, vcpus: u32) -> HvResult<()> {
        platform
            .hv
            .hypercall(
                self.dom,
                Hypercall::DomctlSetVcpus {
                    target: guest,
                    vcpus,
                },
            )
            .map(|_| ())
    }

    /// `xl list` — only the VMs this toolstack manages.
    pub fn list(&self, platform: &Platform) -> Vec<VmInfo> {
        platform
            .guests()
            .into_iter()
            .filter(|g| g.toolstack == self.dom)
            .filter_map(|g| {
                let d = platform.hv.domain(g.dom).ok()?;
                if d.state == DomainState::Dead {
                    return None;
                }
                Some(VmInfo {
                    dom: g.dom,
                    name: g.name.clone(),
                    state: d.state,
                    memory_mib: d.memory_mib,
                    vcpus: d.vcpus.len(),
                    restarts: d.restart_count,
                })
            })
            .collect()
    }

    /// Proxy to BlkBack's image daemon (§5.4): "administrators create new
    /// files or partitions from the Toolstack to back new guest VMs …
    /// BlkBack runs a lightweight daemon that acts as a proxy for
    /// requests of the Toolstacks."
    pub fn create_image(
        &self,
        platform: &mut Platform,
        blkback_index: usize,
        name: &str,
        bytes: u64,
    ) -> Result<(), String> {
        // A toolstack may only drive shards delegated to it.
        let bb_dom = *platform
            .services
            .blkbacks
            .get(blkback_index)
            .ok_or("no such blkback")?;
        let delegated = platform
            .hv
            .domain(bb_dom)
            .map(|d| d.privileges.delegated_to.contains(&self.dom) || bb_dom == self.dom)
            .unwrap_or(false);
        if !delegated {
            return Err(format!("blkback {bb_dom} not delegated to {}", self.dom));
        }
        platform.blkbacks[blkback_index]
            .images
            .create_image(name, bytes)
    }

    /// Lists images on a delegated BlkBack via the proxy daemon.
    pub fn list_images(&self, platform: &Platform, blkback_index: usize) -> Vec<String> {
        platform
            .blkbacks
            .get(blkback_index)
            .map(|bb| bb.images.list())
            .unwrap_or_default()
    }

    /// Memory currently counted against this toolstack's quota.
    pub fn used_memory_mib(&self) -> u64 {
        self.used_memory_mib
    }

    /// Disk bytes currently counted against this toolstack's quota.
    pub fn used_disk_bytes(&self) -> u64 {
        self.used_disk_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::XoarConfig;

    fn platform2() -> Platform {
        Platform::xoar(XoarConfig {
            toolstacks: 2,
            ..Default::default()
        })
    }

    fn cfg(name: &str) -> GuestConfig {
        GuestConfig::evaluation_guest(name)
    }

    #[test]
    fn create_list_destroy() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0);
        let g = ts.create(&mut p, cfg("a")).unwrap();
        let list = ts.list(&p);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].name, "a");
        assert_eq!(list[0].state, DomainState::Running);
        assert_eq!(list[0].memory_mib, 1024);
        assert_eq!(list[0].vcpus, 2);
        ts.destroy(&mut p, g).unwrap();
        assert!(ts.list(&p).is_empty());
        assert_eq!(ts.used_memory_mib(), 0, "quota accounting returns to zero");
    }

    #[test]
    fn list_shows_only_own_vms() {
        let mut p = platform2();
        let mut red = Toolstack::new(&p, 0);
        let mut blue = Toolstack::new(&p, 1);
        red.create(&mut p, cfg("red-1")).unwrap();
        blue.create(&mut p, cfg("blue-1")).unwrap();
        assert_eq!(red.list(&p).len(), 1);
        assert_eq!(red.list(&p)[0].name, "red-1");
        assert_eq!(blue.list(&p)[0].name, "blue-1");
    }

    #[test]
    fn cross_toolstack_management_blocked_by_hypervisor() {
        let mut p = platform2();
        let mut red = Toolstack::new(&p, 0);
        let blue = Toolstack::new(&p, 1);
        let g = red.create(&mut p, cfg("red-1")).unwrap();
        assert!(matches!(
            blue.pause(&mut p, g),
            Err(HvError::PermissionDenied { .. })
        ));
        assert!(matches!(
            blue.set_vcpus(&mut p, g, 1),
            Err(HvError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn vm_count_quota() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0).with_quota(ResourceQuota {
            max_vms: 2,
            ..ResourceQuota::unlimited()
        });
        ts.create(&mut p, cfg("a")).unwrap();
        ts.create(&mut p, cfg("b")).unwrap();
        assert!(matches!(
            ts.create(&mut p, cfg("c")),
            Err(HvError::LimitExceeded("toolstack VM quota"))
        ));
        // Destroying one frees a slot.
        let g = ts.list(&p)[0].dom;
        ts.destroy(&mut p, g).unwrap();
        ts.create(&mut p, cfg("c")).unwrap();
    }

    #[test]
    fn memory_quota_spans_create_and_resize() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0).with_quota(ResourceQuota {
            max_memory_mib: 2048,
            ..ResourceQuota::unlimited()
        });
        let g = ts.create(&mut p, cfg("a")).unwrap(); // 1024.
        assert!(matches!(
            ts.create(&mut p, {
                let mut c = cfg("b");
                c.memory_mib = 1536;
                c
            }),
            Err(HvError::LimitExceeded("toolstack memory quota"))
        ));
        // Growing within quota succeeds; past it fails.
        ts.set_memory(&mut p, g, 2048).unwrap();
        assert!(ts.set_memory(&mut p, g, 4096).is_err());
        assert_eq!(p.hv.domain(g).unwrap().memory_mib, 2048);
    }

    #[test]
    fn disk_quota() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0).with_quota(ResourceQuota {
            max_disk_bytes: 20 << 30,
            ..ResourceQuota::unlimited()
        });
        ts.create(&mut p, cfg("a")).unwrap(); // 15 GiB.
        assert!(matches!(
            ts.create(&mut p, cfg("b")),
            Err(HvError::LimitExceeded("toolstack disk quota"))
        ));
    }

    #[test]
    fn disk_accounting_releases_actual_reservation() {
        // Regression: destroy used to release a hardcoded 15 GiB instead
        // of the guest's real disk_bytes, so quotas drifted with every
        // create/destroy cycle of a non-default guest.
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0).with_quota(ResourceQuota {
            max_disk_bytes: 64 << 30,
            ..ResourceQuota::unlimited()
        });
        for i in 0..4 {
            let mut c = cfg(&format!("churn-{i}"));
            c.disk_bytes = 20 << 30; // Not the 15 GiB default.
            let g = ts.create(&mut p, c).unwrap();
            assert_eq!(ts.used_disk_bytes(), 20 << 30);
            ts.destroy(&mut p, g).unwrap();
            assert_eq!(
                ts.used_disk_bytes(),
                0,
                "books must return to zero after churn round {i}"
            );
        }
        // After the churn the full quota is still available.
        let mut big = cfg("big");
        big.disk_bytes = 60 << 30;
        ts.create(&mut p, big).unwrap();
    }

    #[test]
    fn clones_charge_memory_but_no_disk() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0);
        let tpl = ts.create(&mut p, cfg("golden")).unwrap();
        ts.capture_template(&mut p, tpl).unwrap();
        let disk_before = ts.used_disk_bytes();
        let c = ts.clone(&mut p, tpl, "fn-0").unwrap();
        assert_eq!(ts.used_disk_bytes(), disk_before, "clones share the image");
        assert_eq!(ts.used_memory_mib(), 2048, "clone charged its reservation");
        ts.destroy(&mut p, c).unwrap();
        assert_eq!(ts.used_memory_mib(), 1024);
        assert_eq!(ts.used_disk_bytes(), disk_before);
    }

    #[test]
    fn clone_quota_enforced() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0).with_quota(ResourceQuota {
            max_vms: 3,
            ..ResourceQuota::unlimited()
        });
        let tpl = ts.create(&mut p, cfg("golden")).unwrap();
        ts.capture_template(&mut p, tpl).unwrap();
        ts.clone(&mut p, tpl, "fn-0").unwrap();
        ts.clone(&mut p, tpl, "fn-1").unwrap();
        assert!(matches!(
            ts.clone(&mut p, tpl, "fn-2"),
            Err(HvError::LimitExceeded("toolstack VM quota"))
        ));
    }

    #[test]
    fn template_with_live_clones_refuses_destroy_via_facade() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0);
        let tpl = ts.create(&mut p, cfg("golden")).unwrap();
        ts.capture_template(&mut p, tpl).unwrap();
        let c = ts.clone(&mut p, tpl, "fn-0").unwrap();
        assert!(ts.destroy(&mut p, tpl).is_err());
        ts.destroy(&mut p, c).unwrap();
        ts.destroy(&mut p, tpl).unwrap();
        assert_eq!(ts.used_memory_mib(), 0);
        assert_eq!(ts.used_disk_bytes(), 0);
    }

    #[test]
    fn pause_unpause_via_facade() {
        let mut p = platform2();
        let mut ts = Toolstack::new(&p, 0);
        let g = ts.create(&mut p, cfg("a")).unwrap();
        ts.pause(&mut p, g).unwrap();
        assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Paused);
        ts.unpause(&mut p, g).unwrap();
        assert_eq!(p.hv.domain(g).unwrap().state, DomainState::Running);
    }

    #[test]
    fn image_administration_via_proxy() {
        let mut p = platform2();
        let ts = Toolstack::new(&p, 0);
        ts.create_image(&mut p, 0, "scratch.img", 1 << 30).unwrap();
        assert!(ts.list_images(&p, 0).contains(&"scratch.img".to_string()));
        assert!(
            ts.create_image(&mut p, 0, "scratch.img", 1).is_err(),
            "no duplicates"
        );
        assert!(ts.create_image(&mut p, 9, "x.img", 1).is_err(), "bad index");
    }
}
