//! The shard abstraction (§3.1, §5.1, Tables 5.1 and 6.1).
//!
//! Shards are "isolated, self-contained virtual machines hosting
//! components of the control VM": regular guest VMs that differ only in
//! being allowed to invoke privileged functionality and to own inter-VM
//! communication channels. This module enumerates Xoar's nine shard
//! classes with the exact attributes of Table 5.1 (privilege, lifetime,
//! OS, parent, dependencies) and Table 6.1 (memory reservation), plus the
//! per-VM `shard` configuration block of §3.1.

use xoar_hypervisor::{HypercallId, PciAddress};

/// The nine shard classes of Xoar's decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShardKind {
    /// Coordinates booting of the rest of the system; self-destructs.
    Bootstrapper,
    /// Processes XenStore requests (restartable half).
    XenStoreLogic,
    /// Holds the in-memory contents of XenStore (long-lived half).
    XenStoreState,
    /// Exposes the physical console as virtual consoles.
    ConsoleManager,
    /// Instantiates non-boot VMs (the only arbitrarily privileged shard).
    Builder,
    /// Initialises hardware, enumerates the PCI bus, proxies config space.
    PciBack,
    /// Physical network driver exported to guests.
    NetBack,
    /// Physical block driver exported to guests.
    BlkBack,
    /// Administrative toolstack.
    Toolstack,
    /// Per-guest device-emulation stub domain.
    QemuVm,
}

xoar_codec::impl_json_enum!(ShardKind {
    Bootstrapper,
    XenStoreLogic,
    XenStoreState,
    ConsoleManager,
    Builder,
    PciBack,
    NetBack,
    BlkBack,
    Toolstack,
    QemuVm,
});

/// Shard lifetime classes from Table 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifetime {
    /// Alive only during system boot, then destroyed (self-destructing).
    BootUp,
    /// Lives forever, not restartable.
    Forever,
    /// Lives forever, microrebooted per policy ("Forever (R)").
    ForeverRestartable,
    /// Tied to one guest VM's lifetime.
    GuestVm,
}

xoar_codec::impl_json_enum!(Lifetime {
    BootUp,
    Forever,
    ForeverRestartable,
    GuestVm,
});

/// The OS a shard is built on (§5.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOs {
    /// nanOS: minimal, single-threaded, amenable to static analysis.
    NanOs,
    /// miniOS: the multithreaded stub-domain environment.
    MiniOs,
    /// A full paravirtualised Linux.
    Linux,
}

xoar_codec::impl_json_enum!(ShardOs {
    NanOs,
    MiniOs,
    Linux
});

/// Static description of one shard class (one row of Table 5.1 + 6.1).
///
/// # Examples
///
/// ```
/// use xoar_core::shard::{ShardKind, ShardSpec};
///
/// let netback = ShardSpec::of(ShardKind::NetBack);
/// assert_eq!(netback.memory_mib, 128);
/// assert!(netback.restartable());
/// assert!(netback.hypercall_whitelist().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The class.
    pub kind: ShardKind,
    /// Human-readable component name.
    pub name: &'static str,
    /// Whether the shard holds privileged hypercalls ("P" column).
    pub privileged: bool,
    /// Lifetime class.
    pub lifetime: Lifetime,
    /// Guest OS.
    pub os: ShardOs,
    /// The component that requests its creation.
    pub parent: Option<ShardKind>,
    /// Runtime dependencies (Table 5.1 "Depends on").
    pub depends_on: &'static [ShardKind],
    /// Memory reservation in MiB (Table 6.1).
    pub memory_mib: u64,
    /// One-line functionality description.
    pub functionality: &'static str,
}

// Encode-only: the `&'static` fields cannot be materialised by a decoder.
xoar_codec::impl_to_json_struct!(ShardSpec {
    kind,
    name,
    privileged,
    lifetime,
    os,
    parent,
    depends_on,
    memory_mib,
    functionality,
});

impl ShardSpec {
    /// The full decomposition of Table 5.1 with Table 6.1 memory figures.
    pub fn all() -> Vec<ShardSpec> {
        use ShardKind::*;
        vec![
            ShardSpec {
                kind: Bootstrapper,
                name: "Bootstrapper",
                privileged: true,
                lifetime: Lifetime::BootUp,
                os: ShardOs::NanOs,
                parent: None,
                depends_on: &[],
                memory_mib: 32,
                functionality: "Instantiate boot shards",
            },
            ShardSpec {
                kind: XenStoreLogic,
                name: "XenStore-Logic",
                privileged: false,
                lifetime: Lifetime::ForeverRestartable,
                os: ShardOs::MiniOs,
                parent: Some(Bootstrapper),
                depends_on: &[XenStoreState],
                memory_mib: 32,
                functionality: "Process requests for inter-VM comms and config state",
            },
            ShardSpec {
                kind: XenStoreState,
                name: "XenStore-State",
                privileged: false,
                lifetime: Lifetime::Forever,
                os: ShardOs::MiniOs,
                parent: Some(Bootstrapper),
                depends_on: &[],
                memory_mib: 32,
                functionality: "In-memory contents of XenStore",
            },
            ShardSpec {
                kind: ConsoleManager,
                name: "Console Manager",
                privileged: false,
                lifetime: Lifetime::Forever,
                os: ShardOs::Linux,
                parent: Some(Bootstrapper),
                depends_on: &[XenStoreLogic],
                memory_mib: 128,
                functionality: "Expose physical console as virtual consoles to VMs",
            },
            ShardSpec {
                kind: Builder,
                name: "Builder",
                privileged: true,
                lifetime: Lifetime::ForeverRestartable,
                os: ShardOs::NanOs,
                parent: Some(Bootstrapper),
                depends_on: &[XenStoreLogic, ConsoleManager],
                memory_mib: 64,
                functionality: "Instantiate non-boot VMs",
            },
            ShardSpec {
                kind: PciBack,
                name: "PCIBack",
                privileged: true,
                lifetime: Lifetime::BootUp,
                os: ShardOs::Linux,
                parent: Some(Bootstrapper),
                depends_on: &[XenStoreLogic, ConsoleManager, Builder],
                memory_mib: 256,
                functionality: "Initialize hardware and PCI bus, pass through PCI devices",
            },
            ShardSpec {
                kind: NetBack,
                name: "NetBack",
                privileged: false,
                lifetime: Lifetime::ForeverRestartable,
                os: ShardOs::Linux,
                parent: Some(PciBack),
                depends_on: &[XenStoreLogic, ConsoleManager],
                memory_mib: 128,
                functionality: "Expose physical network device as virtual devices to VMs",
            },
            ShardSpec {
                kind: BlkBack,
                name: "BlkBack",
                privileged: false,
                lifetime: Lifetime::ForeverRestartable,
                os: ShardOs::Linux,
                parent: Some(PciBack),
                depends_on: &[XenStoreLogic, ConsoleManager],
                memory_mib: 128,
                functionality: "Expose physical block device as virtual devices to VMs",
            },
            ShardSpec {
                kind: Toolstack,
                name: "Toolstack",
                privileged: false,
                lifetime: Lifetime::ForeverRestartable,
                os: ShardOs::Linux,
                parent: Some(Bootstrapper),
                depends_on: &[XenStoreLogic, ConsoleManager, Builder],
                memory_mib: 128,
                functionality: "Admin toolstack to manage VMs",
            },
            ShardSpec {
                kind: QemuVm,
                name: "QemuVM",
                privileged: false,
                lifetime: Lifetime::GuestVm,
                os: ShardOs::MiniOs,
                parent: Some(Toolstack),
                depends_on: &[XenStoreLogic, NetBack, BlkBack],
                memory_mib: 64,
                functionality: "Device emulation for a single guest VM",
            },
        ]
    }

    /// Looks up one class.
    pub fn of(kind: ShardKind) -> ShardSpec {
        Self::all()
            .into_iter()
            .find(|s| s.kind == kind)
            .expect("every kind has a spec")
    }

    /// Whether the shard is microrebootable.
    pub fn restartable(&self) -> bool {
        self.lifetime == Lifetime::ForeverRestartable
    }

    /// The privileged hypercalls this shard class needs — the whitelist
    /// handed to `permit_hypercall` at build time (Figure 3.1, least
    /// privilege).
    ///
    /// These sets are pinned to the *observed-use minimum*: every entry is
    /// exercised by some code path in the simulation, and the
    /// `xoar-analysis` over-privilege report (static whitelist vs recorded
    /// hypercall trace) is what keeps them honest. PCIBack is the one
    /// declared exception — its whitelist covers hotplug/SR-IOV paths the
    /// simulation never drives, kept because the shard is sealed and
    /// destroyed after boot anyway.
    pub fn hypercall_whitelist(&self) -> Vec<HypercallId> {
        use HypercallId::*;
        match self.kind {
            // The Bootstrapper builds boot shards with MemoryPopulate only
            // (no start-info writes, no foreign grants) and hands out
            // device/port/MMIO rights; IRQ wiring and foreign memory never
            // appear on its trace.
            ShardKind::Bootstrapper => vec![
                DomctlCreateDomain,
                DomctlUnpauseDomain,
                DomctlAssignDevice,
                DomctlSetRole,
                DomctlPermitHypercall,
                DomctlDelegate,
                DomctlIoPortPermission,
                DomctlMmioPermission,
                MemoryPopulate,
            ],
            // The Builder writes start info (MmuWriteForeign) and seeds
            // grant entries (GnttabForeignSetup) but never *maps* foreign
            // pages itself; pause/resize/device-assignment are toolstack
            // and boot-time duties respectively.
            ShardKind::Builder => vec![
                DomctlCreateDomain,
                DomctlDestroyDomain,
                DomctlUnpauseDomain,
                DomctlDelegate,
                DomctlSetRole,
                DomctlSetPrivilegedFor,
                DomctlPermitHypercall,
                MemoryPopulate,
                MmuWriteForeign,
                GnttabForeignSetup,
                VmRollback,
            ],
            ShardKind::PciBack => vec![
                DomctlAssignDevice,
                DomctlIrqPermission,
                DomctlIoPortPermission,
                DomctlMmioPermission,
                SysctlPhysinfo,
            ],
            // Grant mapping is unprivileged (the grant entry is the
            // capability), so the data-path shards need *no* privileged
            // hypercalls at all: their authority is the PCI passthrough.
            ShardKind::NetBack | ShardKind::BlkBack => vec![],
            // Microreboots (VmRollback) go through the Builder, not the
            // toolstack.
            ShardKind::Toolstack => vec![
                DomctlPauseDomain,
                DomctlUnpauseDomain,
                DomctlSetMaxMem,
                DomctlSetVcpus,
                DomctlDestroyDomain,
                DomctlCloneDomain,
                SysctlPhysinfo,
            ],
            ShardKind::QemuVm => vec![MmuMapForeign, MmuWriteForeign],
            ShardKind::XenStoreLogic | ShardKind::XenStoreState | ShardKind::ConsoleManager => {
                vec![]
            }
        }
    }

    /// Whether this class holds the blanket "map any guest's memory"
    /// privilege. §6.2: "only a single, small nanOS shard has the
    /// privileges required to arbitrarily access a guest's memory" — the
    /// Builder (the Bootstrapper holds it too, but only until boot
    /// completes and it self-destructs).
    pub fn arbitrary_memory_access(&self) -> bool {
        matches!(self.kind, ShardKind::Builder | ShardKind::Bootstrapper)
    }

    /// PCI devices this shard class receives by passthrough, given the
    /// host's controllers.
    pub fn pci_assignment(&self, nics: &[PciAddress], disks: &[PciAddress]) -> Vec<PciAddress> {
        match self.kind {
            // One NetBack per NIC, one BlkBack per disk controller: the
            // caller instantiates per device, so the first of each list is
            // taken by convention here.
            ShardKind::NetBack => nics.first().copied().into_iter().collect(),
            ShardKind::BlkBack => disks.first().copied().into_iter().collect(),
            _ => Vec::new(),
        }
    }
}

/// The `shard` block of a VM config file (§3.1): "This block indicates
/// that the VM can be assigned additional privileges and contains
/// parameters that describe these capabilities."
#[derive(Debug, Clone, Default)]
pub struct ShardConfigBlock {
    /// `assign_pci_device(domain, bus, slot)` entries.
    pub pci_devices: Vec<PciAddress>,
    /// `permit_hypercall(id)` entries.
    pub hypercalls: Vec<HypercallId>,
    /// `allow_delegation(guest)` entries, by domain name.
    pub delegate_to: Vec<String>,
}

xoar_codec::impl_json_struct!(ShardConfigBlock {
    pci_devices,
    hypercalls,
    delegate_to
});

/// Per-guest sharing constraints (§3.2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintTag {
    /// The `constrain_group` parameter: shards serving this VM may only be
    /// shared with VMs carrying the same tag.
    pub group: Option<String>,
}

xoar_codec::impl_json_struct!(ConstraintTag { group });

impl ConstraintTag {
    /// A tag restricting sharing to `group`.
    pub fn group(name: &str) -> Self {
        ConstraintTag {
            group: Some(name.to_string()),
        }
    }

    /// No constraint: shareable with anyone.
    pub fn none() -> Self {
        ConstraintTag::default()
    }

    /// Whether two tags permit sharing a shard.
    ///
    /// Xoar "ensur\[es\] that no two VMs with differing constraints share
    /// the same shard"; untagged VMs share only with untagged VMs.
    pub fn compatible(&self, other: &ConstraintTag) -> bool {
        self.group == other.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_shard_classes() {
        let all = ShardSpec::all();
        assert_eq!(all.len(), 10, "nine control-VM classes + per-guest QemuVM");
        // No duplicate kinds.
        let mut kinds: Vec<ShardKind> = all.iter().map(|s| s.kind).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 10);
    }

    #[test]
    fn table_6_1_memory_totals() {
        // Table 6.1: memory ranges from 512 MB (no console, no pciback)
        // to 896 MB (everything), with one NetBack and one BlkBack.
        let always = [
            ShardKind::XenStoreLogic,
            ShardKind::XenStoreState,
            ShardKind::Builder,
            ShardKind::NetBack,
            ShardKind::BlkBack,
            ShardKind::Toolstack,
        ];
        let min: u64 = always.iter().map(|k| ShardSpec::of(*k).memory_mib).sum();
        assert_eq!(min, 512);
        let max = min
            + ShardSpec::of(ShardKind::ConsoleManager).memory_mib
            + ShardSpec::of(ShardKind::PciBack).memory_mib;
        assert_eq!(max, 896);
    }

    #[test]
    fn only_builder_and_boot_components_privileged() {
        for s in ShardSpec::all() {
            let expect = matches!(
                s.kind,
                ShardKind::Bootstrapper | ShardKind::Builder | ShardKind::PciBack
            );
            assert_eq!(s.privileged, expect, "{:?} privilege flag", s.kind);
        }
    }

    #[test]
    fn restartable_matches_table_5_1() {
        let restartable: Vec<ShardKind> = ShardSpec::all()
            .into_iter()
            .filter(|s| s.restartable())
            .map(|s| s.kind)
            .collect();
        assert_eq!(
            restartable,
            vec![
                ShardKind::XenStoreLogic,
                ShardKind::Builder,
                ShardKind::NetBack,
                ShardKind::BlkBack,
                ShardKind::Toolstack,
            ]
        );
    }

    #[test]
    fn self_destructing_components() {
        assert_eq!(
            ShardSpec::of(ShardKind::Bootstrapper).lifetime,
            Lifetime::BootUp
        );
        assert_eq!(ShardSpec::of(ShardKind::PciBack).lifetime, Lifetime::BootUp);
    }

    #[test]
    fn nanos_hosts_only_privileged_boot_components() {
        // §5.7: "the only privileged VM in Xoar is based on nanOS".
        for s in ShardSpec::all() {
            if s.os == ShardOs::NanOs {
                assert!(s.privileged);
            }
        }
    }

    #[test]
    fn driver_domains_need_no_privileged_hypercalls() {
        // Least privilege: the data-path shards derive all their authority
        // from PCI passthrough; grant mapping is unprivileged.
        for kind in [ShardKind::NetBack, ShardKind::BlkBack] {
            let wl = ShardSpec::of(kind).hypercall_whitelist();
            assert!(wl.is_empty(), "{kind:?} whitelist should be empty: {wl:?}");
        }
    }

    #[test]
    fn xenstore_needs_no_privileged_hypercalls() {
        // §5.6: grant tables let XenStore "function without any special
        // privileges".
        assert!(ShardSpec::of(ShardKind::XenStoreLogic)
            .hypercall_whitelist()
            .is_empty());
        assert!(ShardSpec::of(ShardKind::XenStoreState)
            .hypercall_whitelist()
            .is_empty());
        assert!(ShardSpec::of(ShardKind::ConsoleManager)
            .hypercall_whitelist()
            .is_empty());
    }

    #[test]
    fn builder_holds_the_dangerous_calls() {
        let wl = ShardSpec::of(ShardKind::Builder).hypercall_whitelist();
        assert!(wl.contains(&HypercallId::MmuWriteForeign));
        assert!(wl.contains(&HypercallId::GnttabForeignSetup));
        // But the toolstack does not.
        let ts = ShardSpec::of(ShardKind::Toolstack).hypercall_whitelist();
        assert!(!ts.contains(&HypercallId::MmuWriteForeign));
        assert!(
            !ts.contains(&HypercallId::DomctlCreateDomain),
            "creation goes through the Builder"
        );
    }

    #[test]
    fn whitelists_pinned_to_observed_use_minimum() {
        // Exact pins for every class: any widening must be justified here
        // AND survive the xoar-analysis over-privilege report, which diffs
        // these static sets against a recorded simulation trace.
        use HypercallId::*;
        let pin = |kind: ShardKind, expect: &[HypercallId]| {
            let mut wl = ShardSpec::of(kind).hypercall_whitelist();
            wl.sort_by_key(|id| id.index());
            let mut want = expect.to_vec();
            want.sort_by_key(|id| id.index());
            assert_eq!(wl, want, "{kind:?} whitelist drifted");
        };
        pin(
            ShardKind::Bootstrapper,
            &[
                DomctlCreateDomain,
                DomctlUnpauseDomain,
                DomctlAssignDevice,
                DomctlSetRole,
                DomctlPermitHypercall,
                DomctlDelegate,
                DomctlIoPortPermission,
                DomctlMmioPermission,
                MemoryPopulate,
            ],
        );
        pin(
            ShardKind::Builder,
            &[
                DomctlCreateDomain,
                DomctlDestroyDomain,
                DomctlUnpauseDomain,
                DomctlDelegate,
                DomctlSetRole,
                DomctlSetPrivilegedFor,
                DomctlPermitHypercall,
                MemoryPopulate,
                MmuWriteForeign,
                GnttabForeignSetup,
                VmRollback,
            ],
        );
        pin(
            ShardKind::Toolstack,
            &[
                DomctlPauseDomain,
                DomctlUnpauseDomain,
                DomctlSetMaxMem,
                DomctlSetVcpus,
                DomctlDestroyDomain,
                DomctlCloneDomain,
                SysctlPhysinfo,
            ],
        );
        pin(
            ShardKind::PciBack,
            &[
                DomctlAssignDevice,
                DomctlIrqPermission,
                DomctlIoPortPermission,
                DomctlMmioPermission,
                SysctlPhysinfo,
            ],
        );
        pin(ShardKind::QemuVm, &[MmuMapForeign, MmuWriteForeign]);
        for kind in [
            ShardKind::NetBack,
            ShardKind::BlkBack,
            ShardKind::XenStoreLogic,
            ShardKind::XenStoreState,
            ShardKind::ConsoleManager,
        ] {
            pin(kind, &[]);
        }
    }

    #[test]
    fn builder_never_maps_foreign_pages_itself() {
        // The Builder *writes* start info into fresh domains but never
        // maps foreign pages for ongoing access — that capability belongs
        // to per-guest QemuVM stubs (scoped by privileged_for).
        let wl = ShardSpec::of(ShardKind::Builder).hypercall_whitelist();
        assert!(!wl.contains(&HypercallId::MmuMapForeign));
        assert!(wl.contains(&HypercallId::MmuWriteForeign));
    }

    #[test]
    fn dependency_graph_is_acyclic() {
        // Kahn's algorithm over the depends_on edges.
        let all = ShardSpec::all();
        let mut order = Vec::new();
        let mut remaining: Vec<&ShardSpec> = all.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|s| {
                let ready = s.depends_on.iter().all(|d| order.contains(d));
                if ready {
                    order.push(s.kind);
                }
                !ready
            });
            assert!(remaining.len() < before, "cycle in shard dependencies");
        }
        // XenStore-State first among dependencies, QemuVM last-ish.
        assert!(
            order
                .iter()
                .position(|k| *k == ShardKind::XenStoreState)
                .unwrap()
                < order
                    .iter()
                    .position(|k| *k == ShardKind::XenStoreLogic)
                    .unwrap()
        );
    }

    #[test]
    fn constraint_tags() {
        let a = ConstraintTag::group("customer-a");
        let b = ConstraintTag::group("customer-b");
        let none = ConstraintTag::none();
        assert!(a.compatible(&a));
        assert!(!a.compatible(&b));
        assert!(!a.compatible(&none));
        assert!(none.compatible(&none));
    }

    #[test]
    fn pci_assignment_per_class() {
        let nics = [PciAddress::new(0, 2, 0)];
        let disks = [PciAddress::new(0, 3, 0)];
        assert_eq!(
            ShardSpec::of(ShardKind::NetBack).pci_assignment(&nics, &disks),
            vec![nics[0]]
        );
        assert_eq!(
            ShardSpec::of(ShardKind::BlkBack).pci_assignment(&nics, &disks),
            vec![disks[0]]
        );
        assert!(ShardSpec::of(ShardKind::Toolstack)
            .pci_assignment(&nics, &disks)
            .is_empty());
    }
}
