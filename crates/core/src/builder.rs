//! The Builder: the only arbitrarily privileged shard in Xoar (§5.1–5.2).
//!
//! The Builder performs "the hypervisor and guest memory related
//! operations necessary when creating a VM": creating the domain shell,
//! populating its memory, writing the page tables and start-info page,
//! and installing the boot-time grant entries that let the deprivileged
//! XenStore and Console Manager communicate with the new guest (§5.6).
//!
//! "To avoid having the privileged Builder parse user-provided data, like
//! kernels and file systems, it only builds VMs from a library of known
//! good images. If a guest needs to run its own kernel, the Builder
//! instantiates a VM with a special bootloader, which loads the user's
//! kernel from within the guest VM."

use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, HvError, HvResult, Hypercall, Hypervisor};
use xoar_xenstore::XenStore;

/// A kernel image in the Builder's library of known-good images.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// Image name (e.g. `vmlinuz-2.6.31-pvops`).
    pub name: String,
    /// Image size in bytes (drives build-time cost modelling).
    pub size_bytes: u64,
}

/// How the guest's kernel is selected.
#[derive(Debug, Clone)]
pub enum KernelSpec {
    /// A named image from the trusted library.
    Library(String),
    /// A user-supplied kernel: the Builder never parses it; it boots the
    /// trusted bootloader image which loads the kernel *inside* the guest.
    UserProvided {
        /// A label for audit purposes only.
        label: String,
    },
}

/// A request issued by a Toolstack to the Builder.
#[derive(Debug, Clone)]
pub struct BuildRequest {
    /// Guest name.
    pub name: String,
    /// Memory reservation in MiB.
    pub memory_mib: u64,
    /// VCPU count.
    pub vcpus: u32,
    /// Kernel selection.
    pub kernel: KernelSpec,
    /// The requesting toolstack, which receives management rights.
    pub on_behalf_of: DomId,
}

/// The result of a successful build.
#[derive(Debug, Clone, Copy)]
pub struct BuiltVm {
    /// The new guest's domain ID.
    pub guest: DomId,
    /// The PFN holding the start-info page.
    pub start_info_pfn: Pfn,
    /// The PFN of the XenStore ring page (granted to the store).
    pub xenstore_ring_pfn: Pfn,
    /// The PFN of the console ring page (granted to the console shard).
    pub console_ring_pfn: Pfn,
}

/// The name of the trusted bootloader image.
pub const BOOTLOADER_IMAGE: &str = "pv-bootloader";

/// The Builder service.
#[derive(Debug)]
pub struct Builder {
    /// The hosting (privileged, nanOS-based) domain.
    pub dom: DomId,
    library: Vec<KernelImage>,
    builds: u64,
}

impl Builder {
    /// Creates a Builder hosted in `dom` with the default image library.
    pub fn new(dom: DomId) -> Self {
        Builder {
            dom,
            library: vec![
                KernelImage {
                    name: "vmlinuz-2.6.31-pvops".into(),
                    size_bytes: 4 * 1024 * 1024,
                },
                KernelImage {
                    name: "vmlinuz-2.6.32-pvops".into(),
                    size_bytes: 4 * 1024 * 1024,
                },
                KernelImage {
                    name: "mini-os".into(),
                    size_bytes: 512 * 1024,
                },
                KernelImage {
                    name: "nanos".into(),
                    size_bytes: 64 * 1024,
                },
                KernelImage {
                    name: BOOTLOADER_IMAGE.into(),
                    size_bytes: 256 * 1024,
                },
            ],
            builds: 0,
        }
    }

    /// Adds an image to the trusted library.
    pub fn add_image(&mut self, image: KernelImage) {
        self.library.push(image);
    }

    /// Library lookup.
    pub fn image(&self, name: &str) -> Option<&KernelImage> {
        self.library.iter().find(|i| i.name == name)
    }

    /// Total successful builds.
    pub fn build_count(&self) -> u64 {
        self.builds
    }

    /// Resolves the image the Builder will actually load for `spec`.
    ///
    /// User-provided kernels resolve to the trusted bootloader — the
    /// Builder refuses to parse untrusted bytes.
    pub fn resolve_image(&self, spec: &KernelSpec) -> HvResult<&KernelImage> {
        let name = match spec {
            KernelSpec::Library(n) => n.as_str(),
            KernelSpec::UserProvided { .. } => BOOTLOADER_IMAGE,
        };
        self.image(name).ok_or_else(|| {
            HvError::InvalidArgument(format!("no image {name} in the trusted library"))
        })
    }

    /// Builds a guest VM.
    ///
    /// Every step is a real hypercall issued *as the Builder domain*, so
    /// the whole flow is subject to the Builder's whitelist — the tests in
    /// `crates/core/src/platform.rs` verify that no other shard can follow
    /// this path.
    pub fn build(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut XenStore,
        xenstore_dom: DomId,
        console_dom: DomId,
        req: &BuildRequest,
    ) -> HvResult<BuiltVm> {
        let image = self.resolve_image(&req.kernel)?.clone();
        let guest = hv
            .hypercall(
                self.dom,
                Hypercall::DomctlCreateDomain {
                    name: req.name.clone(),
                    memory_mib: req.memory_mib,
                    vcpus: req.vcpus,
                },
            )?
            .dom_id()?;
        // Populate a model-scale number of frames: 1 frame per MiB keeps
        // simulations cheap while preserving proportionality.
        let frames = req.memory_mib.max(4);
        hv.hypercall(
            self.dom,
            Hypercall::MemoryPopulate {
                target: guest,
                frames,
            },
        )?;

        // Lay out the magic pages.
        let start_info_pfn = Pfn(0);
        let xenstore_ring_pfn = Pfn(1);
        let console_ring_pfn = Pfn(2);
        let kernel_pfn = Pfn(3);
        hv.hypercall(
            self.dom,
            Hypercall::MmuWriteForeign {
                target: guest,
                pfn: kernel_pfn,
                data: format!("kernel:{}", image.name).into_bytes(),
            },
        )?;
        hv.hypercall(
            self.dom,
            Hypercall::MmuWriteForeign {
                target: guest,
                pfn: start_info_pfn,
                data: format!(
                    "start-info: nr_pages={frames} store_pfn={} console_pfn={}",
                    xenstore_ring_pfn.0, console_ring_pfn.0
                )
                .into_bytes(),
            },
        )?;
        // §5.6: "The Builder adds a step to the regular VM creation code —
        // to automatically create grant table entries for this shared
        // memory, allowing these tools to use grant tables and function
        // without any special privileges."
        hv.hypercall(
            self.dom,
            Hypercall::GnttabForeignSetup {
                owner: guest,
                grantee: xenstore_dom,
                pfn: xenstore_ring_pfn,
                access: GrantAccess::ReadWrite,
            },
        )?;
        hv.hypercall(
            self.dom,
            Hypercall::GnttabForeignSetup {
                owner: guest,
                grantee: console_dom,
                pfn: console_ring_pfn,
                access: GrantAccess::ReadWrite,
            },
        )?;
        // Hand management to the requesting toolstack (§5.6's parent flag).
        hv.hypercall(
            self.dom,
            Hypercall::DomctlDelegate {
                target: guest,
                manager: req.on_behalf_of,
            },
        )?;
        // Register with XenStore and unpause.
        xs.create_domain_home(self.dom, guest)
            .map_err(|e| HvError::InvalidArgument(format!("xenstore: {e}")))?;
        let _ = xs.write_str(
            self.dom,
            &format!("/local/domain/{}/name", guest.0),
            &req.name,
        );
        hv.hypercall(self.dom, Hypercall::DomctlUnpauseDomain { target: guest })?;
        self.builds += 1;
        Ok(BuiltVm {
            guest,
            start_info_pfn,
            xenstore_ring_pfn,
            console_ring_pfn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_hypervisor::domain::DomainRole;
    use xoar_hypervisor::{HypercallId, PrivilegeSet};

    use crate::shard::{ShardKind, ShardSpec};

    fn platform() -> (Hypervisor, XenStore, Builder, DomId, DomId, DomId) {
        let mut hv = Hypervisor::with_default_host();
        // Bootstrapper stands in as creator of the boot shards.
        let mut builder_privs = PrivilegeSet::default();
        for id in ShardSpec::of(ShardKind::Builder).hypercall_whitelist() {
            builder_privs.permit_hypercall(id);
        }
        builder_privs.map_foreign_any = true;
        let builder_dom = hv
            .create_boot_domain("builder", DomainRole::Shard, 64, builder_privs)
            .unwrap();
        let xenstore_dom = hv
            .create_boot_domain(
                "xenstore-logic",
                DomainRole::Shard,
                32,
                PrivilegeSet::default(),
            )
            .unwrap();
        let console_dom = hv
            .create_boot_domain(
                "console-mgr",
                DomainRole::Shard,
                128,
                PrivilegeSet::default(),
            )
            .unwrap();
        let toolstack_dom = hv
            .create_boot_domain("toolstack", DomainRole::Shard, 128, PrivilegeSet::default())
            .unwrap();
        let mut xs = XenStore::new();
        xs.set_privileged(builder_dom, true);
        (
            hv,
            xs,
            Builder::new(builder_dom),
            xenstore_dom,
            console_dom,
            toolstack_dom,
        )
    }

    fn req(ts: DomId) -> BuildRequest {
        BuildRequest {
            name: "guest-a".into(),
            memory_mib: 64,
            vcpus: 2,
            kernel: KernelSpec::Library("vmlinuz-2.6.31-pvops".into()),
            on_behalf_of: ts,
        }
    }

    #[test]
    fn build_produces_running_guest() {
        let (mut hv, mut xs, mut b, xsd, cod, tsd) = platform();
        let built = b.build(&mut hv, &mut xs, xsd, cod, &req(tsd)).unwrap();
        let d = hv.domain(built.guest).unwrap();
        assert_eq!(d.state, xoar_hypervisor::DomainState::Running);
        assert_eq!(d.vcpus.len(), 2);
        assert_eq!(
            d.parent_toolstack,
            Some(tsd),
            "management delegated to the toolstack"
        );
        assert_eq!(b.build_count(), 1);
        // Start-info page written.
        let si = hv.mem.read(built.guest, built.start_info_pfn).unwrap();
        assert!(String::from_utf8(si.to_vec())
            .unwrap()
            .contains("store_pfn=1"));
        // Name registered in XenStore.
        assert_eq!(
            xs.read_str(b.dom, &format!("/local/domain/{}/name", built.guest.0))
                .unwrap(),
            "guest-a"
        );
    }

    #[test]
    fn boot_grants_let_deprivileged_services_map() {
        let (mut hv, mut xs, mut b, xsd, cod, tsd) = platform();
        let built = b.build(&mut hv, &mut xs, xsd, cod, &req(tsd)).unwrap();
        // The XenStore shard can map the store ring without any privilege.
        let table = hv.grant_table(built.guest).unwrap();
        let to_xs = table.granted_to(xsd);
        assert_eq!(to_xs.len(), 1);
        let gref = to_xs[0].0;
        hv.hypercall(
            xsd,
            Hypercall::GnttabMapGrantRef {
                granter: built.guest,
                gref,
            },
        )
        .expect("unprivileged grant map must succeed");
        // And the console shard its ring.
        assert_eq!(
            hv.grant_table(built.guest).unwrap().granted_to(cod).len(),
            1
        );
    }

    #[test]
    fn user_kernel_resolves_to_bootloader() {
        let (_, _, b, ..) = platform();
        let img = b
            .resolve_image(&KernelSpec::UserProvided {
                label: "custom-4.4".into(),
            })
            .unwrap();
        assert_eq!(img.name, BOOTLOADER_IMAGE);
    }

    #[test]
    fn unknown_library_image_refused() {
        let (_, _, b, ..) = platform();
        assert!(b
            .resolve_image(&KernelSpec::Library("evil.bin".into()))
            .is_err());
    }

    #[test]
    fn unprivileged_domain_cannot_build() {
        let (mut hv, mut xs, _b, xsd, cod, tsd) = platform();
        // A rogue "builder" living in the toolstack domain (which lacks
        // DomctlCreateDomain) must fail at the very first hypercall.
        let mut rogue = Builder::new(tsd);
        let err = rogue
            .build(&mut hv, &mut xs, xsd, cod, &req(tsd))
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
    }

    #[test]
    fn library_can_be_extended() {
        let (_, _, mut b, ..) = platform();
        b.add_image(KernelImage {
            name: "vmlinuz-3.0".into(),
            size_bytes: 5 << 20,
        });
        assert!(b.image("vmlinuz-3.0").is_some());
        assert!(b
            .resolve_image(&KernelSpec::Library("vmlinuz-3.0".into()))
            .is_ok());
    }

    #[test]
    fn builder_whitelist_is_sufficient_and_tight() {
        // The builder whitelist covers exactly the calls `build` issues.
        let wl = ShardSpec::of(ShardKind::Builder).hypercall_whitelist();
        for needed in [
            HypercallId::DomctlCreateDomain,
            HypercallId::MemoryPopulate,
            HypercallId::MmuWriteForeign,
            HypercallId::GnttabForeignSetup,
            HypercallId::DomctlDelegate,
            HypercallId::DomctlUnpauseDomain,
        ] {
            assert!(
                wl.contains(&needed),
                "{needed:?} missing from builder whitelist"
            );
        }
        assert!(!wl.contains(&HypercallId::PlatformReboot));
        // §4.3: "Dom0 tools such as the VM builder … directly map the
        // target VM's memory during VM creation" — in this model the
        // Builder *writes* start info (MmuWriteForeign) but never takes
        // ongoing foreign mappings; that scoped right belongs to QemuVM
        // stubs, so MmuMapForeign stays off the Builder's whitelist.
        assert!(!wl.contains(&HypercallId::MmuMapForeign));
    }
}
