//! The secure audit log (§3.2.2).
//!
//! "Events such as the creation, destruction and migration of VMs, along
//! with all the shards linked to the VM are stored in an off-host,
//! append-only audit log." The log supports the two forensic queries the
//! paper motivates:
//!
//! 1. after a shard compromise, enumerate every guest that relied on it
//!    during the compromise window ([`AuditLog::guests_exposed_to`]);
//! 2. after a vulnerability disclosure, find every guest serviced by a
//!    shard running the vulnerable release
//!    ([`AuditLog::guests_serviced_by_release`]).
//!
//! Records are serialized to JSON lines — the minimal faithful encoding of
//! an off-host serialized event stream (see DESIGN.md).

use std::collections::BTreeSet;

use xoar_hypervisor::DomId;

use crate::shard::ShardKind;

/// One audit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// A guest VM was created by a toolstack.
    VmCreated {
        /// The new guest.
        guest: DomId,
        /// Guest name.
        name: String,
        /// The managing toolstack domain.
        toolstack: DomId,
    },
    /// A guest VM was destroyed.
    VmDestroyed {
        /// The guest.
        guest: DomId,
    },
    /// A guest VM was snapshot-forked from a sealed template.
    VmCloned {
        /// The new clone.
        guest: DomId,
        /// The template it was forked from.
        template: DomId,
        /// The managing toolstack domain.
        toolstack: DomId,
    },
    /// A guest was linked to a service shard (device attach).
    ShardLinked {
        /// The guest.
        guest: DomId,
        /// The shard domain.
        shard: DomId,
        /// The shard's class.
        kind: ShardKind,
        /// The software release the shard runs (for vulnerability
        /// retrospectives).
        release: String,
    },
    /// A guest was unlinked from a shard.
    ShardUnlinked {
        /// The guest.
        guest: DomId,
        /// The shard domain.
        shard: DomId,
    },
    /// A shard was microrebooted.
    ShardRestarted {
        /// The shard domain.
        shard: DomId,
        /// Pages restored by the rollback.
        pages_restored: u64,
    },
    /// A shard was upgraded in place to a new release.
    ShardUpgraded {
        /// The shard domain.
        shard: DomId,
        /// New release identifier.
        release: String,
    },
    /// A compromise was detected (input to forensics).
    CompromiseDetected {
        /// The compromised domain.
        dom: DomId,
    },
    /// The hypervisor itself was replaced under executing VMs (§7.1,
    /// ReHype-style controlled reboot).
    HypervisorRestarted {
        /// Guests whose device connections were renegotiated.
        guests_recovered: u64,
    },
}

xoar_codec::impl_json_enum!(AuditEvent {
    VmCreated { guest, name, toolstack },
    VmDestroyed { guest },
    VmCloned { guest, template, toolstack },
    ShardLinked { guest, shard, kind, release },
    ShardUnlinked { guest, shard },
    ShardRestarted { shard, pages_restored },
    ShardUpgraded { shard, release },
    CompromiseDetected { dom },
    HypervisorRestarted { guests_recovered },
});

/// A timestamped, sequenced, hash-chained audit record.
///
/// Each record carries the hash of its predecessor and its own hash over
/// `(seq, at_ns, event, prev_hash)`, making the off-host log
/// tamper-evident: altering, removing, or reordering any record breaks
/// every subsequent link (verified by [`AuditLog::verify_chain`]). This
/// is the "securely log" property §3.2.2 requires of the audit sink.
#[derive(Debug, Clone)]
pub struct AuditRecord {
    /// Monotonic sequence number (append-only ordering).
    pub seq: u64,
    /// Simulated time of the event (ns).
    pub at_ns: u64,
    /// The event.
    pub event: AuditEvent,
    /// Hash of the preceding record (0 for the genesis record).
    pub prev_hash: u64,
    /// This record's chained hash.
    pub hash: u64,
}

xoar_codec::impl_json_struct!(AuditRecord {
    seq,
    at_ns,
    event,
    prev_hash,
    hash
});

/// FNV-1a over the canonical encoding of a record's content.
fn chain_hash(seq: u64, at_ns: u64, event: &AuditEvent, prev_hash: u64) -> u64 {
    let payload = xoar_codec::to_string(event);
    chain_hash_payload(seq, at_ns, payload.as_bytes(), prev_hash)
}

/// The chain hash over an already-encoded event payload. `payload` must
/// be the canonical `xoar_codec` encoding of the event — the restart
/// fast path composes it from a precompiled template instead of
/// serializing per append.
fn chain_hash_payload(seq: u64, at_ns: u64, payload: &[u8], prev_hash: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for chunk in [
        seq.to_le_bytes().as_slice(),
        at_ns.to_le_bytes().as_slice(),
        prev_hash.to_le_bytes().as_slice(),
        payload,
    ] {
        for &b in chunk {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// The append-only audit log.
///
/// The store is modelled as the off-host sink: records can be appended
/// and queried, never modified or removed.
///
/// # Examples
///
/// ```
/// use xoar_core::audit::{AuditEvent, AuditLog};
/// use xoar_hypervisor::DomId;
///
/// let mut log = AuditLog::new();
/// log.append(100, AuditEvent::CompromiseDetected { dom: DomId(6) });
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.verify_chain(), Ok(()));
/// ```
#[derive(Debug, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at simulated time `at_ns`, extending the hash
    /// chain.
    pub fn append(&mut self, at_ns: u64, event: AuditEvent) {
        let seq = self.records.len() as u64;
        let prev_hash = self.records.last().map_or(0, |r| r.hash);
        let hash = chain_hash(seq, at_ns, &event, prev_hash);
        self.records.push(AuditRecord {
            seq,
            at_ns,
            event,
            prev_hash,
            hash,
        });
    }

    /// Appends an event whose canonical JSON payload the caller composed
    /// from a precompiled template (the microreboot fast path), skipping
    /// the per-append serialization of [`AuditLog::append`].
    ///
    /// `payload` must be byte-identical to `xoar_codec::to_string(&event)`
    /// or the chain hash would diverge from what [`AuditLog::verify_chain`]
    /// recomputes; debug builds assert this.
    pub fn append_composed(&mut self, at_ns: u64, event: AuditEvent, payload: &str) {
        debug_assert_eq!(
            payload,
            xoar_codec::to_string(&event),
            "composed payload must match the canonical event encoding"
        );
        let seq = self.records.len() as u64;
        let prev_hash = self.records.last().map_or(0, |r| r.hash);
        let hash = chain_hash_payload(seq, at_ns, payload.as_bytes(), prev_hash);
        self.records.push(AuditRecord {
            seq,
            at_ns,
            event,
            prev_hash,
            hash,
        });
    }

    /// Verifies the hash chain end to end. Returns the sequence number of
    /// the first corrupted record, or `Ok(())` for an intact log.
    pub fn verify_chain(&self) -> Result<(), u64> {
        let mut prev = 0u64;
        for r in &self.records {
            if r.prev_hash != prev {
                return Err(r.seq);
            }
            let expect = chain_hash(r.seq, r.at_ns, &r.event, r.prev_hash);
            if r.hash != expect {
                return Err(r.seq);
            }
            prev = r.hash;
        }
        Ok(())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Read-only record access.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Serialises the whole log as JSON lines (the off-host wire format).
    pub fn to_json_lines(&self) -> String {
        self.records
            .iter()
            .map(xoar_codec::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Forensic query 1: every guest linked to `shard` at any point in
    /// `[from_ns, to_ns]` — "enumerating all guest VMs that relied on that
    /// particular service at any point of time during the compromise".
    pub fn guests_exposed_to(&self, shard: DomId, from_ns: u64, to_ns: u64) -> BTreeSet<DomId> {
        let mut linked_before: BTreeSet<DomId> = BTreeSet::new();
        let mut exposed: BTreeSet<DomId> = BTreeSet::new();
        for r in &self.records {
            match &r.event {
                AuditEvent::ShardLinked {
                    guest, shard: s, ..
                } if *s == shard => {
                    if r.at_ns <= to_ns {
                        if r.at_ns >= from_ns {
                            exposed.insert(*guest);
                        } else {
                            linked_before.insert(*guest);
                        }
                    }
                }
                AuditEvent::ShardUnlinked { guest, shard: s } if *s == shard => {
                    if r.at_ns < from_ns {
                        linked_before.remove(guest);
                    }
                }
                AuditEvent::VmDestroyed { guest } => {
                    if r.at_ns < from_ns {
                        linked_before.remove(guest);
                    }
                }
                _ => {}
            }
        }
        // Guests linked before the window and not unlinked before it were
        // exposed for its whole duration.
        exposed.extend(linked_before);
        exposed
    }

    /// Forensic query 2: every guest ever serviced by a shard while it ran
    /// `release` — "the audit log may be used to identify all guest VMs
    /// that were serviced by a vulnerable shard".
    pub fn guests_serviced_by_release(&self, release: &str) -> BTreeSet<DomId> {
        let mut out = BTreeSet::new();
        for r in &self.records {
            if let AuditEvent::ShardLinked {
                guest,
                release: rel,
                ..
            } = &r.event
            {
                if rel == release {
                    out.insert(*guest);
                }
            }
        }
        out
    }

    /// The dependency graph at time `at_ns`: edges `(guest, shard)` live
    /// at that instant (Taser-style reconstruction \[19\]).
    pub fn dependency_graph_at(&self, at_ns: u64) -> Vec<(DomId, DomId)> {
        let mut live: BTreeSet<(DomId, DomId)> = BTreeSet::new();
        for r in &self.records {
            if r.at_ns > at_ns {
                break;
            }
            match &r.event {
                AuditEvent::ShardLinked { guest, shard, .. } => {
                    live.insert((*guest, *shard));
                }
                AuditEvent::ShardUnlinked { guest, shard } => {
                    live.remove(&(*guest, *shard));
                }
                AuditEvent::VmDestroyed { guest } => {
                    live.retain(|(g, _)| g != guest);
                }
                _ => {}
            }
        }
        live.into_iter().collect()
    }

    /// Restart count of a shard (patching/freshness metric).
    pub fn restart_count(&self, shard: DomId) -> u64 {
        self.records
            .iter()
            .filter(
                |r| matches!(&r.event, AuditEvent::ShardRestarted { shard: s, .. } if *s == shard),
            )
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u32) -> DomId {
        DomId(n)
    }

    fn linked(log: &mut AuditLog, at: u64, guest: u32, shard: u32, release: &str) {
        log.append(
            at,
            AuditEvent::ShardLinked {
                guest: g(guest),
                shard: g(shard),
                kind: ShardKind::NetBack,
                release: release.to_string(),
            },
        );
    }

    #[test]
    fn append_only_sequencing() {
        let mut log = AuditLog::new();
        log.append(10, AuditEvent::VmDestroyed { guest: g(1) });
        log.append(20, AuditEvent::VmDestroyed { guest: g(2) });
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].seq, 0);
        assert_eq!(log.records()[1].seq, 1);
    }

    #[test]
    fn json_lines_round_trip() {
        let mut log = AuditLog::new();
        linked(&mut log, 5, 7, 2, "netback-1.0");
        let text = log.to_json_lines();
        let parsed: AuditRecord = xoar_codec::from_str(&text).unwrap();
        assert!(matches!(parsed.event, AuditEvent::ShardLinked { .. }));
    }

    #[test]
    fn exposure_window_query() {
        let mut log = AuditLog::new();
        linked(&mut log, 100, 1, 9, "r1"); // Linked before window, still live.
        linked(&mut log, 150, 2, 9, "r1"); // Linked before window, unlinked before it.
        log.append(
            200,
            AuditEvent::ShardUnlinked {
                guest: g(2),
                shard: g(9),
            },
        );
        linked(&mut log, 400, 3, 9, "r1"); // Linked inside window.
        linked(&mut log, 900, 4, 9, "r1"); // Linked after window.
        let exposed = log.guests_exposed_to(g(9), 300, 800);
        assert!(exposed.contains(&g(1)), "still linked at window start");
        assert!(!exposed.contains(&g(2)), "unlinked before the window");
        assert!(exposed.contains(&g(3)));
        assert!(!exposed.contains(&g(4)), "linked after the window");
    }

    #[test]
    fn destroyed_guests_not_exposed() {
        let mut log = AuditLog::new();
        linked(&mut log, 100, 1, 9, "r1");
        log.append(150, AuditEvent::VmDestroyed { guest: g(1) });
        let exposed = log.guests_exposed_to(g(9), 300, 800);
        assert!(exposed.is_empty());
    }

    #[test]
    fn vulnerable_release_query() {
        let mut log = AuditLog::new();
        linked(&mut log, 10, 1, 9, "netback-1.0");
        linked(&mut log, 20, 2, 9, "netback-1.0");
        log.append(
            30,
            AuditEvent::ShardUpgraded {
                shard: g(9),
                release: "netback-1.1".into(),
            },
        );
        linked(&mut log, 40, 3, 9, "netback-1.1");
        let affected = log.guests_serviced_by_release("netback-1.0");
        assert_eq!(affected.into_iter().collect::<Vec<_>>(), vec![g(1), g(2)]);
    }

    #[test]
    fn dependency_graph_reconstruction() {
        let mut log = AuditLog::new();
        linked(&mut log, 10, 1, 9, "r");
        linked(&mut log, 20, 1, 8, "r");
        log.append(
            30,
            AuditEvent::ShardUnlinked {
                guest: g(1),
                shard: g(9),
            },
        );
        assert_eq!(
            log.dependency_graph_at(25),
            vec![(g(1), g(8)), (g(1), g(9))]
        );
        assert_eq!(log.dependency_graph_at(35), vec![(g(1), g(8))]);
        assert!(log.dependency_graph_at(5).is_empty());
    }

    #[test]
    fn restart_counting() {
        let mut log = AuditLog::new();
        log.append(
            1,
            AuditEvent::ShardRestarted {
                shard: g(9),
                pages_restored: 3,
            },
        );
        log.append(
            2,
            AuditEvent::ShardRestarted {
                shard: g(9),
                pages_restored: 1,
            },
        );
        log.append(
            3,
            AuditEvent::ShardRestarted {
                shard: g(8),
                pages_restored: 2,
            },
        );
        assert_eq!(log.restart_count(g(9)), 2);
        assert_eq!(log.restart_count(g(8)), 1);
        assert_eq!(log.restart_count(g(7)), 0);
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;

    fn log_with(n: u64) -> AuditLog {
        let mut log = AuditLog::new();
        for i in 0..n {
            log.append(
                i * 10,
                AuditEvent::VmDestroyed {
                    guest: DomId(i as u32),
                },
            );
        }
        log
    }

    #[test]
    fn intact_chain_verifies() {
        assert_eq!(log_with(0).verify_chain(), Ok(()));
        assert_eq!(log_with(10).verify_chain(), Ok(()));
    }

    #[test]
    fn tampered_payload_detected() {
        let mut log = log_with(5);
        log.records[2].event = AuditEvent::VmDestroyed { guest: DomId(99) };
        assert_eq!(log.verify_chain(), Err(2));
    }

    #[test]
    fn tampered_timestamp_detected() {
        let mut log = log_with(5);
        log.records[3].at_ns = 0;
        assert_eq!(log.verify_chain(), Err(3));
    }

    #[test]
    fn removed_record_detected() {
        let mut log = log_with(5);
        log.records.remove(1);
        assert!(log.verify_chain().is_err());
    }

    #[test]
    fn reordered_records_detected() {
        let mut log = log_with(5);
        log.records.swap(1, 2);
        assert!(log.verify_chain().is_err());
    }

    #[test]
    fn composed_append_matches_serialized_append() {
        // The template-composed fast path must produce the exact chain
        // the serializing path produces, record for record.
        let mut serialized = log_with(2);
        let mut composed = log_with(2);
        let event = AuditEvent::ShardRestarted {
            shard: DomId(6),
            pages_restored: 42,
        };
        serialized.append(70, event.clone());
        composed.append_composed(
            70,
            event,
            r#"{"ShardRestarted":{"shard":6,"pages_restored":42}}"#,
        );
        assert_eq!(
            serialized.records()[2].hash,
            composed.records()[2].hash,
            "composed payload hashes identically"
        );
        assert_eq!(composed.verify_chain(), Ok(()));
    }

    #[test]
    fn recomputing_one_hash_is_not_enough() {
        // An attacker who fixes up a tampered record's own hash still
        // breaks the next record's prev_hash link.
        let mut log = log_with(5);
        log.records[2].event = AuditEvent::VmDestroyed { guest: DomId(99) };
        let r = &log.records[2];
        let fixed = chain_hash(r.seq, r.at_ns, &r.event, r.prev_hash);
        log.records[2].hash = fixed;
        assert_eq!(
            log.verify_chain(),
            Err(3),
            "the break moves to the successor"
        );
    }
}

#[cfg(test)]
mod chain_proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Tampering with any field of any record is always detected.
    #[test]
    fn any_tamper_detected() {
        Runner::cases(64).run("any tamper is detected", |g| {
            let n = g.u64(2..20);
            let victim_frac = g.f64(0.0..1.0);
            let field = g.u8(0..3);
            let mut log = AuditLog::new();
            for i in 0..n {
                log.append(
                    i * 7,
                    AuditEvent::VmDestroyed {
                        guest: DomId(i as u32),
                    },
                );
            }
            assert_eq!(log.verify_chain(), Ok(()));
            let victim = ((n as f64 * victim_frac) as usize).min(n as usize - 1);
            match field {
                0 => log.records[victim].at_ns += 1,
                1 => log.records[victim].event = AuditEvent::CompromiseDetected { dom: DomId(0) },
                _ => log.records[victim].prev_hash ^= 1,
            }
            assert!(log.verify_chain().is_err());
        });
    }
}
