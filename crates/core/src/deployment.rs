//! Deployment-scenario presets (§3.4).
//!
//! The paper sketches two configurations and stresses that "Xoar does not
//! favour a particular configuration":
//!
//! * **public cloud** (§3.4.1): one administrative toolstack densely
//!   multiplexing Internet-exposed tenant VMs, shared shards judiciously
//!   microrebooted, no console;
//! * **private cloud** (§3.4.2): per-user toolstacks with shards
//!   delegated to them, coarse resource partitioning, quotas enforced by
//!   the platform.
//!
//! [`DeploymentScenario`] packages those choices so an operator gets a
//! sensible platform + toolstack + restart-engine bundle in one call.

use xoar_hypervisor::HvResult;

use crate::platform::{Platform, XoarConfig};
use crate::restart::RestartEngine;
use crate::toolstack::{ResourceQuota, Toolstack};

/// The §3.4 deployment scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentScenario {
    /// §3.4.1: dense multi-tenant hosting, one toolstack, 10 s driver
    /// restarts, no console (commercial hosts run headless).
    PublicCloud,
    /// §3.4.2: `users` independent slices, each with its own toolstack
    /// and an equal share of the host's memory; PCIBack kept for
    /// on-the-fly device provisioning.
    PrivateCloud {
        /// Number of per-user toolstacks.
        users: usize,
    },
}

/// A deployed platform bundle.
pub struct Deployment {
    /// The booted platform.
    pub platform: Platform,
    /// One facade per toolstack, quotas applied.
    pub toolstacks: Vec<Toolstack>,
    /// The restart engine, pre-registered per the scenario's policy.
    pub engine: RestartEngine,
}

impl DeploymentScenario {
    /// The [`XoarConfig`] this scenario boots with.
    pub fn config(self) -> XoarConfig {
        match self {
            DeploymentScenario::PublicCloud => XoarConfig {
                with_console: false,
                keep_pciback: false,
                toolstacks: 1,
                restart_interval_s: Some(10),
                trace_hypercalls: false,
            },
            DeploymentScenario::PrivateCloud { users } => XoarConfig {
                with_console: true,
                keep_pciback: true,
                toolstacks: users.max(1),
                restart_interval_s: None,
                trace_hypercalls: false,
            },
        }
    }

    /// Boots the scenario.
    pub fn deploy(self) -> HvResult<Deployment> {
        let mut platform = Platform::xoar(self.config());
        let engine = RestartEngine::for_platform(&mut platform)?;
        let toolstacks = match self {
            DeploymentScenario::PublicCloud => {
                vec![Toolstack::new(&platform, 0)]
            }
            DeploymentScenario::PrivateCloud { users } => {
                let users = users.max(1);
                // Equal slices of the host, leaving headroom for shards.
                let host_mib = platform.hv.host_config().memory_mib;
                let share = (host_mib.saturating_sub(platform.service_memory_mib())) / users as u64;
                (0..users)
                    .map(|i| {
                        Toolstack::new(&platform, i).with_quota(ResourceQuota {
                            max_vms: 16,
                            max_memory_mib: share,
                            max_disk_bytes: 64 << 30,
                        })
                    })
                    .collect()
            }
        };
        Ok(Deployment {
            platform,
            toolstacks,
            engine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::GuestConfig;

    #[test]
    fn public_cloud_preset() {
        let mut d = DeploymentScenario::PublicCloud.deploy().unwrap();
        // Headless: no console shard; memory at the table's lower bound.
        assert!(d.platform.services.console.is_none());
        assert_eq!(d.platform.service_memory_mib(), 512);
        // Drivers on the 10 s timer.
        d.platform.advance_time(10_001_000_000);
        assert!(!d.engine.due(d.platform.now_ns()).is_empty());
        // XenStore on per-request restarts.
        let ts = d.platform.services.toolstacks[0];
        let before = d.platform.xs.logic_restarts();
        let _ = d.platform.xs.handle(
            ts,
            xoar_xenstore::Request::Directory {
                txn: None,
                path: "/".into(),
            },
        );
        assert!(d.platform.xs.logic_restarts() > before);
    }

    #[test]
    fn private_cloud_preset() {
        let mut d = DeploymentScenario::PrivateCloud { users: 3 }
            .deploy()
            .unwrap();
        assert_eq!(d.toolstacks.len(), 3);
        // PCIBack retained for provisioning.
        assert!(d.platform.services.pciback.is_some());
        assert!(d.platform.pciback.as_ref().is_some_and(|p| !p.is_sealed()));
        // Equal memory slices.
        let q0 = d.toolstacks[0].quota();
        let q1 = d.toolstacks[1].quota();
        assert_eq!(q0.max_memory_mib, q1.max_memory_mib);
        assert!(
            q0.max_memory_mib >= 900,
            "slices are usable: {}",
            q0.max_memory_mib
        );
        // A user stays within their slice.
        let mut cfg = GuestConfig::evaluation_guest("u0-vm");
        cfg.memory_mib = q0.max_memory_mib + 1;
        let ts0 = &mut d.toolstacks[0];
        assert!(
            ts0.create(&mut d.platform, cfg).is_err(),
            "over-slice refused"
        );
        let mut cfg = GuestConfig::evaluation_guest("u0-vm");
        cfg.memory_mib = 512;
        let ok = ts0.create(&mut d.platform, cfg).unwrap();
        assert!(d.platform.guest(ok).is_some());
    }

    #[test]
    fn zero_users_clamps_to_one() {
        let d = DeploymentScenario::PrivateCloud { users: 0 }
            .deploy()
            .unwrap();
        assert_eq!(d.toolstacks.len(), 1);
    }
}
