//! A small deterministic micro-benchmark harness.
//!
//! Replaces the external `criterion` crate for this workspace's bench
//! targets. Each benchmark is calibrated once (picking a batch size
//! that makes one sample take a few milliseconds), warmed up for one
//! batch, then timed for a fixed number of samples; the harness reports
//! the median and p95 per-iteration cost and can emit every result as
//! a JSON document through `xoar-codec`.
//!
//! # Examples
//!
//! ```
//! use xoar_bench::harness::Harness;
//!
//! let mut h = Harness::new().samples(10);
//! let mut acc = 0u64;
//! h.bench_function("wrapping_add", || {
//!     acc = acc.wrapping_add(1);
//! });
//! assert_eq!(h.results().len(), 1);
//! assert!(h.to_json().contains("wrapping_add"));
//! ```

use std::time::Instant;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 50;

/// Target wall-clock duration of one sample batch, in nanoseconds.
const TARGET_SAMPLE_NS: u128 = 2_000_000;

/// Hard cap on the calibrated batch size.
const MAX_BATCH: u64 = 1_000_000;

/// The measured outcome of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (group-prefixed where applicable).
    pub name: String,
    /// Iterations per timed sample (calibrated batch size).
    pub iterations: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Median per-iteration cost, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration cost, nanoseconds.
    pub p95_ns: f64,
    /// Mean per-iteration cost, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration cost, nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration cost, nanoseconds.
    pub max_ns: f64,
}

xoar_codec::impl_json_struct!(BenchResult {
    name,
    iterations,
    samples,
    median_ns,
    p95_ns,
    mean_ns,
    min_ns,
    max_ns,
});

/// Runs benchmarks and accumulates their results.
#[derive(Debug, Default)]
pub struct Harness {
    samples: Option<usize>,
    min_iterations: Option<u64>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the number of timed samples for subsequent benchmarks.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Floors the calibrated batch size for subsequent benchmarks.
    ///
    /// Calibration sizes the batch by wall-clock target, so an expensive
    /// benchmark can end up with a handful of iterations per sample —
    /// few enough that one scheduler hiccup lands in the p95. A floor
    /// trades runtime for stability on such entries.
    pub fn min_iterations(mut self, n: u64) -> Self {
        self.min_iterations = Some(n.max(1));
        self
    }

    /// Runs one benchmark: calibrate, warm up, time, record, print.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut()) -> &BenchResult {
        let samples = self.samples.unwrap_or(DEFAULT_SAMPLES);
        let result = run_bench(name, samples, self.min_iterations.unwrap_or(1), f);
        println!(
            "bench  {:<44} median {:>12.1} ns/iter   p95 {:>12.1} ns/iter   ({} samples x {} iters)",
            result.name, result.median_ns, result.p95_ns, result.samples, result.iterations
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// Starts a named group; benchmarks run through it get a
    /// `group/name` prefix and may override the sample count.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: name.to_string(),
            samples: None,
            min_iterations: None,
        }
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialises every result as a JSON document (`{"results":[...]}`).
    pub fn to_json(&self) -> String {
        use xoar_codec::{Json, ToJson};
        let arr = Json::Arr(self.results.iter().map(|r| r.to_json()).collect());
        let doc = Json::Obj(vec![("results".to_string(), arr)]);
        xoar_codec::to_string(&doc)
    }

    /// Prints the JSON document on stdout (the machine-readable tail of
    /// a bench run).
    pub fn emit_json(&self) {
        println!("{}", self.to_json());
    }
}

/// A named benchmark group (criterion-style API shim).
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
    samples: Option<usize>,
    min_iterations: Option<u64>,
}

impl Group<'_> {
    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Floors the calibrated batch size for this group only (see
    /// [`Harness::min_iterations`]).
    pub fn min_iterations(&mut self, n: u64) -> &mut Self {
        self.min_iterations = Some(n.max(1));
        self
    }

    /// Runs one benchmark under the group's prefix.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut()) {
        let samples = self
            .samples
            .or(self.harness.samples)
            .unwrap_or(DEFAULT_SAMPLES);
        let min_iters = self
            .min_iterations
            .or(self.harness.min_iterations)
            .unwrap_or(1);
        let full = format!("{}/{name}", self.prefix);
        let result = run_bench(&full, samples, min_iters, f);
        println!(
            "bench  {:<44} median {:>12.1} ns/iter   p95 {:>12.1} ns/iter   ({} samples x {} iters)",
            result.name, result.median_ns, result.p95_ns, result.samples, result.iterations
        );
        self.harness.results.push(result);
    }

    /// Runs one benchmark whose routine consumes a per-iteration input
    /// built by `setup` — only the routine is timed (criterion's
    /// `iter_batched`). For measuring a destructive operation over a
    /// prepared structure without charging the preparation: timer
    /// start/stop brackets each routine call, so keep the routine in
    /// the microsecond-or-slower range where the bracketing overhead
    /// (tens of nanoseconds) vanishes.
    pub fn bench_function_prepared<T>(
        &mut self,
        name: &str,
        setup: impl FnMut() -> T,
        routine: impl FnMut(T),
    ) {
        let samples = self
            .samples
            .or(self.harness.samples)
            .unwrap_or(DEFAULT_SAMPLES);
        let min_iters = self
            .min_iterations
            .or(self.harness.min_iterations)
            .unwrap_or(1);
        let full = format!("{}/{name}", self.prefix);
        let result = run_bench_prepared(&full, samples, min_iters, setup, routine);
        println!(
            "bench  {:<44} median {:>12.1} ns/iter   p95 {:>12.1} ns/iter   ({} samples x {} iters)",
            result.name, result.median_ns, result.p95_ns, result.samples, result.iterations
        );
        self.harness.results.push(result);
    }

    /// Ends the group (no-op; kept for call-site symmetry).
    pub fn finish(self) {}
}

fn run_bench(name: &str, samples: usize, min_iterations: u64, mut f: impl FnMut()) -> BenchResult {
    // Calibrate: size the batch so one sample takes ~TARGET_SAMPLE_NS
    // (the calibration call doubles as the first warm-up iteration).
    let once = {
        let t = Instant::now();
        f();
        t.elapsed().as_nanos().max(1)
    };
    let iterations = ((TARGET_SAMPLE_NS / once).max(1) as u64)
        .max(min_iterations)
        .min(MAX_BATCH);

    // Warm up for one full batch.
    for _ in 0..iterations {
        f();
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iterations {
            f();
        }
        per_iter.push(t.elapsed().as_nanos() as f64 / iterations as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let median = percentile(&per_iter, 50.0);
    let p95 = percentile(&per_iter, 95.0);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    BenchResult {
        name: name.to_string(),
        iterations,
        samples,
        median_ns: median,
        p95_ns: p95,
        mean_ns: mean,
        min_ns: per_iter[0],
        max_ns: *per_iter.last().expect("samples >= 1"),
    }
}

fn run_bench_prepared<T>(
    name: &str,
    samples: usize,
    min_iterations: u64,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T),
) -> BenchResult {
    // Calibrate the batch size on the full setup+routine wall clock —
    // that is what bounds a sample's real duration — even though only
    // the routine lands in the timed window.
    let once = {
        let t = Instant::now();
        routine(setup());
        t.elapsed().as_nanos().max(1)
    };
    let iterations = ((TARGET_SAMPLE_NS / once).max(1) as u64)
        .max(min_iterations)
        .min(MAX_BATCH);

    // Warm up for one full batch.
    for _ in 0..iterations {
        routine(setup());
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut timed: u128 = 0;
        for _ in 0..iterations {
            let input = setup();
            let t = Instant::now();
            routine(input);
            timed += t.elapsed().as_nanos();
        }
        per_iter.push(timed as f64 / iterations as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let median = percentile(&per_iter, 50.0);
    let p95 = percentile(&per_iter, 95.0);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    BenchResult {
        name: name.to_string(),
        iterations,
        samples,
        median_ns: median,
        p95_ns: p95,
        mean_ns: mean,
        min_ns: per_iter[0],
        max_ns: *per_iter.last().expect("samples >= 1"),
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn bench_records_and_serialises() {
        let mut h = Harness::new().samples(5);
        let mut acc = 0u64;
        h.bench_function("noop_add", || {
            acc = acc.wrapping_add(1);
        });
        assert!(acc > 0, "the closure really ran");
        let r = &h.results()[0];
        assert_eq!(r.name, "noop_add");
        assert_eq!(r.samples, 5);
        assert!(r.iterations >= 1);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        let json = h.to_json();
        assert!(
            json.starts_with(r#"{"results":[{"name":"noop_add""#),
            "{json}"
        );
        // The document parses back through the codec.
        let parsed = xoar_codec::parse(&json).unwrap();
        assert!(parsed.get("results").is_some());
    }

    #[test]
    fn min_iterations_floors_the_calibrated_batch() {
        // A ~1 ms body calibrates to ~2 iterations; the floor overrides.
        let mut h = Harness::new().samples(2).min_iterations(8);
        h.bench_function("slow_body", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(h.results()[0].iterations >= 8);

        // Group-level floor wins over the harness default.
        let mut h = Harness::new().samples(2);
        let mut g = h.group("g");
        g.min_iterations(5);
        g.bench_function("slow_body", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        g.finish();
        assert!(h.results()[0].iterations >= 5);
    }

    #[test]
    fn prepared_bench_excludes_setup_from_timing() {
        // Setup sleeps ~2 ms per iteration; the routine is near-free.
        // If setup leaked into the timed window the per-iteration
        // median would be ≥2,000,000 ns.
        let mut h = Harness::new();
        let mut g = h.group("mem");
        g.sample_size(3);
        let mut consumed = 0u64;
        g.bench_function_prepared(
            "prepared",
            || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                7u64
            },
            |v| {
                consumed = consumed.wrapping_add(std::hint::black_box(v));
            },
        );
        g.finish();
        assert!(consumed > 0, "the routine really ran");
        let r = &h.results()[0];
        assert_eq!(r.name, "mem/prepared");
        assert!(
            r.median_ns < 1_000_000.0,
            "setup leaked into the timed window: {} ns/iter",
            r.median_ns
        );
    }

    #[test]
    fn groups_prefix_names_and_override_samples() {
        let mut h = Harness::new();
        let mut group = h.group("ablation");
        group.sample_size(3);
        group.bench_function("fast_path", || {});
        group.finish();
        let r = &h.results()[0];
        assert_eq!(r.name, "ablation/fast_path");
        assert_eq!(r.samples, 3);
    }
}
