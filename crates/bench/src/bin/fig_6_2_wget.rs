//! Figure 6.2 — network performance with wget.
//!
//! Fetches 512 MB and 2 GB files to /dev/null and to disk on both
//! platforms. Paper: "network throughput is down by 1-2.5%. The combined
//! throughput of data coming from the network onto the disk is up by
//! 6.5%".

use xoar_bench::{header, pct};
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::DomId;
use xoar_sim::workloads::wget::{self, figure_6_2_cases};

fn guest(p: &mut Platform) -> DomId {
    let ts = p.services.toolstacks[0];
    p.create_guest(ts, GuestConfig::evaluation_guest("wget"))
        .expect("guest creation")
}

fn main() {
    header(
        "Figure 6.2: wget throughput (MB/s)",
        &["Case", "Dom0", "Xoar", "Delta"],
    );
    for (label, bytes, sink) in figure_6_2_cases() {
        let mut dom0 = Platform::stock_xen();
        let g0 = guest(&mut dom0);
        let r0 = wget::run(&mut dom0, g0, bytes, sink);

        let mut xoar = Platform::xoar(XoarConfig::default());
        let g1 = guest(&mut xoar);
        let r1 = wget::run(&mut xoar, g1, bytes, sink);

        println!(
            "{label:<18} | {:>6.1} | {:>6.1} | {}",
            r0.throughput_mbps,
            r1.throughput_mbps,
            pct(r1.throughput_mbps, r0.throughput_mbps)
        );
    }
    println!(
        "\nPaper: network down 1-2.5% on Xoar; combined network→disk up ~6.5% \
         (\"performance isolation of running the disk and network drivers in separate VMs\")."
    );
}
