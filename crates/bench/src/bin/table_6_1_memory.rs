//! Table 6.1 — memory consumption of individual shards.
//!
//! Prints the per-shard reservations, the configurable totals (512–896
//! MB), and the comparison against the 750 MB XenServer Dom0 default,
//! then verifies the live platform's accounting matches the table.

use xoar_bench::{header, pct};
use xoar_core::platform::{Platform, XoarConfig};
use xoar_core::shard::{Lifetime, ShardKind, ShardSpec};

fn main() {
    header(
        "Table 6.1: Memory Consumption of Individual Shards",
        &["Component", "Memory", "Paper"],
    );
    let rows = [
        (ShardKind::XenStoreLogic, 32),
        (ShardKind::XenStoreState, 32),
        (ShardKind::ConsoleManager, 128),
        (ShardKind::PciBack, 256),
        (ShardKind::NetBack, 128),
        (ShardKind::BlkBack, 128),
        (ShardKind::Builder, 64),
        (ShardKind::Toolstack, 128),
    ];
    for (kind, paper_mib) in rows {
        let spec = ShardSpec::of(kind);
        println!(
            "{:<16} | {:>4} MB | {:>4} MB",
            spec.name, spec.memory_mib, paper_mib
        );
        assert_eq!(spec.memory_mib, paper_mib, "table drift for {kind:?}");
    }

    header(
        "Configurable totals",
        &["Configuration", "Total", "vs 750 MB Dom0"],
    );
    let configs = [
        (
            "minimal (no console, no PCIBack)",
            XoarConfig {
                with_console: false,
                keep_pciback: false,
                ..Default::default()
            },
        ),
        (
            "default (console, PCIBack destroyed)",
            XoarConfig::default(),
        ),
        (
            "full (console + persistent PCIBack)",
            XoarConfig {
                with_console: true,
                keep_pciback: true,
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        let p = Platform::xoar(cfg);
        let mib = p.service_memory_mib();
        println!("{label:<37} | {mib:>4} MB | {}", pct(mib as f64, 750.0));
    }
    println!(
        "\nPaper: \"the memory requirements range from 512 MB to 896 MB … representing a \
         saving of 30% to an overhead of 20% on the default 750MB Dom0 configuration\"."
    );
    // Sanity: the static bounds of the table.
    let min: u64 = ShardSpec::all()
        .iter()
        .filter(|s| {
            !matches!(s.kind, ShardKind::ConsoleManager | ShardKind::PciBack)
                && s.lifetime != Lifetime::BootUp
                && s.kind != ShardKind::QemuVm
        })
        .map(|s| s.memory_mib)
        .sum();
    assert_eq!(min, 512);
    println!("Static check: minimal set sums to {min} MB (paper: 512 MB). OK.");
}
