//! Figure 6.3 — throughput with a restarting NetBack.
//!
//! 2 GB wget to /dev/null with NetBack microrebooted at intervals from
//! 1 s to 10 s, for both the slow (~260 ms) and fast (~140 ms) restart
//! paths. Paper: "Resetting every 10 seconds causes an 8% drop in
//! throughput … Increasing to every second gives a 58% drop."

use xoar_bench::header;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::restart::RestartPath;
use xoar_hypervisor::DomId;
use xoar_sim::workloads::restart_sweep;

const GB2: u64 = 2 << 30;

fn factory() -> (Platform, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("wget"))
        .expect("guest creation");
    (p, g)
}

fn main() {
    let baseline = restart_sweep::baseline_mbps(GB2);
    println!("Baseline (no restarts): {baseline:.1} MB/s");

    header(
        "Figure 6.3: Throughput vs NetBack restart interval (MB/s)",
        &[
            "Interval",
            "slow (260ms)",
            "fast (140ms)",
            "slow drop",
            "fast drop",
        ],
    );
    let mut points = Vec::new();
    for interval_s in 1..=10u64 {
        let (mut ps, gs) = factory();
        let slow = restart_sweep::run_point(&mut ps, gs, GB2, interval_s, RestartPath::Slow);
        let (mut pf, gf) = factory();
        let fast = restart_sweep::run_point(&mut pf, gf, GB2, interval_s, RestartPath::Fast);
        println!(
            "{interval_s:>7}s | {:>12.1} | {:>12.1} | {:>8.1}% | {:>8.1}%",
            slow.throughput_mbps,
            fast.throughput_mbps,
            (1.0 - slow.throughput_mbps / baseline) * 100.0,
            (1.0 - fast.throughput_mbps / baseline) * 100.0,
        );
        points.push((interval_s, slow, fast));
    }

    header(
        "Rollback frequency: restarts executed over the sweep horizon",
        &[
            "Interval",
            "restarts",
            "slow outage total",
            "fast outage total",
        ],
    );
    for (interval_s, slow, fast) in &points {
        assert_eq!(slow.restarts, fast.restarts, "same timer, same horizon");
        println!(
            "{interval_s:>7}s | {:>8} | {:>16.1}s | {:>16.1}s",
            slow.restarts,
            (slow.restarts * slow.downtime_ns) as f64 / 1e9,
            (fast.restarts * fast.downtime_ns) as f64 / 1e9,
        );
    }
    println!(
        "\nPaper: downtimes 260 ms (slow) / 140 ms (fast); 8% drop at 10 s, 58% at 1 s; \
         \"the faster recovery gives a noticeable benefit for very frequent reboots but \
         is worth less than 1% for 10-second reboots\"."
    );
}
