//! Extension experiments beyond the paper's numbered tables/figures:
//!
//! * **VM density** — the introduction's "10 VMs per CPU core" packing
//!   practice, with page-deduplication savings and fair scheduling;
//! * **live migration** — downtime vs guest write rate (Clark et al.'s
//!   pre-copy, which the paper cites as functionality that must survive);
//! * **hypervisor split** — the §7.1 future-work proposal, quantified
//!   over the hypercall interface.

use xoar_bench::header;
use xoar_core::hypersplit;
use xoar_core::migration::{migrate, MigrationConfig};
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::memory::Pfn;
use xoar_sim::workloads::{density, stagger};

fn main() {
    // --- Density ---
    header(
        "Extension: VM density (paper intro)",
        &[
            "Guests",
            "Service MiB",
            "MiB/guest",
            "Dedup frames",
            "Dedup %",
        ],
    );
    for count in [10usize, 20, 40] {
        let mut p = Platform::xoar(XoarConfig::default());
        let r = density::run(&mut p, count);
        println!(
            "{:>6} | {:>11} | {:>9.1} | {:>12} | {:>6.1}%",
            r.guests,
            r.service_memory_mib,
            r.service_memory_mib as f64 / r.guests as f64,
            r.dedup_frames,
            r.dedup_fraction * 100.0
        );
    }
    println!("Paper intro: \"deploying 10 VMs per CPU core\" (40 on the 4-core testbed).");

    // --- Migration ---
    header(
        "Extension: live migration downtime vs dirty rate",
        &["Pages dirtied/round", "Rounds", "Final pages", "Downtime"],
    );
    for rate in [0u64, 20, 100, 400] {
        let mut src = Platform::xoar(XoarConfig::default());
        let mut dst = Platform::xoar(XoarConfig::default());
        let ts_s = src.services.toolstacks[0];
        let ts_d = dst.services.toolstacks[0];
        let g = src
            .create_guest(ts_s, GuestConfig::evaluation_guest("mover"))
            .expect("guest");
        let report = migrate(
            &mut src,
            &mut dst,
            g,
            ts_d,
            MigrationConfig::default(),
            |p, g| {
                for i in 0..rate {
                    p.hv.mem
                        .write(g, Pfn(100 + i % 800), b"hot")
                        .expect("write");
                }
            },
        )
        .expect("migration");
        println!(
            "{:>19} | {:>6} | {:>11} | {:>6.2} ms",
            rate,
            report.rounds,
            report.pages_final,
            report.downtime_ns as f64 / 1e6
        );
    }

    // --- Restart scheduling ---
    header(
        "Extension: aligned vs staggered driver restarts (10 s interval, 60 s horizon)",
        &["Policy", "Restarts", "Either-down (ms)", "Combined uptime"],
    );
    for policy in [
        stagger::StaggerPolicy::Aligned,
        stagger::StaggerPolicy::Staggered,
    ] {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let _ = p
            .create_guest(ts, GuestConfig::evaluation_guest("g"))
            .expect("guest");
        let r = stagger::run(&mut p, 10, 60, policy);
        println!(
            "{:<10} | {:>8} | {:>16.0} | {:>14.3}%",
            format!("{policy:?}"),
            r.restarts,
            r.either_down_ns as f64 / 1e6,
            r.combined_uptime * 100.0
        );
    }
    println!(
        "Aligning the two drivers' restart windows halves the combined outage a
         network→disk workload sees — the tuning knob §6.1.4 leaves to the administrator."
    );

    // --- Hypervisor split ---
    header(
        "Extension: §7.1 hypervisor split",
        &["Side", "Hypercalls", "Risk weight"],
    );
    let a = hypersplit::analyse();
    println!(
        "ring 0        | {:>10} | {:>11}",
        a.ring0_calls, a.ring0_risk
    );
    println!(
        "deprivileged  | {:>10} | {:>11}",
        a.deprivileged_calls, a.deprivileged_risk
    );
    println!(
        "\n{:.0}% of the hypercall interface (by call count) could leave ring 0, while the\n\
         highest-risk machinery (page tables, interrupts, memory map) stays privileged.",
        a.call_fraction_moved() * 100.0
    );
}
