//! Figure 6.1 — disk performance using Postmark.
//!
//! Runs the figure's four Postmark configurations on stock Xen and on
//! Xoar and prints transactions/second for each. The paper's claim:
//! "disk throughput is more or less unchanged".

use xoar_bench::{header, pct};
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::DomId;
use xoar_sim::workloads::postmark::{self, PostmarkConfig};

fn guest(p: &mut Platform) -> DomId {
    let ts = p.services.toolstacks[0];
    p.create_guest(ts, GuestConfig::evaluation_guest("postmark"))
        .expect("guest creation")
}

fn main() {
    header(
        "Figure 6.1: Postmark (transactions/second)",
        &["Config", "Dom0", "Xoar", "Delta"],
    );
    for (label, cfg) in PostmarkConfig::figure_6_1() {
        let mut dom0 = Platform::stock_xen();
        let g0 = guest(&mut dom0);
        let r0 = postmark::run(&mut dom0, g0, cfg, 42);

        let mut xoar = Platform::xoar(XoarConfig::default());
        let g1 = guest(&mut xoar);
        let r1 = postmark::run(&mut xoar, g1, cfg, 42);

        println!(
            "{label:<13} | {:>7.0} | {:>7.0} | {}",
            r0.ops_per_sec,
            r1.ops_per_sec,
            pct(r1.ops_per_sec, r0.ops_per_sec)
        );
    }
    println!("\nPaper: \"Overall, disk throughput is more or less unchanged.\"");
}
