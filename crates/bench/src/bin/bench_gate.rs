//! `bench-gate` — CI regression gate over the microbench JSON.
//!
//! Usage: `bench-gate <baseline.json> <fresh.json>`
//!
//! Compares the fresh run's medians against the committed baseline for
//! the hot-path entries of the batched I/O data path and fails (exit 1)
//! if any regressed by more than the allowed factor. Entries absent
//! from the baseline are reported and skipped, so adding a new bench
//! does not break CI on the run that introduces it; entries absent from
//! the fresh run fail loudly — a silently dropped bench is not a pass.

use std::process::ExitCode;

use xoar_codec::{parse, Json};

/// Entries the gate enforces: the per-op and batched data-path costs the
/// perf argument rests on.
const HOT_PATHS: [&str; 8] = [
    "hypercall/sched_yield",
    "evtchn/send_poll",
    "grant/map_unmap",
    "blk/submit_process_poll",
    "net/transmit_process",
    "grant/map_unmap_batch32",
    "evtchn/send_coalesced",
    "blk/submit_batch",
];

/// A fresh median above `baseline * MAX_RATIO` fails the gate. 2x keeps
/// headroom for shared-runner noise while still catching real
/// regressions (the batching work moved these entries by more than 2x
/// the other way).
const MAX_RATIO: f64 = 2.0;

fn as_ns(v: &Json) -> Option<f64> {
    match v {
        Json::F64(x) => Some(*x),
        Json::U64(n) => Some(*n as f64),
        Json::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Extracts `name -> median_ns` from a harness JSON document.
fn medians(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    let mut out = Vec::with_capacity(results.len());
    for entry in results {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or("entry without name")?;
        let median = entry
            .get("median_ns")
            .and_then(as_ns)
            .ok_or_else(|| format!("entry {name} without median_ns"))?;
        out.push((name.to_string(), median));
    }
    Ok(out)
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // The harness prints the JSON document as the last stdout line; accept
    // either a bare document or a captured multi-line log.
    let line = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path} is empty"))?;
    let doc = parse(line).map_err(|e| format!("parse {path}: {e}"))?;
    medians(&doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench-gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    let find =
        |set: &[(String, f64)], name: &str| set.iter().find(|(n, _)| n == name).map(|&(_, m)| m);
    let mut failed = false;
    for name in HOT_PATHS {
        let Some(new) = find(&fresh, name) else {
            eprintln!("bench-gate: FAIL {name}: missing from fresh run");
            failed = true;
            continue;
        };
        let Some(old) = find(&baseline, name) else {
            println!("bench-gate: skip {name}: not in baseline yet ({new:.1} ns)");
            continue;
        };
        let ratio = if old > 0.0 { new / old } else { f64::INFINITY };
        if ratio > MAX_RATIO {
            eprintln!(
                "bench-gate: FAIL {name}: {old:.1} ns -> {new:.1} ns ({ratio:.2}x > {MAX_RATIO}x)"
            );
            failed = true;
        } else {
            println!("bench-gate: ok   {name}: {old:.1} ns -> {new:.1} ns ({ratio:.2}x)");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench-gate: no hot-path regression beyond {MAX_RATIO}x");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, f64)]) -> Json {
        Json::Obj(vec![(
            "results".to_string(),
            Json::Arr(
                entries
                    .iter()
                    .map(|&(n, m)| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(n.to_string())),
                            ("median_ns".to_string(), Json::F64(m)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn medians_extracts_names_and_values() {
        let d = doc(&[("a/b", 10.5), ("c/d", 2.0)]);
        let m = medians(&d).unwrap();
        assert_eq!(m, vec![("a/b".to_string(), 10.5), ("c/d".to_string(), 2.0)]);
    }

    #[test]
    fn medians_rejects_malformed() {
        assert!(medians(&Json::Null).is_err());
        let no_median = Json::Obj(vec![(
            "results".to_string(),
            Json::Arr(vec![Json::Obj(vec![(
                "name".to_string(),
                Json::Str("x".to_string()),
            )])]),
        )]);
        assert!(medians(&no_median).is_err());
    }

    #[test]
    fn integer_medians_accepted() {
        let d = Json::Obj(vec![(
            "results".to_string(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".to_string(), Json::Str("x".to_string())),
                ("median_ns".to_string(), Json::U64(40758716)),
            ])]),
        )]);
        assert_eq!(medians(&d).unwrap(), vec![("x".to_string(), 40758716.0)]);
    }
}
