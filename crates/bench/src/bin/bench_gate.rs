//! `bench-gate` — CI regression gate over the bench-harness JSON.
//!
//! Usage: `bench-gate [--set=micro|--set=ablation] <baseline.json> <fresh.json>`
//!
//! Compares the fresh run's medians against the committed baseline for
//! the hot-path entries of the selected set and fails (exit 1) if any
//! regressed by more than the allowed factor. Entries absent from the
//! baseline are reported and skipped, so adding a new bench does not
//! break CI on the run that introduces it; entries absent from the
//! fresh run fail loudly — a silently dropped bench is not a pass.
//!
//! The microreboot fast-path entries additionally carry a *tail* rule:
//! their fresh p95 must stay within a fixed factor of their own fresh
//! median. A long tail on the per-request restart path means some
//! iteration allocated or rescanned — exactly the regression the
//! precompiled-plan work removed — and a median-only gate cannot see it.

use std::process::ExitCode;

use xoar_codec::{parse, Json};

/// Entries the microbench gate enforces: the per-op and batched
/// data-path costs the perf argument rests on, plus the microreboot
/// fast paths.
const MICRO_HOT_PATHS: [&str; 20] = [
    "hypercall/sched_yield",
    "hypercall/dispatch_spec_off",
    "evtchn/send_poll",
    "evtchn/cross_region_send",
    "sched/runqueue_pick_next",
    "sched/steal",
    "grant/map_unmap",
    "blk/submit_process_poll",
    "net/transmit_process",
    "grant/map_unmap_batch32",
    "evtchn/send_coalesced",
    "blk/submit_batch",
    "snapshot/cow_snapshot",
    "mem/page_write",
    "mem/dedup_scale/50k",
    "restart/per_request_logic",
    "restart/plan_execute",
    "fabric/flow_lookup",
    "fabric/switch_batch32",
    "fabric/nat_alloc",
];

/// Entries the ablation gate enforces: the Figure 5.1 per-request
/// restart overhead and the slow/fast driver-restart paths of §6.1.2.
const ABLATION_HOT_PATHS: [&str; 10] = [
    "ablation/xenstore_split/request_no_restart",
    "ablation/xenstore_split/request_with_per_request_restart",
    "ablation/restart_paths/slow",
    "ablation/restart_paths/fast",
    "ablation/vcpu_scaling/rq1",
    "ablation/vcpu_scaling/rq2",
    "ablation/vcpu_scaling/rq4",
    "ablation/clone/clone_from_template",
    "ablation/clone/clone_guest_full",
    "ablation/clone/first_write_break",
];

/// Fresh-run self-comparison rule for the micro set: `(faster, slower,
/// ratio)` — medians must satisfy `faster <= slower * ratio` within
/// the same run. The isolation spec's dispatch hook is
/// zero-cost-when-off by design: with no checker attached, dispatch
/// pays one untaken branch. The ordering holds the hooked-dispatch-path
/// median within 5% of the plain dispatch median — if the gate ever
/// grows real work on the disabled path, this inverts and CI fails.
///
/// The fabric rules encode the switch's cost model. A flow lookup is a
/// hash probe against a 100k-connection table, so it must stay within 2x
/// of a grant map/unmap pair — if it drifts past that, the connection
/// table has stopped being a FastMap fast path. One `switch_batch32`
/// iteration moves 32 frames, and its whole-batch cost must stay under
/// 32/3 of a single-frame `net/transmit_process` — i.e. the per-frame
/// switching cost is at most a third of the per-frame backend round
/// trip, the O(batch) claim in numbers.
///
/// The memory rule pins the lazy-hash claim: a guest page write defers
/// content hashing to the dirty-epoch queue, so it must stay within 15x
/// of a bare page-read handle lookup — if writes ever re-grow eager
/// hashing (a 4 KiB FNV pass is ~50x a read), this inverts and CI fails.
const MICRO_ORDERINGS: [(&str, &str, f64); 4] = [
    ("hypercall/dispatch_spec_off", "hypercall/sched_yield", 1.05),
    ("fabric/flow_lookup", "grant/map_unmap", 2.0),
    ("fabric/switch_batch32", "net/transmit_process", 32.0 / 3.0),
    ("mem/page_write", "mem/page_read_handle", 15.0),
];

/// Fresh-run self-comparison rules for the ablation set, in the same
/// form. Baselines drift with the host; a within-run comparison does
/// not, so these encode claims the numbers must never invert — the
/// parallel Xoar boot DAG regressing past the serial Dom0 chain
/// (ratio 1: a plain ordering), or the snapshot-fork clone stamp
/// losing its two-orders-of-magnitude advantage over a full
/// Builder-path guest creation (ratio 1/100).
const ABLATION_ORDERINGS: [(&str, &str, f64); 2] = [
    (
        "ablation/boot_plans/parallel_xoar",
        "ablation/boot_plans/serial_dom0",
        1.0,
    ),
    (
        "ablation/clone/clone_from_template",
        "ablation/platform_construction/guest_creation_xoar",
        0.01,
    ),
];

/// Entries whose p95 tail is bounded relative to their own median. The
/// fabric paths carry the rule for the same reason the restart paths do:
/// a per-packet allocation on the switch path (the scratch queues exist
/// to prevent exactly that) shows up as a reallocation spike in the
/// tail long before it moves the median. The clone paths carry it
/// because the serverless-density argument is about the *worst* stamp
/// in a burst, not the typical one — a one-time cost leaking back into
/// steady state (stamp-plan rebuilds, hash materialization on the
/// break path) appears as a tail spike first.
const TAIL_PATHS: [&str; 10] = [
    "restart/per_request_logic",
    "restart/plan_execute",
    "ablation/restart_paths/slow",
    "ablation/restart_paths/fast",
    "ablation/clone/clone_from_template",
    "ablation/clone/clone_guest_full",
    "ablation/clone/first_write_break",
    "fabric/flow_lookup",
    "fabric/switch_batch32",
    "fabric/nat_alloc",
];

/// A fresh median above `baseline * MAX_RATIO` fails the gate. 2x keeps
/// headroom for shared-runner noise while still catching real
/// regressions (the batching work moved these entries by more than 2x
/// the other way).
const MAX_RATIO: f64 = 2.0;

/// A p95 above `median * TAIL_RATIO` fails the tail rule. The restart
/// paths sit near 1.2x in steady state; 6x absorbs small-sample jitter
/// (the ablation restart group runs 20 samples) while still catching
/// the per-iteration allocation spikes the plan work eliminated, which
/// showed up as >2x tails.
const TAIL_RATIO: f64 = 6.0;

fn as_ns(v: &Json) -> Option<f64> {
    match v {
        Json::F64(x) => Some(*x),
        Json::U64(n) => Some(*n as f64),
        Json::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// One bench entry as the gate sees it.
#[derive(Debug, PartialEq)]
struct Entry {
    name: String,
    median_ns: f64,
    /// Absent from pre-tail-rule baselines; the tail rule only reads it
    /// from fresh runs anyway.
    p95_ns: Option<f64>,
    /// The sample minimum — the noise floor of a deterministic loop.
    /// Ordering rules prefer it over the median: they compare two
    /// near-identical code paths in the same run, where scheduler and
    /// alignment jitter on the median dwarfs the real difference.
    min_ns: Option<f64>,
}

/// Extracts the entries from a harness JSON document.
fn entries(doc: &Json) -> Result<Vec<Entry>, String> {
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    let mut out = Vec::with_capacity(results.len());
    for entry in results {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or("entry without name")?;
        let median_ns = entry
            .get("median_ns")
            .and_then(as_ns)
            .ok_or_else(|| format!("entry {name} without median_ns"))?;
        let p95_ns = entry.get("p95_ns").and_then(as_ns);
        let min_ns = entry.get("min_ns").and_then(as_ns);
        out.push(Entry {
            name: name.to_string(),
            median_ns,
            p95_ns,
            min_ns,
        });
    }
    Ok(out)
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // The harness prints the JSON document as the last stdout line; accept
    // either a bare document or a captured multi-line log.
    let line = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path} is empty"))?;
    let doc = parse(line).map_err(|e| format!("parse {path}: {e}"))?;
    entries(&doc)
}

fn find<'a>(set: &'a [Entry], name: &str) -> Option<&'a Entry> {
    set.iter().find(|e| e.name == name)
}

/// Applies the median-regression and tail rules; returns whether any
/// hot-path entry failed.
fn gate(hot_paths: &[&str], baseline: &[Entry], fresh: &[Entry]) -> bool {
    let mut failed = false;
    for &name in hot_paths {
        let Some(new) = find(fresh, name) else {
            eprintln!("bench-gate: FAIL {name}: missing from fresh run");
            failed = true;
            continue;
        };
        if TAIL_PATHS.contains(&name) {
            if let Some(p95) = new.p95_ns {
                let tail = if new.median_ns > 0.0 {
                    p95 / new.median_ns
                } else {
                    f64::INFINITY
                };
                if tail > TAIL_RATIO {
                    eprintln!(
                        "bench-gate: FAIL {name}: p95 {p95:.1} ns is {tail:.2}x its \
                         median {:.1} ns (> {TAIL_RATIO}x tail bound)",
                        new.median_ns
                    );
                    failed = true;
                }
            }
        }
        let Some(old) = find(baseline, name) else {
            println!(
                "bench-gate: skip {name}: not in baseline yet ({:.1} ns)",
                new.median_ns
            );
            continue;
        };
        let ratio = if old.median_ns > 0.0 {
            new.median_ns / old.median_ns
        } else {
            f64::INFINITY
        };
        if ratio > MAX_RATIO {
            eprintln!(
                "bench-gate: FAIL {name}: {:.1} ns -> {:.1} ns ({ratio:.2}x > {MAX_RATIO}x)",
                old.median_ns, new.median_ns
            );
            failed = true;
        } else {
            println!(
                "bench-gate: ok   {name}: {:.1} ns -> {:.1} ns ({ratio:.2}x)",
                old.median_ns, new.median_ns
            );
        }
    }
    failed
}

/// Applies the within-run ordering rules; returns whether any failed.
fn orderings(rules: &[(&str, &str, f64)], fresh: &[Entry]) -> bool {
    let mut failed = false;
    for &(faster, slower, ratio) in rules {
        let (Some(a), Some(b)) = (find(fresh, faster), find(fresh, slower)) else {
            eprintln!(
                "bench-gate: FAIL ordering {faster} <= {ratio} * {slower}: \
                 entry missing from fresh run"
            );
            failed = true;
            continue;
        };
        // Compare sample minima when the run carries them: orderings
        // pit near-identical loops against each other in the same run,
        // and the minimum strips the scheduler/alignment jitter that
        // makes a tight median-vs-median bound flaky.
        let (a_ns, b_ns) = (
            a.min_ns.unwrap_or(a.median_ns),
            b.min_ns.unwrap_or(b.median_ns),
        );
        let bound = b_ns * ratio;
        if a_ns <= bound {
            println!(
                "bench-gate: ok   ordering {faster} ({a_ns:.1} ns) <= {ratio} * {slower} ({bound:.1} ns)"
            );
        } else {
            eprintln!(
                "bench-gate: FAIL ordering {faster} ({a_ns:.1} ns) > {ratio} * {slower} ({bound:.1} ns)"
            );
            failed = true;
        }
    }
    failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (hot_paths, order_rules, baseline_path, fresh_path): (
        &[&str],
        &[(&str, &str, f64)],
        &str,
        &str,
    ) = match &args[1..] {
        [b, f] => (&MICRO_HOT_PATHS, &MICRO_ORDERINGS, b, f),
        [set, b, f] if set == "--set=micro" => (&MICRO_HOT_PATHS, &MICRO_ORDERINGS, b, f),
        [set, b, f] if set == "--set=ablation" => (&ABLATION_HOT_PATHS, &ABLATION_ORDERINGS, b, f),
        _ => {
            eprintln!(
                "usage: bench-gate [--set=micro|--set=ablation] <baseline.json> <fresh.json>"
            );
            return ExitCode::from(2);
        }
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    let gate_failed = gate(hot_paths, &baseline, &fresh);
    let order_failed = orderings(order_rules, &fresh);
    if gate_failed || order_failed {
        ExitCode::FAILURE
    } else {
        println!("bench-gate: no hot-path regression beyond {MAX_RATIO}x");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, f64)]) -> Json {
        Json::Obj(vec![(
            "results".to_string(),
            Json::Arr(
                entries
                    .iter()
                    .map(|&(n, m)| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(n.to_string())),
                            ("median_ns".to_string(), Json::F64(m)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    fn entry(name: &str, median_ns: f64, p95_ns: f64) -> Entry {
        Entry {
            name: name.to_string(),
            median_ns,
            p95_ns: Some(p95_ns),
            min_ns: None,
        }
    }

    #[test]
    fn entries_extracts_names_and_values() {
        let d = doc(&[("a/b", 10.5), ("c/d", 2.0)]);
        let m = entries(&d).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].name, "a/b");
        assert_eq!(m[0].median_ns, 10.5);
        assert_eq!(m[0].p95_ns, None, "p95 optional for old baselines");
    }

    #[test]
    fn entries_rejects_malformed() {
        assert!(entries(&Json::Null).is_err());
        let no_median = Json::Obj(vec![(
            "results".to_string(),
            Json::Arr(vec![Json::Obj(vec![(
                "name".to_string(),
                Json::Str("x".to_string()),
            )])]),
        )]);
        assert!(entries(&no_median).is_err());
    }

    #[test]
    fn integer_medians_accepted() {
        let d = Json::Obj(vec![(
            "results".to_string(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".to_string(), Json::Str("x".to_string())),
                ("median_ns".to_string(), Json::U64(40758716)),
            ])]),
        )]);
        let m = entries(&d).unwrap();
        assert_eq!(m[0].median_ns, 40758716.0);
    }

    #[test]
    fn median_regression_fails_gate() {
        let name = "ablation/restart_paths/fast";
        let baseline = vec![entry(name, 100.0, 120.0)];
        let ok = vec![entry(name, 150.0, 200.0)];
        let bad = vec![entry(name, 250.0, 300.0)];
        assert!(!gate(&[name], &baseline, &ok));
        assert!(gate(&[name], &baseline, &bad));
    }

    #[test]
    fn long_tail_fails_gate_even_with_good_median() {
        let name = "ablation/restart_paths/fast";
        let baseline = vec![entry(name, 100.0, 120.0)];
        // Median improved, but p95 is 10x the median: the per-iteration
        // spike the tail rule exists to catch.
        let spiky = vec![entry(name, 90.0, 900.0)];
        assert!(gate(&[name], &baseline, &spiky));
    }

    #[test]
    fn tail_rule_ignores_non_restart_entries() {
        let name = "hypercall/sched_yield";
        let baseline = vec![entry(name, 100.0, 120.0)];
        let spiky = vec![entry(name, 90.0, 900.0)];
        assert!(!gate(&[name], &baseline, &spiky));
    }

    #[test]
    fn ordering_rule_compares_minima_when_present() {
        let (fast, slow, ratio) = MICRO_ORDERINGS[0];
        assert_eq!(ratio, 1.05);
        let rules = &MICRO_ORDERINGS[..1];
        // Medians alone would fail (21.3 > 1.05 * 20.1) — exactly the
        // jitter observed on identical dispatch loops — but the minima
        // agree, so the ordering holds.
        let jittery = vec![
            Entry {
                name: fast.to_string(),
                median_ns: 21.3,
                p95_ns: None,
                min_ns: Some(19.0),
            },
            Entry {
                name: slow.to_string(),
                median_ns: 20.1,
                p95_ns: None,
                min_ns: Some(19.0),
            },
        ];
        assert!(!orderings(rules, &jittery));
        // A real regression shows up in the minimum too.
        let mut regressed = jittery;
        regressed[0].min_ns = Some(25.0);
        assert!(orderings(rules, &regressed));
    }

    #[test]
    fn ordering_rule_catches_inversion() {
        let (fast, slow, _) = ABLATION_ORDERINGS[0];
        let rules = &ABLATION_ORDERINGS[..1];
        let good = vec![entry(fast, 900.0, 1000.0), entry(slow, 1300.0, 1400.0)];
        let inverted = vec![entry(fast, 1300.0, 1400.0), entry(slow, 900.0, 1000.0)];
        assert!(!orderings(rules, &good));
        assert!(orderings(rules, &inverted));
    }

    #[test]
    fn scaled_ordering_rule_enforces_the_clone_speedup() {
        let (clone, create, ratio) = ABLATION_ORDERINGS[1];
        assert_eq!(ratio, 0.01);
        let rules = &ABLATION_ORDERINGS[1..];
        // 1.5 µs clone vs 220 µs create: two orders of magnitude, ok.
        let good = vec![entry(clone, 1500.0, 3000.0), entry(create, 220_000.0, 1.0)];
        // 3 µs clone vs 220 µs create: only 73x — the fast path decayed.
        let decayed = vec![entry(clone, 3000.0, 6000.0), entry(create, 220_000.0, 1.0)];
        assert!(!orderings(rules, &good));
        assert!(orderings(rules, &decayed));
    }

    #[test]
    fn fabric_ordering_rules_enforce_the_switch_cost_model() {
        let (lookup, grant, r1) = MICRO_ORDERINGS[1];
        assert_eq!(r1, 2.0);
        let (batch, single, r2) = MICRO_ORDERINGS[2];
        assert!((r2 - 32.0 / 3.0).abs() < 1e-12);
        let rules = &MICRO_ORDERINGS[1..3];
        let good = vec![
            entry(lookup, 20.0, 30.0),
            entry(grant, 70.0, 80.0),
            entry(batch, 900.0, 1000.0),
            entry(single, 120.0, 130.0),
        ];
        assert!(!orderings(rules, &good));
        // The lookup drifting past 2x a grant pair fails the gate.
        let slow_lookup = vec![
            entry(lookup, 150.0, 160.0),
            entry(grant, 70.0, 80.0),
            entry(batch, 900.0, 1000.0),
            entry(single, 120.0, 130.0),
        ];
        assert!(orderings(rules, &slow_lookup));
        // Per-frame switching above 1/3 of a backend round trip fails:
        // 32 frames at 1600 ns total is 50 ns/frame > 120/3.
        let slow_switch = vec![
            entry(lookup, 20.0, 30.0),
            entry(grant, 70.0, 80.0),
            entry(batch, 1600.0, 1700.0),
            entry(single, 120.0, 130.0),
        ];
        assert!(orderings(rules, &slow_switch));
    }

    #[test]
    fn clone_tail_rule_catches_stamp_spikes() {
        // The clone_from_template tail this rule was added for: a
        // stamp-plan build (or table rehash) landing inside a timed
        // sample blows the p95 far past the median without moving it.
        let name = "ablation/clone/clone_from_template";
        let baseline = vec![entry(name, 1900.0, 2400.0)];
        let spiky = vec![entry(name, 1900.0, 13_000.0)];
        let tight = vec![entry(name, 1900.0, 5_800.0)];
        assert!(gate(&[name], &baseline, &spiky));
        assert!(!gate(&[name], &baseline, &tight));
    }

    #[test]
    fn page_write_ordering_enforces_lazy_hashing() {
        let (write, read, ratio) = MICRO_ORDERINGS[3];
        assert_eq!(ratio, 15.0);
        let rules = &MICRO_ORDERINGS[3..];
        // Lazy write: ~3x a read-handle lookup — well inside the bound.
        let lazy = vec![entry(write, 50.0, 80.0), entry(read, 16.0, 20.0)];
        // Eager hashing regrown: ~54x a read fails the ordering.
        let eager = vec![entry(write, 865.0, 1000.0), entry(read, 16.0, 20.0)];
        assert!(!orderings(rules, &lazy));
        assert!(orderings(rules, &eager));
    }

    #[test]
    fn ordering_rule_fails_on_missing_entries() {
        let (fast, _, _) = ABLATION_ORDERINGS[0];
        assert!(orderings(&ABLATION_ORDERINGS, &[entry(fast, 1.0, 2.0)]));
        assert!(orderings(&ABLATION_ORDERINGS, &[]));
    }

    #[test]
    fn missing_fresh_entry_fails_new_baseline_entry_skips() {
        let name = "restart/plan_execute";
        // Not yet in the baseline: skip (first run introducing it).
        assert!(!gate(&[name], &[], &[entry(name, 50.0, 60.0)]));
        // Dropped from the fresh run: fail.
        assert!(gate(&[name], &[entry(name, 50.0, 60.0)], &[]));
    }
}
