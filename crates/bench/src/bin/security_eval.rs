//! §6.2 security evaluation: census, containment replay, TCB accounting.
//!
//! Prints the §2.2.1 vulnerability census, replays the §6.2.1 attack set
//! against both platforms, and reports the guest TCB on each.

use xoar_bench::header;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::DomId;
use xoar_security::containment::Verdict;
use xoar_security::freshness;
use xoar_security::{census, corpus, evaluate, tcb_of_guest};

fn hvm_guest(p: &mut Platform, name: &str) -> DomId {
    let ts = p.services.toolstacks[0];
    let mut cfg = GuestConfig::evaluation_guest(name);
    cfg.hvm = true;
    p.create_guest(ts, cfg).expect("guest creation")
}

fn main() {
    let all = corpus();
    let c = census(&all);
    header("§2.2.1 Vulnerability census", &["Metric", "Count", "Paper"]);
    println!("total reported               | {:>3} | 44", c.total);
    println!("guest-originated vs Xen      | {:>3} | 23", c.guest_vs_xen);
    println!(
        "  code execution             | {:>3} | 12",
        c.code_execution
    );
    println!(
        "  denial of service          | {:>3} | 11",
        c.denial_of_service
    );
    println!(
        "  against control-VM services| {:>3} | 22",
        c.against_control_vm
    );

    let mut stock = Platform::stock_xen();
    let a0 = hvm_guest(&mut stock, "attacker");
    let ts0 = stock.services.toolstacks[0];
    let v0 = stock
        .create_guest(ts0, GuestConfig::evaluation_guest("victim"))
        .expect("guest creation");
    let stock_report = evaluate(&stock, a0, &all);

    let mut xoar = Platform::xoar(XoarConfig::default());
    let a1 = hvm_guest(&mut xoar, "attacker");
    let ts1 = xoar.services.toolstacks[0];
    let v1 = xoar
        .create_guest(ts1, GuestConfig::evaluation_guest("victim"))
        .expect("guest creation");
    let xoar_report = evaluate(&xoar, a1, &all);

    header(
        "§6.2.1 Containment replay",
        &["Verdict", "Stock Xen", "Xoar", "Paper (Xoar)"],
    );
    let rows = [
        (Verdict::FullPlatformCompromise, "0"),
        (Verdict::ContainedToComponent, "7 (device emulation)"),
        (Verdict::LimitedToSharers, "6+1 (virt. device + toolstack)"),
        (Verdict::Mitigable, "2 (debug registers)"),
        (Verdict::FixedInBaseline, "2 (XenStore, already fixed)"),
        (Verdict::NotProtected, "1 (hypervisor)"),
    ];
    for (verdict, paper) in rows {
        println!(
            "{:<24} | {:>9} | {:>4} | {paper}",
            format!("{verdict:?}"),
            stock_report.count(verdict),
            xoar_report.count(verdict),
        );
    }

    header(
        "§6.2 TCB accounting (above the hypervisor)",
        &["Platform", "Source LoC", "Compiled LoC", "Paper"],
    );
    // TCB of a PV guest (the paper's headline figure; an HVM guest
    // additionally trusts its own stub domain).
    let t_stock = tcb_of_guest(&stock, v0);
    let t_xoar = tcb_of_guest(&xoar, v1);
    println!(
        "Stock Xen | {:>10} | {:>10} | 7.6M / 400K (Linux)",
        t_stock.above_hypervisor_source(),
        t_stock.above_hypervisor_compiled()
    );
    println!(
        "Xoar      | {:>10} | {:>10} | 13K / 8K (nanOS)",
        t_xoar.above_hypervisor_source(),
        t_xoar.above_hypervisor_compiled()
    );
    println!(
        "Reduction | {:>9.0}x | {:>9.0}x |",
        t_stock.above_hypervisor_source() as f64 / t_xoar.above_hypervisor_source() as f64,
        t_stock.above_hypervisor_compiled() as f64 / t_xoar.above_hypervisor_compiled() as f64,
    );

    header(
        "§3.3 Temporal attack surface (exploit chain: 0.5 s)",
        &[
            "Restart interval",
            "Expected dwell",
            "Max dwell",
            "Attacker occupation",
        ],
    );
    for interval in [f64::INFINITY, 60.0, 10.0, 5.0, 1.0, 0.4] {
        let e = freshness::exposure(interval, 0.5);
        let label = if interval.is_infinite() {
            "never (stock Xen)".to_string()
        } else {
            format!("{interval:.1} s")
        };
        println!(
            "{label:<17} | {:>14} | {:>9} | {:>6.1}%",
            if e.expected_dwell_s.is_infinite() {
                "unbounded".into()
            } else {
                format!("{:.2} s", e.expected_dwell_s)
            },
            if e.max_dwell_s.is_infinite() {
                "unbounded".into()
            } else {
                format!("{:.2} s", e.max_dwell_s)
            },
            e.occupation_fraction * 100.0,
        );
    }
    println!(
        "\n\"Attackers that manage to exploit these components have limited \
         execution time till the next reboot cycle\" — and a chain slower than \
         the interval never completes at all (the 0.4 s row)."
    );
}
