//! Figure 6.5 — ApacheBench: regular and with NetBack restarts.
//!
//! Prints total time, throughput, mean latency, and transfer rate for
//! Dom0, Xoar, and Xoar with NetBack restarts at 10 s, 5 s, and 1 s,
//! plus the longest-request outliers the paper highlights ("for Dom0 and
//! Xoar, the longest packet took only 8-9ms, but with restarts, the
//! values range from 3000ms … to 7000ms").

use xoar_bench::header;
use xoar_sim::workloads::apache::{self, figure_6_5_cases};

fn main() {
    header(
        "Figure 6.5: Apache Benchmark",
        &[
            "Config",
            "Total (s)",
            "Throughput (req/s)",
            "Latency (ms)",
            "Transfer (MB/s)",
            "Longest (ms)",
        ],
    );
    let mut baseline = None;
    for (label, mode, cfg) in figure_6_5_cases() {
        let r = apache::run(mode, cfg);
        if baseline.is_none() {
            baseline = Some(r.throughput_rps);
        }
        println!(
            "{label:<15} | {:>8.2} | {:>9.0} ({:>6.2}x) | {:>9.1} | {:>10.1} | {:>9.0}",
            r.total_time_s,
            r.throughput_rps,
            r.throughput_rps / baseline.expect("set"),
            r.mean_latency_ms,
            r.transfer_mbps,
            r.longest_request_ms,
        );
    }
    println!(
        "\nPaper: \"Performance decreases non-uniformly with the frequency of the restarts\"; \
         longest requests 8-9 ms without restarts vs 3000-7000 ms with. \
         See EXPERIMENTS.md for the measured-vs-paper discussion."
    );
}
