//! Figure 6.4 — kernel build, local ext3 and remote NFS.
//!
//! Paper: "The overhead added by Xoar is much less than 1%", with two
//! additional Xoar-NFS bars for NetBack restarts at 10 s and 5 s.

use xoar_bench::{header, pct};
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::DomId;
use xoar_sim::workloads::kernel_build::{self, BuildSource};

fn guest(p: &mut Platform) -> DomId {
    let ts = p.services.toolstacks[0];
    p.create_guest(ts, GuestConfig::evaluation_guest("build"))
        .expect("guest creation")
}

fn main() {
    header(
        "Figure 6.4: Kernel build time (seconds)",
        &["Config", "Dom0", "Xoar", "Delta"],
    );
    for (label, source) in [
        ("local ext3", BuildSource::LocalExt3),
        (
            "remote NFS",
            BuildSource::Nfs {
                restart_interval_s: None,
            },
        ),
    ] {
        let mut dom0 = Platform::stock_xen();
        let g0 = guest(&mut dom0);
        let r0 = kernel_build::run(&mut dom0, g0, source);
        let mut xoar = Platform::xoar(XoarConfig::default());
        let g1 = guest(&mut xoar);
        let r1 = kernel_build::run(&mut xoar, g1, source);
        println!(
            "{label:<18} | {:>6.1} | {:>6.1} | {}",
            r0.build_time_s,
            r1.build_time_s,
            pct(r1.build_time_s, r0.build_time_s)
        );
    }

    header(
        "Xoar NFS with NetBack restarts",
        &["Interval", "Build time", "vs no restarts"],
    );
    let mut xoar = Platform::xoar(XoarConfig::default());
    let g = guest(&mut xoar);
    let clean = kernel_build::run(
        &mut xoar,
        g,
        BuildSource::Nfs {
            restart_interval_s: None,
        },
    );
    for interval in [10u64, 5] {
        let r = kernel_build::run(
            &mut xoar,
            g,
            BuildSource::Nfs {
                restart_interval_s: Some(interval),
            },
        );
        println!(
            "{interval:>7}s | {:>9.1}s | {}",
            r.build_time_s,
            pct(r.build_time_s, clean.build_time_s)
        );
    }
    println!("\nPaper: \"The overhead added by Xoar is much less than 1%.\"");
}
