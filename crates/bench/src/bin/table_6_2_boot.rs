//! Table 6.2 — comparison of boot times.
//!
//! Simulates both boot plans and prints console / ping milestones with
//! speedups next to the paper's measurements (Dom0 38.9 s / 42.2 s;
//! Xoar 25.9 s / 36.6 s; speedups 1.5× / 1.15×).

use xoar_bench::header;
use xoar_core::boot::BootPlan;

fn main() {
    let dom0 = BootPlan::stock_xen().simulate();
    let xoar = BootPlan::xoar().simulate();

    header(
        "Table 6.2: Comparison of Boot Times",
        &["Milestone", "Dom0", "Xoar", "Speedup", "Paper"],
    );
    println!(
        "Console   | {:>5.1}s | {:>5.1}s | {:>4.2}x | 38.9s / 25.9s (1.5x)",
        dom0.console_s,
        xoar.console_s,
        dom0.console_s / xoar.console_s
    );
    println!(
        "ping      | {:>5.1}s | {:>5.1}s | {:>4.2}x | 42.2s / 36.6s (1.15x)",
        dom0.ping_s,
        xoar.ping_s,
        dom0.ping_s / xoar.ping_s
    );

    header("Per-step finish times (Xoar DAG)", &["Step", "Finish"]);
    let plan = BootPlan::xoar();
    let mut finish: Vec<_> = plan.finish_times().into_iter().collect();
    finish.sort_by_key(|(_, t)| *t);
    for (name, t) in finish {
        println!("{name:<22} | {:>5.1}s", t as f64 / 1000.0);
    }
    println!(
        "\nPaper: \"the improved boot time is a result of parallel booting that can occur \
         due to the compartmentalisation of components\" — note the console branch \
         finishing independently of the driver-domain branch."
    );
}
