//! # xoar-bench
//!
//! Benchmark harnesses reproducing every table and figure of the Xoar
//! evaluation (Chapter 6). Each binary prints the same rows/series the
//! paper reports, next to the paper's published values where the thesis
//! states them; `EXPERIMENTS.md` records the comparison.
//!
//! Run any harness with `cargo run -p xoar-bench --release --bin <name>`:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table_6_1_memory` | Table 6.1 — shard memory consumption |
//! | `table_6_2_boot` | Table 6.2 — boot-time comparison |
//! | `fig_6_1_postmark` | Figure 6.1 — Postmark disk performance |
//! | `fig_6_2_wget` | Figure 6.2 — network/combined throughput |
//! | `fig_6_3_netback_restart` | Figure 6.3 — restarting NetBack sweep |
//! | `fig_6_4_kernel_build` | Figure 6.4 — kernel build local/NFS |
//! | `fig_6_5_apache` | Figure 6.5 — ApacheBench with restarts |
//! | `security_eval` | §2.2.1 census, §6.2.1 containment, §6.2 TCB, §3.3 temporal surface |
//! | `extensions` | density, migration, restart staggering, hypervisor split |

#![warn(missing_docs)]

pub mod harness;

/// Prints a table header followed by a separator row.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", columns.join(" | "));
    println!(
        "{}",
        columns
            .iter()
            .map(|c| "-".repeat(c.len()))
            .collect::<Vec<_>>()
            .join("-|-")
    );
}

/// Formats a relative delta as a signed percentage.
pub fn pct(new: f64, baseline: f64) -> String {
    format!("{:+.1}%", (new / baseline - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_signed() {
        assert_eq!(pct(110.0, 100.0), "+10.0%");
        assert_eq!(pct(92.0, 100.0), "-8.0%");
    }
}
