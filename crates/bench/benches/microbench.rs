//! Micro-benchmarks of the platform's hot mechanisms, on the in-tree
//! deterministic harness ([`xoar_bench::harness`]).
//!
//! These quantify the per-operation costs that the paper's performance
//! argument leans on: hypercall dispatch with whitelist checking, grant
//! map/unmap, event-channel signalling, ring round trips, XenStore
//! reads/writes, and snapshot rollback.

use std::hint::black_box;

use xoar_bench::harness::Harness;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, Hypercall};
use xoar_xenstore::XenStore;

fn platform_with_guest() -> (Platform, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("bench"))
        .expect("guest");
    (p, g)
}

fn bench_hypercalls(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    h.bench_function("hypercall/sched_yield", || {
        p.hv.hypercall(black_box(g), Hypercall::SchedYield).unwrap();
    });
    h.bench_function("hypercall/denied_privileged", || {
        let _ = p.hv.hypercall(black_box(g), Hypercall::SysctlPhysinfo);
    });
}

fn bench_events(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let port =
        p.hv.hypercall(g, Hypercall::EvtchnAllocUnbound { remote: nb })
            .unwrap()
            .port();
    p.hv.hypercall(
        nb,
        Hypercall::EvtchnBindInterdomain {
            remote: g,
            remote_port: port,
        },
    )
    .unwrap();
    h.bench_function("evtchn/send_poll", || {
        p.hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
        p.hv.events.poll(black_box(nb)).unwrap();
    });
}

fn bench_grants(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let gref =
        p.hv.hypercall(
            g,
            Hypercall::GnttabGrantAccess {
                grantee: nb,
                pfn: Pfn(30),
                access: GrantAccess::ReadWrite,
            },
        )
        .unwrap()
        .grant_ref();
    h.bench_function("grant/map_unmap", || {
        p.hv.hypercall(nb, Hypercall::GnttabMapGrantRef { granter: g, gref })
            .unwrap();
        p.hv.hypercall(nb, Hypercall::GnttabUnmapGrantRef { granter: g, gref })
            .unwrap();
    });
}

fn bench_ring_round_trip(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    let mut sector = 0u64;
    h.bench_function("blk/submit_process_poll", || {
        p.blk_submit(g, BlkOp::Write, sector % 4096, 8).unwrap();
        sector += 8;
        p.process_blkbacks();
        p.blk_poll(g).unwrap();
    });
    h.bench_function("net/transmit_process", || {
        p.net_transmit(g, 1, 1500).unwrap();
        p.process_netbacks();
        p.net_receive(g).unwrap();
    });
}

fn bench_xenstore(h: &mut Harness) {
    let mut xs = XenStore::new();
    let dom0 = DomId(0);
    xs.set_privileged(dom0, true);
    xs.write_str(dom0, "/bench/key", "value").unwrap();
    h.bench_function("xenstore/read", || {
        xs.read_str(black_box(dom0), "/bench/key").unwrap();
    });
    h.bench_function("xenstore/write", || {
        xs.write_str(black_box(dom0), "/bench/key", "value2")
            .unwrap();
    });
    // The cost of a XenStore-Logic microreboot (recover from State).
    h.bench_function("xenstore/logic_restart", || xs.restart_logic());
}

fn bench_snapshot(h: &mut Harness) {
    let (mut p, _g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    p.hv.hypercall(nb, Hypercall::VmSnapshot).unwrap();
    let builder = p.services.builder;
    h.bench_function("snapshot/rollback_one_dirty_page", || {
        p.hv.mem.write(nb, Pfn(1), b"dirty").unwrap();
        p.hv.hypercall(builder, Hypercall::VmRollback { target: nb })
            .unwrap();
    });
}

fn main() {
    let mut h = Harness::new();
    bench_hypercalls(&mut h);
    bench_events(&mut h);
    bench_grants(&mut h);
    bench_ring_round_trip(&mut h);
    bench_xenstore(&mut h);
    bench_snapshot(&mut h);
    h.emit_json();
}
