//! Criterion micro-benchmarks of the platform's hot mechanisms.
//!
//! These quantify the per-operation costs that the paper's performance
//! argument leans on: hypercall dispatch with whitelist checking, grant
//! map/unmap, event-channel signalling, ring round trips, XenStore
//! reads/writes, and snapshot rollback.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, Hypercall};
use xoar_xenstore::XenStore;

fn platform_with_guest() -> (Platform, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("bench"))
        .expect("guest");
    (p, g)
}

fn bench_hypercalls(c: &mut Criterion) {
    let (mut p, g) = platform_with_guest();
    c.bench_function("hypercall/sched_yield", |b| {
        b.iter(|| p.hv.hypercall(black_box(g), Hypercall::SchedYield).unwrap())
    });
    c.bench_function("hypercall/denied_privileged", |b| {
        b.iter(|| {
            let _ = p.hv.hypercall(black_box(g), Hypercall::SysctlPhysinfo);
        })
    });
}

fn bench_events(c: &mut Criterion) {
    let (mut p, g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let port =
        p.hv.hypercall(g, Hypercall::EvtchnAllocUnbound { remote: nb })
            .unwrap()
            .port();
    p.hv.hypercall(
        nb,
        Hypercall::EvtchnBindInterdomain {
            remote: g,
            remote_port: port,
        },
    )
    .unwrap();
    c.bench_function("evtchn/send_poll", |b| {
        b.iter(|| {
            p.hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
            p.hv.events.poll(black_box(nb)).unwrap();
        })
    });
}

fn bench_grants(c: &mut Criterion) {
    let (mut p, g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let gref =
        p.hv.hypercall(
            g,
            Hypercall::GnttabGrantAccess {
                grantee: nb,
                pfn: Pfn(30),
                access: GrantAccess::ReadWrite,
            },
        )
        .unwrap()
        .grant_ref();
    c.bench_function("grant/map_unmap", |b| {
        b.iter(|| {
            p.hv.hypercall(nb, Hypercall::GnttabMapGrantRef { granter: g, gref })
                .unwrap();
            p.hv.hypercall(nb, Hypercall::GnttabUnmapGrantRef { granter: g, gref })
                .unwrap();
        })
    });
}

fn bench_ring_round_trip(c: &mut Criterion) {
    let (mut p, g) = platform_with_guest();
    c.bench_function("blk/submit_process_poll", |b| {
        let mut sector = 0u64;
        b.iter(|| {
            p.blk_submit(g, BlkOp::Write, sector % 4096, 8).unwrap();
            sector += 8;
            p.process_blkbacks();
            p.blk_poll(g).unwrap();
        })
    });
    c.bench_function("net/transmit_process", |b| {
        b.iter(|| {
            p.net_transmit(g, 1, 1500).unwrap();
            p.process_netbacks();
            p.net_receive(g).unwrap();
        })
    });
}

fn bench_xenstore(c: &mut Criterion) {
    let mut xs = XenStore::new();
    let dom0 = DomId(0);
    xs.set_privileged(dom0, true);
    xs.write_str(dom0, "/bench/key", "value").unwrap();
    c.bench_function("xenstore/read", |b| {
        b.iter(|| xs.read_str(black_box(dom0), "/bench/key").unwrap())
    });
    c.bench_function("xenstore/write", |b| {
        b.iter(|| {
            xs.write_str(black_box(dom0), "/bench/key", "value2")
                .unwrap()
        })
    });
    c.bench_function("xenstore/logic_restart", |b| {
        // The cost of a XenStore-Logic microreboot (recover from State).
        b.iter(|| xs.restart_logic())
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let (mut p, _g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    p.hv.hypercall(nb, Hypercall::VmSnapshot).unwrap();
    let builder = p.services.builder;
    c.bench_function("snapshot/rollback_one_dirty_page", |b| {
        b.iter(|| {
            p.hv.mem.write(nb, Pfn(1), b"dirty").unwrap();
            p.hv.hypercall(builder, Hypercall::VmRollback { target: nb })
                .unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_hypercalls,
    bench_events,
    bench_grants,
    bench_ring_round_trip,
    bench_xenstore,
    bench_snapshot
);
criterion_main!(benches);
