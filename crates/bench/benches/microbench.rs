//! Micro-benchmarks of the platform's hot mechanisms, on the in-tree
//! deterministic harness ([`xoar_bench::harness`]).
//!
//! These quantify the per-operation costs that the paper's performance
//! argument leans on: hypercall dispatch with whitelist checking, grant
//! map/unmap, event-channel signalling, ring round trips, XenStore
//! reads/writes, and snapshot rollback.

use std::hint::black_box;

use xoar_bench::harness::Harness;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_devices::blk::BlkOp;
use xoar_devices::ring::Ring;
use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::memory::{MemoryManager, PageRef, Pfn};
use xoar_hypervisor::sched::{RunQueues, VcpuRef};
use xoar_hypervisor::{DomId, Hypercall};
use xoar_xenstore::XenStore;

fn platform_with_guest() -> (Platform, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("bench"))
        .expect("guest");
    (p, g)
}

fn bench_hypercalls(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    h.bench_function("hypercall/sched_yield", || {
        p.hv.hypercall(black_box(g), Hypercall::SchedYield).unwrap();
    });
    h.bench_function("hypercall/denied_privileged", || {
        let _ = p.hv.hypercall(black_box(g), Hypercall::SysctlPhysinfo);
    });
    // The dispatch path with the isolation-spec checker *absent*: the
    // hook gate must cost one untaken branch, nothing more. bench-gate
    // holds this within 1.05x of the plain sched_yield number above.
    debug_assert!(p.hv.dispatch_hook().is_none());
    h.bench_function("hypercall/dispatch_spec_off", || {
        p.hv.hypercall(black_box(g), Hypercall::SchedYield).unwrap();
    });
    // ...and with the checker attached: every hypercall advances the
    // memory-ownership model and re-verifies refinement. Debug tooling,
    // not a production path — reported for the EXPERIMENTS.md overhead
    // table, deliberately not a gated hot path.
    let _spec = xoar_analysis::spec::SpecHandle::attach(&mut p.hv);
    h.bench_function("hypercall/dispatch_spec_on", || {
        p.hv.hypercall(black_box(g), Hypercall::SchedYield).unwrap();
    });
    p.hv.take_dispatch_hook();
}

fn bench_events(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let port =
        p.hv.hypercall(g, Hypercall::EvtchnAllocUnbound { remote: nb })
            .unwrap()
            .port()
            .unwrap();
    let nb_port =
        p.hv.hypercall(
            nb,
            Hypercall::EvtchnBindInterdomain {
                remote: g,
                remote_port: port,
            },
        )
        .unwrap()
        .port()
        .unwrap();
    h.bench_function("evtchn/send_poll", || {
        p.hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
        p.hv.poll_event(black_box(nb)).unwrap();
    });
    // The full cross-region signalling round trip: each direction takes
    // the typed CrossRegionOp path through the two-region split borrow,
    // then both pending bitmaps are drained.
    let mut drained = Vec::new();
    h.bench_function("evtchn/cross_region_send", || {
        p.hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
        p.hv.hypercall(nb, Hypercall::EvtchnSend { port: nb_port })
            .unwrap();
        p.hv.drain_pending_into(black_box(nb), &mut drained);
        p.hv.drain_pending_into(black_box(g), &mut drained);
        drained.clear();
    });
}

fn bench_runqueues(h: &mut Harness) {
    let (p, g) = platform_with_guest();
    // Eight vcpus spread over four runqueues: pick from a non-empty
    // local queue, then the steady-state steal (queue 1 empty, queue 0
    // holding surplus).
    let mut rq = RunQueues::new(4);
    for v in 0..8u32 {
        rq.enqueue(v as usize % 4, VcpuRef { dom: g, vcpu: v });
    }
    h.bench_function("sched/runqueue_pick_next", || {
        let v = rq.pick_next(black_box(0), &p.hv.sched).unwrap();
        rq.enqueue(0, v);
    });
    let mut rq = RunQueues::new(2);
    for v in 0..3u32 {
        rq.enqueue(0, VcpuRef { dom: g, vcpu: v });
    }
    h.bench_function("sched/steal", || {
        let v = rq.steal(black_box(1)).unwrap();
        rq.enqueue(0, v);
    });
}

fn bench_grants(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let gref =
        p.hv.hypercall(
            g,
            Hypercall::GnttabGrantAccess {
                grantee: nb,
                pfn: Pfn(30),
                access: GrantAccess::ReadWrite,
            },
        )
        .unwrap()
        .grant_ref()
        .unwrap();
    h.bench_function("grant/map_unmap", || {
        p.hv.hypercall(nb, Hypercall::GnttabMapGrantRef { granter: g, gref })
            .unwrap();
        p.hv.hypercall(nb, Hypercall::GnttabUnmapGrantRef { granter: g, gref })
            .unwrap();
    });
}

fn bench_ring_round_trip(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    let mut sector = 0u64;
    h.bench_function("blk/submit_process_poll", || {
        p.blk_submit(g, BlkOp::Write, sector % 4096, 8).unwrap();
        sector += 8;
        p.process_blkbacks();
        p.blk_poll(g).unwrap();
    });
    h.bench_function("net/transmit_process", || {
        p.net_transmit(g, 1, 1500).unwrap();
        p.process_netbacks();
        p.net_receive(g).unwrap();
        // Nothing drains the simulated wire here; without this the
        // outbound queue doubles repeatedly and the reallocation spikes
        // dominate the p95 tail.
        p.wire.outbound.clear();
    });
}

fn bench_memory_pages(h: &mut Harness) {
    let (mut p, g) = platform_with_guest();
    p.hv.mem.write(g, Pfn(40), &[0xa5u8; 4096]).unwrap();
    h.bench_function("mem/page_write", || {
        p.hv.mem
            .write(g, Pfn(41), black_box(&[0x5au8; 512]))
            .unwrap();
    });
    // A full zero page takes the canonical zero-frame path: one
    // word-wise scan, no buffer allocation, precomputed hash.
    h.bench_function("mem/page_write_zero", || {
        p.hv.mem.write(g, Pfn(42), black_box(&[0u8; 4096])).unwrap();
    });
    // `read` hands back a shared PageRef, not a byte copy.
    h.bench_function("mem/page_read_handle", || {
        black_box(p.hv.mem.read(g, Pfn(40)).unwrap());
    });
    let mut ring: Ring<PageRef, PageRef> = Ring::new(8);
    let page = PageRef::new(&[7u8; 4096]);
    h.bench_function("ring/page_round_trip", || {
        ring.push_request(page.clone()).unwrap();
        let req = ring.pop_request().unwrap();
        ring.push_response(req).unwrap();
        black_box(ring.pop_response().unwrap());
    });
    // Guest page to the wire and back by handle (zero-copy TX path).
    h.bench_function("net/transmit_page_process", || {
        p.net_transmit_page(g, 1, 40).unwrap();
        p.process_netbacks();
        p.net_receive(g).unwrap();
        p.wire.outbound.clear();
    });
}

/// The batched data path: one multicall / one ring operation carrying
/// many sub-operations, against the per-op entries above.
fn bench_batched_paths(h: &mut Harness) {
    // 32 grant refs mapped and unmapped in one multicall of two batch ops.
    let (mut p, g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let refs: Vec<_> = (0..32)
        .map(|i| {
            p.hv.hypercall(
                g,
                Hypercall::GnttabGrantAccess {
                    grantee: nb,
                    pfn: Pfn(30 + i),
                    access: GrantAccess::ReadWrite,
                },
            )
            .unwrap()
            .grant_ref()
            .unwrap()
        })
        .collect();
    // The guest-handle model: the ref array lives in "guest memory" once;
    // re-issuing the hypercall re-presents the same handle (refcount bump),
    // it does not re-copy 32 refs per call.
    let refs: std::rc::Rc<[_]> = refs.into();
    h.bench_function("grant/map_unmap_batch32", || {
        let ret =
            p.hv.hypercall(
                black_box(nb),
                Hypercall::Multicall {
                    calls: vec![
                        Hypercall::GnttabMapBatch {
                            granter: g,
                            refs: refs.clone(),
                        },
                        Hypercall::GnttabUnmapBatch {
                            granter: g,
                            refs: refs.clone(),
                        },
                    ],
                },
            )
            .unwrap();
        black_box(ret);
    });

    // Eight sends on one port collapse into one pending bit; the drain
    // pays O(nonzero words), not O(sends).
    let port =
        p.hv.hypercall(g, Hypercall::EvtchnAllocUnbound { remote: nb })
            .unwrap()
            .port()
            .unwrap();
    p.hv.hypercall(
        nb,
        Hypercall::EvtchnBindInterdomain {
            remote: g,
            remote_port: port,
        },
    )
    .unwrap();
    let mut drained = Vec::with_capacity(8);
    h.bench_function("evtchn/send_coalesced", || {
        for _ in 0..8 {
            p.hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
        }
        drained.clear();
        assert_eq!(p.hv.drain_pending_into(black_box(nb), &mut drained), 1);
    });

    // Sixteen block writes in one ring push + one trailing notify.
    let mut sector = 0u64;
    h.bench_function("blk/submit_batch", || {
        let mut ops = [(BlkOp::Write, 0u64, 8u64); 16];
        for op in ops.iter_mut() {
            op.1 = sector % 4096;
            sector += 8;
        }
        p.blk_submit_batch(g, &ops).unwrap();
        p.process_blkbacks();
        while p.blk_poll(g).is_some() {}
    });
}

/// Four domains, `frames / 4` pages each; page `i` of every domain holds
/// the same content, so every page body appears four times.
fn dedup_fleet(frames: u64) -> MemoryManager {
    let mut m = MemoryManager::new(frames + 16);
    let per_dom = frames / 4;
    for d in 1..=4u32 {
        let dom = DomId(d);
        m.populate(dom, per_dom).unwrap();
        for i in 0..per_dom {
            m.write(dom, Pfn(i), format!("dedup-page-{i}").as_bytes())
                .unwrap();
        }
    }
    m
}

fn bench_dedup_scale(h: &mut Harness) {
    let mut group = h.group("mem/dedup_scale");
    group.sample_size(10);
    for (label, frames) in [("1k", 1_000u64), ("10k", 10_000), ("50k", 50_000)] {
        let base = dedup_fleet(frames);
        // Each iteration dedups a fresh clone of the prepared fleet;
        // only the scan itself is timed — at 50k frames the manager
        // clone costs several milliseconds and would otherwise drown
        // the measurement.
        group.bench_function_prepared(
            label,
            || base.clone(),
            |mut m| {
                black_box(m.share_identical());
            },
        );
    }
    group.finish();
}

fn bench_xenstore(h: &mut Harness) {
    let mut xs = XenStore::new();
    let dom0 = DomId(0);
    xs.set_privileged(dom0, true);
    xs.write_str(dom0, "/bench/key", "value").unwrap();
    h.bench_function("xenstore/read", || {
        xs.read_str(black_box(dom0), "/bench/key").unwrap();
    });
    h.bench_function("xenstore/write", || {
        xs.write_str(black_box(dom0), "/bench/key", "value2")
            .unwrap();
    });
    // The cost of a XenStore-Logic microreboot (recover from State).
    h.bench_function("xenstore/logic_restart", || xs.restart_logic());
}

fn bench_snapshot(h: &mut Harness) {
    let (mut p, _g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    p.hv.hypercall(nb, Hypercall::VmSnapshot).unwrap();
    let builder = p.services.builder;
    h.bench_function("snapshot/rollback_one_dirty_page", || {
        p.hv.mem.write(nb, Pfn(1), b"dirty").unwrap();
        p.hv.hypercall(builder, Hypercall::VmRollback { target: nb })
            .unwrap();
    });
    // Taking a fresh snapshot of a populated shard: CoW freeze, so the
    // cost must not scale with the number of clean pages.
    h.bench_function("snapshot/cow_snapshot", || {
        p.hv.hypercall(black_box(nb), Hypercall::VmSnapshot)
            .unwrap();
    });
}

/// The microreboot fast paths: the per-request XenStore-Logic restart of
/// Figure 5.1 (restart + serve one read, mirroring the ablation's
/// request cycle) and a full driver restart through the precompiled
/// `RestartPlan`.
fn bench_restart(h: &mut Harness) {
    use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};

    let mut xs = XenStore::new();
    let dom0 = DomId(0);
    xs.set_privileged(dom0, true);
    xs.write_str(dom0, "/bench/key", "value").unwrap();
    h.bench_function("restart/per_request_logic", || {
        xs.restart_logic();
        xs.read_str(black_box(dom0), "/bench/key").unwrap();
    });

    let (mut p, _g) = platform_with_guest();
    let nb = p.services.netbacks[0];
    let mut eng = RestartEngine::new();
    eng.register(&mut p, nb, RestartPolicy::Never, RestartPath::Fast)
        .unwrap();
    h.bench_function("restart/plan_execute", || {
        eng.restart(&mut p, black_box(nb)).unwrap();
    });
}

/// The virtual-switch hot paths: connection-table lookup against a
/// 100k-flow population, a 32-frame switching batch (the per-packet
/// cost the fabric's O(batch) claim rests on), and NAT port turnover.
fn bench_fabric(h: &mut Harness) {
    use xoar_devices::fabric::{Fabric, FlowKey, NatAlloc};
    use xoar_devices::net::{NetPacket, NetRingHub, WireEndpoint};
    use xoar_devices::ring::RingId;
    use xoar_devices::xenbus::{Connection, DeviceKind};
    use xoar_hypervisor::grant::GrantRef;

    let vif = |guest: u32, gref: u32| Connection {
        guest: DomId(guest),
        backend: DomId(2),
        kind: DeviceKind::Vif,
        index: 0,
        ring: RingId {
            granter: DomId(guest),
            gref: GrantRef(gref),
        },
        front_port: gref + 1,
        back_port: gref + 1,
    };

    // Lookup: a fleet-scale connection table. The probed keys rotate
    // through the whole population, so most probes miss the inline slots
    // and pay the FastMap spill — the honest steady-state cost.
    let mut fab = Fabric::new(DomId(2));
    let mut hub = NetRingHub::new();
    for i in 0..8u32 {
        let c = vif(10 + i, i);
        hub.create(c.ring);
        fab.attach_port(c);
    }
    const POP: u64 = 100_000;
    let key_of = |f: u64| FlowKey {
        flow: f,
        src: DomId(10 + (f % 8) as u32),
        dst: DomId(10 + ((f + 1) % 8) as u32),
    };
    for f in 0..POP {
        let k = key_of(f);
        fab.open_flow(k.flow, k.src, k.dst).unwrap();
    }
    let mut probe = 0u64;
    h.bench_function("fabric/flow_lookup", || {
        let k = key_of(probe % POP);
        probe = probe.wrapping_add(7919);
        black_box(fab.lookup(black_box(&k))).unwrap();
    });

    // Switching: one ring's worth of frames across the four flows of a
    // batch — all inline-slot hits — delivered guest→guest and drained.
    let mut fab = Fabric::new(DomId(2));
    let mut hub = NetRingHub::new();
    let src = vif(5, 0);
    let dst = vif(6, 1);
    for c in [src, dst] {
        hub.create(c.ring);
        fab.attach_port(c);
    }
    for f in 0..4u64 {
        fab.open_flow(f, DomId(5), DomId(6)).unwrap();
    }
    let mut wire = WireEndpoint::new();
    let mut seq = 0u64;
    let mut rx: Vec<NetPacket> = Vec::with_capacity(64);
    h.bench_function("fabric/switch_batch32", || {
        let base = seq;
        seq += 32;
        fab.enqueue_batch(
            DomId(5),
            (0..32u64).map(|i| NetPacket::meta(i % 4, base + i, 1500)),
        );
        let stats = fab.switch(&mut hub, &mut wire);
        debug_assert_eq!(stats.to_guests, 32);
        let ring = hub.get_mut(dst.ring).unwrap();
        ring.pop_responses_into(&mut rx);
        debug_assert_eq!(rx.len(), 32);
        black_box(rx.len());
        rx.clear();
    });

    // NAT turnover: the per-connection open/close cost of the external
    // port pool (steady state: free-list pop + push, no allocation).
    let mut nat = NatAlloc::new();
    h.bench_function("fabric/nat_alloc", || {
        let p = nat.alloc().unwrap();
        nat.release(black_box(p));
    });
}

fn main() {
    let mut h = Harness::new();
    bench_hypercalls(&mut h);
    bench_events(&mut h);
    bench_runqueues(&mut h);
    bench_grants(&mut h);
    bench_ring_round_trip(&mut h);
    bench_batched_paths(&mut h);
    bench_fabric(&mut h);
    bench_memory_pages(&mut h);
    bench_dedup_scale(&mut h);
    bench_xenstore(&mut h);
    bench_snapshot(&mut h);
    bench_restart(&mut h);
    h.emit_json();
}
