//! Ablation benches for the design choices DESIGN.md calls out, on the
//! in-tree deterministic harness ([`xoar_bench::harness`]).
//!
//! * **privilege checks on the hot path** — the cost of a hypercall
//!   whose caller holds blanket privilege (Dom0, one comparison) versus a
//!   whitelist-gated shard (set lookup + per-argument checks): the price
//!   of least privilege;
//! * **XenStore split** — serving a request through the Logic/State
//!   split, with and without a Logic restart before every request
//!   (Figure 5.1's "restarted on each request" policy);
//! * **restart paths** — a full microreboot via the slow path versus the
//!   recovery-box fast path, end to end on the platform;
//! * **boot plans** — evaluating the serial and parallel boot DAGs.

use std::hint::black_box;

use xoar_bench::harness::Harness;
use xoar_core::boot::BootPlan;
use xoar_core::platform::{GuestConfig, Platform, PlatformMode, XoarConfig};
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::privilege::{IoPortRange, MmioRange};
use xoar_hypervisor::{DomId, Hypercall, HypercallId, PrivilegeSet};
use xoar_sim::workloads::smp::SmpWorkload;
use xoar_xenstore::XenStore;

fn bench_privilege_checks(h: &mut Harness) {
    let mut group = h.group("ablation/privilege_checks");
    // Blanket-privileged caller (stock Xen Dom0).
    let mut stock = Platform::stock_xen();
    let dom0 = stock.services.builder;
    group.bench_function("dom0_blanket", || {
        stock
            .hv
            .hypercall(black_box(dom0), Hypercall::SysctlPhysinfo)
            .unwrap();
    });
    // Whitelist-gated shard caller (Xoar toolstack).
    let mut xoar = Platform::xoar(XoarConfig::default());
    let ts = xoar.services.toolstacks[0];
    group.bench_function("shard_whitelisted", || {
        xoar.hv
            .hypercall(black_box(ts), Hypercall::SysctlPhysinfo)
            .unwrap();
    });
    // Direct probes of the privilege data structures: a bitset test for
    // the hypercall whitelist, binary search over sorted ranges for I/O
    // ports and MMIO — the structures `permits_*` dispatches through.
    let mut ps = PrivilegeSet::default();
    ps.hypercalls = [
        HypercallId::DomctlCreateDomain,
        HypercallId::DomctlDestroyDomain,
        HypercallId::SysctlPhysinfo,
    ]
    .into_iter()
    .collect();
    ps.io_ports = (0..32u16)
        .map(|i| IoPortRange::new(i * 0x100, i * 0x100 + 0x1f))
        .collect();
    ps.mmio = (0..32u64)
        .map(|i| MmioRange {
            start_mfn: 0x1000 + i * 0x100,
            frames: 0x40,
        })
        .collect();
    group.bench_function("permits_hypercall_bitset", || {
        assert!(ps.permits_hypercall(black_box(HypercallId::SysctlPhysinfo)));
        assert!(!ps.permits_hypercall(black_box(HypercallId::PlatformReboot)));
    });
    group.bench_function("permits_io_port_ranges", || {
        assert!(ps.permits_io_port(black_box(0x0710)));
        assert!(!ps.permits_io_port(black_box(0x07f0)));
    });
    group.bench_function("permits_mmio_ranges", || {
        assert!(ps.permits_mmio(black_box(0x1f20)));
        assert!(!ps.permits_mmio(black_box(0x1fff)));
    });
    group.finish();
}

fn bench_xenstore_split(h: &mut Harness) {
    let mut group = h.group("ablation/xenstore_split");
    let dom0 = DomId(0);
    let mut xs = XenStore::new();
    xs.set_privileged(dom0, true);
    for i in 0..100 {
        xs.write_str(dom0, &format!("/tool/k{i}"), "v").unwrap();
    }
    group.bench_function("request_no_restart", || {
        xs.read_str(dom0, "/tool/k50").unwrap();
    });
    // Figure 5.1: XenStore-Logic "restarted on each request".
    group.bench_function("request_with_per_request_restart", || {
        xs.restart_logic();
        xs.read_str(dom0, "/tool/k50").unwrap();
    });
    group.finish();
}

fn bench_restart_paths(h: &mut Harness) {
    let mut group = h.group("ablation/restart_paths");
    group.sample_size(20);
    for (label, path) in [("slow", RestartPath::Slow), ("fast", RestartPath::Fast)] {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let _g = p
            .create_guest(ts, GuestConfig::evaluation_guest("g"))
            .unwrap();
        let nb = p.services.netbacks[0];
        let mut eng = RestartEngine::new();
        eng.register(&mut p, nb, RestartPolicy::Never, path)
            .unwrap();
        group.bench_function(label, || {
            eng.restart(&mut p, nb).unwrap();
        });
    }
    group.finish();
}

fn bench_boot_plans(h: &mut Harness) {
    let mut group = h.group("ablation/boot_plans");
    group.bench_function("serial_dom0", || {
        black_box(BootPlan::stock_xen().simulate());
    });
    group.bench_function("parallel_xoar", || {
        black_box(BootPlan::xoar().simulate());
    });
    group.finish();
}

fn bench_vcpu_scaling(h: &mut Harness) {
    // Fixed work — 256 XenStore-style requests from a 4-vcpu guest —
    // completed over 1, 2 and 4 runqueues. The rounds needed shrink as
    // runqueues grow (256/128/64 scheduling ticks), so the entries
    // record what the multi-runqueue scheduler buys per unit of work;
    // the simulated ops-per-tick scaling itself is asserted in
    // `tests/sharding.rs`.
    let mut group = h.group("ablation/vcpu_scaling");
    group.sample_size(20);
    for (label, runqueues, rounds) in [("rq1", 1, 256), ("rq2", 2, 128), ("rq4", 4, 64)] {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest("smp");
        cfg.vcpus = 4;
        let g = p.create_guest(ts, cfg).unwrap();
        let w = SmpWorkload::prepare(&mut p, g);
        group.bench_function(label, || {
            let res = w.run(&mut p, black_box(runqueues), rounds);
            assert_eq!(res.ops, 256, "fixed work unit");
        });
    }
    group.finish();
}

fn bench_platform_construction(h: &mut Harness) {
    let mut group = h.group("ablation/platform_construction");
    group.sample_size(20);
    group.bench_function("stock_xen", || {
        black_box(Platform::stock_xen());
    });
    group.bench_function("xoar_full_boot", || {
        black_box(Platform::xoar(XoarConfig::default()));
    });
    {
        // ~200 µs per create/destroy pair: wall-clock calibration alone
        // would give single-digit batches, small enough that one
        // scheduler hiccup lands in the p95. Floor the batch instead.
        group.min_iterations(24);
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut n = 0;
        group.bench_function("guest_creation_xoar", || {
            n += 1;
            let g = p
                .create_guest(ts, GuestConfig::evaluation_guest(&format!("g{n}")))
                .unwrap();
            p.destroy_guest(ts, g).unwrap();
        });
        assert_eq!(p.mode, PlatformMode::Xoar);
    }
    group.finish();
}

fn bench_cloning(h: &mut Harness) {
    let mut group = h.group("ablation/clone");
    {
        // The snapshot-fork fast path: stamp a domain from a sealed
        // template through `DomctlCloneDomain` — per-clone cost is region
        // setup only (4 privatized ring pages, no Builder round-trip, no
        // page copies). Clones accumulate across iterations: each holds
        // O(1) frames, and accumulation keeps destroy cost out of the
        // measurement.
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest("lambda-golden");
        cfg.memory_mib = 64;
        cfg.vcpus = 1;
        cfg.disk_bytes = 1 << 30;
        let tpl = p.create_guest(ts, cfg).unwrap();
        // Names are setup, not clone cost: pre-render them so the timed
        // loop measures the hypercall alone (iter_batched-style).
        let names: Vec<String> = (0..120_000).map(|i| format!("fx{i}")).collect();
        // Warm the stamp-plan cache before sampling: the first clone
        // seals the template and builds its plan — a one-time cost that
        // would otherwise poison calibration (the harness sizes the
        // batch from a single probe call), leaving batches small enough
        // that the plan build and every table rehash landed in the p95.
        // The batch floor keeps expensive entries in this group (full
        // clone create/destroy) from running samples so small that one
        // scheduler hiccup is the p95.
        p.hv.hypercall(
            ts,
            Hypercall::DomctlCloneDomain {
                template: tpl,
                name: "fx-warm".to_string(),
            },
        )
        .unwrap();
        group.min_iterations(64);
        let mut n = 0;
        group.bench_function("clone_from_template", || {
            let name = names[n % names.len()].clone();
            n += 1;
            p.hv.hypercall(
                black_box(ts),
                Hypercall::DomctlCloneDomain {
                    template: tpl,
                    name,
                },
            )
            .unwrap();
        });
    }
    {
        // The toolstack-visible path on top of the hypercall: XenStore
        // subtree stamping, device wiring and CoW disk attach included.
        // A create/destroy pair like `guest_creation_xoar` — device
        // wiring consumes backend event ports, so clones must not
        // accumulate across calibration-sized iteration counts.
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let tpl = p
            .create_guest(ts, GuestConfig::evaluation_guest("golden"))
            .unwrap();
        p.capture_template(ts, tpl).unwrap();
        let mut n = 0;
        group.bench_function("clone_guest_full", || {
            n += 1;
            let g = p.clone_guest(ts, tpl, &format!("fn{n}")).unwrap();
            p.destroy_guest(ts, g).unwrap();
        });
    }
    {
        // First guest write to a shared template page: allocate a private
        // frame, copy, rewire the p2m. Each iteration breaks a fresh pfn;
        // when a clone's address space is exhausted a new clone is
        // stamped (its cost amortises over thousands of breaks).
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest("break-golden");
        cfg.memory_mib = 1024;
        cfg.vcpus = 1;
        let tpl = p.create_guest(ts, cfg).unwrap();
        let watermark = 1024u64; // builder populate: one frame per MiB
        let mut clone_n = 0;
        let mut fresh_clone = |p: &mut Platform| {
            clone_n += 1;
            match p.hv.hypercall(
                ts,
                Hypercall::DomctlCloneDomain {
                    template: tpl,
                    name: format!("bw{clone_n}"),
                },
            ) {
                Ok(xoar_hypervisor::HypercallRet::DomId(d)) => d,
                other => panic!("clone for break bench: {other:?}"),
            }
        };
        let mut cur = fresh_clone(&mut p);
        let mut pfn = 8u64; // skip magic and privatized ring pages
        group.bench_function("first_write_break", || {
            if pfn >= watermark {
                cur = fresh_clone(&mut p);
                pfn = 8;
            }
            p.hv.mem.write(cur, Pfn(pfn), black_box(b"w")).unwrap();
            pfn += 1;
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::new();
    bench_privilege_checks(&mut h);
    bench_xenstore_split(&mut h);
    bench_restart_paths(&mut h);
    bench_boot_plans(&mut h);
    bench_vcpu_scaling(&mut h);
    bench_platform_construction(&mut h);
    bench_cloning(&mut h);
    h.emit_json();
}
