//! The PCI bus and PCIBack (§5.3).
//!
//! The PCI *configuration space* is a shared bus resource: even when
//! devices themselves are passed through to driver domains, a single
//! component must multiplex access to the configuration registers used
//! during device initialisation. In Xoar that component is **PCIBack**,
//! "the closest analogy that Xoar has to Xen's Dom0": it initialises the
//! hardware, enumerates the bus, requests driver-domain creation for each
//! controller found (via udev-style rules), and proxies configuration
//! accesses.
//!
//! Crucially, "once steady state is achieved, we can remove PCIBack from
//! the TCB entirely, either by de-privileging or destroying it" — modelled
//! by [`PciBack::seal`].

use std::collections::HashMap;

use xoar_hypervisor::{DomId, PciAddress};

/// The class of a PCI device, used by the udev-style boot rules to decide
/// which driver domain to spawn (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PciClass {
    /// Ethernet controller.
    Network,
    /// SATA/IDE storage controller.
    Storage,
    /// Anything else (bridges, USB, …).
    Other,
}

/// A device on the bus with its configuration space.
#[derive(Debug, Clone)]
pub struct PciDevice {
    /// Bus address.
    pub addr: PciAddress,
    /// Vendor ID (config offset 0x00).
    pub vendor: u16,
    /// Device ID (config offset 0x02).
    pub device: u16,
    /// Device class.
    pub class: PciClass,
    /// Config registers beyond the identity: offset → value.
    config: HashMap<u16, u32>,
    /// Domain the device is passed through to, if any.
    pub assigned_to: Option<DomId>,
}

impl PciDevice {
    /// Creates a device with an empty config space.
    pub fn new(addr: PciAddress, vendor: u16, device: u16, class: PciClass) -> Self {
        PciDevice {
            addr,
            vendor,
            device,
            class,
            config: HashMap::new(),
            assigned_to: None,
        }
    }
}

/// Errors from configuration-space access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PciError {
    /// No device at that address.
    NoDevice(PciAddress),
    /// The caller is not allowed to touch that device's config space.
    Denied {
        /// Requesting domain.
        caller: DomId,
        /// Target device.
        addr: PciAddress,
    },
    /// PCIBack has been sealed/destroyed; config space is frozen.
    Sealed,
}

impl std::fmt::Display for PciError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PciError::NoDevice(a) => write!(f, "no PCI device at {a}"),
            PciError::Denied { caller, addr } => {
                write!(f, "{caller} denied config access to {addr}")
            }
            PciError::Sealed => write!(f, "PCIBack sealed: no further config access"),
        }
    }
}

impl std::error::Error for PciError {}

/// The physical bus: the set of devices the host firmware reports.
#[derive(Debug, Default)]
pub struct PciBus {
    devices: Vec<PciDevice>,
}

impl PciBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's testbed: one Tigon 3 NIC and one Intel SATA controller.
    pub fn testbed() -> Self {
        let mut bus = Self::new();
        bus.add(PciDevice::new(
            PciAddress::new(0, 2, 0),
            0x14e4,
            0x1659,
            PciClass::Network,
        ));
        bus.add(PciDevice::new(
            PciAddress::new(0, 3, 0),
            0x8086,
            0x3a22,
            PciClass::Storage,
        ));
        bus
    }

    /// Adds a device.
    pub fn add(&mut self, dev: PciDevice) {
        self.devices.push(dev);
    }

    /// Enumerates all device addresses (boot-time bus walk).
    pub fn enumerate(&self) -> Vec<PciAddress> {
        self.devices.iter().map(|d| d.addr).collect()
    }

    /// Devices of a given class.
    pub fn of_class(&self, class: PciClass) -> Vec<PciAddress> {
        self.devices
            .iter()
            .filter(|d| d.class == class)
            .map(|d| d.addr)
            .collect()
    }

    fn find_mut(&mut self, addr: PciAddress) -> Option<&mut PciDevice> {
        self.devices.iter_mut().find(|d| d.addr == addr)
    }

    /// Looks up a device.
    pub fn find(&self, addr: PciAddress) -> Option<&PciDevice> {
        self.devices.iter().find(|d| d.addr == addr)
    }
}

/// PCIBack: the shard multiplexing configuration-space access.
#[derive(Debug)]
pub struct PciBack {
    /// The hosting domain.
    pub dom: DomId,
    /// The physical bus.
    pub bus: PciBus,
    sealed: bool,
    config_ops: u64,
}

impl PciBack {
    /// Creates PCIBack over a bus.
    pub fn new(dom: DomId, bus: PciBus) -> Self {
        PciBack {
            dom,
            bus,
            sealed: false,
            config_ops: 0,
        }
    }

    /// Boot-time: records a passthrough assignment (the hypervisor-side
    /// `DomctlAssignDevice` is performed by the Builder; this mirrors it
    /// on the bus model).
    pub fn assign(&mut self, addr: PciAddress, to: DomId) -> Result<(), PciError> {
        if self.sealed {
            return Err(PciError::Sealed);
        }
        let dev = self.bus.find_mut(addr).ok_or(PciError::NoDevice(addr))?;
        dev.assigned_to = Some(to);
        Ok(())
    }

    /// A config-space read proxied for `caller`.
    ///
    /// Only the domain a device is assigned to (or PCIBack itself) may
    /// touch its configuration registers.
    pub fn config_read(
        &mut self,
        caller: DomId,
        addr: PciAddress,
        offset: u16,
    ) -> Result<u32, PciError> {
        if self.sealed {
            return Err(PciError::Sealed);
        }
        let dom = self.dom;
        let dev = self.bus.find_mut(addr).ok_or(PciError::NoDevice(addr))?;
        if caller != dom && dev.assigned_to != Some(caller) {
            return Err(PciError::Denied { caller, addr });
        }
        self.config_ops += 1;
        Ok(match offset {
            0x00 => dev.vendor as u32,
            0x02 => dev.device as u32,
            _ => dev.config.get(&offset).copied().unwrap_or(0),
        })
    }

    /// A config-space write proxied for `caller`.
    pub fn config_write(
        &mut self,
        caller: DomId,
        addr: PciAddress,
        offset: u16,
        value: u32,
    ) -> Result<(), PciError> {
        if self.sealed {
            return Err(PciError::Sealed);
        }
        let dom = self.dom;
        let dev = self.bus.find_mut(addr).ok_or(PciError::NoDevice(addr))?;
        if caller != dom && dev.assigned_to != Some(caller) {
            return Err(PciError::Denied { caller, addr });
        }
        self.config_ops += 1;
        dev.config.insert(offset, value);
        Ok(())
    }

    /// Seals PCIBack once steady state is reached (§5.3): configuration
    /// space is frozen and the component can be destroyed, removing it
    /// from the TCB. Returns the number of config operations it served.
    pub fn seal(&mut self) -> u64 {
        self.sealed = true;
        self.config_ops
    }

    /// Whether PCIBack has been sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> PciAddress {
        PciAddress::new(0, 2, 0)
    }

    fn sata() -> PciAddress {
        PciAddress::new(0, 3, 0)
    }

    #[test]
    fn testbed_enumeration() {
        let bus = PciBus::testbed();
        assert_eq!(bus.enumerate().len(), 2);
        assert_eq!(bus.of_class(PciClass::Network), vec![nic()]);
        assert_eq!(bus.of_class(PciClass::Storage), vec![sata()]);
        assert_eq!(bus.find(nic()).unwrap().vendor, 0x14e4);
    }

    #[test]
    fn config_access_gated_on_assignment() {
        let mut pb = PciBack::new(DomId(1), PciBus::testbed());
        let netback = DomId(3);
        // Unassigned: only PCIBack itself may read.
        assert_eq!(pb.config_read(DomId(1), nic(), 0x00).unwrap(), 0x14e4);
        assert!(matches!(
            pb.config_read(netback, nic(), 0x00),
            Err(PciError::Denied { .. })
        ));
        pb.assign(nic(), netback).unwrap();
        assert_eq!(pb.config_read(netback, nic(), 0x02).unwrap(), 0x1659);
        // But not the other device.
        assert!(matches!(
            pb.config_read(netback, sata(), 0x00),
            Err(PciError::Denied { .. })
        ));
    }

    #[test]
    fn config_write_round_trip() {
        let mut pb = PciBack::new(DomId(1), PciBus::testbed());
        pb.assign(nic(), DomId(3)).unwrap();
        pb.config_write(DomId(3), nic(), 0x10, 0xfebc_0000).unwrap();
        assert_eq!(pb.config_read(DomId(3), nic(), 0x10).unwrap(), 0xfebc_0000);
    }

    #[test]
    fn missing_device_reported() {
        let mut pb = PciBack::new(DomId(1), PciBus::testbed());
        let ghost = PciAddress::new(0, 9, 9);
        assert!(matches!(
            pb.config_read(DomId(1), ghost, 0),
            Err(PciError::NoDevice(_))
        ));
        assert!(matches!(
            pb.assign(ghost, DomId(3)),
            Err(PciError::NoDevice(_))
        ));
    }

    #[test]
    fn sealing_freezes_config_space() {
        let mut pb = PciBack::new(DomId(1), PciBus::testbed());
        pb.assign(nic(), DomId(3)).unwrap();
        pb.config_read(DomId(3), nic(), 0x00).unwrap();
        let ops = pb.seal();
        assert_eq!(ops, 1);
        assert!(pb.is_sealed());
        // "there is no further communication between the PCI split driver
        // frontends and backends under normal operating conditions".
        assert!(matches!(
            pb.config_read(DomId(3), nic(), 0x00),
            Err(PciError::Sealed)
        ));
        assert!(matches!(pb.assign(sata(), DomId(4)), Err(PciError::Sealed)));
    }
}
