//! The xenbus handshake: how split-driver halves find each other (§4.5.1).
//!
//! "The initial negotiation is done via XenStore: a frontend driver
//! allocates a shared page of memory and passes a grant reference and an
//! event channel to the backend driver. The backend driver watches for
//! this entry and establishes communication with the frontend when it
//! appears."
//!
//! This module implements that negotiation generically for any split
//! device class ([`DeviceKind`]), against the real [`XenStore`] and
//! [`Hypervisor`] models, so the control path of the paper — toolstack
//! wiring, grant passing, event-channel binding, and the
//! renegotiation-after-microreboot of Figure 6.3 — is exercised end to
//! end.

use xoar_hypervisor::grant::{GrantAccess, GrantRef};
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, Hypercall, Hypervisor};
use xoar_xenstore::XenStore;

use crate::ring::{RingHub, RingId};

/// The xenbus connection states, as encoded in the `state` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum XenbusState {
    /// Initial state.
    Unknown = 0,
    /// Device being set up by the toolstack.
    Initialising = 1,
    /// Backend waiting for frontend details.
    InitWait = 2,
    /// Frontend has published ring-ref and event channel.
    Initialised = 3,
    /// Data path live.
    Connected = 4,
    /// Shutting down.
    Closing = 5,
    /// Torn down.
    Closed = 6,
}

impl XenbusState {
    /// Parses the decimal wire encoding.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "0" => Some(XenbusState::Unknown),
            "1" => Some(XenbusState::Initialising),
            "2" => Some(XenbusState::InitWait),
            "3" => Some(XenbusState::Initialised),
            "4" => Some(XenbusState::Connected),
            "5" => Some(XenbusState::Closing),
            "6" => Some(XenbusState::Closed),
            _ => None,
        }
    }

    /// The decimal wire encoding.
    pub fn encode(self) -> String {
        (self as u8).to_string()
    }
}

/// Split-device classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Paravirtual network interface.
    Vif,
    /// Paravirtual block device.
    Vbd,
    /// Paravirtual console.
    Console,
    /// Virtualised PCI configuration space (§5.3).
    Pci,
}

impl DeviceKind {
    /// The XenStore directory name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Vif => "vif",
            DeviceKind::Vbd => "vbd",
            DeviceKind::Console => "console",
            DeviceKind::Pci => "pci",
        }
    }
}

/// The frontend directory for a device.
pub fn frontend_path(guest: DomId, kind: DeviceKind, index: u32) -> String {
    format!("/local/domain/{}/device/{}/{}", guest.0, kind.name(), index)
}

/// The backend directory for a device.
pub fn backend_path(backend: DomId, kind: DeviceKind, guest: DomId, index: u32) -> String {
    format!(
        "/local/domain/{}/backend/{}/{}/{}",
        backend.0,
        kind.name(),
        guest.0,
        index
    )
}

/// A fully negotiated split-device connection.
#[derive(Debug, Clone, Copy)]
pub struct Connection {
    /// Guest (frontend) domain.
    pub guest: DomId,
    /// Backend (driver) domain.
    pub backend: DomId,
    /// Device class.
    pub kind: DeviceKind,
    /// Device index.
    pub index: u32,
    /// The shared ring rendezvous.
    pub ring: RingId,
    /// Frontend's event-channel port.
    pub front_port: u32,
    /// Backend's event-channel port.
    pub back_port: u32,
}

/// Errors surfaced during negotiation.
#[derive(Debug)]
pub enum XenbusError {
    /// A hypervisor operation failed (privilege, grant, event channel).
    Hv(xoar_hypervisor::HvError),
    /// A XenStore operation failed.
    Xs(xoar_xenstore::XsError),
    /// The peer published malformed negotiation data.
    Protocol(String),
}

impl std::fmt::Display for XenbusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XenbusError::Hv(e) => write!(f, "hypervisor: {e}"),
            XenbusError::Xs(e) => write!(f, "xenstore: {e}"),
            XenbusError::Protocol(s) => write!(f, "protocol: {s}"),
        }
    }
}

impl std::error::Error for XenbusError {}

impl From<xoar_hypervisor::HvError> for XenbusError {
    fn from(e: xoar_hypervisor::HvError) -> Self {
        XenbusError::Hv(e)
    }
}

impl From<xoar_xenstore::XsError> for XenbusError {
    fn from(e: xoar_xenstore::XsError) -> Self {
        XenbusError::Xs(e)
    }
}

/// Result alias for xenbus operations.
pub type XbResult<T> = Result<T, XenbusError>;

/// Step 1 — toolstack wiring (§5.4): "During VM creation, the Toolstack
/// links a guest VM to the selected driver domain by writing the
/// appropriate frontend and backend XenStore entries."
pub fn toolstack_link(
    xs: &mut XenStore,
    actor: DomId,
    guest: DomId,
    backend: DomId,
    kind: DeviceKind,
    index: u32,
) -> XbResult<()> {
    let fp = frontend_path(guest, kind, index);
    let bp = backend_path(backend, kind, guest, index);
    xs.write_str(actor, &format!("{fp}/backend"), &bp)?;
    xs.write_str(actor, &format!("{fp}/backend-id"), &backend.0.to_string())?;
    xs.write_str(
        actor,
        &format!("{fp}/state"),
        &XenbusState::Initialising.encode(),
    )?;
    xs.write_str(actor, &format!("{bp}/frontend"), &fp)?;
    xs.write_str(actor, &format!("{bp}/frontend-id"), &guest.0.to_string())?;
    xs.write_str(
        actor,
        &format!("{bp}/state"),
        &XenbusState::InitWait.encode(),
    )?;
    // Hand the directories (and the keys just written) to their owners so
    // the drivers can negotiate without privileged connections.
    let mut fperms = xoar_xenstore::NodePerms::owner_only(guest);
    fperms.set_entry(backend, xoar_xenstore::PermLevel::Read);
    for node in [
        fp.clone(),
        format!("{fp}/backend"),
        format!("{fp}/backend-id"),
        format!("{fp}/state"),
    ] {
        xs.set_perms(actor, &node, fperms.clone())?;
    }
    let mut bperms = xoar_xenstore::NodePerms::owner_only(backend);
    bperms.set_entry(guest, xoar_xenstore::PermLevel::Read);
    for node in [
        bp.clone(),
        format!("{bp}/frontend"),
        format!("{bp}/frontend-id"),
        format!("{bp}/state"),
    ] {
        xs.set_perms(actor, &node, bperms.clone())?;
    }
    Ok(())
}

/// Step 2 — frontend initialisation: allocate the shared page, grant it
/// to the backend, allocate an unbound event channel, and publish
/// `ring-ref` / `event-channel` / `state = Initialised`.
pub fn frontend_init<Req, Resp>(
    hv: &mut Hypervisor,
    xs: &mut XenStore,
    hub: &mut RingHub<Req, Resp>,
    guest: DomId,
    kind: DeviceKind,
    index: u32,
    ring_pfn: Pfn,
) -> XbResult<(GrantRef, u32)> {
    let fp = frontend_path(guest, kind, index);
    let backend_id: u32 = xs
        .read_str(guest, &format!("{fp}/backend-id"))?
        .parse()
        .map_err(|_| XenbusError::Protocol("bad backend-id".into()))?;
    let backend = DomId(backend_id);
    let gref = hv
        .hypercall(
            guest,
            Hypercall::GnttabGrantAccess {
                grantee: backend,
                pfn: ring_pfn,
                access: GrantAccess::ReadWrite,
            },
        )?
        .grant_ref()?;
    let port = hv
        .hypercall(guest, Hypercall::EvtchnAllocUnbound { remote: backend })?
        .port()?;
    hub.create(RingId {
        granter: guest,
        gref,
    });
    xs.write_str(guest, &format!("{fp}/ring-ref"), &gref.0.to_string())?;
    xs.write_str(guest, &format!("{fp}/event-channel"), &port.to_string())?;
    xs.write_str(
        guest,
        &format!("{fp}/state"),
        &XenbusState::Initialised.encode(),
    )?;
    // The backend must be able to read the published rendezvous details.
    let mut perms = xoar_xenstore::NodePerms::owner_only(guest);
    perms.set_entry(backend, xoar_xenstore::PermLevel::Read);
    for node in [format!("{fp}/ring-ref"), format!("{fp}/event-channel")] {
        xs.set_perms(guest, &node, perms.clone())?;
    }
    Ok((gref, port))
}

/// Step 3 — backend accept: read the frontend's published details, map
/// the grant, bind the event channel, and move both ends to `Connected`.
pub fn backend_accept(
    hv: &mut Hypervisor,
    xs: &mut XenStore,
    backend: DomId,
    kind: DeviceKind,
    guest: DomId,
    index: u32,
) -> XbResult<Connection> {
    let bp = backend_path(backend, kind, guest, index);
    let fp = xs.read_str(backend, &format!("{bp}/frontend"))?;
    let state = xs.read_str(backend, &format!("{fp}/state"))?;
    if XenbusState::parse(&state) != Some(XenbusState::Initialised) {
        return Err(XenbusError::Protocol(format!(
            "frontend not initialised (state {state})"
        )));
    }
    let gref = GrantRef(
        xs.read_str(backend, &format!("{fp}/ring-ref"))?
            .parse()
            .map_err(|_| XenbusError::Protocol("bad ring-ref".into()))?,
    );
    let front_port: u32 = xs
        .read_str(backend, &format!("{fp}/event-channel"))?
        .parse()
        .map_err(|_| XenbusError::Protocol("bad event-channel".into()))?;
    // Map the grant — this is the audited capability use.
    hv.hypercall(
        backend,
        Hypercall::GnttabMapGrantRef {
            granter: guest,
            gref,
        },
    )?;
    let back_port = hv
        .hypercall(
            backend,
            Hypercall::EvtchnBindInterdomain {
                remote: guest,
                remote_port: front_port,
            },
        )?
        .port()?;
    xs.write_str(
        backend,
        &format!("{bp}/state"),
        &XenbusState::Connected.encode(),
    )?;
    // Frontend observes Connected and follows.
    xs.write_str(
        guest,
        &format!("{fp}/state"),
        &XenbusState::Connected.encode(),
    )?;
    Ok(Connection {
        guest,
        backend,
        kind,
        index,
        ring: RingId {
            granter: guest,
            gref,
        },
        front_port,
        back_port,
    })
}

/// Performs the complete three-step negotiation.
pub fn negotiate<Req, Resp>(
    hv: &mut Hypervisor,
    xs: &mut XenStore,
    hub: &mut RingHub<Req, Resp>,
    actor: DomId,
    guest: DomId,
    backend: DomId,
    kind: DeviceKind,
    index: u32,
    ring_pfn: Pfn,
) -> XbResult<Connection> {
    toolstack_link(xs, actor, guest, backend, kind, index)?;
    frontend_init(hv, xs, hub, guest, kind, index, ring_pfn)?;
    backend_accept(hv, xs, backend, kind, guest, index)
}

/// Tears down a connection (backend restart or device removal): detaches
/// the ring, closes the ports, and resets the xenbus states so a fresh
/// negotiation can run.
pub fn teardown<Req, Resp>(
    hv: &mut Hypervisor,
    xs: &mut XenStore,
    hub: &mut RingHub<Req, Resp>,
    conn: &Connection,
) -> XbResult<usize> {
    let lost = match hub.get_mut(conn.ring) {
        Ok(ring) => ring.detach(),
        Err(_) => 0,
    };
    hub.destroy(conn.ring);
    let _ = hv.hypercall(
        conn.guest,
        Hypercall::EvtchnClose {
            port: conn.front_port,
        },
    );
    let _ = hv.hypercall(
        conn.guest,
        Hypercall::GnttabEndAccess {
            gref: conn.ring.gref,
        },
    );
    let fp = frontend_path(conn.guest, conn.kind, conn.index);
    let bp = backend_path(conn.backend, conn.kind, conn.guest, conn.index);
    let _ = xs.write_str(
        conn.guest,
        &format!("{fp}/state"),
        &XenbusState::Closed.encode(),
    );
    let _ = xs.write_str(
        conn.backend,
        &format!("{bp}/state"),
        &XenbusState::InitWait.encode(),
    );
    Ok(lost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_hypervisor::domain::DomainRole;
    use xoar_hypervisor::PrivilegeSet;

    /// A platform with dom0 control VM, one backend shard, one guest.
    fn setup() -> (Hypervisor, XenStore, RingHub<u32, u32>, DomId, DomId, DomId) {
        let mut hv = Hypervisor::with_default_host();
        let dom0 = hv
            .create_boot_domain("dom0", DomainRole::ControlVm, 512, PrivilegeSet::dom0())
            .unwrap();
        let backend = hv
            .create_boot_domain("netback", DomainRole::Shard, 128, PrivilegeSet::default())
            .unwrap();
        // The backend needs to map grants.
        hv.hypercall(
            dom0,
            Hypercall::DomctlPermitHypercall {
                target: backend,
                id: xoar_hypervisor::HypercallId::GnttabMapGrantRef,
            },
        )
        .unwrap();
        let guest = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCreateDomain {
                    name: "guest".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        hv.hypercall(
            dom0,
            Hypercall::MemoryPopulate {
                target: guest,
                frames: 16,
            },
        )
        .unwrap();
        hv.hypercall(dom0, Hypercall::DomctlUnpauseDomain { target: guest })
            .unwrap();
        // Delegate the backend shard (and dom0 for xenstore) to the guest.
        hv.domain_mut(guest)
            .unwrap()
            .delegated_shards
            .insert(backend);
        hv.domain_mut(guest).unwrap().delegated_shards.insert(dom0);

        let mut xs = XenStore::new();
        xs.set_privileged(dom0, true);
        xs.create_domain_home(dom0, guest).unwrap();
        xs.create_domain_home(dom0, backend).unwrap();
        (hv, xs, RingHub::new(), dom0, backend, guest)
    }

    #[test]
    fn full_negotiation_connects() {
        let (mut hv, mut xs, mut hub, dom0, backend, guest) = setup();
        let conn = negotiate(
            &mut hv,
            &mut xs,
            &mut hub,
            dom0,
            guest,
            backend,
            DeviceKind::Vif,
            0,
            Pfn(1),
        )
        .unwrap();
        assert_eq!(conn.guest, guest);
        assert_eq!(conn.backend, backend);
        // Both state keys read Connected.
        let fp = frontend_path(guest, DeviceKind::Vif, 0);
        let bp = backend_path(backend, DeviceKind::Vif, guest, 0);
        assert_eq!(xs.read_str(dom0, &format!("{fp}/state")).unwrap(), "4");
        assert_eq!(xs.read_str(dom0, &format!("{bp}/state")).unwrap(), "4");
        // Ring exists and event channel is live in both directions.
        assert!(hub.get(conn.ring).unwrap().is_attached());
        hv.hypercall(
            guest,
            Hypercall::EvtchnSend {
                port: conn.front_port,
            },
        )
        .unwrap();
        assert!(hv.poll_event(backend).is_some());
    }

    #[test]
    fn backend_cannot_accept_before_frontend_init() {
        let (mut hv, mut xs, _hub, dom0, backend, guest) = setup();
        toolstack_link(&mut xs, dom0, guest, backend, DeviceKind::Vif, 0).unwrap();
        let err = backend_accept(&mut hv, &mut xs, backend, DeviceKind::Vif, guest, 0);
        assert!(matches!(err, Err(XenbusError::Protocol(_))));
    }

    #[test]
    fn negotiation_fails_without_delegation() {
        let (mut hv, mut xs, mut hub, dom0, backend, guest) = setup();
        // Revoke delegation: the IVC policy must refuse the grant.
        hv.domain_mut(guest)
            .unwrap()
            .delegated_shards
            .remove(&backend);
        let err = negotiate(
            &mut hv,
            &mut xs,
            &mut hub,
            dom0,
            guest,
            backend,
            DeviceKind::Vif,
            0,
            Pfn(1),
        );
        assert!(matches!(err, Err(XenbusError::Hv(_))));
    }

    #[test]
    fn teardown_enables_renegotiation() {
        let (mut hv, mut xs, mut hub, dom0, backend, guest) = setup();
        let conn = negotiate(
            &mut hv,
            &mut xs,
            &mut hub,
            dom0,
            guest,
            backend,
            DeviceKind::Vif,
            0,
            Pfn(1),
        )
        .unwrap();
        hub.get_mut(conn.ring).unwrap().push_request(42).unwrap();
        let lost = teardown(&mut hv, &mut xs, &mut hub, &conn).unwrap();
        assert_eq!(lost, 1, "in-flight request dropped on teardown");
        // Renegotiate: frontend re-publishes, backend re-accepts.
        frontend_init(
            &mut hv,
            &mut xs,
            &mut hub,
            guest,
            DeviceKind::Vif,
            0,
            Pfn(2),
        )
        .unwrap();
        let conn2 = backend_accept(&mut hv, &mut xs, backend, DeviceKind::Vif, guest, 0).unwrap();
        assert_ne!(conn.ring.gref, conn2.ring.gref, "fresh grant after restart");
        assert!(hub.get(conn2.ring).unwrap().is_attached());
    }

    #[test]
    fn state_round_trip() {
        for s in [
            XenbusState::Unknown,
            XenbusState::Initialising,
            XenbusState::InitWait,
            XenbusState::Initialised,
            XenbusState::Connected,
            XenbusState::Closing,
            XenbusState::Closed,
        ] {
            assert_eq!(XenbusState::parse(&s.encode()), Some(s));
        }
        assert_eq!(XenbusState::parse("7"), None);
        assert_eq!(XenbusState::parse("x"), None);
    }

    #[test]
    fn paths_follow_convention() {
        assert_eq!(
            frontend_path(DomId(5), DeviceKind::Vif, 0),
            "/local/domain/5/device/vif/0"
        );
        assert_eq!(
            backend_path(DomId(2), DeviceKind::Vbd, DomId(5), 1),
            "/local/domain/2/backend/vbd/5/1"
        );
    }
}
