//! The virtual console: Console Manager / xenconsoled (§5.5).
//!
//! Xen keeps the serial port for itself and shares the physical console
//! with one domain over shared memory and a dedicated VIRQ; that domain
//! runs a user-space daemon (`xenconsoled`) which exposes *virtual*
//! consoles to every other guest over per-guest rings.
//!
//! In Xoar the daemon lives in its own deprivileged shard — the Console
//! Manager — which boots before any other Linux VM and, notably, "modifies
//! the boot process to skip device enumeration" so it does not steal PCI
//! devices from PCIBack (§5.5). That boot shortcut is why Xoar reaches a
//! login prompt 1.5× faster (Table 6.2); the boot model in `xoar-core`
//! consumes [`ConsoleManager::SKIPS_PCI_ENUMERATION`].

use xoar_hypervisor::event::VirqKind;
use xoar_hypervisor::fasthash::FastMap;
use xoar_hypervisor::{DomId, Hypervisor};

use crate::hw::SerialModel;

/// A per-guest virtual console: output log plus pending input.
#[derive(Debug, Default)]
struct VirtualConsole {
    output: Vec<u8>,
    input: Vec<u8>,
}

/// The Console Manager service.
#[derive(Debug)]
pub struct ConsoleManager {
    /// The hosting domain.
    pub dom: DomId,
    /// The physical serial port (owned by Xen; shared with this shard).
    pub serial: SerialModel,
    consoles: FastMap<DomId, VirtualConsole>,
    /// Bytes relayed to the physical serial console.
    physical_bytes: u64,
}

impl ConsoleManager {
    /// The Console Manager's modified kernel skips PCI enumeration and
    /// jumps straight to I/O-port initialisation (§5.5).
    pub const SKIPS_PCI_ENUMERATION: bool = true;

    /// Creates the manager hosted in `dom`.
    pub fn new(dom: DomId) -> Self {
        ConsoleManager {
            dom,
            serial: SerialModel::com1(),
            consoles: FastMap::default(),
            physical_bytes: 0,
        }
    }

    /// Registers a guest's virtual console.
    pub fn register_guest(&mut self, guest: DomId) {
        self.consoles.entry(guest).or_default();
    }

    /// Removes a guest.
    pub fn remove_guest(&mut self, guest: DomId) {
        self.consoles.remove(&guest);
    }

    /// One daemon pass: drain every registered guest's console ring from
    /// the hypervisor into the virtual console logs. Returns the simulated
    /// serial time consumed (only Dom0/boot output goes to the physical
    /// port; guest output just lands in logs).
    pub fn process(&mut self, hv: &mut Hypervisor) -> u64 {
        let guests: Vec<DomId> = self.consoles.keys().copied().collect();
        let mut serial_ns = 0;
        for g in guests {
            let data = hv.console_take(g);
            if data.is_empty() {
                continue;
            }
            if g == self.dom {
                serial_ns += self.serial.tx_time_ns(data.len());
                self.physical_bytes += data.len() as u64;
            }
            self.consoles
                .get_mut(&g)
                .expect("registered")
                .output
                .extend(data);
        }
        serial_ns
    }

    /// Reads (without consuming) a guest's console log.
    pub fn log_of(&self, guest: DomId) -> &[u8] {
        self.consoles
            .get(&guest)
            .map(|c| c.output.as_slice())
            .unwrap_or(&[])
    }

    /// Queues operator input for a guest and raises its console VIRQ.
    pub fn send_input(&mut self, hv: &mut Hypervisor, guest: DomId, data: &[u8]) -> bool {
        let Some(c) = self.consoles.get_mut(&guest) else {
            return false;
        };
        c.input.extend_from_slice(data);
        hv.raise_virq(guest, VirqKind::Console)
    }

    /// Guest-side: takes pending input.
    pub fn take_input(&mut self, guest: DomId) -> Vec<u8> {
        self.consoles
            .get_mut(&guest)
            .map(|c| std::mem::take(&mut c.input))
            .unwrap_or_default()
    }

    /// Bytes relayed to the physical serial port.
    pub fn physical_bytes(&self) -> u64 {
        self.physical_bytes
    }

    /// Number of registered virtual consoles.
    pub fn guest_count(&self) -> usize {
        self.consoles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_hypervisor::domain::DomainRole;
    use xoar_hypervisor::{Hypercall, PrivilegeSet};

    fn setup() -> (Hypervisor, ConsoleManager, DomId) {
        let mut hv = Hypervisor::with_default_host();
        let cm_dom = hv
            .create_boot_domain(
                "console-mgr",
                DomainRole::Shard,
                128,
                PrivilegeSet::default(),
            )
            .unwrap();
        let guest = hv
            .create_boot_domain("guest", DomainRole::Guest, 64, PrivilegeSet::default())
            .unwrap();
        let mut cm = ConsoleManager::new(cm_dom);
        cm.register_guest(cm_dom);
        cm.register_guest(guest);
        (hv, cm, guest)
    }

    #[test]
    fn guest_output_lands_in_log() {
        let (mut hv, mut cm, guest) = setup();
        hv.hypercall(
            guest,
            Hypercall::ConsoleWrite {
                data: b"booting...\n".to_vec(),
            },
        )
        .unwrap();
        let serial_ns = cm.process(&mut hv);
        assert_eq!(serial_ns, 0, "guest output does not hit the physical port");
        assert_eq!(cm.log_of(guest), b"booting...\n");
        // Idempotent: ring drained.
        cm.process(&mut hv);
        assert_eq!(cm.log_of(guest), b"booting...\n");
    }

    #[test]
    fn own_output_costs_serial_time() {
        let (mut hv, mut cm, _) = setup();
        hv.hypercall(
            cm.dom,
            Hypercall::ConsoleWrite {
                data: vec![b'x'; 100],
            },
        )
        .unwrap();
        let serial_ns = cm.process(&mut hv);
        assert!(serial_ns > 0);
        assert_eq!(cm.physical_bytes(), 100);
    }

    #[test]
    fn input_raises_console_virq() {
        let (mut hv, mut cm, guest) = setup();
        let port = hv
            .hypercall(
                guest,
                Hypercall::EvtchnBindVirq {
                    virq: VirqKind::Console,
                },
            )
            .unwrap()
            .port()
            .unwrap();
        assert!(cm.send_input(&mut hv, guest, b"ls\n"));
        assert_eq!(hv.poll_event(guest).unwrap().port, port);
        assert_eq!(cm.take_input(guest), b"ls\n");
        assert!(cm.take_input(guest).is_empty());
    }

    #[test]
    fn unregistered_guest_refused() {
        let (mut hv, mut cm, _) = setup();
        assert!(!cm.send_input(&mut hv, DomId(99), b"x"));
        assert_eq!(cm.log_of(DomId(99)), b"");
    }

    #[test]
    fn remove_guest_drops_console() {
        let (mut hv, mut cm, guest) = setup();
        cm.remove_guest(guest);
        assert_eq!(cm.guest_count(), 1);
        hv.hypercall(
            guest,
            Hypercall::ConsoleWrite {
                data: b"late".to_vec(),
            },
        )
        .unwrap();
        cm.process(&mut hv);
        assert_eq!(cm.log_of(guest), b"");
    }
}
