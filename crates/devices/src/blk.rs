//! The paravirtual block path: BlkFront ↔ BlkBack (§5.4).
//!
//! BlkBack is a driver domain owning one physical disk controller via PCI
//! passthrough. It hosts the real device driver (modelled by
//! [`DiskModel`]), exposes abstract block devices to guests over I/O
//! rings, and — because Xoar separates it from the Toolstack — runs "a
//! lightweight daemon that acts as a proxy for requests of the
//! Toolstacks" to mount and manage the disk images that back guest VMs
//! ([`ImageStore`]).
//!
//! Requests are GSO-style batched: one ring request covers up to
//! [`MAX_SEGMENTS_BYTES`] of contiguous I/O, matching how real blkif
//! requests carry up to 11 segments.

use std::collections::HashMap;

use crate::hw::DiskModel;
use crate::ring::{RingError, RingHub};
use crate::xenbus::Connection;

use xoar_hypervisor::memory::PageRef;
use xoar_hypervisor::DomId;

/// Bytes per virtual sector.
pub const SECTOR_SIZE: u64 = 512;

/// Maximum bytes one ring request may cover (11 segments × 4 KiB in real
/// blkif; rounded here).
pub const MAX_SEGMENTS_BYTES: u64 = 45_056;

/// Block operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkOp {
    /// Read sectors.
    Read,
    /// Write sectors.
    Write,
    /// Barrier/flush.
    Flush,
}

/// A frontend block request. Writes may carry the page body as a shared
/// [`PageRef`] handle; the backend stores the handle — never a byte copy.
#[derive(Debug, Clone)]
pub struct BlkRequest {
    /// Frontend-chosen correlation ID.
    pub id: u64,
    /// Operation.
    pub op: BlkOp,
    /// Starting sector.
    pub sector: u64,
    /// Number of sectors.
    pub count: u64,
    /// Shared handle on the written page body (writes only).
    pub payload: Option<PageRef>,
}

impl BlkRequest {
    /// Bytes covered by this request.
    pub fn bytes(&self) -> u64 {
        self.count * SECTOR_SIZE
    }
}

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkStatus {
    /// Success.
    Ok,
    /// Malformed or out-of-range request (backend validation).
    Error,
}

/// A backend block response. Reads of sectors previously written with a
/// page payload return the stored body as a shared handle.
#[derive(Debug, Clone)]
pub struct BlkResponse {
    /// Correlates with [`BlkRequest::id`].
    pub id: u64,
    /// Outcome.
    pub status: BlkStatus,
    /// Shared handle on the read page body (reads of stored pages only).
    pub payload: Option<PageRef>,
}

/// The ring hub type for the block protocol.
pub type BlkRingHub = RingHub<BlkRequest, BlkResponse>;

/// A disk image managed by BlkBack's proxy daemon.
#[derive(Debug, Clone, Default)]
pub struct DiskImage {
    /// Image name (e.g. `guest-a-root.img`).
    pub name: String,
    /// Size in sectors.
    pub sectors: u64,
    /// Whether a guest currently has it mounted.
    pub mounted_by: Option<DomId>,
    /// Copy-on-write readers (clones sharing this golden image).
    pub cow_mounts: u64,
    /// Page bodies written with a payload, keyed by starting sector.
    /// Values are shared handles — storing a page is a refcount move.
    pages: HashMap<u64, PageRef>,
}

/// The image store: BlkBack's proxy daemon for toolstack requests (§5.4).
///
/// "After splitting BlkBack and the Toolstack, the disk images need to be
/// mounted in BlkBack. … In Xoar, BlkBack runs a lightweight daemon that
/// acts as a proxy for requests of the Toolstacks."
#[derive(Debug, Default)]
pub struct ImageStore {
    images: HashMap<String, DiskImage>,
}

impl ImageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Toolstack proxy request: create a backing image.
    pub fn create_image(&mut self, name: &str, bytes: u64) -> Result<(), String> {
        if self.images.contains_key(name) {
            return Err(format!("image {name} exists"));
        }
        self.images.insert(
            name.to_string(),
            DiskImage {
                name: name.to_string(),
                sectors: bytes.div_ceil(SECTOR_SIZE),
                mounted_by: None,
                cow_mounts: 0,
                pages: HashMap::new(),
            },
        );
        Ok(())
    }

    /// Toolstack proxy request: delete an image (must be unmounted).
    pub fn delete_image(&mut self, name: &str) -> Result<(), String> {
        match self.images.get(name) {
            None => Err(format!("no image {name}")),
            Some(img) if img.mounted_by.is_some() => Err(format!("image {name} is mounted")),
            Some(img) if img.cow_mounts > 0 => Err(format!("image {name} has CoW readers")),
            Some(_) => {
                self.images.remove(name);
                Ok(())
            }
        }
    }

    /// Mounts an image for a guest (at connection time).
    pub fn mount(&mut self, name: &str, guest: DomId) -> Result<u64, String> {
        let img = self
            .images
            .get_mut(name)
            .ok_or(format!("no image {name}"))?;
        if let Some(d) = img.mounted_by {
            return Err(format!("image {name} already mounted by {d}"));
        }
        img.mounted_by = Some(guest);
        Ok(img.sectors)
    }

    /// Unmounts an image.
    pub fn unmount(&mut self, name: &str) {
        if let Some(img) = self.images.get_mut(name) {
            img.mounted_by = None;
        }
    }

    /// Mounts an image copy-on-write for a clone: the exclusive mount
    /// (the template's) stays in place and any number of CoW readers
    /// share the golden bytes until their first block write.
    pub fn mount_cow(&mut self, name: &str) -> Result<u64, String> {
        let img = self
            .images
            .get_mut(name)
            .ok_or(format!("no image {name}"))?;
        img.cow_mounts += 1;
        Ok(img.sectors)
    }

    /// Drops one CoW reader of an image.
    pub fn unmount_cow(&mut self, name: &str) {
        if let Some(img) = self.images.get_mut(name) {
            img.cow_mounts = img.cow_mounts.saturating_sub(1);
        }
    }

    /// Stores a written page body at `sector` of image `name`. The handle
    /// is moved in; no bytes are copied.
    pub fn store_page(&mut self, name: &str, sector: u64, page: PageRef) {
        if let Some(img) = self.images.get_mut(name) {
            img.pages.insert(sector, page);
        }
    }

    /// Returns the shared handle stored at `sector` of image `name`.
    pub fn read_page(&self, name: &str, sector: u64) -> Option<PageRef> {
        self.images
            .get(name)
            .and_then(|i| i.pages.get(&sector).cloned())
    }

    /// Lists image names.
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.images.keys().cloned().collect();
        v.sort();
        v
    }
}

/// One guest's attachment to BlkBack.
#[derive(Debug)]
struct Attachment {
    conn: Connection,
    image: String,
    sectors: u64,
    /// Last sector touched (sequential-access detection).
    last_sector: Option<u64>,
    /// Whether this attachment is a CoW reader of a shared golden image.
    cow: bool,
}

/// Statistics from one processing pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BlkBackStats {
    /// Requests completed.
    pub completed: u64,
    /// Requests failed validation.
    pub errors: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total simulated service time (ns).
    pub service_ns: u64,
}

/// The block driver domain.
#[derive(Debug)]
pub struct BlkBack {
    /// The hosting domain.
    pub dom: DomId,
    /// The physical disk behind this backend.
    pub disk: DiskModel,
    /// The proxy-daemon image store.
    pub images: ImageStore,
    attachments: Vec<Attachment>,
    lifetime: BlkBackStats,
}

impl BlkBack {
    /// Creates a backend for `dom` driving `disk`.
    pub fn new(dom: DomId, disk: DiskModel) -> Self {
        BlkBack {
            dom,
            disk,
            images: ImageStore::new(),
            attachments: Vec::new(),
            lifetime: BlkBackStats::default(),
        }
    }

    /// Attaches a negotiated connection backed by `image`.
    pub fn attach(&mut self, conn: Connection, image: &str) -> Result<(), String> {
        let sectors = self.images.mount(image, conn.guest)?;
        self.attachments.push(Attachment {
            conn,
            image: image.to_string(),
            sectors,
            last_sector: None,
            cow: false,
        });
        Ok(())
    }

    /// Attaches a clone as a CoW reader of a shared golden image.
    pub fn attach_cow(&mut self, conn: Connection, image: &str) -> Result<(), String> {
        let sectors = self.images.mount_cow(image)?;
        self.attachments.push(Attachment {
            conn,
            image: image.to_string(),
            sectors,
            last_sector: None,
            cow: true,
        });
        Ok(())
    }

    /// Detaches the connection of `guest` (device removal / restart).
    pub fn detach_guest(&mut self, guest: DomId) -> Option<Connection> {
        let idx = self
            .attachments
            .iter()
            .position(|a| a.conn.guest == guest)?;
        let a = self.attachments.remove(idx);
        if a.cow {
            self.images.unmount_cow(&a.image);
        } else {
            self.images.unmount(&a.image);
        }
        Some(a.conn)
    }

    /// All current connections.
    pub fn connections(&self) -> Vec<Connection> {
        self.attachments.iter().map(|a| a.conn).collect()
    }

    /// Iterates current connections without allocating.
    pub fn conn_iter(&self) -> impl Iterator<Item = &Connection> + '_ {
        self.attachments.iter().map(|a| &a.conn)
    }

    /// Services every attached ring: pops requests, validates them against
    /// the mounted image bounds, charges disk time, pushes responses.
    ///
    /// Returns the statistics of this pass; the caller (simulator) decides
    /// how to advance time and when to signal event channels.
    pub fn process(&mut self, hub: &mut BlkRingHub) -> BlkBackStats {
        let mut stats = BlkBackStats::default();
        for a in &mut self.attachments {
            let ring = match hub.get_mut(a.conn.ring) {
                Ok(r) => r,
                Err(_) => continue,
            };
            while let Some(req) = ring.pop_request() {
                let end = req.sector.saturating_add(req.count);
                let valid = match req.op {
                    BlkOp::Flush => req.count == 0,
                    _ => req.count > 0 && req.bytes() <= MAX_SEGMENTS_BYTES && end <= a.sectors,
                };
                let mut resp_payload = None;
                let status = if valid {
                    let sequential = a.last_sector == Some(req.sector);
                    let bytes = req.bytes() as usize;
                    let t = match req.op {
                        BlkOp::Read => {
                            self.disk.record_read(bytes);
                            resp_payload = self.images.read_page(&a.image, req.sector);
                            self.disk.service_time_ns(bytes, sequential)
                        }
                        BlkOp::Write => {
                            self.disk.record_write(bytes);
                            if let Some(page) = req.payload {
                                // Store the shared handle — the write's
                                // page body crosses the backend by
                                // refcount move, not by copy.
                                self.images.store_page(&a.image, req.sector, page);
                            }
                            self.disk.service_time_ns(bytes, sequential)
                        }
                        BlkOp::Flush => self.disk.service_time_ns(0, false),
                    };
                    a.last_sector = Some(end);
                    stats.bytes += bytes as u64;
                    stats.service_ns += t;
                    stats.completed += 1;
                    BlkStatus::Ok
                } else {
                    stats.errors += 1;
                    BlkStatus::Error
                };
                if ring
                    .push_response(BlkResponse {
                        id: req.id,
                        status,
                        payload: resp_payload,
                    })
                    .is_err()
                {
                    break;
                }
            }
        }
        self.lifetime.completed += stats.completed;
        self.lifetime.errors += stats.errors;
        self.lifetime.bytes += stats.bytes;
        self.lifetime.service_ns += stats.service_ns;
        stats
    }

    /// Lifetime statistics.
    pub fn lifetime_stats(&self) -> BlkBackStats {
        self.lifetime
    }
}

/// The guest-side block frontend.
#[derive(Debug)]
pub struct BlkFront {
    /// The negotiated connection.
    pub conn: Connection,
    next_id: u64,
    outstanding: HashMap<u64, BlkRequest>,
}

impl BlkFront {
    /// Creates a frontend over a negotiated connection.
    pub fn new(conn: Connection) -> Self {
        BlkFront {
            conn,
            next_id: 1,
            outstanding: HashMap::with_capacity(crate::ring::DEFAULT_RING_SLOTS),
        }
    }

    /// Submits a request; returns its correlation ID, or the ring error if
    /// the ring is full (caller backs off) or detached (caller
    /// renegotiates).
    pub fn submit(
        &mut self,
        hub: &mut BlkRingHub,
        op: BlkOp,
        sector: u64,
        count: u64,
    ) -> Result<u64, RingError> {
        self.submit_with(hub, op, sector, count, None)
    }

    /// Submits a write whose page body travels as a shared handle; `count`
    /// is derived from the page size. The backend stores the handle so a
    /// later read returns the same body without any byte copy.
    pub fn submit_write_page(
        &mut self,
        hub: &mut BlkRingHub,
        sector: u64,
        page: PageRef,
    ) -> Result<u64, RingError> {
        let count = (page.len() as u64).div_ceil(SECTOR_SIZE);
        self.submit_with(hub, BlkOp::Write, sector, count, Some(page))
    }

    /// Submits a batch of requests in one ring operation. All-or-nothing:
    /// if the ring lacks room for the whole batch, nothing is queued, no
    /// IDs are consumed, and `RingError::Full` is returned. On success the
    /// returned IDs are contiguous and in batch order.
    pub fn submit_batch(
        &mut self,
        hub: &mut BlkRingHub,
        ops: &[(BlkOp, u64, u64)],
    ) -> Result<Vec<u64>, RingError> {
        let first = self.next_id;
        let reqs: Vec<BlkRequest> = ops
            .iter()
            .enumerate()
            .map(|(i, &(op, sector, count))| BlkRequest {
                id: first + i as u64,
                op,
                sector,
                count,
                payload: None,
            })
            .collect();
        hub.get_mut(self.conn.ring)?.push_requests(reqs.clone())?;
        self.next_id += ops.len() as u64;
        let mut ids = Vec::with_capacity(ops.len());
        for req in reqs {
            ids.push(req.id);
            self.outstanding.insert(req.id, req);
        }
        Ok(ids)
    }

    fn submit_with(
        &mut self,
        hub: &mut BlkRingHub,
        op: BlkOp,
        sector: u64,
        count: u64,
        payload: Option<PageRef>,
    ) -> Result<u64, RingError> {
        let id = self.next_id;
        let req = BlkRequest {
            id,
            op,
            sector,
            count,
            payload,
        };
        hub.get_mut(self.conn.ring)?.push_request(req.clone())?;
        self.next_id += 1;
        self.outstanding.insert(id, req);
        Ok(id)
    }

    /// Polls for one completion.
    pub fn poll(&mut self, hub: &mut BlkRingHub) -> Option<BlkResponse> {
        let resp = hub.get_mut(self.conn.ring).ok()?.pop_response()?;
        self.outstanding.remove(&resp.id);
        Some(resp)
    }

    /// Requests submitted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Replaces the connection after a renegotiation and returns the
    /// requests that must be retransmitted — "virtual machine protocols
    /// … are designed to cache and retransmit failed requests" (§3.3).
    pub fn reconnect(&mut self, conn: Connection) -> Vec<BlkRequest> {
        self.conn = conn;
        let mut retry: Vec<BlkRequest> = self.outstanding.values().cloned().collect();
        retry.sort_by_key(|r| r.id);
        self.outstanding.clear();
        retry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingId;
    use xoar_hypervisor::grant::GrantRef;
    use xoar_hypervisor::PciAddress;

    fn conn(guest: u32, backend: u32, gref: u32) -> Connection {
        Connection {
            guest: DomId(guest),
            backend: DomId(backend),
            kind: crate::xenbus::DeviceKind::Vbd,
            index: 0,
            ring: RingId {
                granter: DomId(guest),
                gref: GrantRef(gref),
            },
            front_port: 1,
            back_port: 1,
        }
    }

    fn backend_with_guest() -> (BlkBack, BlkFront, BlkRingHub) {
        let mut bb = BlkBack::new(DomId(2), DiskModel::sata_7200(PciAddress::new(0, 3, 0)));
        bb.images
            .create_image("root.img", 15 * 1024 * 1024 * 1024)
            .unwrap();
        let c = conn(5, 2, 0);
        let mut hub = BlkRingHub::new();
        hub.create(c.ring);
        bb.attach(c, "root.img").unwrap();
        (bb, BlkFront::new(c), hub)
    }

    #[test]
    fn read_write_complete_ok() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        let id_r = bf.submit(&mut hub, BlkOp::Read, 0, 8).unwrap();
        let id_w = bf.submit(&mut hub, BlkOp::Write, 8, 8).unwrap();
        let stats = bb.process(&mut hub);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.bytes, 2 * 8 * SECTOR_SIZE);
        assert!(stats.service_ns > 0);
        let r1 = bf.poll(&mut hub).unwrap();
        let r2 = bf.poll(&mut hub).unwrap();
        assert_eq!(r1.id, id_r);
        assert_eq!(r1.status, BlkStatus::Ok);
        assert_eq!(r2.id, id_w);
        assert_eq!(bf.outstanding(), 0);
    }

    #[test]
    fn write_page_read_back_by_handle() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        let page = PageRef::new(&[0xabu8; 4096]);
        bf.submit_write_page(&mut hub, 64, page.clone()).unwrap();
        let stats = bb.process(&mut hub);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.bytes, 4096);
        assert!(bf.poll(&mut hub).unwrap().payload.is_none());
        // The stored body is the same allocation; a read hands it back.
        bf.submit(&mut hub, BlkOp::Read, 64, 8).unwrap();
        bb.process(&mut hub);
        let resp = bf.poll(&mut hub).unwrap();
        assert_eq!(resp.status, BlkStatus::Ok);
        assert!(
            PageRef::ptr_eq(&page, resp.payload.as_ref().unwrap()),
            "read returns the written page body by shared handle"
        );
        // Reads of never-written sectors carry no payload.
        bf.submit(&mut hub, BlkOp::Read, 0, 8).unwrap();
        bb.process(&mut hub);
        assert!(bf.poll(&mut hub).unwrap().payload.is_none());
    }

    #[test]
    fn out_of_range_request_rejected() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        // Beyond the 15 GB image.
        let huge_sector = 16 * 1024 * 1024 * 1024 / SECTOR_SIZE;
        bf.submit(&mut hub, BlkOp::Read, huge_sector, 8).unwrap();
        let stats = bb.process(&mut hub);
        assert_eq!(stats.errors, 1);
        assert_eq!(bf.poll(&mut hub).unwrap().status, BlkStatus::Error);
    }

    #[test]
    fn oversized_request_rejected() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        let too_many = MAX_SEGMENTS_BYTES / SECTOR_SIZE + 1;
        bf.submit(&mut hub, BlkOp::Read, 0, too_many).unwrap();
        let stats = bb.process(&mut hub);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn zero_count_read_rejected_flush_ok() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        bf.submit(&mut hub, BlkOp::Read, 0, 0).unwrap();
        bf.submit(&mut hub, BlkOp::Flush, 0, 0).unwrap();
        let stats = bb.process(&mut hub);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn sequential_detection_reduces_service_time() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        // First request random, second sequential continuation.
        bf.submit(&mut hub, BlkOp::Read, 100, 8).unwrap();
        let first = bb.process(&mut hub).service_ns;
        bf.submit(&mut hub, BlkOp::Read, 108, 8).unwrap();
        let second = bb.process(&mut hub).service_ns;
        assert!(second < first, "sequential continuation skips the seek");
    }

    #[test]
    fn submit_batch_matches_serial_submits() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        let ids = bf
            .submit_batch(
                &mut hub,
                &[
                    (BlkOp::Read, 0, 8),
                    (BlkOp::Write, 8, 8),
                    (BlkOp::Flush, 0, 0),
                ],
            )
            .unwrap();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(bf.outstanding(), 3);
        // A batch the ring cannot hold leaves state untouched.
        let big = vec![(BlkOp::Read, 0, 8); crate::ring::DEFAULT_RING_SLOTS];
        assert_eq!(bf.submit_batch(&mut hub, &big), Err(RingError::Full));
        assert_eq!(bf.outstanding(), 3);
        let stats = bb.process(&mut hub);
        assert_eq!(stats.completed, 3);
        for want in ids {
            assert_eq!(bf.poll(&mut hub).unwrap().id, want);
        }
        assert_eq!(bf.outstanding(), 0);
        // IDs continue from where the successful batch left off.
        assert_eq!(bf.submit(&mut hub, BlkOp::Read, 0, 8).unwrap(), 4);
    }

    #[test]
    fn image_store_lifecycle() {
        let mut s = ImageStore::new();
        s.create_image("a.img", 1024 * 1024).unwrap();
        assert!(s.create_image("a.img", 1).is_err());
        let sectors = s.mount("a.img", DomId(5)).unwrap();
        assert_eq!(sectors, 2048);
        assert!(s.mount("a.img", DomId(6)).is_err(), "no double mount");
        assert!(s.delete_image("a.img").is_err(), "mounted images protected");
        s.unmount("a.img");
        s.delete_image("a.img").unwrap();
        assert!(s.list().is_empty());
    }

    #[test]
    fn detach_unmounts() {
        let (mut bb, bf, _hub) = backend_with_guest();
        assert!(bb.detach_guest(bf.conn.guest).is_some());
        assert!(bb.detach_guest(bf.conn.guest).is_none());
        // Image can be re-mounted now.
        bb.images.mount("root.img", DomId(9)).unwrap();
    }

    #[test]
    fn reconnect_returns_outstanding_for_retry() {
        let (mut bb, mut bf, mut hub) = backend_with_guest();
        bf.submit(&mut hub, BlkOp::Read, 0, 8).unwrap();
        bf.submit(&mut hub, BlkOp::Write, 64, 8).unwrap();
        // Backend dies before answering.
        hub.get_mut(bf.conn.ring).unwrap().detach();
        let c2 = conn(5, 2, 1);
        hub.create(c2.ring);
        let retry = bf.reconnect(c2);
        assert_eq!(retry.len(), 2);
        assert_eq!(retry[0].sector, 0);
        assert_eq!(retry[1].sector, 64);
        // Re-attach on the backend side and replay.
        bb.detach_guest(DomId(5));
        bb.attach(c2, "root.img").unwrap();
        for r in retry {
            bf.submit(&mut hub, r.op, r.sector, r.count).unwrap();
        }
        assert_eq!(bb.process(&mut hub).completed, 2);
    }
}
