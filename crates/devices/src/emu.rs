//! Device emulation: the QEMU device model (§4.5.2).
//!
//! Unmodified (HVM) guests expect a standard PC platform, provided by a
//! per-guest QEMU process that emulates the BIOS, serial ports, and block
//! and network controllers. In stock Xen that process runs *in Dom0* with
//! the privilege to map any page of the guest's memory; the paper's attack
//! census found device emulation to be the single largest vector (14 of
//! 23 guest-originated attacks).
//!
//! Xoar hosts each device model in its own stub-domain VM (`QemuVM`),
//! privileged *only for its single guest* via the `privileged_for` flag
//! (§5.6) — so a compromised device model "has the full privileges of the
//! QemuVM, rather than Dom0 privileges and has no rights over any other
//! VM" (§6.2).
//!
//! The emulation here is behavioural: trapped port I/O is dispatched to
//! tiny emulated-device state machines, and DMA is performed with real
//! foreign-mapping hypercalls so the privilege boundary is exercised.

use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, HvError, Hypercall, Hypervisor};

/// Emulated device selected by the trapped I/O port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmulatedDevice {
    /// IDE controller (ports 0x1f0–0x1f7).
    Ide,
    /// RTL8139-style NIC (ports 0xc000–0xc0ff in the model).
    Nic,
    /// 16550 UART (ports 0x3f8–0x3ff).
    Serial,
}

impl EmulatedDevice {
    /// Decodes a port to a device.
    pub fn decode(port: u16) -> Option<Self> {
        match port {
            0x1f0..=0x1f7 => Some(EmulatedDevice::Ide),
            0xc000..=0xc0ff => Some(EmulatedDevice::Nic),
            0x3f8..=0x3ff => Some(EmulatedDevice::Serial),
            _ => None,
        }
    }

    /// Approximate emulation cost per I/O exit, in nanoseconds. Device
    /// emulation is roughly an order of magnitude costlier per operation
    /// than the paravirtual path (VM exit + process dispatch).
    pub fn exit_cost_ns(self) -> u64 {
        match self {
            EmulatedDevice::Ide => 12_000,
            EmulatedDevice::Nic => 10_000,
            EmulatedDevice::Serial => 5_000,
        }
    }
}

/// Statistics of one device model.
#[derive(Debug, Default, Clone, Copy)]
pub struct QemuStats {
    /// Trapped I/O operations dispatched.
    pub io_exits: u64,
    /// DMA transfers performed (foreign map + copy).
    pub dma_ops: u64,
    /// Total simulated emulation time (ns).
    pub emul_ns: u64,
}

/// A per-guest QEMU device model.
#[derive(Debug)]
pub struct QemuDeviceModel {
    /// The domain hosting the model: Dom0 in stock Xen, a stub QemuVM in
    /// Xoar.
    pub host_dom: DomId,
    /// The HVM guest being emulated.
    pub guest: DomId,
    stats: QemuStats,
    /// Tiny IDE state machine: the currently latched sector register.
    ide_sector: u32,
    /// Serial output captured by the model.
    serial_out: Vec<u8>,
}

impl QemuDeviceModel {
    /// Creates a device model for `guest`, hosted in `host_dom`.
    pub fn new(host_dom: DomId, guest: DomId) -> Self {
        QemuDeviceModel {
            host_dom,
            guest,
            stats: QemuStats::default(),
            ide_sector: 0,
            serial_out: Vec::new(),
        }
    }

    /// Handles one trapped port write from the guest.
    pub fn io_write(&mut self, port: u16, value: u32) -> Option<u64> {
        let dev = EmulatedDevice::decode(port)?;
        self.stats.io_exits += 1;
        let cost = dev.exit_cost_ns();
        self.stats.emul_ns += cost;
        match dev {
            EmulatedDevice::Ide => {
                if port == 0x1f3 {
                    self.ide_sector = value;
                }
            }
            EmulatedDevice::Serial => {
                if port == 0x3f8 {
                    self.serial_out.push(value as u8);
                }
            }
            EmulatedDevice::Nic => {}
        }
        Some(cost)
    }

    /// Handles one trapped port read.
    pub fn io_read(&mut self, port: u16) -> Option<(u32, u64)> {
        let dev = EmulatedDevice::decode(port)?;
        self.stats.io_exits += 1;
        let cost = dev.exit_cost_ns();
        self.stats.emul_ns += cost;
        let value = match dev {
            EmulatedDevice::Ide if port == 0x1f3 => self.ide_sector,
            EmulatedDevice::Ide if port == 0x1f7 => 0x40, // Status: ready.
            _ => 0,
        };
        Some((value, cost))
    }

    /// Emulates a DMA transfer into the guest: maps the guest frame via a
    /// real foreign-mapping hypercall (exercising the privilege boundary)
    /// and writes the payload.
    ///
    /// In stock Xen `host_dom` is Dom0 and the call always succeeds; in
    /// Xoar it succeeds only for the one guest this QemuVM is
    /// `privileged_for`.
    pub fn dma_to_guest(
        &mut self,
        hv: &mut Hypervisor,
        pfn: Pfn,
        data: &[u8],
    ) -> Result<u64, HvError> {
        hv.hypercall(
            self.host_dom,
            Hypercall::MmuWriteForeign {
                target: self.guest,
                pfn,
                data: data.to_vec(),
            },
        )?;
        self.stats.dma_ops += 1;
        let cost = EmulatedDevice::Ide.exit_cost_ns() + data.len() as u64 / 8;
        self.stats.emul_ns += cost;
        Ok(cost)
    }

    /// Captured serial output.
    pub fn serial_output(&self) -> &[u8] {
        &self.serial_out
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QemuStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_hypervisor::domain::DomainRole;
    use xoar_hypervisor::{HypercallId, PrivilegeSet};

    fn platform() -> (Hypervisor, DomId, DomId, DomId) {
        let mut hv = Hypervisor::with_default_host();
        let dom0 = hv
            .create_boot_domain("dom0", DomainRole::ControlVm, 512, PrivilegeSet::dom0())
            .unwrap();
        let mut qp = PrivilegeSet::default();
        qp.permit_hypercall(HypercallId::MmuWriteForeign);
        qp.permit_hypercall(HypercallId::MmuMapForeign);
        let qemu = hv
            .create_boot_domain("qemu-hvm1", DomainRole::Shard, 64, qp)
            .unwrap();
        let guest = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCreateDomain {
                    name: "hvm1".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        hv.hypercall(
            dom0,
            Hypercall::MemoryPopulate {
                target: guest,
                frames: 8,
            },
        )
        .unwrap();
        hv.hypercall(dom0, Hypercall::DomctlUnpauseDomain { target: guest })
            .unwrap();
        (hv, dom0, qemu, guest)
    }

    #[test]
    fn port_decode() {
        assert_eq!(EmulatedDevice::decode(0x1f0), Some(EmulatedDevice::Ide));
        assert_eq!(EmulatedDevice::decode(0x3f8), Some(EmulatedDevice::Serial));
        assert_eq!(EmulatedDevice::decode(0xc010), Some(EmulatedDevice::Nic));
        assert_eq!(EmulatedDevice::decode(0x9999), None);
    }

    #[test]
    fn ide_register_round_trip() {
        let (_hv, _d0, qemu, guest) = platform();
        let mut q = QemuDeviceModel::new(qemu, guest);
        q.io_write(0x1f3, 0x55).unwrap();
        let (v, _) = q.io_read(0x1f3).unwrap();
        assert_eq!(v, 0x55);
        let (status, _) = q.io_read(0x1f7).unwrap();
        assert_eq!(status, 0x40);
        assert_eq!(q.stats().io_exits, 3);
        assert!(q.stats().emul_ns > 0);
    }

    #[test]
    fn serial_capture() {
        let (_hv, _d0, qemu, guest) = platform();
        let mut q = QemuDeviceModel::new(qemu, guest);
        for b in b"SeaBIOS" {
            q.io_write(0x3f8, *b as u32);
        }
        assert_eq!(q.serial_output(), b"SeaBIOS");
    }

    #[test]
    fn stub_dma_requires_privileged_for() {
        let (mut hv, dom0, qemu, guest) = platform();
        let mut q = QemuDeviceModel::new(qemu, guest);
        // Without the flag: the Xoar policy refuses.
        assert!(q.dma_to_guest(&mut hv, Pfn(0), b"boot sector").is_err());
        hv.hypercall(
            dom0,
            Hypercall::DomctlSetPrivilegedFor {
                subject: qemu,
                object: guest,
            },
        )
        .unwrap();
        q.dma_to_guest(&mut hv, Pfn(0), b"boot sector").unwrap();
        assert_eq!(hv.mem.read(guest, Pfn(0)).unwrap(), b"boot sector");
        assert_eq!(q.stats().dma_ops, 1);
    }

    #[test]
    fn dom0_hosted_model_can_dma_anywhere() {
        let (mut hv, dom0, _qemu, guest) = platform();
        // The stock-Xen arrangement: the model runs in Dom0.
        let mut q = QemuDeviceModel::new(dom0, guest);
        q.dma_to_guest(&mut hv, Pfn(1), b"anything").unwrap();
        assert_eq!(hv.mem.read(guest, Pfn(1)).unwrap(), b"anything");
    }

    #[test]
    fn emulation_costs_exceed_pv_notification() {
        // The per-exit cost of emulation dwarfs an event-channel send,
        // which is the paper's justification for the PV path.
        assert!(EmulatedDevice::Ide.exit_cost_ns() > 5_000);
    }

    #[test]
    fn unknown_port_ignored() {
        let (_hv, _d0, qemu, guest) = platform();
        let mut q = QemuDeviceModel::new(qemu, guest);
        assert!(q.io_write(0x9999, 1).is_none());
        assert!(q.io_read(0x9999).is_none());
        assert_eq!(q.stats().io_exits, 0);
    }
}
