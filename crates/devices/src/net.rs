//! The paravirtual network path: NetFront ↔ NetBack (§5.4).
//!
//! Each NetBack virtualises exactly one physical NIC (modelled by
//! [`NicModel`]) and exposes abstract network devices to guests. Frames
//! are carried in GSO-style aggregates of up to [`MAX_GSO_BYTES`], as real
//! netback does, so simulating a 2 GB transfer costs tens of thousands of
//! ring operations rather than millions of per-MTU packets.
//!
//! The module also models the *external* side: a [`WireEndpoint`] stands
//! in for the remote host of the wget/Apache experiments and carries the
//! packets NetBack puts on the wire.

use std::collections::VecDeque;

use crate::fabric::Fabric;
use crate::hw::NicModel;
use crate::ring::{RingError, RingHub};
use crate::xenbus::Connection;

use xoar_hypervisor::fasthash::FastMap;
use xoar_hypervisor::memory::PageRef;
use xoar_hypervisor::DomId;

/// Largest GSO aggregate carried by one ring slot (64 KiB, as in Linux).
pub const MAX_GSO_BYTES: usize = 65_536;

/// A network frame. `bytes` always carries the aggregate size (the only
/// thing the timing model needs); `payload` optionally carries the actual
/// page body as a shared [`PageRef`] handle, so a frame sourced from guest
/// memory crosses the backend and reaches the wire by refcount move —
/// never by copying the page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPacket {
    /// Flow this packet belongs to (a TCP connection in the workloads).
    pub flow: u64,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Payload bytes.
    pub bytes: usize,
    /// Shared handle on the page body, when the frame carries real data.
    pub payload: Option<PageRef>,
}

impl NetPacket {
    /// A size-only frame (no page body) — the common case for the timing
    /// workloads, where only sizes and flow identity matter.
    pub fn meta(flow: u64, seq: u64, bytes: usize) -> Self {
        NetPacket {
            flow,
            seq,
            bytes,
            payload: None,
        }
    }

    /// A frame carrying `page` by shared handle; `bytes` is the page size.
    pub fn with_payload(flow: u64, seq: u64, page: PageRef) -> Self {
        NetPacket {
            flow,
            seq,
            bytes: page.len(),
            payload: Some(page),
        }
    }
}

/// The ring hub type for the network protocol (tx and rx share the ring
/// in this model: requests are guest→wire, responses are wire→guest).
pub type NetRingHub = RingHub<NetPacket, NetPacket>;

/// Per-pass statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetBackStats {
    /// Frames moved guest→wire.
    pub tx_frames: u64,
    /// Bytes moved guest→wire.
    pub tx_bytes: u64,
    /// Frames moved wire→guest.
    pub rx_frames: u64,
    /// Bytes moved wire→guest.
    pub rx_bytes: u64,
    /// Frames dropped (oversize / no attachment / ring full).
    pub dropped: u64,
    /// Simulated NIC service time (ns).
    pub service_ns: u64,
}

/// The far end of the physical wire: queues of packets in transit in each
/// direction, standing in for the test client on the LAN.
#[derive(Debug, Default)]
pub struct WireEndpoint {
    /// Packets the host transmitted (awaiting the remote peer).
    pub outbound: VecDeque<NetPacket>,
    /// Packets the remote peer sent toward a guest: `(dest guest, packet)`.
    pub inbound: VecDeque<(DomId, NetPacket)>,
}

impl WireEndpoint {
    /// Creates an idle wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remote peer sends `pkt` toward `guest`.
    pub fn send_to_guest(&mut self, guest: DomId, pkt: NetPacket) {
        self.inbound.push_back((guest, pkt));
    }

    /// Remote peer sends a page-carrying frame toward `guest`; the page
    /// body travels as a shared handle all the way into the guest ring.
    pub fn send_page_to_guest(&mut self, guest: DomId, flow: u64, seq: u64, page: PageRef) {
        self.inbound
            .push_back((guest, NetPacket::with_payload(flow, seq, page)));
    }

    /// Drains everything the host transmitted.
    pub fn take_outbound(&mut self) -> Vec<NetPacket> {
        self.outbound.drain(..).collect()
    }
}

/// The network driver domain.
#[derive(Debug)]
pub struct NetBack {
    /// Hosting domain.
    pub dom: DomId,
    /// The physical NIC.
    pub nic: NicModel,
    attachments: FastMap<DomId, Connection>,
    lifetime: NetBackStats,
    /// Scratch queue for rx frames that hit backpressure. Persistent so
    /// its capacity survives across passes — the rx requeue path never
    /// allocates in steady state.
    rx_requeue: VecDeque<(DomId, NetPacket)>,
}

impl NetBack {
    /// Creates a backend for `dom` driving `nic`.
    pub fn new(dom: DomId, nic: NicModel) -> Self {
        NetBack {
            dom,
            nic,
            attachments: FastMap::default(),
            lifetime: NetBackStats::default(),
            rx_requeue: VecDeque::new(),
        }
    }

    /// Attaches a negotiated guest connection.
    pub fn attach(&mut self, conn: Connection) {
        self.attachments.insert(conn.guest, conn);
    }

    /// Detaches a guest.
    pub fn detach_guest(&mut self, guest: DomId) -> Option<Connection> {
        self.attachments.remove(&guest)
    }

    /// Current connections.
    pub fn connections(&self) -> Vec<Connection> {
        let mut v: Vec<Connection> = self.attachments.values().copied().collect();
        v.sort_by_key(|c| c.guest.0);
        v
    }

    /// Iterates current connections without allocating, in arbitrary
    /// order (the restart fast path sorts into its own scratch).
    pub fn conn_iter(&self) -> impl Iterator<Item = &Connection> + '_ {
        self.attachments.values()
    }

    /// One processing pass: move guest tx frames onto the wire and deliver
    /// pending wire rx frames into guest rings.
    pub fn process(&mut self, hub: &mut NetRingHub, wire: &mut WireEndpoint) -> NetBackStats {
        let mut stats = NetBackStats::default();
        // TX: guest → wire.
        for conn in self.attachments.values() {
            let ring = match hub.get_mut(conn.ring) {
                Ok(r) => r,
                Err(_) => continue,
            };
            while let Some(pkt) = ring.pop_request() {
                if pkt.bytes > MAX_GSO_BYTES {
                    // Backend validation: malformed aggregate.
                    stats.dropped += 1;
                    let _ = ring.push_response(NetPacket::meta(pkt.flow, pkt.seq, 0));
                    continue;
                }
                stats.service_ns += self.nic.tx_time_ns(pkt.bytes);
                self.nic.record_tx(pkt.bytes);
                stats.tx_frames += 1;
                stats.tx_bytes += pkt.bytes as u64;
                // Ack the slot so the frontend can reuse it (completions
                // never carry the body — the wire takes the handle).
                let ack = NetPacket::meta(pkt.flow, pkt.seq, pkt.bytes);
                wire.outbound.push_back(pkt);
                let _ = ring.push_response(ack);
            }
        }
        // RX: wire → guest. Backpressured frames collect in the persistent
        // scratch queue and are swapped back onto the wire at the end.
        debug_assert!(self.rx_requeue.is_empty());
        while let Some((guest, pkt)) = wire.inbound.pop_front() {
            let Some(conn) = self.attachments.get(&guest) else {
                stats.dropped += 1;
                continue;
            };
            let ring = match hub.get_mut(conn.ring) {
                Ok(r) => r,
                Err(_) => {
                    stats.dropped += 1;
                    continue;
                }
            };
            if !ring.is_attached() {
                stats.dropped += 1;
                continue;
            }
            stats.service_ns += self.nic.tx_time_ns(pkt.bytes);
            self.nic.record_rx(pkt.bytes);
            stats.rx_frames += 1;
            stats.rx_bytes += pkt.bytes as u64;
            // Deliver as an unsolicited response (rx path). If the response
            // queue is saturated the packet would be dropped by a real NIC
            // too; the model delivers since responses are unbounded, but we
            // cap rx bursts per pass to the ring size via requeue.
            if ring.pending_responses() >= 4 * crate::ring::DEFAULT_RING_SLOTS {
                stats.rx_frames -= 1;
                stats.rx_bytes -= pkt.bytes as u64;
                self.rx_requeue.push_back((guest, pkt));
                continue;
            }
            let _ = ring.push_response(pkt);
        }
        // `wire.inbound` is drained here, so the swap leaves the requeued
        // frames on the wire and keeps the (empty) deque's capacity as next
        // pass's scratch.
        std::mem::swap(&mut wire.inbound, &mut self.rx_requeue);
        self.lifetime.tx_frames += stats.tx_frames;
        self.lifetime.tx_bytes += stats.tx_bytes;
        self.lifetime.rx_frames += stats.rx_frames;
        self.lifetime.rx_bytes += stats.rx_bytes;
        self.lifetime.dropped += stats.dropped;
        self.lifetime.service_ns += stats.service_ns;
        stats
    }

    /// One processing pass terminating into the virtual fabric instead
    /// of the physical wire: guest tx frames enter the switch's ingress
    /// queue (the switch decides guest/uplink per flow), and — on the
    /// backend hosting the fabric — external frames leave the wire for
    /// the switch's uplink port. Tx validation, completions, and NIC
    /// accounting are identical to [`NetBack::process`]; the caller runs
    /// [`Fabric::switch`] after all backends have passed.
    pub fn process_with_fabric(
        &mut self,
        hub: &mut NetRingHub,
        fabric: &mut Fabric,
        wire: &mut WireEndpoint,
    ) -> NetBackStats {
        let mut stats = NetBackStats::default();
        // TX: guest → fabric ingress.
        for conn in self.attachments.values() {
            let ring = match hub.get_mut(conn.ring) {
                Ok(r) => r,
                Err(_) => continue,
            };
            while let Some(pkt) = ring.pop_request() {
                if pkt.bytes > MAX_GSO_BYTES {
                    stats.dropped += 1;
                    let _ = ring.push_response(NetPacket::meta(pkt.flow, pkt.seq, 0));
                    continue;
                }
                stats.service_ns += self.nic.tx_time_ns(pkt.bytes);
                self.nic.record_tx(pkt.bytes);
                stats.tx_frames += 1;
                stats.tx_bytes += pkt.bytes as u64;
                let ack = NetPacket::meta(pkt.flow, pkt.seq, pkt.bytes);
                fabric.enqueue(conn.guest, pkt);
                let _ = ring.push_response(ack);
            }
        }
        // RX: wire → uplink port. Only the backend hosting the fabric
        // drains the wire, so external frames enter the switch once.
        if fabric.dom == self.dom {
            while let Some((guest, pkt)) = wire.inbound.pop_front() {
                stats.service_ns += self.nic.tx_time_ns(pkt.bytes);
                self.nic.record_rx(pkt.bytes);
                stats.rx_frames += 1;
                stats.rx_bytes += pkt.bytes as u64;
                fabric.enqueue_from_uplink(guest, pkt);
            }
        }
        self.lifetime.tx_frames += stats.tx_frames;
        self.lifetime.tx_bytes += stats.tx_bytes;
        self.lifetime.rx_frames += stats.rx_frames;
        self.lifetime.rx_bytes += stats.rx_bytes;
        self.lifetime.dropped += stats.dropped;
        self.lifetime.service_ns += stats.service_ns;
        stats
    }

    /// Lifetime statistics.
    pub fn lifetime_stats(&self) -> NetBackStats {
        self.lifetime
    }
}

/// The guest-side network frontend.
#[derive(Debug)]
pub struct NetFront {
    /// The negotiated connection.
    pub conn: Connection,
    next_seq: u64,
}

impl NetFront {
    /// Creates a frontend over a negotiated connection.
    pub fn new(conn: Connection) -> Self {
        NetFront { conn, next_seq: 0 }
    }

    /// Transmits an aggregate of `bytes` on `flow`.
    pub fn transmit(
        &mut self,
        hub: &mut NetRingHub,
        flow: u64,
        bytes: usize,
    ) -> Result<u64, RingError> {
        let seq = self.next_seq;
        hub.get_mut(self.conn.ring)?
            .push_request(NetPacket::meta(flow, seq, bytes))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Transmits a batch of aggregates on `flow` in one ring operation.
    /// All-or-nothing: if the ring lacks room for every frame, nothing is
    /// queued and `RingError::Full` is returned. Returns the sequence
    /// number of the first frame; the batch occupies `seq..seq + n`.
    pub fn transmit_many(
        &mut self,
        hub: &mut NetRingHub,
        flow: u64,
        sizes: &[usize],
    ) -> Result<u64, RingError> {
        let first = self.next_seq;
        let reqs: Vec<NetPacket> = sizes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| NetPacket::meta(flow, first + i as u64, bytes))
            .collect();
        hub.get_mut(self.conn.ring)?.push_requests(reqs)?;
        self.next_seq += sizes.len() as u64;
        Ok(first)
    }

    /// Transmits a page-carrying aggregate on `flow`. The page body moves
    /// through the ring and the backend to the wire as a shared handle —
    /// the zero-copy data path the density experiments rely on.
    pub fn transmit_page(
        &mut self,
        hub: &mut NetRingHub,
        flow: u64,
        page: PageRef,
    ) -> Result<u64, RingError> {
        let seq = self.next_seq;
        hub.get_mut(self.conn.ring)?
            .push_request(NetPacket::with_payload(flow, seq, page))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Receives the next delivered frame (rx or tx completion).
    pub fn receive(&mut self, hub: &mut NetRingHub) -> Option<NetPacket> {
        hub.get_mut(self.conn.ring).ok()?.pop_response()
    }

    /// Replaces the connection after renegotiation.
    pub fn reconnect(&mut self, conn: Connection) {
        self.conn = conn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingId;
    use crate::xenbus::DeviceKind;
    use xoar_hypervisor::grant::GrantRef;
    use xoar_hypervisor::PciAddress;

    fn conn(guest: u32, gref: u32) -> Connection {
        Connection {
            guest: DomId(guest),
            backend: DomId(2),
            kind: DeviceKind::Vif,
            index: 0,
            ring: RingId {
                granter: DomId(guest),
                gref: GrantRef(gref),
            },
            front_port: 1,
            back_port: 1,
        }
    }

    fn setup() -> (NetBack, NetFront, NetRingHub, WireEndpoint) {
        let mut nb = NetBack::new(DomId(2), NicModel::gigabit(PciAddress::new(0, 2, 0)));
        let c = conn(5, 0);
        let mut hub = NetRingHub::new();
        hub.create(c.ring);
        nb.attach(c);
        (nb, NetFront::new(c), hub, WireEndpoint::new())
    }

    #[test]
    fn tx_reaches_wire_with_completion() {
        let (mut nb, mut nf, mut hub, mut wire) = setup();
        nf.transmit(&mut hub, 1, 1500).unwrap();
        nf.transmit(&mut hub, 1, 1500).unwrap();
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.tx_frames, 2);
        assert_eq!(stats.tx_bytes, 3000);
        assert!(stats.service_ns > 0);
        assert_eq!(wire.take_outbound().len(), 2);
        // Completions free the ring slots.
        assert_eq!(nf.receive(&mut hub).unwrap().bytes, 1500);
        assert_eq!(nf.receive(&mut hub).unwrap().bytes, 1500);
    }

    #[test]
    fn rx_delivered_to_right_guest() {
        let (mut nb, mut nf, mut hub, mut wire) = setup();
        wire.send_to_guest(DomId(5), NetPacket::meta(9, 0, 64_000));
        wire.send_to_guest(DomId(6), NetPacket::meta(9, 1, 64_000));
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.rx_frames, 1, "only dom5 is attached");
        assert_eq!(stats.dropped, 1, "dom6 frame dropped");
        let got = nf.receive(&mut hub).unwrap();
        assert_eq!(got.flow, 9);
        assert_eq!(got.bytes, 64_000);
    }

    #[test]
    fn oversize_aggregate_dropped() {
        let (mut nb, mut nf, mut hub, mut wire) = setup();
        nf.transmit(&mut hub, 1, MAX_GSO_BYTES + 1).unwrap();
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.tx_frames, 0);
        // Completion arrives with zero bytes (error marker).
        assert_eq!(nf.receive(&mut hub).unwrap().bytes, 0);
    }

    #[test]
    fn detached_ring_drops_rx() {
        let (mut nb, nf, mut hub, mut wire) = setup();
        hub.get_mut(nf.conn.ring).unwrap().detach();
        wire.send_to_guest(DomId(5), NetPacket::meta(1, 0, 1000));
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.rx_frames, 0);
    }

    #[test]
    fn detach_guest_stops_service() {
        let (mut nb, mut nf, mut hub, mut wire) = setup();
        nb.detach_guest(DomId(5)).unwrap();
        nf.transmit(&mut hub, 1, 100).unwrap();
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.tx_frames, 0, "no attachment, nothing serviced");
    }

    #[test]
    fn tx_page_payload_reaches_wire_by_handle() {
        let (mut nb, mut nf, mut hub, mut wire) = setup();
        let page = PageRef::new(&[7u8; 4096]);
        nf.transmit_page(&mut hub, 3, page.clone()).unwrap();
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.tx_frames, 1);
        assert_eq!(stats.tx_bytes, 4096);
        let out = wire.take_outbound();
        let wired = out[0].payload.as_ref().expect("payload crosses backend");
        assert!(
            PageRef::ptr_eq(&page, wired),
            "the wire holds the same page body, not a copy"
        );
        // The tx completion does not duplicate the body.
        assert!(nf.receive(&mut hub).unwrap().payload.is_none());
    }

    #[test]
    fn rx_page_payload_delivered_by_handle() {
        let (mut nb, mut nf, mut hub, mut wire) = setup();
        let page = PageRef::new(&[9u8; 2048]);
        wire.send_page_to_guest(DomId(5), 4, 0, page.clone());
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.rx_frames, 1);
        let got = nf.receive(&mut hub).unwrap();
        assert!(PageRef::ptr_eq(&page, got.payload.as_ref().unwrap()));
        assert_eq!(got.bytes, 2048);
    }

    #[test]
    fn transmit_many_is_all_or_nothing_and_numbers_contiguously() {
        let (mut nb, mut nf, mut hub, mut wire) = setup();
        let first = nf.transmit_many(&mut hub, 7, &[100, 200, 300]).unwrap();
        assert_eq!(first, 0);
        // Overfill: the ring has DEFAULT_RING_SLOTS slots, 3 used.
        let too_many = vec![64; crate::ring::DEFAULT_RING_SLOTS];
        assert_eq!(
            nf.transmit_many(&mut hub, 7, &too_many),
            Err(RingError::Full)
        );
        // Failed batch consumed no sequence numbers.
        assert_eq!(nf.transmit(&mut hub, 7, 400).unwrap(), 3);
        let stats = nb.process(&mut hub, &mut wire);
        assert_eq!(stats.tx_frames, 4);
        let out = wire.take_outbound();
        let seqs: Vec<u64> = out.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rx_backpressure_requeues() {
        let (mut nb, _nf, mut hub, mut wire) = setup();
        // Flood far beyond the rx cap.
        for i in 0..200 {
            wire.send_to_guest(DomId(5), NetPacket::meta(1, i, 1000));
        }
        let stats = nb.process(&mut hub, &mut wire);
        assert!(stats.rx_frames <= 4 * crate::ring::DEFAULT_RING_SLOTS as u64);
        assert!(!wire.inbound.is_empty(), "excess stays queued on the wire");
    }
}
