//! I/O rings: shared-memory producer/consumer channels (§4.3).
//!
//! An I/O ring is a single shared page holding two circular queues —
//! requests (frontend → backend) and responses (backend → frontend) — with
//! free-running producer/consumer indices, exactly as in Xen's
//! `ring.h`. Peers notify each other out of band via event channels; the
//! ring itself carries only data.
//!
//! Because both halves of a split driver live in one address space in this
//! model, the "shared page" is realised as an entry in a [`RingHub`]
//! keyed by `(granting domain, grant reference)` — the same rendezvous a
//! real backend performs by mapping the grant it read from XenStore.
//!
//! The paper notes the rings carry *all* protocol policy: "all policy is
//! left to the users of the I/O rings, leaving the potential for malicious
//! or malformed data to be injected via this vector." The model therefore
//! performs no validation here; backends validate.

use std::collections::VecDeque;

use xoar_hypervisor::fasthash::FastMap;
use xoar_hypervisor::grant::GrantRef;
use xoar_hypervisor::DomId;

/// Default number of request slots in a single-page ring (Xen's blkif
/// fits 32 requests in one 4 KiB page).
pub const DEFAULT_RING_SLOTS: usize = 32;

/// Errors from ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The request queue is full; the producer must back off.
    Full,
    /// The ring was torn down (peer death or driver restart).
    Detached,
    /// No such ring in the hub.
    NotFound,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => write!(f, "ring full"),
            RingError::Detached => write!(f, "ring detached"),
            RingError::NotFound => write!(f, "ring not found"),
        }
    }
}

impl std::error::Error for RingError {}

/// A bidirectional ring: bounded request queue plus unbounded response
/// queue (responses reuse request slots in real Xen, so they can never
/// outnumber outstanding requests; the model enforces that dynamically).
#[derive(Debug)]
pub struct Ring<Req, Resp> {
    requests: VecDeque<Req>,
    responses: VecDeque<Resp>,
    slots: usize,
    /// Requests currently "owned" by the backend (consumed, response
    /// pending) — these still occupy ring slots.
    in_flight: usize,
    attached: bool,
    /// Lifetime counters for the evaluation harness.
    req_count: u64,
    resp_count: u64,
}

impl<Req, Resp> Ring<Req, Resp> {
    /// Creates an attached, empty ring with `slots` request slots.
    ///
    /// Both queues are preallocated to the slot count — a real ring is a
    /// fixed shared page — so steady-state push/pop never reallocates.
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        Ring {
            requests: VecDeque::with_capacity(slots),
            responses: VecDeque::with_capacity(slots),
            slots,
            in_flight: 0,
            attached: true,
            req_count: 0,
            resp_count: 0,
        }
    }

    /// Number of free request slots.
    pub fn free_slots(&self) -> usize {
        self.slots
            .saturating_sub(self.requests.len() + self.in_flight)
    }

    /// Frontend: push a request.
    pub fn push_request(&mut self, req: Req) -> Result<(), RingError> {
        if !self.attached {
            return Err(RingError::Detached);
        }
        if self.free_slots() == 0 {
            return Err(RingError::Full);
        }
        self.requests.push_back(req);
        self.req_count += 1;
        Ok(())
    }

    /// Backend: pop the next request (slot stays occupied until the
    /// response is pushed).
    pub fn pop_request(&mut self) -> Option<Req> {
        if !self.attached {
            return None;
        }
        let r = self.requests.pop_front();
        if r.is_some() {
            self.in_flight += 1;
        }
        r
    }

    /// Backend: push a response, releasing one in-flight slot.
    pub fn push_response(&mut self, resp: Resp) -> Result<(), RingError> {
        if !self.attached {
            return Err(RingError::Detached);
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        self.responses.push_back(resp);
        self.resp_count += 1;
        Ok(())
    }

    /// Frontend: pop the next response.
    pub fn pop_response(&mut self) -> Option<Resp> {
        self.responses.pop_front()
    }

    /// Frontend: pop every queued response into `out` in one sweep,
    /// returning how many were appended — the rx mirror of
    /// [`Self::pop_requests_into`], for frontends draining a switched
    /// burst without a pop call per frame.
    pub fn pop_responses_into(&mut self, out: &mut Vec<Resp>) -> usize {
        let n = self.responses.len();
        out.extend(self.responses.drain(..));
        n
    }

    /// Frontend: push a whole batch of requests, or none of them.
    ///
    /// Validate-then-apply: if the batch exceeds the free slots the ring
    /// is left untouched and [`RingError::Full`] is returned, so callers
    /// never have to unpick a half-submitted batch.
    pub fn push_requests(&mut self, reqs: Vec<Req>) -> Result<usize, RingError> {
        if !self.attached {
            return Err(RingError::Detached);
        }
        if reqs.len() > self.free_slots() {
            return Err(RingError::Full);
        }
        let n = reqs.len();
        self.requests.extend(reqs);
        self.req_count += n as u64;
        Ok(n)
    }

    /// Backend: pop every queued request into `out` in one sweep,
    /// returning how many were appended. All popped slots stay occupied
    /// until their responses are pushed, as with [`Self::pop_request`].
    pub fn pop_requests_into(&mut self, out: &mut Vec<Req>) -> usize {
        if !self.attached {
            return 0;
        }
        let n = self.requests.len();
        out.extend(self.requests.drain(..));
        self.in_flight += n;
        n
    }

    /// Backend: push a batch of responses, releasing their slots.
    pub fn push_responses(&mut self, resps: Vec<Resp>) -> Result<usize, RingError> {
        if !self.attached {
            return Err(RingError::Detached);
        }
        let n = resps.len();
        self.in_flight = self.in_flight.saturating_sub(n);
        self.responses.extend(resps);
        self.resp_count += n as u64;
        Ok(n)
    }

    /// Backend: push a batch of responses from an iterator, releasing
    /// their slots — the allocation-free mirror of
    /// [`Self::push_responses`] for callers draining a scratch buffer.
    pub fn push_responses_iter(
        &mut self,
        resps: impl ExactSizeIterator<Item = Resp>,
    ) -> Result<usize, RingError> {
        if !self.attached {
            return Err(RingError::Detached);
        }
        let n = resps.len();
        self.in_flight = self.in_flight.saturating_sub(n);
        self.responses.extend(resps);
        self.resp_count += n as u64;
        Ok(n)
    }

    /// Pending request count.
    pub fn pending_requests(&self) -> usize {
        self.requests.len()
    }

    /// Pending response count.
    pub fn pending_responses(&self) -> usize {
        self.responses.len()
    }

    /// Requests consumed but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Detaches the ring (backend restart / domain death). Outstanding
    /// requests are dropped; the frontend observes [`RingError::Detached`]
    /// and renegotiates — the behaviour Figure 6.3 measures.
    pub fn detach(&mut self) -> usize {
        self.attached = false;
        let lost = self.requests.len() + self.in_flight;
        self.requests.clear();
        self.responses.clear();
        self.in_flight = 0;
        lost
    }

    /// Whether the ring is attached.
    pub fn is_attached(&self) -> bool {
        self.attached
    }

    /// Lifetime request / response totals.
    pub fn totals(&self) -> (u64, u64) {
        (self.req_count, self.resp_count)
    }
}

/// Identifies a shared ring by its grant rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingId {
    /// The granting (frontend) domain.
    pub granter: DomId,
    /// The grant reference of the shared page.
    pub gref: GrantRef,
}

/// A registry of shared rings, standing in for shared machine pages.
#[derive(Debug)]
pub struct RingHub<Req, Resp> {
    rings: FastMap<RingId, Ring<Req, Resp>>,
}

impl<Req, Resp> RingHub<Req, Resp> {
    /// Creates an empty hub.
    pub fn new() -> Self {
        RingHub {
            rings: FastMap::default(),
        }
    }

    /// Creates a ring for `id` with the default slot count.
    pub fn create(&mut self, id: RingId) {
        self.create_with_slots(id, DEFAULT_RING_SLOTS);
    }

    /// Creates a ring for `id` with an explicit slot count.
    pub fn create_with_slots(&mut self, id: RingId, slots: usize) {
        self.rings.insert(id, Ring::new(slots));
    }

    /// Accesses a ring.
    pub fn get_mut(&mut self, id: RingId) -> Result<&mut Ring<Req, Resp>, RingError> {
        self.rings.get_mut(&id).ok_or(RingError::NotFound)
    }

    /// Read-only access.
    pub fn get(&self, id: RingId) -> Result<&Ring<Req, Resp>, RingError> {
        self.rings.get(&id).ok_or(RingError::NotFound)
    }

    /// Destroys a ring entirely (page reclaimed after unmap).
    pub fn destroy(&mut self, id: RingId) -> bool {
        self.rings.remove(&id).is_some()
    }

    /// Detaches every ring granted by `dom` (frontend death) — backends
    /// observe `Detached` on next touch.
    pub fn detach_granter(&mut self, dom: DomId) -> usize {
        let mut n = 0;
        for (id, ring) in self.rings.iter_mut() {
            if id.granter == dom && ring.is_attached() {
                ring.detach();
                n += 1;
            }
        }
        n
    }

    /// Number of rings present.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Whether the hub holds no rings.
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }
}

impl<Req, Resp> Default for RingHub<Req, Resp> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(g: u32, r: u32) -> RingId {
        RingId {
            granter: DomId(g),
            gref: GrantRef(r),
        }
    }

    #[test]
    fn request_response_cycle() {
        let mut ring: Ring<u32, u32> = Ring::new(4);
        ring.push_request(10).unwrap();
        ring.push_request(20).unwrap();
        assert_eq!(ring.pending_requests(), 2);
        assert_eq!(ring.pop_request(), Some(10));
        assert_eq!(ring.in_flight(), 1);
        ring.push_response(110).unwrap();
        assert_eq!(ring.in_flight(), 0);
        assert_eq!(ring.pop_response(), Some(110));
        assert_eq!(ring.totals(), (2, 1));
    }

    #[test]
    fn ring_full_backpressure() {
        let mut ring: Ring<u32, u32> = Ring::new(2);
        ring.push_request(1).unwrap();
        ring.push_request(2).unwrap();
        assert_eq!(ring.push_request(3), Err(RingError::Full));
        // Consuming is not enough — the slot is released by the response.
        let _ = ring.pop_request().unwrap();
        assert_eq!(ring.push_request(3), Err(RingError::Full));
        ring.push_response(101).unwrap();
        ring.push_request(3).unwrap();
    }

    #[test]
    fn detach_drops_outstanding_work() {
        let mut ring: Ring<u32, u32> = Ring::new(8);
        ring.push_request(1).unwrap();
        ring.push_request(2).unwrap();
        let _ = ring.pop_request();
        let lost = ring.detach();
        assert_eq!(lost, 2, "one queued + one in flight");
        assert_eq!(ring.push_request(3), Err(RingError::Detached));
        assert!(ring.pop_request().is_none());
    }

    #[test]
    fn batch_push_is_all_or_nothing() {
        let mut ring: Ring<u32, u32> = Ring::new(4);
        ring.push_request(0).unwrap();
        // 4 requests into 3 free slots: refused, ring untouched.
        assert_eq!(ring.push_requests(vec![1, 2, 3, 4]), Err(RingError::Full));
        assert_eq!(ring.pending_requests(), 1);
        assert_eq!(ring.push_requests(vec![1, 2, 3]), Ok(3));
        assert_eq!(ring.pending_requests(), 4);
        assert_eq!(ring.totals().0, 4);
    }

    #[test]
    fn batch_pop_and_respond_round_trip() {
        let mut ring: Ring<u32, u32> = Ring::new(8);
        ring.push_requests((0..6).collect()).unwrap();
        let mut got = Vec::new();
        assert_eq!(ring.pop_requests_into(&mut got), 6);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ring.in_flight(), 6);
        // Slots stay occupied until the responses land.
        assert_eq!(ring.free_slots(), 2);
        ring.push_responses(got.iter().map(|r| r * 10).collect())
            .unwrap();
        assert_eq!(ring.in_flight(), 0);
        let resps: Vec<u32> = std::iter::from_fn(|| ring.pop_response()).collect();
        assert_eq!(resps, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn batch_ops_refuse_detached_ring() {
        let mut ring: Ring<u32, u32> = Ring::new(4);
        ring.push_request(1).unwrap();
        ring.detach();
        assert_eq!(ring.push_requests(vec![2]), Err(RingError::Detached));
        let mut out = Vec::new();
        assert_eq!(ring.pop_requests_into(&mut out), 0);
        assert_eq!(ring.push_responses(vec![9]), Err(RingError::Detached));
    }

    #[test]
    fn hub_rendezvous() {
        let mut hub: RingHub<u32, u32> = RingHub::new();
        hub.create(rid(5, 7));
        assert!(hub.get_mut(rid(5, 7)).is_ok());
        assert_eq!(hub.get_mut(rid(5, 8)).unwrap_err(), RingError::NotFound);
        hub.get_mut(rid(5, 7)).unwrap().push_request(1).unwrap();
        assert!(hub.destroy(rid(5, 7)));
        assert!(!hub.destroy(rid(5, 7)));
    }

    #[test]
    fn page_handles_cross_the_ring_without_copy() {
        use xoar_hypervisor::memory::PageRef;
        // Grant-mapped transfers carry page bodies as shared handles: the
        // backend pops the very allocation the frontend pushed.
        let mut ring: Ring<PageRef, PageRef> = Ring::new(4);
        let page = PageRef::new(&[0x5au8; 4096]);
        ring.push_request(page.clone()).unwrap();
        let seen = ring.pop_request().unwrap();
        assert!(
            PageRef::ptr_eq(&page, &seen),
            "no byte copy on the request path"
        );
        ring.push_response(seen).unwrap();
        let back = ring.pop_response().unwrap();
        assert!(
            PageRef::ptr_eq(&page, &back),
            "no byte copy on the response path"
        );
    }

    #[test]
    fn detach_granter_hits_all_rings_of_domain() {
        let mut hub: RingHub<u32, u32> = RingHub::new();
        hub.create(rid(5, 1));
        hub.create(rid(5, 2));
        hub.create(rid(6, 1));
        assert_eq!(hub.detach_granter(DomId(5)), 2);
        assert!(!hub.get(rid(5, 1)).unwrap().is_attached());
        assert!(hub.get(rid(6, 1)).unwrap().is_attached());
        // Idempotent: already-detached rings are not counted again.
        assert_eq!(hub.detach_granter(DomId(5)), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Slot occupancy never exceeds capacity under arbitrary
    /// interleavings of push/pop/respond.
    #[test]
    fn slots_bounded() {
        Runner::cases(64).run("slot occupancy is bounded", |g| {
            let ops = g.vec(1..200, |g| g.u8(0..3));
            let slots = g.usize(1..16);
            let mut ring: Ring<u64, u64> = Ring::new(slots);
            let mut seq = 0u64;
            for op in ops {
                match op {
                    0 => {
                        let _ = ring.push_request(seq);
                        seq += 1;
                    }
                    1 => {
                        let _ = ring.pop_request();
                    }
                    _ => {
                        if ring.in_flight() > 0 {
                            ring.push_response(seq).unwrap();
                        }
                    }
                }
                assert!(ring.pending_requests() + ring.in_flight() <= slots);
            }
        });
    }

    /// FIFO order is preserved end to end.
    #[test]
    fn fifo_order() {
        Runner::cases(64).run("FIFO order end to end", |g| {
            let n = g.usize(1..20);
            let mut ring: Ring<usize, usize> = Ring::new(n);
            for i in 0..n {
                ring.push_request(i).unwrap();
            }
            for i in 0..n {
                let req = ring.pop_request().unwrap();
                assert_eq!(req, i);
                ring.push_response(req * 2).unwrap();
            }
            for i in 0..n {
                assert_eq!(ring.pop_response().unwrap(), i * 2);
            }
        });
    }
}
