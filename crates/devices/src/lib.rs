//! # xoar-devices
//!
//! The virtual-device substrate of the platform (§4.3–§4.5, §5.3–§5.5):
//!
//! * [`ring`] — shared-memory I/O rings, the producer/consumer channels
//!   every split driver is built on;
//! * [`xenbus`] — the XenStore-mediated handshake that connects frontend
//!   and backend halves (grant + event-channel rendezvous);
//! * [`hw`] — parameterised physical-hardware models (Gigabit NIC,
//!   7200 RPM disk, UART) substituting for the paper's testbed silicon;
//! * [`net`] / [`blk`] — the NetBack/NetFront and BlkBack/BlkFront split
//!   drivers, including BlkBack's image-store proxy daemon;
//! * [`fabric`] — the virtual network fabric: a learning switch with a
//!   per-flow connection table and NAT port allocation, giving guests an
//!   inter-guest network beside the physical uplink;
//! * [`console`] — the Console Manager (xenconsoled) virtual console
//!   service;
//! * [`pci`] — the PCI bus, configuration space, and PCIBack multiplexer
//!   with its steady-state sealing;
//! * [`emu`] — the QEMU device model for HVM guests, hosted either in
//!   Dom0 (stock Xen) or a per-guest stub domain (Xoar);
//! * [`sriov`] — SR-IOV virtual functions and the §5.3 sharing analysis.

#![warn(missing_docs)]

pub mod blk;
pub mod console;
pub mod emu;
pub mod fabric;
pub mod hw;
pub mod net;
pub mod pci;
pub mod ring;
pub mod sriov;
pub mod xenbus;

pub use blk::{BlkBack, BlkFront, BlkRingHub};
pub use console::ConsoleManager;
pub use emu::QemuDeviceModel;
pub use fabric::{Fabric, FlowKey, NatAlloc, SwitchStats};
pub use hw::{DiskModel, NicModel};
pub use net::{NetBack, NetFront, NetRingHub, WireEndpoint};
pub use pci::{PciBack, PciBus};
pub use ring::{Ring, RingHub, RingId};
pub use sriov::SrIovNic;
pub use xenbus::{Connection, DeviceKind, XenbusState};
