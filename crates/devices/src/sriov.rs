//! SR-IOV: hardware-multiplexed virtual functions (§5.3).
//!
//! "Hardware virtualization techniques like SR-IOV allow the creation of
//! virtualized devices, where the multiplexing is performed in hardware,
//! thereby obviating the need for driver domains. However, provisioning
//! new virtual devices on the fly requires a persistent shard to assign
//! interrupts and multiplex accesses to the PCI configuration space.
//! Ironically, although appearing to reduce the amount of sharing in the
//! system, such techniques may increase the number of shared, trusted
//! components."
//!
//! This module models that trade-off concretely: a [`SrIovNic`] exposes
//! virtual functions that are passed through to guests directly (no
//! NetBack on the data path), but every VF *provisioning* operation goes
//! through PCIBack's configuration space — so PCIBack can no longer be
//! destroyed after boot, and the number of persistent shared components
//! goes up. [`sharing_analysis`] quantifies the irony.

use xoar_hypervisor::{DomId, PciAddress};

use crate::pci::{PciBack, PciError};

/// One virtual function of an SR-IOV device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualFunction {
    /// The VF's own PCI address (function number above the PF).
    pub addr: PciAddress,
    /// The guest it is passed through to, if any.
    pub assigned_to: Option<DomId>,
    /// The interrupt vector PCIBack routed for it.
    pub irq: Option<u32>,
}

/// An SR-IOV capable NIC: one physical function, many virtual functions.
#[derive(Debug)]
pub struct SrIovNic {
    /// The physical function's address.
    pub pf: PciAddress,
    /// Hardware limit on VFs.
    pub max_vfs: u8,
    vfs: Vec<VirtualFunction>,
    enabled: bool,
}

/// Errors from SR-IOV provisioning.
#[derive(Debug, PartialEq, Eq)]
pub enum SrIovError {
    /// SR-IOV not yet enabled on the PF.
    NotEnabled,
    /// All VFs are provisioned.
    NoFreeVfs,
    /// The VF index is invalid or unassigned.
    BadVf(u8),
    /// The configuration-space operation failed — typically because
    /// PCIBack has been sealed/destroyed (the §5.3 irony).
    Pci(PciError),
}

impl std::fmt::Display for SrIovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SrIovError::NotEnabled => write!(f, "SR-IOV not enabled on the PF"),
            SrIovError::NoFreeVfs => write!(f, "no free virtual functions"),
            SrIovError::BadVf(i) => write!(f, "bad VF index {i}"),
            SrIovError::Pci(e) => write!(f, "config space: {e}"),
        }
    }
}

impl std::error::Error for SrIovError {}

impl From<PciError> for SrIovError {
    fn from(e: PciError) -> Self {
        SrIovError::Pci(e)
    }
}

/// SR-IOV capability config-space offsets (model).
const SRIOV_CTRL: u16 = 0x168;
const SRIOV_NUM_VFS: u16 = 0x170;

impl SrIovNic {
    /// Creates an SR-IOV NIC over physical function `pf`.
    pub fn new(pf: PciAddress, max_vfs: u8) -> Self {
        SrIovNic {
            pf,
            max_vfs,
            vfs: Vec::new(),
            enabled: false,
        }
    }

    /// Enables SR-IOV: writes the capability registers through PCIBack
    /// (which must therefore still be alive) and instantiates the VFs.
    pub fn enable(&mut self, pciback: &mut PciBack, num_vfs: u8) -> Result<(), SrIovError> {
        let n = num_vfs.min(self.max_vfs);
        pciback.config_write(pciback.dom, self.pf, SRIOV_CTRL, 1)?;
        pciback.config_write(pciback.dom, self.pf, SRIOV_NUM_VFS, n as u32)?;
        self.vfs = (0..n)
            .map(|i| VirtualFunction {
                addr: PciAddress::new(self.pf.domain, self.pf.bus, self.pf.slot + 1 + i),
                assigned_to: None,
                irq: None,
            })
            .collect();
        self.enabled = true;
        Ok(())
    }

    /// Provisions a free VF for `guest`: PCIBack assigns an interrupt and
    /// exposes the VF's config space — "provisioning new virtual devices
    /// on the fly requires a persistent shard".
    pub fn assign_vf(
        &mut self,
        pciback: &mut PciBack,
        guest: DomId,
    ) -> Result<PciAddress, SrIovError> {
        if !self.enabled {
            return Err(SrIovError::NotEnabled);
        }
        let idx = self
            .vfs
            .iter()
            .position(|vf| vf.assigned_to.is_none())
            .ok_or(SrIovError::NoFreeVfs)?;
        // Interrupt routing through the (shared) configuration space.
        let irq = 48 + idx as u32;
        pciback.config_write(pciback.dom, self.pf, 0x180 + idx as u16, irq)?;
        let vf = &mut self.vfs[idx];
        vf.assigned_to = Some(guest);
        vf.irq = Some(irq);
        Ok(vf.addr)
    }

    /// Releases a guest's VF.
    pub fn release_vf(&mut self, guest: DomId) -> Result<(), SrIovError> {
        let vf = self
            .vfs
            .iter_mut()
            .find(|vf| vf.assigned_to == Some(guest))
            .ok_or(SrIovError::BadVf(0))?;
        vf.assigned_to = None;
        vf.irq = None;
        Ok(())
    }

    /// Currently assigned VFs.
    pub fn assigned(&self) -> Vec<(PciAddress, DomId)> {
        self.vfs
            .iter()
            .filter_map(|vf| vf.assigned_to.map(|d| (vf.addr, d)))
            .collect()
    }

    /// Free VFs remaining.
    pub fn free_vfs(&self) -> usize {
        self.vfs
            .iter()
            .filter(|vf| vf.assigned_to.is_none())
            .count()
    }
}

/// The §5.3 sharing comparison: persistent shared trusted components on
/// the I/O path, with driver domains versus SR-IOV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingAnalysis {
    /// Persistent shared components with a NetBack driver domain
    /// (NetBack itself; PCIBack is destroyed after boot).
    pub with_driver_domain: usize,
    /// Persistent shared components with SR-IOV (no NetBack, but PCIBack
    /// must persist for on-the-fly provisioning — plus the hardware
    /// multiplexer itself is now shared and trusted).
    pub with_sriov: usize,
}

/// Computes the §5.3 comparison for a host with `guests` guests.
pub fn sharing_analysis(dynamic_provisioning: bool) -> SharingAnalysis {
    // Driver-domain path: NetBack is the one persistent shared component
    // (PCIBack seals and dies at steady state).
    let with_driver_domain = 1;
    // SR-IOV path: the hardware multiplexer (the PF) is shared by every
    // VF holder, and if VFs are provisioned dynamically PCIBack must
    // stay resident too.
    let with_sriov = 1 + usize::from(dynamic_provisioning);
    SharingAnalysis {
        with_driver_domain,
        with_sriov,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pci::PciBus;

    fn setup() -> (PciBack, SrIovNic) {
        let pciback = PciBack::new(DomId(1), PciBus::testbed());
        let nic = SrIovNic::new(PciAddress::new(0, 2, 0), 8);
        (pciback, nic)
    }

    #[test]
    fn enable_and_assign_vfs() {
        let (mut pb, mut nic) = setup();
        nic.enable(&mut pb, 4).unwrap();
        assert_eq!(nic.free_vfs(), 4);
        let vf1 = nic.assign_vf(&mut pb, DomId(5)).unwrap();
        let vf2 = nic.assign_vf(&mut pb, DomId(6)).unwrap();
        assert_ne!(vf1, vf2);
        assert_eq!(nic.free_vfs(), 2);
        assert_eq!(nic.assigned().len(), 2);
    }

    #[test]
    fn vf_exhaustion() {
        let (mut pb, mut nic) = setup();
        nic.enable(&mut pb, 2).unwrap();
        nic.assign_vf(&mut pb, DomId(5)).unwrap();
        nic.assign_vf(&mut pb, DomId(6)).unwrap();
        assert_eq!(nic.assign_vf(&mut pb, DomId(7)), Err(SrIovError::NoFreeVfs));
        nic.release_vf(DomId(5)).unwrap();
        nic.assign_vf(&mut pb, DomId(7)).unwrap();
    }

    #[test]
    fn assignment_requires_enable() {
        let (mut pb, mut nic) = setup();
        assert_eq!(
            nic.assign_vf(&mut pb, DomId(5)),
            Err(SrIovError::NotEnabled)
        );
    }

    #[test]
    fn vf_count_capped_by_hardware() {
        let (mut pb, mut nic) = setup();
        nic.enable(&mut pb, 200).unwrap();
        assert_eq!(nic.free_vfs(), 8, "hardware max");
    }

    #[test]
    fn provisioning_fails_after_pciback_destroyed() {
        // The §5.3 irony, mechanised: once PCIBack is sealed/destroyed,
        // no new VF can be provisioned — keeping dynamic SR-IOV means
        // keeping a persistent privileged shard.
        let (mut pb, mut nic) = setup();
        nic.enable(&mut pb, 4).unwrap();
        nic.assign_vf(&mut pb, DomId(5)).unwrap();
        pb.seal();
        let err = nic.assign_vf(&mut pb, DomId(6)).unwrap_err();
        assert!(matches!(err, SrIovError::Pci(PciError::Sealed)));
        // Already-assigned VFs keep working (release needs no config
        // space).
        nic.release_vf(DomId(5)).unwrap();
    }

    #[test]
    fn sharing_analysis_matches_the_papers_irony() {
        // Static partitioning: SR-IOV matches the driver domain count.
        let static_cfg = sharing_analysis(false);
        assert_eq!(static_cfg.with_sriov, static_cfg.with_driver_domain);
        // Dynamic provisioning: SR-IOV *increases* the persistent shared
        // component count.
        let dynamic = sharing_analysis(true);
        assert!(dynamic.with_sriov > dynamic.with_driver_domain);
    }
}
