//! Physical hardware models.
//!
//! The paper's testbed hardware — a Tigon 3 Gigabit NIC and a Western
//! Digital 7200 RPM SATA disk — is not available here, so these models
//! provide the closest synthetic equivalents: parameterised service-time
//! functions that the device backends consult to decide how long (in
//! simulated nanoseconds) each operation takes. The *shape* of the
//! evaluation (who wins, where the knees are) depends on these relative
//! costs, not on absolute silicon behaviour.

use xoar_hypervisor::PciAddress;

/// Nanoseconds per second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A model of a network interface controller.
#[derive(Debug, Clone)]
pub struct NicModel {
    /// Link speed in bits per second.
    pub link_bps: u64,
    /// Per-packet fixed overhead (interrupt + DMA setup), nanoseconds.
    pub per_packet_ns: u64,
    /// Maximum transmission unit in bytes.
    pub mtu: usize,
    /// PCI identity.
    pub pci: PciAddress,
    bytes_tx: u64,
    bytes_rx: u64,
}

impl NicModel {
    /// A Gigabit NIC resembling the testbed's Tigon 3.
    pub fn gigabit(pci: PciAddress) -> Self {
        NicModel {
            link_bps: 1_000_000_000,
            per_packet_ns: 2_000,
            mtu: 1500,
            pci,
            bytes_tx: 0,
            bytes_rx: 0,
        }
    }

    /// Time to serialise `bytes` onto the wire, including per-packet
    /// overheads.
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        let packets = bytes.div_ceil(self.mtu).max(1) as u64;
        let wire = (bytes as u64 * 8).saturating_mul(NS_PER_SEC) / self.link_bps;
        wire + packets * self.per_packet_ns
    }

    /// Records transmitted bytes.
    pub fn record_tx(&mut self, bytes: usize) {
        self.bytes_tx += bytes as u64;
    }

    /// Records received bytes.
    pub fn record_rx(&mut self, bytes: usize) {
        self.bytes_rx += bytes as u64;
    }

    /// Lifetime (tx, rx) byte counters.
    pub fn byte_totals(&self) -> (u64, u64) {
        (self.bytes_tx, self.bytes_rx)
    }

    /// Theoretical link throughput in MB/s (the 125 MB/s ceiling visible
    /// in Figure 6.2).
    pub fn link_mbps(&self) -> f64 {
        self.link_bps as f64 / 8.0 / 1e6
    }
}

/// A model of a rotational disk.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Sustained sequential throughput, bytes per second.
    pub seq_bps: u64,
    /// Average seek + rotational latency for a random access, ns.
    pub seek_ns: u64,
    /// Capacity in bytes.
    pub capacity: u64,
    /// PCI identity of the controller.
    pub pci: PciAddress,
    bytes_read: u64,
    bytes_written: u64,
    ops: u64,
}

impl DiskModel {
    /// A 7200 RPM SATA disk resembling the testbed's WD3200AAKS (320 GB,
    /// ~100 MB/s sequential, ~8.9 ms average access).
    pub fn sata_7200(pci: PciAddress) -> Self {
        DiskModel {
            seq_bps: 100_000_000,
            seek_ns: 8_900_000,
            capacity: 320 * 1_000_000_000,
            pci,
            bytes_read: 0,
            bytes_written: 0,
            ops: 0,
        }
    }

    /// Service time of one request.
    ///
    /// `sequential` requests skip the seek penalty (the common case for
    /// streaming workloads like the 2 GB wget-to-disk test); random
    /// requests pay it in full.
    pub fn service_time_ns(&self, bytes: usize, sequential: bool) -> u64 {
        let transfer = (bytes as u64).saturating_mul(NS_PER_SEC) / self.seq_bps;
        if sequential {
            transfer
        } else {
            self.seek_ns + transfer
        }
    }

    /// Records a read.
    pub fn record_read(&mut self, bytes: usize) {
        self.bytes_read += bytes as u64;
        self.ops += 1;
    }

    /// Records a write.
    pub fn record_write(&mut self, bytes: usize) {
        self.bytes_written += bytes as u64;
        self.ops += 1;
    }

    /// Lifetime (read, written, ops) counters.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.bytes_read, self.bytes_written, self.ops)
    }
}

/// The serial controller, retained by Xen itself (§5.5) and virtualised
/// for guests by the Console Manager.
#[derive(Debug, Clone)]
pub struct SerialModel {
    /// Baud rate (115200 for the platform console).
    pub baud: u32,
    /// I/O-port base (COM1 = 0x3f8).
    pub io_port_base: u16,
}

impl SerialModel {
    /// The standard COM1 UART.
    pub fn com1() -> Self {
        SerialModel {
            baud: 115_200,
            io_port_base: 0x3f8,
        }
    }

    /// Time to emit `bytes` (10 bits per byte on the wire: start + 8 +
    /// stop).
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * 10).saturating_mul(NS_PER_SEC) / self.baud as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pci() -> PciAddress {
        PciAddress::new(0, 2, 0)
    }

    #[test]
    fn gigabit_nic_throughput_ceiling() {
        let nic = NicModel::gigabit(pci());
        assert!((nic.link_mbps() - 125.0).abs() < 0.01);
        // 1500 bytes at 1 Gb/s = 12 µs wire time + 2 µs overhead.
        let t = nic.tx_time_ns(1500);
        assert_eq!(t, 12_000 + 2_000);
    }

    #[test]
    fn nic_large_transfer_scales_linearly() {
        let nic = NicModel::gigabit(pci());
        let one_mb = nic.tx_time_ns(1_000_000);
        let two_mb = nic.tx_time_ns(2_000_000);
        assert!(two_mb > one_mb);
        // Effective throughput approaches but never exceeds line rate.
        let eff_bps = 1_000_000f64 * 8.0 / (one_mb as f64 / 1e9);
        assert!(eff_bps < 1e9, "effective {eff_bps} must be under line rate");
        assert!(eff_bps > 0.8e9, "overhead should cost well under 20%");
    }

    #[test]
    fn disk_sequential_vs_random() {
        let disk = DiskModel::sata_7200(pci());
        let seq = disk.service_time_ns(4096, true);
        let rnd = disk.service_time_ns(4096, false);
        assert!(rnd > seq + 8_000_000, "random pays the seek");
        // 4 KiB at 100 MB/s ≈ 41 µs.
        assert!((seq as i64 - 40_960).abs() < 1_000);
    }

    #[test]
    fn disk_counters() {
        let mut disk = DiskModel::sata_7200(pci());
        disk.record_read(4096);
        disk.record_write(8192);
        assert_eq!(disk.totals(), (4096, 8192, 2));
    }

    #[test]
    fn nic_counters() {
        let mut nic = NicModel::gigabit(pci());
        nic.record_tx(100);
        nic.record_rx(200);
        assert_eq!(nic.byte_totals(), (100, 200));
    }

    #[test]
    fn serial_timing() {
        let s = SerialModel::com1();
        // 115200 baud → 11520 bytes/s → ~86.8 µs per byte.
        let t = s.tx_time_ns(1);
        assert!((t as i64 - 86_805).abs() < 100);
    }

    #[test]
    fn zero_byte_transfers_cost_only_overhead() {
        let nic = NicModel::gigabit(pci());
        assert_eq!(nic.tx_time_ns(0), nic.per_packet_ns);
        let disk = DiskModel::sata_7200(pci());
        assert_eq!(disk.service_time_ns(0, true), 0);
    }
}
