//! The virtual network fabric: a software switch between guest vifs.
//!
//! The hardware model ([`crate::net::WireEndpoint`]) only carries
//! guest ↔ external-host traffic, so the wget/Apache figures run on a
//! loopback. The fabric adds the inter-guest network the fleet-scale
//! experiments need: NetBack terminates its guests' tx frames into the
//! switch instead of putting every frame on the physical wire, and the
//! switch delivers guest→guest frames directly into the destination
//! ring — one hop, no wire, payloads moved by [`PageRef`] refcount.
//!
//! Structure (the krata vbridge/NAT design, collapsed into one model):
//!
//! * a **port table**: one port per attached vif plus the uplink port to
//!   the [`WireEndpoint`];
//! * **learning tables** mapping MAC and DomId to ports. Attach seeds
//!   them (the gratuitous ARP a real vif emits on link-up); ingress
//!   traffic re-learns, so a re-attached or migrated vif repoints its
//!   entry with its first frame;
//! * a **per-flow connection table** keyed by `(flow, src_dom, dst_dom)`
//!   on an [`InlineFastMap`]: the handful of flows active in one batch
//!   sit in inline slots probed without hashing, the other ~100k
//!   concurrent connections live in the `FastMap` spill;
//! * a **NAT allocator** for guest ↔ external flows: each such
//!   connection holds an external port from the ephemeral range for its
//!   lifetime, released (and recycled) when the flow closes;
//! * **batched switching**: one [`Fabric::switch`] pass drains the whole
//!   ingress queue, delivers each frame, and records *one* notify target
//!   per destination backend — the caller wraps those in a single
//!   multicall, the same batched-notify discipline as the tx path.
//!
//! [`PageRef`]: xoar_hypervisor::memory::PageRef

use crate::net::{NetPacket, NetRingHub, WireEndpoint, MAX_GSO_BYTES};
use crate::ring::DEFAULT_RING_SLOTS;
use crate::xenbus::Connection;

use xoar_hypervisor::fasthash::{FastMap, InlineFastMap};
use xoar_hypervisor::DomId;

/// The pseudo-domain standing for "beyond the uplink": flows whose far
/// end is an external host are keyed against this id in the connection
/// table. Never a real domain (`u32::MAX` is the analyzer's blanket
/// marker, so the uplink sits one below it).
pub const UPLINK: DomId = DomId(u32::MAX - 1);

/// First port of the NAT ephemeral range (49152, the IANA dynamic base).
pub const NAT_PORT_BASE: u16 = 0xC000;

/// Size of the NAT ephemeral range (49152..=65535).
pub const NAT_PORT_SPAN: u16 = u16::MAX - NAT_PORT_BASE + 1;

/// Inline slots of the flow table: the flows of one switching batch.
const INLINE_FLOWS: usize = 4;

/// Route sentinel: the frame is dropped (oversize, NAT exhaustion,
/// unknown or detached destination).
const ROUTE_DROP: u16 = u16::MAX;

/// Route sentinel: the frame leaves through the uplink port.
const ROUTE_UPLINK: u16 = u16::MAX - 1;

/// The locally-administered MAC the fabric assigns to a vif, derived
/// from its domain id (as Xen derives `00:16:3e:…` vif MACs).
pub fn mac_of(dom: DomId) -> [u8; 6] {
    let d = dom.0.to_be_bytes();
    [0x02, 0x5e, d[0], d[1], d[2], d[3]]
}

/// A MAC as a learning-table key (one u64 word: one hash step).
fn mac_key(mac: [u8; 6]) -> u64 {
    u64::from_be_bytes([0, 0, mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]])
}

/// A connection-table key: one flow between two endpoints, directional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Flow identifier (a TCP connection in the workloads).
    pub flow: u64,
    /// Source endpoint.
    pub src: DomId,
    /// Destination endpoint ([`UPLINK`] for guest→external).
    pub dst: DomId,
}

/// Per-flow connection state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowEntry {
    /// NAT external port held by this connection (guest↔external only).
    pub nat_port: Option<u16>,
    /// Frames switched on this flow.
    pub packets: u64,
    /// Bytes switched on this flow.
    pub bytes: u64,
    /// Last sequence number seen.
    pub last_seq: u64,
}

/// NAT external-port allocator over the ephemeral range: a free list of
/// recycled ports in front of a monotonic high-water mark. Allocation
/// and release are O(1) and allocation-free in steady state (the free
/// list's capacity is retained across the recycle churn).
#[derive(Debug, Default)]
pub struct NatAlloc {
    /// Next never-used offset above [`NAT_PORT_BASE`].
    high_water: u16,
    /// Released ports awaiting reuse (LIFO: the hottest port first).
    free: Vec<u16>,
    /// Exhaustion events (allocation requests refused).
    exhausted: u64,
}

impl NatAlloc {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an external port, preferring recycled ones. `None` when
    /// the whole ephemeral range is in flight (port exhaustion — the
    /// caller sees the connection refused, as with a real NAT).
    pub fn alloc(&mut self) -> Option<u16> {
        if let Some(p) = self.free.pop() {
            return Some(p);
        }
        if self.high_water == NAT_PORT_SPAN {
            self.exhausted += 1;
            return None;
        }
        let p = NAT_PORT_BASE + self.high_water;
        self.high_water += 1;
        Some(p)
    }

    /// Returns `port` to the pool. Only ports handed out by
    /// [`Self::alloc`] may come back; debug builds assert the range.
    pub fn release(&mut self, port: u16) {
        debug_assert!(port >= NAT_PORT_BASE);
        debug_assert!((port - NAT_PORT_BASE) < self.high_water);
        debug_assert!(!self.free.contains(&port), "double release of {port}");
        self.free.push(port);
    }

    /// Ports currently held by live connections.
    pub fn in_use(&self) -> usize {
        self.high_water as usize - self.free.len()
    }

    /// Allocation requests refused for exhaustion.
    pub fn exhausted_count(&self) -> u64 {
        self.exhausted
    }
}

/// What a fabric port is wired to.
#[derive(Debug, Clone, Copy)]
enum PortBinding {
    /// The uplink to the [`WireEndpoint`] hardware model.
    Uplink,
    /// An attached guest vif (the negotiated connection carries the ring
    /// and event-channel rendezvous the switch delivers through).
    Guest(Connection),
}

/// Per-pass / lifetime switching statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStats {
    /// Frames switched guest→guest.
    pub to_guests: u64,
    /// Frames switched to the uplink (guest→external).
    pub to_uplink: u64,
    /// Bytes switched in total.
    pub bytes: u64,
    /// Frames dropped (oversize, unknown destination, detached ring).
    pub dropped: u64,
    /// Frames requeued under destination-ring backpressure.
    pub requeued: u64,
    /// Connection-table entries created by conn-track during switching.
    pub flows_learned: u64,
}

/// One direction of a connection as the switch's single hot-table
/// entry: the resolved destination stored next to the flow statistics,
/// so the per-frame switching path costs exactly one table probe.
#[derive(Debug, Clone, Copy)]
struct RouteEntry {
    /// Destination endpoint ([`UPLINK`] for guest→external).
    dst: DomId,
    /// The public per-flow statistics.
    entry: FlowEntry,
}

/// The virtual switch.
#[derive(Debug)]
pub struct Fabric {
    /// The shard domain hosting the switching plane (a NetBack: the
    /// fabric holds no privilege of its own — its only reach into guests
    /// is the grant-mapped rings of the port table, and its only
    /// hypercalls are the event-channel notifies the caller batches).
    pub dom: DomId,
    ports: Vec<PortBinding>,
    /// MAC → port, learned (seeded at attach, refreshed by ingress).
    mac_table: FastMap<u64, u16>,
    /// DomId → port, learned alongside the MAC table.
    dom_table: FastMap<DomId, u16>,
    /// The per-flow connection table, keyed by `(flow, src)` — each
    /// direction of a connection resolves to exactly one destination, so
    /// the key's `dst` leg lives inside the [`RouteEntry`] and one probe
    /// yields both the route and the statistics slot.
    flows: InlineFastMap<(u64, DomId), RouteEntry, INLINE_FLOWS>,
    /// Cold pre-learned resolutions: `(flow, src)` → dst for directions
    /// that have not carried traffic yet (the reverse leg written by
    /// [`Fabric::open_flow`], uplink ingress conn-track). Consulted only
    /// on a connection-table miss.
    resolve: FastMap<(u64, DomId), DomId>,
    /// NAT port allocator for guest↔external connections.
    nat: NatAlloc,
    /// Reverse NAT: external port → the guest-side flow holding it.
    nat_back: FastMap<u16, FlowKey>,
    /// Ingress queue: frames terminated into the switch, with their
    /// source endpoint.
    ingress: Vec<(DomId, NetPacket)>,
    /// Persistent backpressure scratch (swapped with `ingress` at the
    /// end of each pass, so the switch path never allocates in steady
    /// state — the same discipline as NetBack's rx requeue).
    requeue: Vec<(DomId, NetPacket)>,
    /// Persistent per-frame route scratch of the current pass: two bytes
    /// per frame (a port number or sentinel) written while routing, read
    /// back as run boundaries while delivering. Frames themselves never
    /// move until they drain straight into their destination ring.
    routes: Vec<u16>,
    /// Notify targets of the last pass: one `(backend, back_port)` per
    /// destination backend, deduplicated.
    notify: Vec<(DomId, u32)>,
    lifetime: SwitchStats,
}

impl Fabric {
    /// Creates a fabric hosted by `dom` with only the uplink port.
    pub fn new(dom: DomId) -> Self {
        Fabric {
            dom,
            ports: vec![PortBinding::Uplink],
            mac_table: FastMap::default(),
            dom_table: FastMap::default(),
            flows: InlineFastMap::new(),
            resolve: FastMap::default(),
            nat: NatAlloc::new(),
            nat_back: FastMap::default(),
            ingress: Vec::new(),
            requeue: Vec::new(),
            routes: Vec::new(),
            notify: Vec::new(),
            lifetime: SwitchStats::default(),
        }
    }

    // ================= ports and learning =================

    /// Attaches a vif to a fresh port and seeds the learning tables for
    /// it (the gratuitous ARP of link-up). Returns the port number.
    pub fn attach_port(&mut self, conn: Connection) -> u16 {
        let port = self.ports.len() as u16;
        self.ports.push(PortBinding::Guest(conn));
        self.learn(conn.guest, port);
        port
    }

    /// Detaches `guest`'s vif: the port empties and the learning entries
    /// are flushed (frames toward it now flood to the uplink).
    pub fn detach_port(&mut self, guest: DomId) -> bool {
        let Some(&port) = self.dom_table.get(&guest) else {
            return false;
        };
        self.ports[port as usize] = PortBinding::Uplink;
        self.dom_table.remove(&guest);
        self.mac_table.remove(&mac_key(mac_of(guest)));
        true
    }

    /// Records `dom` behind `port` in both learning tables.
    fn learn(&mut self, dom: DomId, port: u16) {
        self.dom_table.insert(dom, port);
        self.mac_table.insert(mac_key(mac_of(dom)), port);
    }

    /// The port currently learned for `dom`, if any.
    pub fn port_of(&self, dom: DomId) -> Option<u16> {
        self.dom_table.get(&dom).copied()
    }

    /// The port learned for a MAC address, if any.
    pub fn port_of_mac(&self, mac: [u8; 6]) -> Option<u16> {
        self.mac_table.get(&mac_key(mac)).copied()
    }

    /// Number of attached guest ports.
    pub fn guest_ports(&self) -> usize {
        self.ports
            .iter()
            .filter(|p| matches!(p, PortBinding::Guest(_)))
            .count()
    }

    // ================= connection table =================

    /// Opens a connection `flow: src → dst` (and its reverse-resolution
    /// entry — connections are bidirectional). For guest↔external flows
    /// (`dst == UPLINK`) an external NAT port is allocated and held for
    /// the connection's lifetime; `None` is returned on port exhaustion
    /// and the flow is not opened.
    pub fn open_flow(&mut self, flow: u64, src: DomId, dst: DomId) -> Option<FlowKey> {
        let key = FlowKey { flow, src, dst };
        if self.flows.get(&(flow, src)).is_some_and(|re| re.dst == dst) {
            return Some(key);
        }
        let nat_port = if dst == UPLINK || src == UPLINK {
            let p = self.nat.alloc()?;
            self.nat_back.insert(p, key);
            Some(p)
        } else {
            None
        };
        self.flows.insert(
            (flow, src),
            RouteEntry {
                dst,
                entry: FlowEntry {
                    nat_port,
                    ..FlowEntry::default()
                },
            },
        );
        self.resolve.entry((flow, dst)).or_insert(src);
        Some(key)
    }

    /// Closes a connection, dropping both directions' state and
    /// releasing its NAT port for reuse.
    pub fn close_flow(&mut self, flow: u64, src: DomId, dst: DomId) -> bool {
        if !self.flows.get(&(flow, src)).is_some_and(|re| re.dst == dst) {
            return false;
        }
        let re = self.flows.remove(&(flow, src)).expect("checked above");
        if self
            .flows
            .get(&(flow, dst))
            .is_some_and(|rev| rev.dst == src)
        {
            self.flows.remove(&(flow, dst));
        }
        self.resolve.remove(&(flow, src));
        self.resolve.remove(&(flow, dst));
        if let Some(p) = re.entry.nat_port {
            self.nat_back.remove(&p);
            self.nat.release(p);
        }
        true
    }

    /// Connection-table lookup — the gated hot path. Inline slots are
    /// probed before the spill map hashes.
    #[inline]
    pub fn lookup(&self, key: &FlowKey) -> Option<&FlowEntry> {
        match self.flows.get(&(key.flow, key.src)) {
            Some(re) if re.dst == key.dst => Some(&re.entry),
            _ => None,
        }
    }

    /// Live connection count (both tiers of the table).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The flow holding NAT `port`, if any (reverse translation).
    pub fn nat_flow(&self, port: u16) -> Option<&FlowKey> {
        self.nat_back.get(&port)
    }

    /// NAT ports currently held.
    pub fn nat_in_use(&self) -> usize {
        self.nat.in_use()
    }

    /// Direct access to the NAT allocator (tests, benches).
    pub fn nat_mut(&mut self) -> &mut NatAlloc {
        &mut self.nat
    }

    // ================= switching =================

    /// Terminates a frame into the switch from `src` (a guest port; a
    /// NetBack calls this for each validated tx frame).
    #[inline]
    pub fn enqueue(&mut self, src: DomId, pkt: NetPacket) {
        self.ingress.push((src, pkt));
    }

    /// Terminates a whole tx burst from `src` in one sweep: one capacity
    /// reservation, no per-frame call. How NetBack hands over the frames
    /// of one batched pass.
    pub fn enqueue_batch(&mut self, src: DomId, pkts: impl IntoIterator<Item = NetPacket>) {
        self.ingress.extend(pkts.into_iter().map(|p| (src, p)));
    }

    /// Terminates an external frame into the switch from the uplink
    /// toward `dst`, conn-tracking the reverse resolution so replies
    /// switch without explicit setup.
    pub fn enqueue_from_uplink(&mut self, dst: DomId, pkt: NetPacket) {
        self.resolve.insert((pkt.flow, UPLINK), dst);
        self.resolve.entry((pkt.flow, dst)).or_insert(UPLINK);
        self.ingress.push((UPLINK, pkt));
    }

    /// Pending ingress frames.
    pub fn ingress_len(&self) -> usize {
        self.ingress.len()
    }

    /// One switching pass: O(batch) over the ingress queue.
    ///
    /// Each frame is resolved through the connection table (conn-track
    /// creates entries for flows first seen mid-stream; unresolvable
    /// flows flood to the uplink, as a switch floods unknown unicast),
    /// its payload handle moves into the destination ring or onto the
    /// wire without copying, and the destination's backend is recorded
    /// in [`Self::notify_targets`] exactly once per pass. Frames whose
    /// destination ring is saturated are requeued onto the (persistent)
    /// scratch queue and re-enter the next pass.
    pub fn switch(&mut self, hub: &mut NetRingHub, wire: &mut WireEndpoint) -> SwitchStats {
        let mut stats = SwitchStats::default();
        debug_assert!(self.requeue.is_empty());
        self.notify.clear();
        // Both scratches move out of `self` for the pass so routing
        // (`&mut self`), the frames (`&ingress`), and delivery
        // (`&mut hub`) stay disjoint borrows with no per-frame
        // bookkeeping.
        let mut ingress = std::mem::take(&mut self.ingress);
        let mut routes = std::mem::take(&mut self.routes);
        routes.clear();
        routes.reserve(ingress.len());

        // Phase 1 — route: one connection-table probe per frame, two
        // bytes of route written per frame, and the frames untouched in
        // place. A one-entry destination cache turns the port resolution
        // of a run into a single compare.
        let mut last: (DomId, u16) = (UPLINK, ROUTE_UPLINK);
        for (src, pkt) in ingress.iter() {
            routes.push(self.route_frame(*src, pkt, &mut last, &mut stats));
        }

        // Phase 2 — deliver: each maximal run of equal routes drains
        // straight from the ingress buffer into its destination in one
        // bulk push (one ring lookup, one room check, one notify record
        // per run); each payload handle moves exactly once, drain slot →
        // destination ring.
        let mut frames = ingress.drain(..);
        let mut i = 0;
        while i < routes.len() {
            let route = routes[i];
            let mut j = i + 1;
            while j < routes.len() && routes[j] == route {
                j += 1;
            }
            let len = j - i;
            match route {
                ROUTE_DROP => {
                    stats.dropped += len as u64;
                    frames.by_ref().take(len).for_each(drop);
                }
                ROUTE_UPLINK => {
                    // Guest→external: out the uplink, translated through
                    // the connection's held NAT port.
                    wire.outbound
                        .extend(frames.by_ref().take(len).map(|(_, p)| p));
                    stats.to_uplink += len as u64;
                }
                port => match self.ports.get(port as usize) {
                    Some(&PortBinding::Guest(c)) => {
                        self.deliver_run(hub, &c, &mut frames, len, &mut stats);
                    }
                    _ => {
                        stats.dropped += len as u64;
                        frames.by_ref().take(len).for_each(drop);
                    }
                },
            }
            i = j;
        }
        debug_assert!(frames.next().is_none(), "every routed frame consumed");
        drop(frames);
        self.routes = routes;
        // Put the drained buffer back as the persistent scratch: the
        // requeued frames become next pass's ingress and the emptied
        // buffer keeps its capacity, so steady state never allocates.
        std::mem::swap(&mut self.ingress, &mut self.requeue);
        self.requeue = ingress;
        self.lifetime.to_guests += stats.to_guests;
        self.lifetime.to_uplink += stats.to_uplink;
        self.lifetime.bytes += stats.bytes;
        self.lifetime.dropped += stats.dropped;
        self.lifetime.requeued += stats.requeued;
        self.lifetime.flows_learned += stats.flows_learned;
        stats
    }

    /// Connection-table miss path: the direction has not carried traffic
    /// yet. A pre-learned resolution (the reverse leg of an open flow,
    /// uplink conn-track) promotes to a full table entry; a flow nobody
    /// opened floods to the uplink as guest→external, as a switch floods
    /// unknown unicast. `None` only on NAT exhaustion.
    #[cold]
    fn conn_track(
        &mut self,
        src: DomId,
        pkt: &NetPacket,
        stats: &mut SwitchStats,
    ) -> Option<DomId> {
        let dst = match self.resolve.get(&(pkt.flow, src)) {
            Some(&d) => {
                self.flows.insert(
                    (pkt.flow, src),
                    RouteEntry {
                        dst: d,
                        entry: FlowEntry::default(),
                    },
                );
                d
            }
            None => {
                self.open_flow(pkt.flow, src, UPLINK)?;
                UPLINK
            }
        };
        stats.flows_learned += 1;
        let re = self.flows.get_mut(&(pkt.flow, src)).expect("just inserted");
        re.entry.packets += 1;
        re.entry.bytes += pkt.bytes as u64;
        re.entry.last_seq = pkt.seq;
        Some(dst)
    }

    /// Routes one frame: resolves its destination through the connection
    /// table (updating the flow statistics in the same probe) and
    /// returns the destination port — or a sentinel for uplink/drop.
    /// `last` caches the previous frame's `(dst, route)` so a run
    /// resolves its port once.
    #[inline]
    fn route_frame(
        &mut self,
        src: DomId,
        pkt: &NetPacket,
        last: &mut (DomId, u16),
        stats: &mut SwitchStats,
    ) -> u16 {
        if pkt.bytes > MAX_GSO_BYTES {
            return ROUTE_DROP;
        }
        let dst = match self.flows.get_mut(&(pkt.flow, src)) {
            Some(re) => {
                re.entry.packets += 1;
                re.entry.bytes += pkt.bytes as u64;
                re.entry.last_seq = pkt.seq;
                re.dst
            }
            None => match self.conn_track(src, pkt, stats) {
                Some(d) => d,
                None => return ROUTE_DROP, // NAT exhaustion.
            },
        };
        stats.bytes += pkt.bytes as u64;
        if dst == last.0 {
            return last.1;
        }
        let route = if dst == UPLINK {
            ROUTE_UPLINK
        } else {
            match self.dom_table.get(&dst) {
                Some(&port) if matches!(self.ports[port as usize], PortBinding::Guest(_)) => port,
                _ => ROUTE_DROP,
            }
        };
        *last = (dst, route);
        route
    }

    /// Delivers the next `len` frames of the drain into `conn`'s ring:
    /// one ring lookup, one room check, one bulk push, and one notify
    /// record for the whole run. Frames over the rx burst cap re-enter
    /// the next pass from the persistent scratch queue; a detached ring
    /// drops the run (the frontend is renegotiating).
    fn deliver_run(
        &mut self,
        hub: &mut NetRingHub,
        conn: &Connection,
        frames: &mut std::vec::Drain<'_, (DomId, NetPacket)>,
        len: usize,
        stats: &mut SwitchStats,
    ) {
        let ring = match hub.get_mut(conn.ring) {
            Ok(r) if r.is_attached() => r,
            _ => {
                stats.dropped += len as u64;
                frames.by_ref().take(len).for_each(drop);
                return;
            }
        };
        // Same rx burst cap as NetBack.
        let room = (4 * DEFAULT_RING_SLOTS).saturating_sub(ring.pending_responses());
        let deliver = room.min(len);
        if deliver > 0 {
            match ring.push_responses_iter(frames.by_ref().take(deliver).map(|(_, p)| p)) {
                Ok(pushed) => {
                    stats.to_guests += pushed as u64;
                    if !self.notify.iter().any(|&(b, _)| b == conn.backend) {
                        self.notify.push((conn.backend, conn.back_port));
                    }
                }
                Err(_) => stats.dropped += deliver as u64,
            }
        }
        if deliver < len {
            stats.requeued += (len - deliver) as u64;
            self.requeue.extend(frames.by_ref().take(len - deliver));
        }
    }

    /// The notify targets of the last [`Self::switch`] pass: one
    /// `(backend, back_port)` per destination backend. The caller issues
    /// them as `EvtchnSend`s in one multicall.
    pub fn notify_targets(&self) -> &[(DomId, u32)] {
        &self.notify
    }

    /// Lifetime statistics.
    pub fn lifetime_stats(&self) -> SwitchStats {
        self.lifetime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingId;
    use crate::xenbus::DeviceKind;
    use xoar_hypervisor::grant::GrantRef;
    use xoar_hypervisor::memory::PageRef;

    fn conn(guest: u32, backend: u32, gref: u32, back_port: u32) -> Connection {
        Connection {
            guest: DomId(guest),
            backend: DomId(backend),
            kind: DeviceKind::Vif,
            index: 0,
            ring: RingId {
                granter: DomId(guest),
                gref: GrantRef(gref),
            },
            front_port: back_port,
            back_port,
        }
    }

    fn fabric_with(guests: &[u32]) -> (Fabric, NetRingHub, WireEndpoint) {
        let mut fab = Fabric::new(DomId(2));
        let mut hub = NetRingHub::new();
        for (i, &g) in guests.iter().enumerate() {
            let c = conn(g, 2, i as u32, 10 + i as u32);
            hub.create(c.ring);
            fab.attach_port(c);
        }
        (fab, hub, WireEndpoint::new())
    }

    fn ring_pop(hub: &mut NetRingHub, guest: u32, gref: u32) -> Option<NetPacket> {
        hub.get_mut(RingId {
            granter: DomId(guest),
            gref: GrantRef(gref),
        })
        .unwrap()
        .pop_response()
    }

    #[test]
    fn attach_seeds_learning_tables() {
        let (fab, _, _) = fabric_with(&[5, 6]);
        assert_eq!(fab.guest_ports(), 2);
        assert_eq!(fab.port_of(DomId(5)), Some(1));
        assert_eq!(fab.port_of(DomId(6)), Some(2));
        assert_eq!(fab.port_of_mac(mac_of(DomId(5))), Some(1));
        assert_eq!(fab.port_of(DomId(7)), None);
    }

    #[test]
    fn guest_to_guest_switches_by_handle() {
        let (mut fab, mut hub, mut wire) = fabric_with(&[5, 6]);
        fab.open_flow(1, DomId(5), DomId(6)).unwrap();
        let page = PageRef::new(&[7u8; 4096]);
        fab.enqueue(DomId(5), NetPacket::with_payload(1, 0, page.clone()));
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_guests, 1);
        assert_eq!(stats.to_uplink, 0);
        let got = ring_pop(&mut hub, 6, 1).unwrap();
        assert!(
            PageRef::ptr_eq(&page, got.payload.as_ref().unwrap()),
            "the destination ring holds the same page body, not a copy"
        );
        assert!(wire.outbound.is_empty(), "inter-guest frames skip the wire");
        // One notify for the one destination backend.
        assert_eq!(fab.notify_targets(), &[(DomId(2), 11)]);
    }

    #[test]
    fn reverse_direction_conn_tracks() {
        let (mut fab, mut hub, mut wire) = fabric_with(&[5, 6]);
        fab.open_flow(1, DomId(5), DomId(6)).unwrap();
        fab.enqueue(DomId(5), NetPacket::meta(1, 0, 1500));
        fab.switch(&mut hub, &mut wire);
        // The reply resolves through the reverse entry open_flow seeded.
        fab.enqueue(DomId(6), NetPacket::meta(1, 0, 500));
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_guests, 1);
        assert!(ring_pop(&mut hub, 5, 0).is_some());
        let fwd = fab
            .lookup(&FlowKey {
                flow: 1,
                src: DomId(5),
                dst: DomId(6),
            })
            .unwrap();
        assert_eq!(fwd.packets, 1);
        let rev = fab
            .lookup(&FlowKey {
                flow: 1,
                src: DomId(6),
                dst: DomId(5),
            })
            .unwrap();
        assert_eq!(rev.packets, 1);
    }

    #[test]
    fn unknown_flow_floods_to_uplink_with_nat() {
        let (mut fab, mut hub, mut wire) = fabric_with(&[5]);
        fab.enqueue(DomId(5), NetPacket::meta(99, 0, 1500));
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_uplink, 1);
        assert_eq!(stats.flows_learned, 1);
        assert_eq!(wire.outbound.len(), 1);
        let key = FlowKey {
            flow: 99,
            src: DomId(5),
            dst: UPLINK,
        };
        let entry = fab.lookup(&key).unwrap();
        let nat = entry.nat_port.unwrap();
        assert!(nat >= NAT_PORT_BASE);
        assert_eq!(fab.nat_flow(nat), Some(&key));
        assert_eq!(fab.nat_in_use(), 1);
    }

    #[test]
    fn uplink_ingress_reaches_guest() {
        let (mut fab, mut hub, mut wire) = fabric_with(&[5]);
        let page = PageRef::new(&[9u8; 2048]);
        fab.enqueue_from_uplink(DomId(5), NetPacket::with_payload(4, 0, page.clone()));
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_guests, 1);
        let got = ring_pop(&mut hub, 5, 0).unwrap();
        assert!(PageRef::ptr_eq(&page, got.payload.as_ref().unwrap()));
        // Conn-track seeded the reply direction too.
        fab.enqueue(DomId(5), NetPacket::meta(4, 1, 100));
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_uplink, 1);
    }

    #[test]
    fn close_flow_recycles_nat_port() {
        let (mut fab, _, _) = fabric_with(&[5]);
        let k = fab.open_flow(7, DomId(5), UPLINK).unwrap();
        let p1 = fab.lookup(&k).unwrap().nat_port.unwrap();
        assert!(fab.close_flow(7, DomId(5), UPLINK));
        assert_eq!(fab.nat_in_use(), 0);
        assert_eq!(fab.nat_flow(p1), None);
        let k2 = fab.open_flow(8, DomId(5), UPLINK).unwrap();
        assert_eq!(
            fab.lookup(&k2).unwrap().nat_port,
            Some(p1),
            "the released port is recycled"
        );
        assert!(!fab.close_flow(7, DomId(5), UPLINK), "already closed");
    }

    #[test]
    fn oversize_and_unknown_destination_drop() {
        let (mut fab, mut hub, mut wire) = fabric_with(&[5, 6]);
        fab.open_flow(1, DomId(5), DomId(6)).unwrap();
        fab.enqueue(DomId(5), NetPacket::meta(1, 0, MAX_GSO_BYTES + 1));
        // Destination detached between open and switch.
        fab.open_flow(2, DomId(5), DomId(6)).unwrap();
        fab.detach_port(DomId(6));
        fab.enqueue(DomId(5), NetPacket::meta(2, 0, 1000));
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.to_guests, 0);
    }

    #[test]
    fn backpressure_requeues_onto_persistent_scratch() {
        let (mut fab, mut hub, mut wire) = fabric_with(&[5, 6]);
        fab.open_flow(1, DomId(5), DomId(6)).unwrap();
        for i in 0..200 {
            fab.enqueue(DomId(5), NetPacket::meta(1, i, 1000));
        }
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_guests as usize, 4 * DEFAULT_RING_SLOTS);
        assert_eq!(stats.requeued as usize, 200 - 4 * DEFAULT_RING_SLOTS);
        assert_eq!(fab.ingress_len(), 200 - 4 * DEFAULT_RING_SLOTS);
        // Drain the destination and the leftovers deliver next pass.
        while ring_pop(&mut hub, 6, 1).is_some() {}
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_guests as usize, 200 - 4 * DEFAULT_RING_SLOTS);
        assert_eq!(fab.ingress_len(), 0);
    }

    #[test]
    fn one_notify_per_destination_backend() {
        // Guests 5,6 behind backend 2; guest 7 behind backend 3.
        let mut fab = Fabric::new(DomId(2));
        let mut hub = NetRingHub::new();
        for (i, (g, b)) in [(5u32, 2u32), (6, 2), (7, 3)].iter().enumerate() {
            let c = conn(*g, *b, i as u32, 10 + i as u32);
            hub.create(c.ring);
            fab.attach_port(c);
        }
        let mut wire = WireEndpoint::new();
        fab.open_flow(1, DomId(5), DomId(6)).unwrap();
        fab.open_flow(2, DomId(5), DomId(7)).unwrap();
        for i in 0..8 {
            fab.enqueue(DomId(5), NetPacket::meta(1 + (i % 2), i, 100));
        }
        let stats = fab.switch(&mut hub, &mut wire);
        assert_eq!(stats.to_guests, 8);
        let notifies = fab.notify_targets();
        assert_eq!(notifies.len(), 2, "one notify per destination backend");
        assert!(notifies.iter().any(|&(b, _)| b == DomId(2)));
        assert!(notifies.iter().any(|&(b, _)| b == DomId(3)));
    }

    #[test]
    fn hundred_k_concurrent_flows_in_table() {
        let (mut fab, _, _) = fabric_with(&[5, 6]);
        for f in 0..100_000u64 {
            fab.open_flow(f, DomId(5), DomId(6)).unwrap();
        }
        assert_eq!(fab.flow_count(), 100_000);
        let probe = FlowKey {
            flow: 77_777,
            src: DomId(5),
            dst: DomId(6),
        };
        assert!(fab.lookup(&probe).is_some());
    }

    #[test]
    fn nat_exhaustion_refuses_cleanly() {
        let mut nat = NatAlloc::new();
        let mut held = Vec::new();
        for _ in 0..NAT_PORT_SPAN {
            held.push(nat.alloc().unwrap());
        }
        assert_eq!(nat.alloc(), None);
        assert_eq!(nat.exhausted_count(), 1);
        nat.release(held.pop().unwrap());
        assert!(nat.alloc().is_some(), "release reopens the range");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// NAT allocation never hands out a port already in flight, and
    /// released ports are recycled before fresh high-water ports.
    #[test]
    fn nat_ports_unique_and_recycled() {
        Runner::cases(128).run("NAT ports unique and recycled", |g| {
            let ops = g.vec(1..200, |g| g.u8(0..3));
            let mut nat = NatAlloc::new();
            let mut held: Vec<u16> = Vec::new();
            let mut ever_released: Vec<u16> = Vec::new();
            for op in ops {
                match op {
                    0 | 1 => {
                        if let Some(p) = nat.alloc() {
                            assert!(!held.contains(&p), "port {p} allocated while still held");
                            if !ever_released.is_empty() {
                                assert!(
                                    ever_released.contains(&p),
                                    "port {p} fresh while recycled ports wait"
                                );
                                ever_released.retain(|&q| q != p);
                            }
                            held.push(p);
                        }
                    }
                    _ => {
                        if let Some(p) = held.pop() {
                            nat.release(p);
                            ever_released.push(p);
                        }
                    }
                }
                assert_eq!(nat.in_use(), held.len());
            }
            // Closing every connection returns the allocator to empty.
            for p in held.drain(..) {
                nat.release(p);
            }
            assert_eq!(nat.in_use(), 0);
        });
    }

    /// The connection table agrees with a reference map under arbitrary
    /// open/close/switch interleavings, and NAT ports released by
    /// `close_flow` are reused by later opens.
    #[test]
    fn flow_table_consistent_under_churn() {
        Runner::cases(64).run("flow table consistent under churn", |g| {
            let ops = g.vec(1..120, |g| (g.u8(0..3), g.u64(0..12)));
            let (mut fab, mut hub, mut wire) = {
                let mut fab = Fabric::new(DomId(2));
                let mut hub = NetRingHub::new();
                for (i, gd) in [5u32, 6].iter().enumerate() {
                    let c = Connection {
                        guest: DomId(*gd),
                        backend: DomId(2),
                        kind: crate::xenbus::DeviceKind::Vif,
                        index: 0,
                        ring: crate::ring::RingId {
                            granter: DomId(*gd),
                            gref: xoar_hypervisor::grant::GrantRef(i as u32),
                        },
                        front_port: 10 + i as u32,
                        back_port: 10 + i as u32,
                    };
                    hub.create(c.ring);
                    fab.attach_port(c);
                }
                (fab, hub, WireEndpoint::new())
            };
            let mut open: Vec<u64> = Vec::new();
            for (op, flow) in ops {
                match op {
                    0 => {
                        fab.open_flow(flow, DomId(5), UPLINK).unwrap();
                        if !open.contains(&flow) {
                            open.push(flow);
                        }
                    }
                    1 => {
                        let closed = fab.close_flow(flow, DomId(5), UPLINK);
                        assert_eq!(closed, open.contains(&flow));
                        open.retain(|&f| f != flow);
                    }
                    _ => {
                        fab.enqueue(DomId(5), NetPacket::meta(flow, 0, 100));
                        fab.switch(&mut hub, &mut wire);
                        // Switching an unopened flow conn-tracks it as
                        // guest→external.
                        if !open.contains(&flow) {
                            open.push(flow);
                        }
                    }
                }
                assert_eq!(fab.nat_in_use(), open.len());
                for &f in &open {
                    let k = FlowKey {
                        flow: f,
                        src: DomId(5),
                        dst: UPLINK,
                    };
                    assert!(fab.lookup(&k).is_some(), "open flow {f} present");
                    assert!(fab.lookup(&k).unwrap().nat_port.is_some());
                }
            }
        });
    }
}
