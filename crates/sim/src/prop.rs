//! A minimal in-tree property-test harness.
//!
//! Replaces the external `proptest` crate for this workspace's needs:
//! seeded random case generation on top of [`SimRng`](crate::SimRng),
//! plus Hypothesis-style shrinking. Every random decision a property
//! makes is drawn through a [`Gen`], which records the raw choice
//! sequence; when a case fails, the runner replays systematically
//! simplified sequences (deleting spans, zeroing and halving values)
//! and reports the smallest sequence that still fails.
//!
//! Properties are plain closures using the standard `assert!` family;
//! a failing case is surfaced as a panic carrying the seed, the case
//! index, and the shrunken choice sequence, so it can be replayed with
//! [`Runner::check_replay`].
//!
//! # Examples
//!
//! ```
//! use xoar_sim::prop::Runner;
//!
//! Runner::cases(32).run("addition commutes", |g| {
//!     let a = g.u64(0..1000);
//!     let b = g.u64(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// Default seed for [`Runner`]s that do not set one explicitly.
///
/// Fixed so test runs are reproducible without wall-clock entropy.
pub const DEFAULT_SEED: u64 = 0x0a0b_5eed_c0de_2011;

/// The source of randomness handed to a property.
///
/// In *generation* mode it draws fresh values from a [`SimRng`] and
/// records each raw draw; in *replay* mode it feeds back a previously
/// recorded (possibly shrunken) sequence, returning `0` once the
/// sequence is exhausted so shortened sequences stay valid.
#[derive(Debug)]
pub struct Gen {
    rng: Option<SimRng>,
    replay: Vec<u64>,
    cursor: usize,
    taken: Vec<u64>,
}

impl Gen {
    fn random(seed: u64) -> Self {
        Gen {
            rng: Some(SimRng::new(seed)),
            replay: Vec::new(),
            cursor: 0,
            taken: Vec::new(),
        }
    }

    fn from_choices(choices: &[u64]) -> Self {
        Gen {
            rng: None,
            replay: choices.to_vec(),
            cursor: 0,
            taken: Vec::new(),
        }
    }

    /// One raw draw: the unit the shrinker operates on.
    fn draw(&mut self) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => rng.next_u64(),
            None => {
                let v = self.replay.get(self.cursor).copied().unwrap_or(0);
                self.cursor += 1;
                v
            }
        };
        self.taken.push(v);
        v
    }

    /// Uniform `u64` in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.draw() % span
    }

    /// Uniform `u32` in `lo..hi`.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.u64(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `u8` in `lo..hi`.
    pub fn u8(&mut self, range: Range<u8>) -> u8 {
        self.u64(range.start as u64..range.end as u64) as u8
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `f64` in `lo..hi` (shrinks toward `lo`).
    pub fn f64(&mut self, range: Range<f64>) -> f64 {
        let unit = (self.draw() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }

    /// Bernoulli draw (shrinks toward `false`).
    pub fn bool(&mut self) -> bool {
        self.draw() & 1 == 1
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(0..items.len())]
    }

    /// A vector with length drawn from `len` and elements from `item`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut item: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| item(self)).collect()
    }
}

/// Runs a property over many generated cases, shrinking failures.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    cases: u32,
    seed: u64,
}

/// Maximum number of extra property executions the shrinker may spend.
const SHRINK_BUDGET: u32 = 2000;

impl Runner {
    /// A runner executing `cases` generated cases.
    pub fn cases(cases: u32) -> Self {
        Runner {
            cases,
            seed: DEFAULT_SEED,
        }
    }

    /// Overrides the base seed (each case perturbs it deterministically).
    pub fn seed(self, seed: u64) -> Self {
        Runner { seed, ..self }
    }

    /// Runs `property` over the configured number of cases.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, after shrinking, with a message
    /// naming the property, the seed, the minimal choice sequence, and a
    /// copy-pasteable regression-test body pinning that sequence.
    pub fn run(&self, name: &str, mut property: impl FnMut(&mut Gen)) {
        if let Some((case, minimal)) = self.find_failure(&mut property) {
            panic!(
                "property '{name}' failed (seed {:#x}, case {case}/{}); \
                 minimal choice sequence {:?} — replay with \
                 Runner::check_replay(&{:?}, ...)\n\n{}",
                self.seed,
                self.cases,
                minimal,
                minimal,
                replay_test_body(name, &minimal)
            );
        }
    }

    /// Runs `property` and returns the shrunk counterexample, if any.
    ///
    /// Unlike [`Runner::run`] this never panics on failure: it returns
    /// `Some(minimal_choice_sequence)` for the first failing case (after
    /// shrinking) and `None` when every case passes. Drivers that want
    /// to report divergences themselves — the spec checker's selftest,
    /// for instance — use this and format the trace their own way.
    pub fn counterexample(&self, mut property: impl FnMut(&mut Gen)) -> Option<Vec<u64>> {
        self.find_failure(&mut property).map(|(_, minimal)| minimal)
    }

    /// The first failing case index plus its shrunk choice sequence.
    fn find_failure(&self, property: &mut impl FnMut(&mut Gen)) -> Option<(u32, Vec<u64>)> {
        for case in 0..self.cases {
            let case_seed = SimRng::new(self.seed ^ case as u64).next_u64();
            let mut g = Gen::random(case_seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
            if outcome.is_err() {
                let minimal = shrink(g.taken.clone(), property);
                return Some((case, minimal));
            }
        }
        None
    }

    /// Replays one explicit choice sequence (no generation, no shrink).
    ///
    /// Returns `Err` with the panic payload's message if the property
    /// fails on this sequence; used to pin shrunken counterexamples as
    /// regression tests.
    pub fn check_replay(choices: &[u64], mut property: impl FnMut(&mut Gen)) -> Result<(), String> {
        let mut g = Gen::from_choices(choices);
        match catch_unwind(AssertUnwindSafe(|| property(&mut g))) {
            Ok(()) => Ok(()),
            Err(payload) => Err(panic_message(payload.as_ref())),
        }
    }
}

/// Renders a shrunk counterexample as a copy-pasteable Rust test body.
///
/// The emitted test replays the pinned choice sequence through
/// [`Runner::check_replay`] and expects it to pass, so a divergence
/// found by a property run lands as a regression test in one
/// paste-then-fix step (the `/* property body */` placeholder is the
/// closure that originally failed).
pub fn replay_test_body(name: &str, choices: &[u64]) -> String {
    let ident: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    format!(
        "#[test]\n\
         fn replay_{ident}() {{\n\
         \x20   // Shrunk counterexample for property '{name}'.\n\
         \x20   let choices: &[u64] = &{choices:?};\n\
         \x20   xoar_sim::prop::Runner::check_replay(choices, |g| {{\n\
         \x20       /* property body */\n\
         \x20   }})\n\
         \x20   .expect(\"pinned counterexample must pass after the fix\");\n\
         }}\n"
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Whether `property` still fails when replayed on `choices`.
fn still_fails(choices: &[u64], property: &mut impl FnMut(&mut Gen)) -> bool {
    let mut g = Gen::from_choices(choices);
    catch_unwind(AssertUnwindSafe(|| property(&mut g))).is_err()
}

/// Greedy choice-sequence shrinking: first delete spans (halving the
/// span width down to single draws), then minimise individual values
/// (zero, then repeated halving). Every accepted candidate must still
/// fail the property.
fn shrink(failing: Vec<u64>, property: &mut impl FnMut(&mut Gen)) -> Vec<u64> {
    let mut best = failing;
    let mut budget = SHRINK_BUDGET;

    loop {
        let mut improved = false;

        // Phase 1: delete spans, widest first.
        let mut width = best.len().max(1);
        while width >= 1 {
            let mut start = 0;
            while start + width <= best.len() {
                if budget == 0 {
                    return best;
                }
                budget -= 1;
                let mut candidate = best.clone();
                candidate.drain(start..start + width);
                if still_fails(&candidate, property) {
                    best = candidate;
                    improved = true;
                    // Re-scan at the same position on the shorter list.
                } else {
                    start += width;
                }
            }
            width /= 2;
        }

        // Phase 2: minimise individual values. Try zero outright, then
        // binary-search the smallest replacement that still fails.
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            if budget == 0 {
                return best;
            }
            budget -= 1;
            let mut zeroed = best.clone();
            zeroed[i] = 0;
            if still_fails(&zeroed, property) {
                best = zeroed;
                improved = true;
                continue;
            }
            // Invariant: `lo` passes, `hi` fails.
            let (mut lo, mut hi) = (0u64, best[i]);
            while hi - lo > 1 && budget > 0 {
                budget -= 1;
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate[i] = mid;
                if still_fails(&candidate, property) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            if hi < best[i] {
                best[i] = hi;
                improved = true;
            }
        }

        if !improved || budget == 0 {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut executed = 0u32;
        Runner::cases(40).run("tautology", |g| {
            executed += 1;
            let v = g.u64(0..10);
            assert!(v < 10);
        });
        assert_eq!(executed, 40);
    }

    #[test]
    fn failing_property_panics_with_context() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            Runner::cases(100).run("always false above 5", |g| {
                let v = g.u64(0..100);
                assert!(v <= 5, "got {v}");
            });
        }))
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("always false above 5"), "message: {msg}");
        assert!(msg.contains("minimal choice sequence"), "message: {msg}");
    }

    #[test]
    fn shrinking_finds_the_boundary_counterexample() {
        // Property: all drawn values stay below 10. The range is wide
        // enough that small raw choices map to themselves, so span
        // deletion plus binary-search minimisation must converge on the
        // exact boundary: a single draw of 10.
        let failing: Vec<u64> = vec![77, 4242, 999_999_999];
        let mut property = |g: &mut Gen| {
            for _ in 0..3 {
                let v = g.u64(0..1 << 32);
                assert!(v < 10, "value {v} out of spec");
            }
        };
        assert!(still_fails(&failing, &mut property));
        let minimal = shrink(failing, &mut property);
        assert_eq!(minimal, vec![10]);
    }

    #[test]
    fn replay_exhaustion_yields_zeros() {
        let mut g = Gen::from_choices(&[5]);
        assert_eq!(g.u64(0..100), 5);
        assert_eq!(g.u64(0..100), 0, "exhausted replay draws 0");
        assert_eq!(g.u64(3..9), 3, "0 maps to the range start");
    }

    #[test]
    fn check_replay_reports_failures() {
        let property = |g: &mut Gen| {
            let v = g.u64(0..100);
            assert!(v < 50, "too big: {v}");
        };
        assert_eq!(Runner::check_replay(&[7], property), Ok(()));
        let err = Runner::check_replay(&[60], property).expect_err("60 fails");
        assert!(err.contains("too big"), "message: {err}");
    }

    #[test]
    fn counterexample_returns_shrunk_sequence_without_panicking() {
        let property = |g: &mut Gen| {
            let v = g.u64(0..1 << 32);
            assert!(v < 10, "value {v} out of spec");
        };
        let minimal = Runner::cases(100)
            .counterexample(property)
            .expect("property must fail somewhere in 100 cases");
        assert_eq!(minimal, vec![10], "shrinks to the exact boundary");
        assert!(Runner::cases(50)
            .counterexample(|g| {
                let _ = g.u64(0..10);
            })
            .is_none());
    }

    #[test]
    fn replay_test_body_is_copy_pasteable() {
        let body = replay_test_body("clone isolation, v2", &[3, 7]);
        assert!(
            body.contains("fn replay_clone_isolation__v2()"),
            "body: {body}"
        );
        assert!(body.contains("&[3, 7]"), "body: {body}");
        assert!(body.contains("Runner::check_replay"), "body: {body}");
        // And the failure message embeds it.
        let err = catch_unwind(AssertUnwindSafe(|| {
            Runner::cases(100).run("embed body", |g| {
                let v = g.u64(0..100);
                assert!(v <= 5, "got {v}");
            });
        }))
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("fn replay_embed_body()"), "message: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let collect = |seed: u64| {
            let mut out = Vec::new();
            let r = Runner::cases(3).seed(seed);
            r.run("collect", |g| {
                out.push(g.u64(0..1_000_000));
            });
            out
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn vec_and_choose_draw_through_the_sequence() {
        let mut g = Gen::random(99);
        let v = g.vec(1..40, |g| g.u8(0..4));
        assert!(!v.is_empty() && v.len() < 40);
        assert!(v.iter().all(|&b| b < 4));
        let pick = *g.choose(&[10, 20, 30]);
        assert!([10, 20, 30].contains(&pick));
    }
}
