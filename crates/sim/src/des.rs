//! A small discrete-event simulation engine.
//!
//! Deterministic: events at equal timestamps fire in insertion order
//! (stable sequence numbers break ties), and no wall-clock or OS state is
//! consulted. The workloads that need only closed-form time accounting
//! (wget, kernel build) do not use it; the engine serves event-driven
//! experiments such as the restart-stagger study and ad-hoc exploration.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event scheduled in the engine, ordered by `(time, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    at_ns: u64,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue and clock.
///
/// # Examples
///
/// ```
/// use xoar_sim::des::Engine;
///
/// let mut eng: Engine<&str> = Engine::new();
/// eng.schedule(50, "second");
/// eng.schedule(10, "first");
/// assert_eq!(eng.next(), Some((10, "first")));
/// assert_eq!(eng.now_ns(), 10);
/// assert_eq!(eng.next(), Some((50, "second")));
/// assert_eq!(eng.next(), None);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    now_ns: u64,
    next_seq: u64,
    processed: u64,
}

impl<E: Eq> Engine<E> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now_ns: 0,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Schedules `event` at absolute time `at_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ns` is in the past — scheduling backwards would
    /// violate causality.
    pub fn schedule(&mut self, at_ns: u64, event: E) {
        assert!(at_ns >= self.now_ns, "event scheduled in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled { at_ns, seq, event }));
    }

    /// Schedules `event` `delay_ns` from now.
    pub fn schedule_in(&mut self, delay_ns: u64, event: E) {
        self.schedule(self.now_ns + delay_ns, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn next(&mut self) -> Option<(u64, E)> {
        let Reverse(s) = self.queue.pop()?;
        self.now_ns = s.at_ns;
        self.processed += 1;
        Some((s.at_ns, s.event))
    }

    /// Pops *all* events sharing the earliest timestamp, in insertion
    /// (sequence) order, advancing the clock to that timestamp.
    ///
    /// This is the multi-runqueue interleaving primitive: vcpus running
    /// on different simulated pcpus within one scheduling tick all fire
    /// "simultaneously", and their within-tick order is the deterministic
    /// order their tick events were scheduled in — never heap internals
    /// or host state. Returns an empty vector when the queue is empty.
    pub fn next_tick(&mut self) -> Vec<(u64, E)> {
        let mut batch = Vec::new();
        let Some(Reverse(first)) = self.queue.pop() else {
            return batch;
        };
        let tick_ns = first.at_ns;
        self.now_ns = tick_ns;
        self.processed += 1;
        batch.push((first.at_ns, first.event));
        while let Some(Reverse(s)) = self.queue.peek() {
            if s.at_ns != tick_ns {
                break;
            }
            let Reverse(s) = self.queue.pop().expect("peeked");
            self.processed += 1;
            batch.push((s.at_ns, s.event));
        }
        batch
    }

    /// Events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl<E: Eq> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(30, 3);
        eng.schedule(10, 1);
        eng.schedule(20, 2);
        let order: Vec<u32> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(eng.processed(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule(100, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(5, 0);
        eng.schedule(5, 1);
        eng.schedule(7, 2);
        let mut last = 0;
        while let Some((t, _)) = eng.next() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(eng.now_ns(), 7);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(10, "a");
        eng.next();
        eng.schedule_in(5, "b");
        assert_eq!(eng.next(), Some((15, "b")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_backwards_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(100, 0);
        eng.next();
        eng.schedule(50, 1);
    }

    #[test]
    fn next_tick_batches_simultaneous_events_in_seq_order() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(10, 1);
        eng.schedule(10, 2);
        eng.schedule(10, 3);
        eng.schedule(20, 4);
        let tick = eng.next_tick();
        assert_eq!(tick, vec![(10, 1), (10, 2), (10, 3)]);
        assert_eq!(eng.now_ns(), 10);
        assert_eq!(eng.next_tick(), vec![(20, 4)]);
        assert!(eng.next_tick().is_empty());
        assert_eq!(eng.processed(), 4);
    }

    #[test]
    fn next_tick_matches_repeated_next() {
        let mut a: Engine<u32> = Engine::new();
        let mut b: Engine<u32> = Engine::new();
        for (t, e) in [(5, 0), (5, 1), (9, 2), (9, 3), (9, 4), (12, 5)] {
            a.schedule(t, e);
            b.schedule(t, e);
        }
        let mut via_tick = Vec::new();
        loop {
            let batch = a.next_tick();
            if batch.is_empty() {
                break;
            }
            via_tick.extend(batch);
        }
        let via_next: Vec<(u64, u32)> = std::iter::from_fn(|| b.next()).collect();
        assert_eq!(via_tick, via_next);
    }

    #[test]
    fn self_scheduling_workload() {
        // A periodic process implemented through the engine.
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(0, "tick");
        let mut ticks = 0;
        while let Some((_, ev)) = eng.next() {
            if ev == "tick" && ticks < 5 {
                ticks += 1;
                eng.schedule_in(1_000, "tick");
            }
        }
        assert_eq!(ticks, 5);
        assert_eq!(eng.now_ns(), 5_000);
    }
}
