//! A TCP throughput model with disconnection and recovery.
//!
//! Figures 6.3–6.5 hinge on how TCP flows react when NetBack microreboots
//! break connectivity for 140–260 ms: segments are lost, the
//! retransmission timer fires (with exponential backoff while the device
//! is still down), and the congestion window collapses to slow start.
//! "Resetting every 10 seconds causes an 8% drop in throughput … \[at\]
//! every second \[a\] 58% drop."
//!
//! The model evolves a congestion window in discrete RTT rounds:
//!
//! * slow start below `ssthresh` (cwnd doubles per round), congestion
//!   avoidance above (cwnd += 1 MSS per round);
//! * cwnd is capped by the path bandwidth-delay product;
//! * a connectivity break discards the in-flight window, arms the
//!   retransmission timer with exponential backoff until the link
//!   returns, then restarts from `RESTART_CWND` with halved ssthresh.
//!
//! This produces the paper's non-uniform degradation naturally: at long
//! restart intervals the cost per break is dominated by the fixed RTO +
//! ramp, while at 1-second intervals the window never leaves slow start
//! and a large fraction of wall time is dead.

/// Nanoseconds per second.
pub const SEC: u64 = 1_000_000_000;

/// TCP maximum segment size (bytes).
pub const MSS: u64 = 1460;

/// Initial congestion window, segments (RFC 5681-era Linux defaults).
const INITIAL_CWND: u64 = 3;

/// Congestion window after an RTO, segments.
const RESTART_CWND: u64 = 1;

/// Minimum retransmission timeout (Linux: 200 ms).
const RTO_MIN_NS: u64 = 200_000_000;

/// Maximum RTO backoff ceiling used by the model.
const RTO_MAX_NS: u64 = 8 * SEC;

/// Path parameters of one TCP flow.
#[derive(Debug, Clone, Copy)]
pub struct TcpPath {
    /// Round-trip time in nanoseconds (LAN: ~300 µs).
    pub rtt_ns: u64,
    /// Bottleneck bandwidth, bytes per second.
    pub bandwidth_bps: u64,
}

impl TcpPath {
    /// The evaluation LAN: Gigabit Ethernet, sub-millisecond RTT.
    pub fn gigabit_lan() -> Self {
        TcpPath {
            rtt_ns: 300_000,
            bandwidth_bps: 117_000_000, // Goodput ceiling ≈ 117 MB/s.
        }
    }

    /// Bandwidth-delay product in segments (the cwnd cap).
    fn bdp_segments(&self) -> u64 {
        let bdp_bytes = (self.bandwidth_bps as u128 * self.rtt_ns as u128 / SEC as u128) as u64;
        (bdp_bytes / MSS).max(4)
    }
}

/// A connectivity outage: `[start_ns, start_ns + duration_ns)`.
#[derive(Debug, Clone, Copy)]
pub struct Outage {
    /// Outage start (ns since flow start).
    pub start_ns: u64,
    /// Outage length (ns).
    pub duration_ns: u64,
}

/// Result of simulating one transfer.
#[derive(Debug, Clone, Copy)]
pub struct TransferResult {
    /// Wall-clock time of the transfer (ns).
    pub elapsed_ns: u64,
    /// Mean goodput in bytes per second.
    pub goodput_bps: f64,
    /// Number of RTO events suffered.
    pub rto_events: u32,
    /// The longest single stall (ns) — the paper's "longest packet took
    /// 3000–7000 ms" observation in Figure 6.5.
    pub longest_stall_ns: u64,
}

/// Simulates one bulk transfer of `bytes` over `path`, with connectivity
/// outages at the given (sorted, non-overlapping) times.
///
/// # Examples
///
/// ```
/// use xoar_sim::tcp::{simulate_transfer, TcpPath};
///
/// let clean = simulate_transfer(TcpPath::gigabit_lan(), 64 << 20, &[]);
/// assert!(clean.goodput_bps / 1e6 > 90.0); // Near line rate.
/// assert_eq!(clean.rto_events, 0);
/// ```
pub fn simulate_transfer(path: TcpPath, bytes: u64, outages: &[Outage]) -> TransferResult {
    let bdp = path.bdp_segments();
    let mut cwnd = INITIAL_CWND;
    let mut ssthresh = bdp;
    let mut sent: u64 = 0;
    let mut now: u64 = 0;
    let mut rto_events = 0u32;
    let mut longest_stall = 0u64;
    let mut outage_idx = 0usize;

    while sent < bytes {
        // Is an outage in effect (or does one start during this round)?
        if outage_idx < outages.len() {
            let o = outages[outage_idx];
            if now + path.rtt_ns > o.start_ns && now < o.start_ns + o.duration_ns {
                // The round's window is lost. The sender RTOs with
                // exponential backoff until the link is back.
                let mut rto = RTO_MIN_NS;
                let mut t = now.max(o.start_ns);
                let link_up = o.start_ns + o.duration_ns;
                let stall_start = t;
                loop {
                    t += rto;
                    if t >= link_up {
                        break;
                    }
                    rto = (rto * 2).min(RTO_MAX_NS);
                    rto_events += 1;
                }
                rto_events += 1;
                longest_stall = longest_stall.max(t - stall_start);
                now = t;
                ssthresh = (cwnd / 2).max(2);
                cwnd = RESTART_CWND;
                outage_idx += 1;
                continue;
            }
            if now >= o.start_ns + o.duration_ns {
                outage_idx += 1;
                continue;
            }
        }
        // One RTT round: send cwnd segments (capped so a round cannot
        // exceed the remaining bytes).
        let round_bytes = (cwnd * MSS).min(bytes - sent);
        sent += round_bytes;
        // Round duration: the RTT, or the serialisation time if the
        // window saturates the link.
        let serialise = (round_bytes as u128 * SEC as u128 / path.bandwidth_bps as u128) as u64;
        now += path.rtt_ns.max(serialise);
        // Window growth.
        cwnd = if cwnd < ssthresh {
            (cwnd * 2).min(bdp)
        } else {
            (cwnd + 1).min(bdp)
        };
    }
    TransferResult {
        elapsed_ns: now,
        goodput_bps: bytes as f64 / (now as f64 / SEC as f64),
        rto_events,
        longest_stall_ns: longest_stall,
    }
}

/// Convenience: outages every `interval_ns` of `downtime_ns` each, long
/// enough to cover a transfer of duration `horizon_ns`.
pub fn periodic_outages(interval_ns: u64, downtime_ns: u64, horizon_ns: u64) -> Vec<Outage> {
    let mut v = Vec::new();
    let mut t = interval_ns;
    while t < horizon_ns {
        v.push(Outage {
            start_ns: t,
            duration_ns: downtime_ns,
        });
        t += interval_ns;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB2: u64 = 2 * 1024 * 1024 * 1024;

    #[test]
    fn clean_transfer_approaches_line_rate() {
        let r = simulate_transfer(TcpPath::gigabit_lan(), GB2, &[]);
        let mbps = r.goodput_bps / 1e6;
        assert!(mbps > 100.0, "goodput {mbps:.1} MB/s");
        assert!(mbps <= 117.1, "cannot exceed the path ceiling");
        assert_eq!(r.rto_events, 0);
    }

    #[test]
    fn small_transfer_dominated_by_slow_start() {
        // 100 KB barely leaves slow start: goodput far below line rate.
        let r = simulate_transfer(TcpPath::gigabit_lan(), 100 * 1024, &[]);
        assert!(r.goodput_bps / 1e6 < 60.0);
    }

    #[test]
    fn outages_cost_more_than_their_duration() {
        let clean = simulate_transfer(TcpPath::gigabit_lan(), GB2, &[]);
        let horizon = clean.elapsed_ns * 3;
        let outages = periodic_outages(SEC, 260_000_000, horizon);
        let broken = simulate_transfer(TcpPath::gigabit_lan(), GB2, &outages);
        let n_outages_hit = broken.rto_events.max(1) as u64;
        let raw_downtime = n_outages_hit * 260_000_000;
        assert!(
            broken.elapsed_ns > clean.elapsed_ns + raw_downtime,
            "RTO backoff and slow-start ramp must add cost beyond the raw downtime"
        );
    }

    #[test]
    fn figure_6_3_shape_slow_path() {
        // Throughput vs restart interval, slow (260 ms) downtime.
        let clean = simulate_transfer(TcpPath::gigabit_lan(), GB2, &[]);
        let tp = |interval_s: u64| {
            let horizon = clean.elapsed_ns * 20;
            let outages = periodic_outages(interval_s * SEC, 260_000_000, horizon);
            simulate_transfer(TcpPath::gigabit_lan(), GB2, &outages).goodput_bps
        };
        let t1 = tp(1);
        let t5 = tp(5);
        let t10 = tp(10);
        // Monotone in interval.
        assert!(t1 < t5 && t5 < t10, "t1 {t1:.0} t5 {t5:.0} t10 {t10:.0}");
        // Paper: ~58% drop at 1 s, ~8% at 10 s.
        let drop1 = 1.0 - t1 / clean.goodput_bps;
        let drop10 = 1.0 - t10 / clean.goodput_bps;
        assert!(drop1 > 0.40 && drop1 < 0.70, "1s drop {drop1:.2}");
        assert!(drop10 > 0.03 && drop10 < 0.15, "10s drop {drop10:.2}");
    }

    #[test]
    fn fast_restart_beats_slow_everywhere() {
        let clean = simulate_transfer(TcpPath::gigabit_lan(), GB2, &[]);
        let horizon = clean.elapsed_ns * 20;
        for interval_s in [1u64, 2, 5, 10] {
            let slow = simulate_transfer(
                TcpPath::gigabit_lan(),
                GB2,
                &periodic_outages(interval_s * SEC, 260_000_000, horizon),
            );
            let fast = simulate_transfer(
                TcpPath::gigabit_lan(),
                GB2,
                &periodic_outages(interval_s * SEC, 140_000_000, horizon),
            );
            assert!(
                fast.goodput_bps >= slow.goodput_bps,
                "fast must not lose at {interval_s}s"
            );
        }
        // And the benefit shrinks as the interval grows (paper: "worth
        // less than 1% for 10-second reboots").
        let gain = |i: u64| {
            let slow = simulate_transfer(
                TcpPath::gigabit_lan(),
                GB2,
                &periodic_outages(i * SEC, 260_000_000, horizon),
            )
            .goodput_bps;
            let fast = simulate_transfer(
                TcpPath::gigabit_lan(),
                GB2,
                &periodic_outages(i * SEC, 140_000_000, horizon),
            )
            .goodput_bps;
            (fast - slow) / slow
        };
        assert!(gain(1) > gain(10));
        assert!(gain(10) < 0.06, "10s gain {:.3}", gain(10));
    }

    #[test]
    fn stalls_reach_seconds_with_restarts() {
        // Figure 6.5: longest requests stretch to 3000–7000 ms under
        // restarts, vs 8–9 ms without.
        let clean = simulate_transfer(TcpPath::gigabit_lan(), GB2, &[]);
        assert_eq!(clean.longest_stall_ns, 0);
        let horizon = clean.elapsed_ns * 20;
        let broken = simulate_transfer(
            TcpPath::gigabit_lan(),
            GB2,
            &periodic_outages(SEC, 260_000_000, horizon),
        );
        assert!(broken.longest_stall_ns >= 260_000_000);
    }

    #[test]
    fn periodic_outages_layout() {
        let o = periodic_outages(SEC, 100, 3 * SEC + 1);
        assert_eq!(o.len(), 3);
        assert_eq!(o[0].start_ns, SEC);
        assert_eq!(o[2].start_ns, 3 * SEC);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::prop::Runner;

    /// Goodput never exceeds the path bandwidth, for any outage
    /// pattern, and outages never make the transfer free.
    #[test]
    fn goodput_bounded_by_line_rate() {
        Runner::cases(32).run("goodput bounded by line rate", |g| {
            let mut starts = g.vec(0..8, |g| g.u64(1..30));
            let downtime_ms = g.u64(50..500);
            starts.sort_unstable();
            starts.dedup();
            let outages: Vec<Outage> = starts
                .iter()
                .map(|s| Outage {
                    start_ns: s * SEC,
                    duration_ns: downtime_ms * 1_000_000,
                })
                .collect();
            let bytes = 256u64 << 20;
            let r = simulate_transfer(TcpPath::gigabit_lan(), bytes, &outages);
            let clean = simulate_transfer(TcpPath::gigabit_lan(), bytes, &[]);
            assert!(r.goodput_bps <= TcpPath::gigabit_lan().bandwidth_bps as f64 * 1.001);
            assert!(
                r.elapsed_ns >= clean.elapsed_ns,
                "outages never speed things up"
            );
        });
    }

    /// The transfer always completes: elapsed time is finite and the
    /// reported goodput is consistent with it.
    #[test]
    fn accounting_consistency() {
        Runner::cases(32).run("accounting consistency", |g| {
            let bytes = g.u64(1..128) << 20;
            let r = simulate_transfer(TcpPath::gigabit_lan(), bytes, &[]);
            let implied = bytes as f64 / (r.elapsed_ns as f64 / SEC as f64);
            assert!((implied - r.goodput_bps).abs() < 1.0);
        });
    }
}
