//! # xoar-sim
//!
//! Discrete-event simulation engine and the Chapter 6 workloads.

#![warn(missing_docs)]

pub mod des;
pub mod prop;
pub mod rng;
pub mod tcp;
pub mod workloads;

pub use des::Engine;
pub use rng::SimRng;
pub use tcp::{simulate_transfer, Outage, TcpPath, TransferResult};
