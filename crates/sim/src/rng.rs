//! A deterministic PRNG for reproducible simulations.
//!
//! Every workload takes an explicit seed; identical seeds produce
//! identical traces, so integration tests can assert exact counters and
//! the benchmark harnesses are run-to-run stable. The generator is
//! SplitMix64 — tiny, fast, and statistically adequate for workload
//! shaping (we are not doing cryptography).

/// A SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use xoar_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping (fine at workload scale).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SimRng::new(13);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(1).below(0);
    }
}
