//! Restart-scheduling ablation: aligned vs staggered driver microreboots.
//!
//! The paper restarts one NetBack at a time; a host that also restarts
//! BlkBack on the same timer faces a scheduling choice the paper leaves
//! open ("can be tuned by the administrator"): fire both restarts
//! *aligned* (one combined outage window per interval) or *staggered*
//! (offset by half the interval, two separate smaller windows).
//!
//! For a workload that needs both devices at once (the wget-to-disk case
//! of Figure 6.2), aligned restarts are strictly better: the two
//! downtimes overlap, so the total unusable time per interval is
//! `max(d_net, d_blk)` instead of `d_net + d_blk`. The experiment drives
//! real restarts through the [`Engine`] and measures combined downtime.

use xoar_core::platform::Platform;
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_hypervisor::DomId;

use crate::des::Engine;
use crate::tcp::SEC;

/// Restart scheduling policies under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaggerPolicy {
    /// NetBack and BlkBack restart at the same instants.
    Aligned,
    /// BlkBack's schedule is offset by half the interval.
    Staggered,
}

/// One experiment outcome.
#[derive(Debug, Clone, Copy)]
pub struct StaggerResult {
    /// Policy measured.
    pub policy: StaggerPolicy,
    /// Restarts executed (both shards combined).
    pub restarts: u64,
    /// Total time either device was down, ns.
    pub either_down_ns: u64,
    /// Total time both devices were simultaneously usable, as a fraction
    /// of the horizon — what a combined network→disk workload gets.
    pub combined_uptime: f64,
}

#[derive(Debug, PartialEq, Eq)]
enum Ev {
    Restart(DomId),
}

/// Runs `horizon_s` seconds of restarts at `interval_s` under `policy`,
/// executing every microreboot on the live platform.
pub fn run(
    platform: &mut Platform,
    interval_s: u64,
    horizon_s: u64,
    policy: StaggerPolicy,
) -> StaggerResult {
    let netback = platform.services.netbacks[0];
    let blkback = platform.services.blkbacks[0];
    let mut engine = RestartEngine::new();
    for dom in [netback, blkback] {
        engine
            .register(platform, dom, RestartPolicy::Never, RestartPath::Fast)
            .expect("drivers register");
    }
    let interval = interval_s * SEC;
    let horizon = horizon_s * SEC;

    let mut des: Engine<Ev> = Engine::new();
    des.schedule(interval, Ev::Restart(netback));
    let blk_first = match policy {
        StaggerPolicy::Aligned => interval,
        StaggerPolicy::Staggered => interval + interval / 2,
    };
    des.schedule(blk_first, Ev::Restart(blkback));

    // Outage windows per device: (start, end).
    let mut windows: Vec<(u64, u64)> = Vec::new();
    while let Some((t, ev)) = des.next() {
        if t >= horizon {
            break;
        }
        let Ev::Restart(dom) = ev;
        let outcome = engine.restart(platform, dom).expect("registered");
        windows.push((t, t + outcome.downtime_ns));
        des.schedule(t + interval, Ev::Restart(dom));
    }

    // Merge windows to compute "either device down" time.
    windows.sort_unstable();
    let mut either_down = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in windows {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                either_down += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        either_down += ce - cs;
    }

    StaggerResult {
        policy,
        restarts: engine.total_restarts(),
        either_down_ns: either_down,
        combined_uptime: 1.0 - either_down as f64 / horizon as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    fn platform() -> Platform {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        p.create_guest(ts, GuestConfig::evaluation_guest("g"))
            .unwrap();
        p
    }

    #[test]
    fn aligned_windows_overlap() {
        let mut p = platform();
        let r = run(&mut p, 10, 60, StaggerPolicy::Aligned);
        // 5 intervals × 140 ms, both devices down together.
        assert_eq!(r.restarts, 10, "both shards, five times each");
        assert_eq!(r.either_down_ns, 5 * 140_000_000);
    }

    #[test]
    fn staggered_windows_double_the_combined_outage() {
        let mut p = platform();
        let aligned = run(&mut p, 10, 60, StaggerPolicy::Aligned);
        let mut p2 = platform();
        let staggered = run(&mut p2, 10, 60, StaggerPolicy::Staggered);
        assert!(
            staggered.either_down_ns > aligned.either_down_ns * 19 / 10,
            "staggering nearly doubles combined downtime: {} vs {}",
            staggered.either_down_ns,
            aligned.either_down_ns
        );
        assert!(staggered.combined_uptime < aligned.combined_uptime);
    }

    #[test]
    fn restarts_really_execute() {
        let mut p = platform();
        let nb = p.services.netbacks[0];
        let bb = p.services.blkbacks[0];
        let _ = run(&mut p, 10, 30, StaggerPolicy::Aligned);
        assert!(p.hv.rollback_count(nb) >= 2);
        assert!(p.hv.rollback_count(bb) >= 2);
        assert_eq!(p.audit.restart_count(nb), p.hv.rollback_count(nb));
    }

    #[test]
    fn uptime_fractions_are_sane() {
        let mut p = platform();
        let r = run(&mut p, 5, 60, StaggerPolicy::Staggered);
        assert!(r.combined_uptime > 0.9 && r.combined_uptime < 1.0);
    }
}
