//! Postmark (Figure 6.1): small-file mail-server workload.
//!
//! Postmark creates a pool of files, runs a transaction mix of
//! read/append/create/delete over them, then deletes the pool. The
//! figure's four configurations are reproduced verbatim:
//! `1K×50K`, `20K×50K`, `20K×100K`, and `20K×100K×100 subdirectories`.
//!
//! The workload drives *real* block requests through the platform's
//! BlkFront → ring → BlkBack → disk-model path. File-system behaviour is
//! modelled at the level that matters for the figure: most operations hit
//! the guest page cache (costing CPU only), cache misses and periodic
//! writeback issue block I/O, and the metadata overhead grows with pool
//! and directory size.

use xoar_core::platform::Platform;
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::DomId;

use crate::rng::SimRng;

/// One of the figure's workload configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostmarkConfig {
    /// Number of files in the pool.
    pub files: u64,
    /// Number of transactions.
    pub transactions: u64,
    /// Number of subdirectories (0 = all files in one directory).
    pub subdirectories: u64,
}

impl PostmarkConfig {
    /// The four x-axis configurations of Figure 6.1.
    pub fn figure_6_1() -> Vec<(&'static str, PostmarkConfig)> {
        vec![
            (
                "1Kx50K",
                PostmarkConfig {
                    files: 1_000,
                    transactions: 50_000,
                    subdirectories: 0,
                },
            ),
            (
                "20Kx50K",
                PostmarkConfig {
                    files: 20_000,
                    transactions: 50_000,
                    subdirectories: 0,
                },
            ),
            (
                "20Kx100K",
                PostmarkConfig {
                    files: 20_000,
                    transactions: 100_000,
                    subdirectories: 0,
                },
            ),
            (
                "20Kx100Kx100",
                PostmarkConfig {
                    files: 20_000,
                    transactions: 100_000,
                    subdirectories: 100,
                },
            ),
        ]
    }
}

/// Result of one Postmark run.
#[derive(Debug, Clone, Copy)]
pub struct PostmarkResult {
    /// Transactions per second — the figure's y-axis.
    pub ops_per_sec: f64,
    /// Total block requests issued to the virtual disk.
    pub block_requests: u64,
    /// Total simulated wall time (ns).
    pub elapsed_ns: u64,
}

/// Postmark file sizes: 500 B – 9.77 KiB (the tool's defaults).
const MIN_FILE: u64 = 500;
const MAX_FILE: u64 = 10_000;

/// Guest CPU cost of one cache-hit transaction (syscall + page-cache
/// copy + journal bookkeeping).
const TXN_CPU_NS: u64 = 55_000;

/// Extra per-transaction dentry cost in large directories, per 1000
/// files scanned.
const DENTRY_NS_PER_1K: u64 = 3_000;

/// Writeback batching: one ring request flushes this many dirty
/// transactions' worth of data (ext3 commits in batches).
const WRITEBACK_BATCH: u64 = 48;

/// Runs Postmark in `guest` on `platform`.
///
/// Returns transactions/second computed from the accumulated simulated
/// time: guest CPU per transaction plus the disk service time of every
/// block request the mix generated.
pub fn run(
    platform: &mut Platform,
    guest: DomId,
    cfg: PostmarkConfig,
    seed: u64,
) -> PostmarkResult {
    let mut rng = SimRng::new(seed);
    let mut elapsed_ns: u64 = 0;
    let mut block_requests: u64 = 0;
    let mut dirty_txns: u64 = 0;
    let mut next_sector: u64 = 4096; // Past the superblock area.

    // Cache-miss probability grows with the pool's metadata footprint.
    let pool_bytes = cfg.files * (MIN_FILE + MAX_FILE) / 2;
    let cache_bytes: u64 = 512 * 1024 * 1024; // Guest page cache share.
    let miss_p = (pool_bytes as f64 / cache_bytes as f64 * 0.05).min(0.25);
    // Directory-scan overhead per transaction.
    let files_per_dir = cfg.files / cfg.subdirectories.max(1);
    let dentry_ns =
        files_per_dir / 1_000 * DENTRY_NS_PER_1K + if cfg.subdirectories > 0 { 2_000 } else { 0 };

    let flush = |platform: &mut Platform,
                 elapsed: &mut u64,
                 reqs: &mut u64,
                 sector: &mut u64,
                 sectors: u64,
                 op: BlkOp| {
        // Submit one batched request; if the ring is full, drain it first.
        loop {
            match platform.blk_submit(guest, op, *sector, sectors) {
                Ok(_) => break,
                Err(_) => {
                    let stats = platform.process_blkbacks();
                    *elapsed += stats.service_ns;
                    while platform.blk_poll(guest).is_some() {}
                }
            }
        }
        *sector += sectors;
        *reqs += 1;
    };

    // Phase 1: create the file pool (sequential writes, batched).
    let create_batches = cfg.files / WRITEBACK_BATCH + 1;
    for _ in 0..create_batches {
        flush(
            platform,
            &mut elapsed_ns,
            &mut block_requests,
            &mut next_sector,
            64,
            BlkOp::Write,
        );
        elapsed_ns += WRITEBACK_BATCH * TXN_CPU_NS;
    }

    // Phase 2: the transaction mix.
    for _ in 0..cfg.transactions {
        elapsed_ns += TXN_CPU_NS + dentry_ns;
        let read = rng.chance(0.5);
        if read {
            if rng.chance(miss_p) {
                // Cache miss: a synchronous random read.
                let file_sector = 4096 + rng.below(pool_bytes / 512);
                flush(
                    platform,
                    &mut elapsed_ns,
                    &mut block_requests,
                    &mut { file_sector },
                    rng.range(1, MAX_FILE / 512),
                    BlkOp::Read,
                );
            }
        } else {
            dirty_txns += 1;
            if dirty_txns % WRITEBACK_BATCH == 0 {
                flush(
                    platform,
                    &mut elapsed_ns,
                    &mut block_requests,
                    &mut next_sector,
                    64,
                    BlkOp::Write,
                );
            }
        }
    }

    // Phase 3: delete the pool (metadata writes, batched).
    for _ in 0..(cfg.files / (WRITEBACK_BATCH * 4) + 1) {
        flush(
            platform,
            &mut elapsed_ns,
            &mut block_requests,
            &mut next_sector,
            16,
            BlkOp::Write,
        );
    }

    // Drain the backend and charge its service time.
    let stats = platform.process_blkbacks();
    elapsed_ns += stats.service_ns;
    while platform.blk_poll(guest).is_some() {}

    PostmarkResult {
        ops_per_sec: cfg.transactions as f64 / (elapsed_ns as f64 / 1e9),
        block_requests,
        elapsed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    fn guest_on(p: &mut Platform) -> DomId {
        let ts = p.services.toolstacks[0];
        p.create_guest(ts, GuestConfig::evaluation_guest("postmark"))
            .unwrap()
    }

    fn small() -> PostmarkConfig {
        PostmarkConfig {
            files: 1_000,
            transactions: 5_000,
            subdirectories: 0,
        }
    }

    #[test]
    fn runs_and_reports_throughput() {
        let mut p = Platform::xoar(XoarConfig::default());
        let g = guest_on(&mut p);
        let r = run(&mut p, g, small(), 1);
        assert!(r.ops_per_sec > 1_000.0, "ops/s {}", r.ops_per_sec);
        assert!(r.block_requests > 0);
        assert!(r.elapsed_ns > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut p1 = Platform::xoar(XoarConfig::default());
        let g1 = guest_on(&mut p1);
        let a = run(&mut p1, g1, small(), 7);
        let mut p2 = Platform::xoar(XoarConfig::default());
        let g2 = guest_on(&mut p2);
        let b = run(&mut p2, g2, small(), 7);
        assert_eq!(a.block_requests, b.block_requests);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
    }

    #[test]
    fn figure_6_1_dom0_and_xoar_are_comparable() {
        // The paper: "disk throughput is more or less unchanged".
        let mut dom0 = Platform::stock_xen();
        let g0 = guest_on(&mut dom0);
        let mut xoar = Platform::xoar(XoarConfig::default());
        let g1 = guest_on(&mut xoar);
        let r0 = run(&mut dom0, g0, small(), 3);
        let r1 = run(&mut xoar, g1, small(), 3);
        let ratio = r1.ops_per_sec / r0.ops_per_sec;
        assert!((ratio - 1.0).abs() < 0.05, "Xoar/Dom0 ratio {ratio:.3}");
    }

    #[test]
    fn larger_pools_are_slower_per_transaction() {
        let mut p = Platform::xoar(XoarConfig::default());
        let g = guest_on(&mut p);
        let small_pool = run(
            &mut p,
            g,
            PostmarkConfig {
                files: 1_000,
                transactions: 5_000,
                subdirectories: 0,
            },
            5,
        );
        let big_pool = run(
            &mut p,
            g,
            PostmarkConfig {
                files: 20_000,
                transactions: 5_000,
                subdirectories: 0,
            },
            5,
        );
        assert!(
            big_pool.ops_per_sec < small_pool.ops_per_sec,
            "20K files {} !< 1K files {}",
            big_pool.ops_per_sec,
            small_pool.ops_per_sec
        );
    }

    #[test]
    fn subdirectories_reduce_dentry_cost() {
        // 20K files in one directory scan longer chains than 100 subdirs
        // of 200 files each.
        let mut p = Platform::xoar(XoarConfig::default());
        let g = guest_on(&mut p);
        let flat = run(
            &mut p,
            g,
            PostmarkConfig {
                files: 20_000,
                transactions: 5_000,
                subdirectories: 0,
            },
            9,
        );
        let subdirs = run(
            &mut p,
            g,
            PostmarkConfig {
                files: 20_000,
                transactions: 5_000,
                subdirectories: 100,
            },
            9,
        );
        assert!(subdirs.ops_per_sec > flat.ops_per_sec);
    }

    #[test]
    fn figure_configs_are_the_paper_ones() {
        let cfgs = PostmarkConfig::figure_6_1();
        assert_eq!(cfgs.len(), 4);
        assert_eq!(cfgs[0].1.files, 1_000);
        assert_eq!(cfgs[3].1.subdirectories, 100);
    }
}
