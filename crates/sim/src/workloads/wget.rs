//! wget (Figure 6.2): bulk network fetch, to `/dev/null` and to disk.
//!
//! A remote host on the Gigabit LAN serves a 512 MB or 2 GB file; the
//! guest fetches it and either discards the bytes or writes them to its
//! virtual disk. The four bar groups of the figure are reproduced for
//! both platforms.
//!
//! What the model captures:
//!
//! * the *network path*: chunks arrive on the wire, NetBack moves them
//!   into the guest ring (NIC service time from the hardware model), with
//!   a small per-batch backend-wakeup cost that is marginally higher on
//!   Xoar (an extra VM context switch — the paper measures network
//!   throughput "down by 1–2.5%");
//! * the *combined path*: when writing to disk, stock Xen runs NetBack
//!   and BlkBack in the same VM, so the two service loops contend for
//!   Dom0's VCPUs; Xoar runs them in separate VMs that the scheduler
//!   places on different cores — "the combined throughput of data coming
//!   from the network onto the disk is up by 6.5%; we believe this is
//!   caused by the performance isolation of running the disk and network
//!   drivers in separate VMs."

use xoar_core::platform::{Platform, PlatformMode};
use xoar_devices::blk::BlkOp;
use xoar_devices::net::NetPacket;
use xoar_hypervisor::DomId;

/// Where the fetched bytes go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Discard (`-O /dev/null`).
    DevNull,
    /// Write through the virtual disk.
    Disk,
}

/// One bar of Figure 6.2.
#[derive(Debug, Clone, Copy)]
pub struct WgetResult {
    /// Mean throughput in MB/s — the figure's y-axis.
    pub throughput_mbps: f64,
    /// Total simulated time (ns).
    pub elapsed_ns: u64,
    /// Frames delivered to the guest.
    pub frames: u64,
}

/// Transfer chunk: NetBack's GSO aggregate size.
const CHUNK: usize = 65_536;

/// Per-frame backend cost (event-channel upcall + copy setup) when the
/// backend shares the guest-facing VM context (Dom0).
const WAKEUP_DOM0_NS: u64 = 9_000;

/// On Xoar each aggregate crosses a real VM boundary (scheduler hop into
/// the NetBack domain): measurably costlier per frame, which is the
/// paper's 1–2.5% network regression.
const WAKEUP_XOAR_NS: u64 = 18_000;

/// Contention inflation when NetBack and BlkBack share one VM's VCPUs
/// (stock Xen, combined workload only).
const DOM0_CONTENTION: f64 = 0.075;

/// Frames per service batch (interrupt moderation).
const BATCH: u64 = 16;

/// Fetches `bytes` into `guest`, sinking to `sink`.
pub fn run(platform: &mut Platform, guest: DomId, bytes: u64, sink: Sink) -> WgetResult {
    let mut remaining = bytes;
    let mut elapsed_ns: u64 = 0;
    let mut frames: u64 = 0;
    let mut seq = 0u64;
    let mut disk_sector = 0u64;
    let mut pending_disk: u64 = 0;
    let wakeup = match platform.mode {
        PlatformMode::StockXen => WAKEUP_DOM0_NS,
        PlatformMode::Xoar => WAKEUP_XOAR_NS,
    };
    let contention = if platform.mode == PlatformMode::StockXen && sink == Sink::Disk {
        1.0 + DOM0_CONTENTION
    } else {
        1.0
    };
    // Writeback scratch, reused across bursts so the steady-state transfer
    // loop does not allocate.
    let mut ops: Vec<(BlkOp, u64, u64)> = Vec::with_capacity(BATCH as usize);

    while remaining > 0 || pending_disk > 0 {
        // The remote server keeps a batch of chunks in flight.
        let mut batch = 0;
        while batch < BATCH && remaining > 0 {
            let sz = CHUNK.min(remaining as usize);
            platform
                .wire
                .send_to_guest(guest, NetPacket::meta(1, seq, sz));
            seq += 1;
            remaining -= sz as u64;
            batch += 1;
        }
        // NetBack services the wire into the guest ring; the wakeup cost
        // is paid per delivered frame.
        let net = platform.process_netbacks();
        let mut batch_ns = net.service_ns + wakeup * net.rx_frames;
        frames += net.rx_frames;
        // The guest consumes the frames; to disk, it queues writeback.
        while let Some(pkt) = platform.net_receive(guest) {
            if sink == Sink::Disk {
                pending_disk += pkt.bytes as u64;
            }
        }
        // Writeback in disk-sized sequential bursts, batched: the whole
        // burst goes down as one ring operation with a single trailing
        // notify instead of one submit per chunk.
        let mut disk_ns = 0;
        ops.clear();
        while pending_disk >= CHUNK as u64 || (remaining == 0 && pending_disk > 0) {
            let chunk = pending_disk.min(CHUNK as u64);
            let sectors = chunk.div_ceil(512).min(64);
            ops.push((BlkOp::Write, disk_sector, sectors));
            disk_sector += sectors;
            pending_disk -= chunk;
        }
        let mut start = 0;
        while start < ops.len() {
            let end = (start + BATCH as usize).min(ops.len());
            if platform.blk_submit_batch(guest, &ops[start..end]).is_ok() {
                start = end;
            } else {
                // Ring full: drain completions and retry the same batch.
                let s = platform.process_blkbacks();
                disk_ns += s.service_ns;
                while platform.blk_poll(guest).is_some() {}
            }
        }
        let s = platform.process_blkbacks();
        disk_ns += s.service_ns;
        while platform.blk_poll(guest).is_some() {}

        // In Dom0 the two backends serialise on shared VCPUs (inflated
        // sum); in Xoar they overlap (max wins, plus a small residual).
        // Network and disk service loops overlap (separate kernel threads
        // in Dom0, separate VMs in Xoar); the overlapped time is the max
        // plus a small serialisation residue. Dom0 additionally pays VCPU
        // contention between the co-located backends.
        batch_ns = match sink {
            Sink::DevNull => batch_ns,
            Sink::Disk => {
                let overlapped = batch_ns.max(disk_ns) + batch_ns.min(disk_ns) / 8;
                (overlapped as f64 * contention) as u64
            }
        };
        elapsed_ns += batch_ns;
    }

    WgetResult {
        throughput_mbps: bytes as f64 / (elapsed_ns as f64 / 1e9) / 1e6,
        elapsed_ns,
        frames,
    }
}

/// The figure's four bar groups: (label, bytes, sink).
pub fn figure_6_2_cases() -> Vec<(&'static str, u64, Sink)> {
    vec![
        ("/dev/null (512MB)", 512 << 20, Sink::DevNull),
        ("Disk (512MB)", 512 << 20, Sink::Disk),
        ("/dev/null (2GB)", 2 << 30, Sink::DevNull),
        ("Disk (2GB)", 2 << 30, Sink::Disk),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    const MB64: u64 = 64 << 20;

    fn with_guest(mut p: Platform) -> (Platform, DomId) {
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("wget"))
            .unwrap();
        (p, g)
    }

    #[test]
    fn devnull_fetch_approaches_line_rate() {
        let (mut p, g) = with_guest(Platform::stock_xen());
        let r = run(&mut p, g, MB64, Sink::DevNull);
        assert!(r.throughput_mbps > 90.0, "{:.1} MB/s", r.throughput_mbps);
        assert!(r.throughput_mbps < 125.0, "cannot beat the gigabit link");
        assert_eq!(r.frames, MB64 / CHUNK as u64);
    }

    #[test]
    fn disk_fetch_bounded_by_disk() {
        let (mut p, g) = with_guest(Platform::stock_xen());
        let null = run(&mut p, g, MB64, Sink::DevNull);
        let disk = run(&mut p, g, MB64, Sink::Disk);
        assert!(disk.throughput_mbps < null.throughput_mbps);
        assert!(disk.throughput_mbps > 40.0, "{:.1}", disk.throughput_mbps);
    }

    #[test]
    fn figure_6_2_network_slightly_down_on_xoar() {
        let (mut d, gd) = with_guest(Platform::stock_xen());
        let (mut x, gx) = with_guest(Platform::xoar(XoarConfig::default()));
        let dom0 = run(&mut d, gd, MB64, Sink::DevNull);
        let xoar = run(&mut x, gx, MB64, Sink::DevNull);
        let delta = 1.0 - xoar.throughput_mbps / dom0.throughput_mbps;
        assert!(
            delta > 0.005 && delta < 0.035,
            "network delta {delta:.3} (paper: 1–2.5%)"
        );
    }

    #[test]
    fn figure_6_2_combined_up_on_xoar() {
        let (mut d, gd) = with_guest(Platform::stock_xen());
        let (mut x, gx) = with_guest(Platform::xoar(XoarConfig::default()));
        let dom0 = run(&mut d, gd, MB64, Sink::Disk);
        let xoar = run(&mut x, gx, MB64, Sink::Disk);
        let gain = xoar.throughput_mbps / dom0.throughput_mbps - 1.0;
        assert!(
            gain > 0.03 && gain < 0.12,
            "combined gain {gain:.3} (paper: ~6.5%)"
        );
    }

    #[test]
    fn larger_transfers_have_stable_throughput() {
        let (mut p, g) = with_guest(Platform::stock_xen());
        let small = run(&mut p, g, 32 << 20, Sink::DevNull);
        let large = run(&mut p, g, 128 << 20, Sink::DevNull);
        let ratio = large.throughput_mbps / small.throughput_mbps;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "bulk throughput is size-invariant: {ratio:.3}"
        );
    }
}
