//! The front tier at fleet scale: a load balancer fanning out over the
//! virtual network fabric to N web servers, under NetBack microreboots.
//!
//! The paper's Figure 6.3 measures one TCP flow across a restarting
//! NetBack. This workload asks the fleet-scale version of the same
//! question (ROADMAP open item 2): a front-tier service holds ≥100k
//! concurrent connections in the fabric's flow table while the NetBack
//! shard microreboots on a timer — every connection must ride out the
//! outage through the TCP recovery model, and the switch's connection
//! state must survive the reboot (ports and flows are keyed by the
//! stable vif connections, which a microreboot preserves).
//!
//! The pieces compose exactly as in [`super::restart_sweep`]:
//! microreboots are *executed* on the platform (rollback hypercall, ring
//! detach/reattach, audit records), their downtime windows become
//! [`Outage`]s, and each modeled flow evolves through the outages it
//! overlaps — phase-shifted per flow, since real connections start at
//! different times within a restart interval.

use xoar_core::platform::Platform;
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_devices::fabric::UPLINK;
use xoar_hypervisor::memory::PageRef;
use xoar_hypervisor::DomId;

use crate::tcp::{self, Outage, TcpPath, SEC};

/// Flow-id offset of the LB's external (NAT'd) connections, keeping them
/// disjoint from the LB→web fan-out ids.
const EXTERNAL_FLOW_BASE: u64 = 1 << 32;

/// Per-connection pacing: each front-tier flow is an individually slow
/// client (10 Mbit/s), as fleet traffic is — the aggregate, not the
/// flow, fills the pipe.
const PER_FLOW_BPS: u64 = 1_250_000;

/// Configuration of one front-tier run.
#[derive(Debug, Clone, Copy)]
pub struct FrontTierConfig {
    /// Concurrent modeled TCP connections LB → web tier.
    pub flows: usize,
    /// External (guest↔uplink, NAT'd) connections the LB also holds.
    pub external_flows: usize,
    /// Bytes each connection transfers.
    pub bytes_per_flow: u64,
    /// NetBack restart interval, seconds.
    pub restart_interval_s: u64,
    /// Restart path (the PR-5 precompiled fast plan, or slow).
    pub path: RestartPath,
}

impl FrontTierConfig {
    /// A bounded configuration for ordinary test runs.
    pub fn small(flows: usize, restart_interval_s: u64) -> Self {
        FrontTierConfig {
            flows,
            external_flows: flows.min(1024),
            bytes_per_flow: 256 * 1024,
            restart_interval_s,
            path: RestartPath::Fast,
        }
    }
}

/// One measured point: flows vs throughput vs restart interval.
#[derive(Debug, Clone, Copy)]
pub struct FrontTierPoint {
    /// Concurrent connections held in the fabric's flow table.
    pub flows: usize,
    /// Restart interval (seconds).
    pub restart_interval_s: u64,
    /// Microreboots executed mid-traffic.
    pub restarts: u64,
    /// Aggregate front-tier goodput (MB/s) across all connections.
    pub aggregate_mbps: f64,
    /// Connections that saw an outage and fired at least one RTO.
    pub stalled_flows: usize,
    /// Worst single-connection stall (ns).
    pub longest_stall_ns: u64,
    /// Frames actually switched guest→guest by the fabric.
    pub switched_frames: u64,
}

/// Runs one front-tier point on `platform`: `lb` fans out to `webs`
/// over the fabric while the (first) NetBack microreboots on a timer.
///
/// Panics if any invariant of the scenario fails: a connection that does
/// not recover, a lost frame in the live traffic, a broken audit chain,
/// or restart counts that disagree between engine, hypervisor, and audit
/// log.
pub fn run_point(
    platform: &mut Platform,
    lb: DomId,
    webs: &[DomId],
    cfg: &FrontTierConfig,
) -> FrontTierPoint {
    assert!(!webs.is_empty());
    platform.enable_fabric();

    // ---- connection setup: the concurrent-flow population ----
    for f in 0..cfg.flows as u64 {
        let dst = webs[f as usize % webs.len()];
        assert!(platform.fabric_open_flow(f, lb, dst), "flow {f} opens");
    }
    for f in 0..cfg.external_flows as u64 {
        assert!(
            platform.fabric_open_flow(EXTERNAL_FLOW_BASE + f, lb, UPLINK),
            "external flow {f} gets a NAT port"
        );
    }
    {
        let fab = platform.fabric.as_ref().expect("enabled above");
        assert!(
            fab.flow_count() >= cfg.flows + cfg.external_flows,
            "flow table holds the whole population"
        );
        assert_eq!(fab.nat_in_use(), cfg.external_flows);
    }

    // ---- live traffic, phase 1: frames really cross the fabric ----
    let mut sent = 0u64;
    let mut received = 0u64;
    let tick = |p: &mut Platform, sent: &mut u64, received: &mut u64| {
        // One ring's worth of frames, round-robin over the hottest flows.
        for i in 0..32u64 {
            p.net_transmit(lb, i % 8, 1500).expect("tx queued");
            *sent += 1;
        }
        p.process_netbacks();
        for &w in webs {
            while let Some(pkt) = p.net_receive(w) {
                assert_eq!(pkt.bytes, 1500);
                *received += 1;
            }
        }
        // Drain the LB's tx completions.
        while p.net_receive(lb).is_some() {}
    };
    tick(platform, &mut sent, &mut received);

    // An external reply carrying a real page: uplink → switch → LB ring,
    // by handle the whole way.
    let page = PageRef::new(&[0x5au8; 4096]);
    platform
        .wire
        .send_page_to_guest(lb, EXTERNAL_FLOW_BASE, 0, page.clone());
    platform.process_netbacks();
    let got = platform.net_receive(lb).expect("page frame delivered");
    assert!(
        PageRef::ptr_eq(&page, got.payload.as_ref().expect("payload kept")),
        "the LB ring holds the same page body, not a copy"
    );

    // ---- microreboots mid-traffic ----
    let netback = platform.services.netbacks[0];
    let mut engine = RestartEngine::new();
    engine
        .register(
            platform,
            netback,
            RestartPolicy::Timer {
                interval_ns: cfg.restart_interval_s * SEC,
            },
            cfg.path,
        )
        .expect("netback registers for restarts");

    let per_flow = TcpPath {
        rtt_ns: 300_000,
        bandwidth_bps: PER_FLOW_BPS,
    };
    let clean_ns = tcp::simulate_transfer(per_flow, cfg.bytes_per_flow, &[]).elapsed_ns;
    let interval_ns = cfg.restart_interval_s * SEC;
    let horizon_ns = (clean_ns * 3).max(3 * interval_ns);
    let mut outages = Vec::new();
    let start_ns = platform.now_ns();
    while platform.now_ns() - start_ns < horizon_ns {
        platform.advance_time(interval_ns);
        for shard in engine.due(platform.now_ns()) {
            let outcome = engine.restart(platform, shard).expect("registered restart");
            outages.push(Outage {
                start_ns: platform.now_ns() - start_ns,
                duration_ns: outcome.downtime_ns,
            });
        }
        // Traffic between reboots: the fabric's ports and flow table
        // survived, so frames keep flowing without renegotiation.
        tick(platform, &mut sent, &mut received);
    }
    assert!(engine.total_restarts() > 0, "reboots really happened");
    assert_eq!(sent, received, "no live frame lost across microreboots");

    // ---- per-connection TCP recovery through the outage windows ----
    let mut goodput_sum_bps = 0.0;
    let mut stalled = 0usize;
    let mut longest_stall = 0u64;
    let mut scratch: Vec<Outage> = Vec::with_capacity(outages.len());
    for f in 0..cfg.flows as u64 {
        // Connections start at different times within a restart interval;
        // shift the outage train into each connection's own clock. The
        // Knuth multiplier spreads the offsets over the whole interval.
        let offset = f.wrapping_mul(2_654_435_761) % interval_ns;
        scratch.clear();
        scratch.extend(
            outages
                .iter()
                .filter(|o| o.start_ns >= offset)
                .map(|o| Outage {
                    start_ns: o.start_ns - offset,
                    duration_ns: o.duration_ns,
                }),
        );
        let r = tcp::simulate_transfer(per_flow, cfg.bytes_per_flow, &scratch);
        assert!(
            r.goodput_bps > 0.0,
            "flow {f} recovered and completed its transfer"
        );
        // An outage the transfer fully straddled must have cost at least
        // one RTO. (An outage starting inside the final round can be
        // outrun by the last bytes; only windows the flow demonstrably
        // waited out — elapsed past link-up — are counted as stalls.)
        let overlapped = scratch
            .iter()
            .any(|o| o.start_ns + o.duration_ns <= r.elapsed_ns);
        if overlapped {
            assert!(r.rto_events >= 1, "flow {f} overlapped an outage");
            stalled += 1;
            longest_stall = longest_stall.max(r.longest_stall_ns);
        }
        goodput_sum_bps += r.goodput_bps;
    }

    // ---- cross-checks: engine vs hypervisor vs audit log ----
    let restarts = engine.total_restarts();
    assert_eq!(platform.hv.rollback_count(netback), restarts);
    assert_eq!(platform.audit.restart_count(netback), restarts);
    assert_eq!(platform.audit.verify_chain(), Ok(()));
    // The memory integrity audit must be clean after the restart storm:
    // one materialization drains every ring-write's deferred hash, and a
    // second pass folds the identical fleet digest.
    let digest = platform.hv.mem.verify_integrity();
    assert_eq!(platform.hv.mem.verify_integrity(), digest);
    assert_eq!(platform.hv.mem.pending_rehash(), 0);

    let fab = platform.fabric.as_ref().expect("enabled");
    FrontTierPoint {
        flows: cfg.flows,
        restart_interval_s: cfg.restart_interval_s,
        restarts,
        aggregate_mbps: goodput_sum_bps / 1e6,
        stalled_flows: stalled,
        longest_stall_ns: longest_stall,
        switched_frames: fab.lifetime_stats().to_guests,
    }
}

/// Builds the standard front-tier fleet: one LB and `webs` web servers.
pub fn fleet(webs: usize) -> (Platform, DomId, Vec<DomId>) {
    let mut p = Platform::xoar(xoar_core::platform::XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let lb = p
        .create_guest(ts, xoar_core::platform::GuestConfig::evaluation_guest("lb"))
        .expect("lb boots");
    let mut tier = Vec::with_capacity(webs);
    for i in 0..webs {
        tier.push(
            p.create_guest(
                ts,
                xoar_core::platform::GuestConfig::evaluation_guest(&format!("web-{i}")),
            )
            .expect("web server boots"),
        );
    }
    (p, lb, tier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_tier_sustains_flows_across_microreboots() {
        let (mut p, lb, webs) = fleet(3);
        let point = run_point(&mut p, lb, &webs, &FrontTierConfig::small(2_000, 5));
        assert_eq!(point.flows, 2_000);
        assert!(point.restarts >= 2);
        assert!(point.stalled_flows > 0, "some connections rode an outage");
        assert!(point.switched_frames as usize >= 32, "live frames switched");
        assert!(point.aggregate_mbps > 0.0);
    }

    #[test]
    fn throughput_improves_with_longer_restart_intervals() {
        let (mut p1, lb1, webs1) = fleet(2);
        let t1 = run_point(&mut p1, lb1, &webs1, &FrontTierConfig::small(1_000, 1));
        let (mut p10, lb10, webs10) = fleet(2);
        let t10 = run_point(&mut p10, lb10, &webs10, &FrontTierConfig::small(1_000, 10));
        assert!(
            t10.aggregate_mbps > t1.aggregate_mbps,
            "1s: {:.1} MB/s, 10s: {:.1} MB/s",
            t1.aggregate_mbps,
            t10.aggregate_mbps
        );
        // Shorter intervals stall a larger share of the population.
        assert!(t1.stalled_flows > t10.stalled_flows);
    }

    #[test]
    fn nat_population_is_bounded_by_the_port_range() {
        let (mut p, lb, webs) = fleet(1);
        let cfg = FrontTierConfig {
            flows: 64,
            external_flows: 1024,
            bytes_per_flow: 64 * 1024,
            restart_interval_s: 5,
            path: RestartPath::Fast,
        };
        let _ = run_point(&mut p, lb, &webs, &cfg);
        assert_eq!(p.fabric.as_ref().unwrap().nat_in_use(), 1024);
    }

    /// The fleet-scale acceptance scenario: ≥100k concurrent connections
    /// riding NetBack microreboots. Release-mode only; prints the
    /// EXPERIMENTS.md table.
    #[test]
    #[ignore = "release-mode smoke; run via scripts/ci.sh"]
    fn fronttier_smoke() {
        println!("| flows | interval (s) | restarts | aggregate (MB/s) | stalled flows | longest stall (ms) |");
        println!("|---|---|---|---|---|---|");
        for interval_s in [1, 5, 10] {
            let (mut p, lb, webs) = fleet(4);
            let mut cfg = FrontTierConfig::small(100_000, interval_s);
            cfg.external_flows = 8_192;
            let point = run_point(&mut p, lb, &webs, &cfg);
            assert!(point.flows >= 100_000);
            assert!(point.restarts > 0);
            println!(
                "| {} | {} | {} | {:.1} | {} | {:.0} |",
                point.flows,
                point.restart_interval_s,
                point.restarts,
                point.aggregate_mbps,
                point.stalled_flows,
                point.longest_stall_ns as f64 / 1e6
            );
        }
    }
}
