//! ApacheBench (Figure 6.5): many concurrent clients against a static
//! page, with and without NetBack restarts.
//!
//! The model is a worker-level discrete-event simulation of `ab`:
//! `CONCURRENCY` workers each loop over connect → request → response
//! (keep-alive off, as in the paper's runs), against a CPU-bound Apache
//! whose service rate is the calibrated bottleneck. NetBack restarts
//! appear as connectivity outages with the same downtimes as Figure 6.3:
//!
//! * a response in flight during an outage is retransmitted on the
//!   server's RTO (200 ms, doubling);
//! * a SYN sent into an outage is lost and retried after the classic 3 s
//!   initial SYN timeout — this is what stretches the longest requests to
//!   "3000 ms (at 5 and 10 seconds) to 7000 ms (at 1 second)" while the
//!   no-restart runs complete in 8–9 ms.

use xoar_core::platform::PlatformMode;
use xoar_core::restart::RestartPath;

use crate::tcp::SEC;

/// Concurrent `ab` workers.
pub const CONCURRENCY: usize = 50;

/// Requests per run (long enough that every restart interval sees
/// multiple outages).
pub const TOTAL_REQUESTS: u64 = 96_000;

/// Page size served (bytes, including headers).
pub const PAGE_BYTES: u64 = 14_200;

/// Apache service time per request on Dom0 (the CPU bottleneck,
/// calibrated to the figure's ~3230 req/s).
const SERVICE_NS_DOM0: u64 = 303_000;

/// Xoar's extra VM crossing on the response path (−1.5% throughput).
const SERVICE_NS_XOAR: u64 = 308_000;

/// LAN round-trip time.
const RTT_NS: u64 = 300_000;

/// Classic initial SYN retransmission timeout.
const SYN_TIMEOUT_NS: u64 = 3 * SEC;

/// Minimum data RTO.
const RTO_MIN_NS: u64 = 200_000_000;

/// One bar group of Figure 6.5.
#[derive(Debug, Clone, Copy)]
pub struct AbResult {
    /// Wall-clock time of the whole run (s).
    pub total_time_s: f64,
    /// Requests per second.
    pub throughput_rps: f64,
    /// Mean request latency (ms).
    pub mean_latency_ms: f64,
    /// Transfer rate (MB/s).
    pub transfer_mbps: f64,
    /// The longest single request (ms) — the paper's outlier note.
    pub longest_request_ms: f64,
}

/// A restart configuration for the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbConfig {
    /// No restarts.
    Clean,
    /// NetBack restarted every `interval_s` seconds (slow path, as in the
    /// figure).
    Restarts {
        /// Restart interval, seconds.
        interval_s: u64,
    },
}

fn in_outage(t: u64, cfg: AbConfig) -> Option<u64> {
    // Returns the end of the outage covering `t`, if any.
    match cfg {
        AbConfig::Clean => None,
        AbConfig::Restarts { interval_s } => {
            // The restart timer re-arms after the restart completes, so
            // the effective period is interval + restart execution time —
            // real restarts drift rather than firing on exact second
            // boundaries.
            let downtime = RestartPath::Slow.downtime_ns();
            let period = interval_s * SEC + downtime + 137_000_000;
            let phase = t % period;
            if phase < downtime && t >= period {
                Some(t - phase + downtime)
            } else {
                None
            }
        }
    }
}

/// Runs one `ab` configuration against `mode`.
pub fn run(mode: PlatformMode, cfg: AbConfig) -> AbResult {
    let service_ns = match mode {
        PlatformMode::StockXen => SERVICE_NS_DOM0,
        PlatformMode::Xoar => SERVICE_NS_XOAR,
    };
    // Per-worker next-free time, the server's single queue, and stats.
    let mut worker_free = [0u64; CONCURRENCY];
    let mut server_free: u64 = 0;
    let mut issued: u64 = 0;
    let mut latency_sum: u64 = 0;
    let mut longest: u64 = 0;
    let mut end_time: u64 = 0;

    while issued < TOTAL_REQUESTS {
        // Pick the earliest-free worker.
        let (w, _) = worker_free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("nonempty");
        let start = worker_free[w];
        let mut t = start;

        // 1. Connect: SYN + SYN/ACK round trip; a SYN into an outage is
        //    lost and retried after the 3 s initial timeout. A small
        //    worker-dependent jitter models timer slack and breaks the
        //    degenerate resonance between the 3 s timer and integer-second
        //    restart intervals.
        loop {
            match in_outage(t, cfg) {
                Some(_) => {
                    // Timer slack: real SYN retransmissions carry tens of
                    // milliseconds of scheduling jitter, which is what
                    // keeps them from resonating with periodic outages.
                    let jitter = (t ^ (w as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
                    t += SYN_TIMEOUT_NS + jitter % 60_000_000;
                }
                None => break,
            }
        }
        t += RTT_NS;

        // 2. Server processing: single CPU-bound queue.
        let proc_start = t.max(server_free);
        let proc_end = proc_start + service_ns;
        server_free = proc_end;
        t = proc_end;

        // 3. Response delivery; a response into an outage is
        //    retransmitted on a doubling RTO until the link is back.
        let mut rto = RTO_MIN_NS;
        while let Some(outage_end) = in_outage(t, cfg) {
            t += rto;
            rto = (rto * 2).min(8 * SEC);
            if t >= outage_end {
                break;
            }
        }
        // Half an RTT plus serialisation at 1 Gb/s (1 bit ≈ 1 ns).
        t += RTT_NS / 2 + PAGE_BYTES * 8;

        let latency = t - start;
        latency_sum += latency;
        longest = longest.max(latency);
        end_time = end_time.max(t);
        worker_free[w] = t;
        issued += 1;
    }

    let total_s = end_time as f64 / 1e9;
    AbResult {
        total_time_s: total_s,
        throughput_rps: TOTAL_REQUESTS as f64 / total_s,
        mean_latency_ms: latency_sum as f64 / TOTAL_REQUESTS as f64 / 1e6,
        transfer_mbps: TOTAL_REQUESTS as f64 * PAGE_BYTES as f64 / total_s / 1e6,
        longest_request_ms: longest as f64 / 1e6,
    }
}

/// The figure's five configurations: Dom0, Xoar, restarts @10/5/1 s.
pub fn figure_6_5_cases() -> Vec<(&'static str, PlatformMode, AbConfig)> {
    vec![
        ("Dom0", PlatformMode::StockXen, AbConfig::Clean),
        ("Xoar", PlatformMode::Xoar, AbConfig::Clean),
        (
            "Restarts (10s)",
            PlatformMode::Xoar,
            AbConfig::Restarts { interval_s: 10 },
        ),
        (
            "Restarts (5s)",
            PlatformMode::Xoar,
            AbConfig::Restarts { interval_s: 5 },
        ),
        (
            "Restarts (1s)",
            PlatformMode::Xoar,
            AbConfig::Restarts { interval_s: 1 },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_throughput_calibrated_to_figure() {
        let dom0 = run(PlatformMode::StockXen, AbConfig::Clean);
        // Figure 6.5: Dom0 ≈ 3230 req/s over ~10 s.
        assert!(
            (dom0.throughput_rps - 3230.0).abs() < 120.0,
            "Dom0 {:.0} req/s",
            dom0.throughput_rps
        );
        assert!(
            (dom0.total_time_s - 29.7).abs() < 1.5,
            "{:.2} s",
            dom0.total_time_s
        );
        // Transfer rate ≈ 45 MB/s.
        assert!(
            (dom0.transfer_mbps - 45.0).abs() < 3.0,
            "{:.1} MB/s",
            dom0.transfer_mbps
        );
    }

    #[test]
    fn xoar_within_a_few_percent_of_dom0() {
        let dom0 = run(PlatformMode::StockXen, AbConfig::Clean);
        let xoar = run(PlatformMode::Xoar, AbConfig::Clean);
        let delta = 1.0 - xoar.throughput_rps / dom0.throughput_rps;
        assert!(
            delta > 0.0 && delta < 0.03,
            "Xoar delta {delta:.3} (paper: ~1.5%)"
        );
    }

    #[test]
    fn clean_runs_have_millisecond_requests() {
        let dom0 = run(PlatformMode::StockXen, AbConfig::Clean);
        // Paper: "the longest packet took only 8-9ms" without restarts.
        assert!(
            dom0.longest_request_ms < 25.0,
            "{:.1} ms",
            dom0.longest_request_ms
        );
        assert!(dom0.mean_latency_ms > 10.0 && dom0.mean_latency_ms < 20.0);
    }

    #[test]
    fn restarts_degrade_non_uniformly() {
        let clean = run(PlatformMode::Xoar, AbConfig::Clean);
        let r10 = run(PlatformMode::Xoar, AbConfig::Restarts { interval_s: 10 });
        let r5 = run(PlatformMode::Xoar, AbConfig::Restarts { interval_s: 5 });
        let r1 = run(PlatformMode::Xoar, AbConfig::Restarts { interval_s: 1 });
        let drop = |r: &AbResult| 1.0 - r.throughput_rps / clean.throughput_rps;
        // Ordering.
        assert!(
            drop(&r10) < drop(&r5),
            "10s {:.2} vs 5s {:.2}",
            drop(&r10),
            drop(&r5)
        );
        assert!(
            drop(&r5) < drop(&r1),
            "5s {:.2} vs 1s {:.2}",
            drop(&r5),
            drop(&r1)
        );
        // Paper: "changing the interval from 5 seconds to 1 second
        // introduces a significant performance loss." (The paper also
        // reports the 5→10 s gain as barely measurable; our mechanistic
        // model yields degradation closer to proportional-in-frequency —
        // the discrepancy is recorded in EXPERIMENTS.md.)
        let gain_5_to_10 = r10.throughput_rps / r5.throughput_rps - 1.0;
        let loss_5_to_1 = 1.0 - r1.throughput_rps / r5.throughput_rps;
        assert!(
            loss_5_to_1 > gain_5_to_10,
            "5→1 loss {loss_5_to_1:.2} vs 5→10 gain {gain_5_to_10:.2}"
        );
        assert!(
            drop(&r1) > 0.45,
            "1s restarts are crippling: {:.2}",
            drop(&r1)
        );
    }

    #[test]
    fn restart_runs_have_multi_second_outliers() {
        // Paper: "with restarts, the values range from 3000ms (at 5 and 10
        // seconds) to 7000ms (at 1 second)".
        for i in [10u64, 5, 1] {
            let r = run(PlatformMode::Xoar, AbConfig::Restarts { interval_s: i });
            assert!(
                r.longest_request_ms >= 2_000.0 && r.longest_request_ms <= 9_000.0,
                "interval {i}s: longest {:.0} ms",
                r.longest_request_ms
            );
        }
    }

    #[test]
    fn outage_detection_geometry() {
        let cfg = AbConfig::Restarts { interval_s: 1 };
        let period = SEC + RestartPath::Slow.downtime_ns() + 137_000_000;
        // No outage before the first period elapses.
        assert!(in_outage(100, cfg).is_none());
        assert!(in_outage(period - 1, cfg).is_none());
        // Inside the first outage window.
        let t = period + 100_000_000;
        let end = in_outage(t, cfg).unwrap();
        assert_eq!(end, period + RestartPath::Slow.downtime_ns());
        // After it.
        assert!(in_outage(period + 300_000_000, cfg).is_none());
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn print_figure() {
        for (label, mode, cfg) in figure_6_5_cases() {
            let r = run(mode, cfg);
            eprintln!(
                "{label}: {:.2}s {:.0} req/s lat {:.1}ms xfer {:.1}MB/s longest {:.0}ms",
                r.total_time_s,
                r.throughput_rps,
                r.mean_latency_ms,
                r.transfer_mbps,
                r.longest_request_ms
            );
        }
    }
}
