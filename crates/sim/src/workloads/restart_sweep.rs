//! NetBack restart sweep (Figure 6.3).
//!
//! "To measure the effect of microrebooting driver VMs, we ran the 2 GB
//! wget to /dev/null while restarting NetBack at intervals between 1 s
//! and 10 s", with the slow (~260 ms) and fast (~140 ms) restart paths.
//!
//! The sweep composes three pieces built elsewhere:
//!
//! * [`xoar_core::restart::RestartEngine`] performs real microreboots of
//!   the NetBack shard (rollback hypercall, ring detach/reattach) and
//!   reports the downtime of the configured path;
//! * the downtime windows become [`crate::tcp::Outage`]s;
//! * [`crate::tcp::simulate_transfer`] evolves the TCP flow through them.

use xoar_core::platform::Platform;
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_hypervisor::DomId;

use crate::tcp::{self, Outage, TcpPath, SEC};

/// One point of Figure 6.3.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Restart interval (seconds).
    pub interval_s: u64,
    /// Restart path.
    pub path: RestartPath,
    /// Mean throughput (MB/s) of the 2 GB fetch.
    pub throughput_mbps: f64,
    /// Microreboots executed during the transfer.
    pub restarts: u64,
    /// Measured per-restart device downtime (ns).
    pub downtime_ns: u64,
}

/// Baseline throughput (no restarts), MB/s.
pub fn baseline_mbps(bytes: u64) -> f64 {
    tcp::simulate_transfer(TcpPath::gigabit_lan(), bytes, &[]).goodput_bps / 1e6
}

/// Runs one sweep point: a `bytes`-long fetch with NetBack restarted
/// every `interval_s` seconds using `path`.
///
/// The restarts are *executed* on the platform (so rollback counts, audit
/// records, and ring churn are real); their measured downtimes drive the
/// TCP model.
pub fn run_point(
    platform: &mut Platform,
    _guest: DomId,
    bytes: u64,
    interval_s: u64,
    path: RestartPath,
) -> SweepPoint {
    let netback = platform.services.netbacks[0];
    let mut engine = RestartEngine::new();
    engine
        .register(
            platform,
            netback,
            RestartPolicy::Timer {
                interval_ns: interval_s * SEC,
            },
            path,
        )
        .expect("netback registers for restarts");

    // Estimate the horizon generously, then walk simulated time executing
    // every due restart and collecting its outage window.
    let clean_ns = tcp::simulate_transfer(TcpPath::gigabit_lan(), bytes, &[]).elapsed_ns;
    let horizon_ns = clean_ns * 20;
    let mut outages = Vec::new();
    let start_ns = platform.now_ns();
    while platform.now_ns() - start_ns < horizon_ns {
        platform.advance_time(interval_s * SEC);
        for shard in engine.due(platform.now_ns()) {
            let outcome = engine.restart(platform, shard).expect("registered restart");
            outages.push(Outage {
                start_ns: platform.now_ns() - start_ns,
                duration_ns: outcome.downtime_ns,
            });
        }
    }
    let result = tcp::simulate_transfer(TcpPath::gigabit_lan(), bytes, &outages);
    SweepPoint {
        interval_s,
        path,
        throughput_mbps: result.goodput_bps / 1e6,
        restarts: engine.total_restarts(),
        downtime_ns: path.downtime_ns(),
    }
}

/// The full Figure 6.3 sweep: intervals 1–10 s, both paths.
pub fn figure_6_3(platform_factory: impl Fn() -> (Platform, DomId), bytes: u64) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for path in [RestartPath::Slow, RestartPath::Fast] {
        for interval_s in 1..=10 {
            let (mut platform, guest) = platform_factory();
            points.push(run_point(&mut platform, guest, bytes, interval_s, path));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    const GB2: u64 = 2 << 30;

    fn factory() -> (Platform, DomId) {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("wget"))
            .unwrap();
        (p, g)
    }

    #[test]
    fn restarts_actually_execute_on_platform() {
        let (mut p, g) = factory();
        let nb = p.services.netbacks[0];
        let point = run_point(&mut p, g, GB2, 5, RestartPath::Slow);
        assert!(point.restarts > 0);
        assert_eq!(p.hv.rollback_count(nb), point.restarts);
        assert_eq!(p.audit.restart_count(nb), point.restarts);
    }

    #[test]
    fn figure_6_3_throughput_monotone_in_interval() {
        let (mut p1, g1) = factory();
        let t1 = run_point(&mut p1, g1, GB2, 1, RestartPath::Slow).throughput_mbps;
        let (mut p5, g5) = factory();
        let t5 = run_point(&mut p5, g5, GB2, 5, RestartPath::Slow).throughput_mbps;
        let (mut p10, g10) = factory();
        let t10 = run_point(&mut p10, g10, GB2, 10, RestartPath::Slow).throughput_mbps;
        assert!(t1 < t5 && t5 < t10, "{t1:.1} {t5:.1} {t10:.1}");
        let base = baseline_mbps(GB2);
        // Paper: 58% drop at 1 s, 8% at 10 s.
        let drop1 = 1.0 - t1 / base;
        let drop10 = 1.0 - t10 / base;
        assert!(drop1 > 0.40, "1s drop {drop1:.2}");
        assert!(drop10 < 0.15, "10s drop {drop10:.2}");
    }

    #[test]
    fn fast_path_helps_most_at_short_intervals() {
        let (mut ps, gs) = factory();
        let slow1 = run_point(&mut ps, gs, GB2, 1, RestartPath::Slow).throughput_mbps;
        let (mut pf, gf) = factory();
        let fast1 = run_point(&mut pf, gf, GB2, 1, RestartPath::Fast).throughput_mbps;
        assert!(fast1 > slow1, "fast {fast1:.1} vs slow {slow1:.1} at 1s");
        let (mut ps10, gs10) = factory();
        let slow10 = run_point(&mut ps10, gs10, GB2, 10, RestartPath::Slow).throughput_mbps;
        let (mut pf10, gf10) = factory();
        let fast10 = run_point(&mut pf10, gf10, GB2, 10, RestartPath::Fast).throughput_mbps;
        let gain1 = fast1 / slow1 - 1.0;
        let gain10 = fast10 / slow10 - 1.0;
        assert!(gain1 > gain10, "gain1 {gain1:.3} gain10 {gain10:.3}");
        assert!(gain10 < 0.05, "paper: <1% at 10s; model {gain10:.3}");
    }
}
