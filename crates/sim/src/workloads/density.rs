//! VM-density extension experiment.
//!
//! Not a numbered figure, but the workload the paper's introduction
//! motivates: "Best practices in virtual desktop deployments involve
//! deploying 10 VMs per CPU core. Further packing density is achieved by
//! sharing identical pages of memory … between VMs." This experiment
//! packs a fleet of small guests onto the 4-core testbed, measures how
//! the platform's service-memory overhead amortises, how much page
//! deduplication reclaims, and that the credit scheduler divides each
//! core fairly ten ways.

use xoar_core::platform::{GuestConfig, Platform};
use xoar_core::KernelSpec;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::DomId;

/// Result of one density run.
#[derive(Debug, Clone)]
pub struct DensityResult {
    /// Guests successfully packed.
    pub guests: usize,
    /// Platform service memory, MiB (fixed cost being amortised).
    pub service_memory_mib: u64,
    /// Frames reclaimed by page deduplication.
    pub dedup_frames: u64,
    /// Frames reclaimed relative to the kernel frames the workload wrote
    /// (can exceed 1.0: the Builder's identical start-info/kernel-stub
    /// pages across guests deduplicate too).
    pub dedup_fraction: f64,
    /// CPU time each guest received in one scheduler period, ns.
    pub per_guest_cpu_ns: Vec<(DomId, u64)>,
}

/// Number of identical "kernel image" pages each guest carries.
const KERNEL_PAGES: u64 = 24;

/// Packs `count` desktop-class guests onto `platform` and measures
/// density characteristics.
///
/// Deduplication runs as one bulk `dedup_memory` pass after all guests
/// have written their kernel images. [`run_incremental`] is the variant
/// where dedup happens on every write instead.
pub fn run(platform: &mut Platform, count: usize) -> DensityResult {
    run_with_mode(platform, count, false)
}

/// Density run with incremental content-hash dedup: the memory manager's
/// `dedup_on_write` mode merges each identical kernel page the moment a
/// guest writes it, so reclaim happens continuously instead of in one
/// stop-the-world pass. Reclaim totals match [`run`] on the same fleet.
pub fn run_incremental(platform: &mut Platform, count: usize) -> DensityResult {
    run_with_mode(platform, count, true)
}

fn run_with_mode(platform: &mut Platform, count: usize, incremental: bool) -> DensityResult {
    let ts = platform.services.toolstacks[0];
    let mut guests = Vec::new();
    for i in 0..count {
        let mut cfg = GuestConfig::evaluation_guest(&format!("desktop-{i}"));
        cfg.memory_mib = 64; // Thin desktop VMs.
        cfg.vcpus = 1;
        cfg.disk_bytes = 1 << 30;
        cfg.kernel = KernelSpec::Library("vmlinuz-2.6.31-pvops".into());
        match platform.create_guest(ts, cfg) {
            Ok(g) => guests.push(g),
            Err(_) => break,
        }
    }
    // Identical guest images: every desktop maps the same kernel and
    // shared-library pages.
    if incremental {
        platform.hv.mem.set_dedup_on_write(true);
    }
    let freed_before = platform.hv.mem.dedup_write_freed();
    for &g in &guests {
        for page in 0..KERNEL_PAGES {
            platform
                .hv
                .mem
                .write(g, Pfn(30 + page), format!("kernel-text-{page}").as_bytes())
                .expect("guest frames populated");
        }
    }
    let dedup_frames = if incremental {
        // Every duplicate was merged as it was written; a final bulk pass
        // only sweeps up pages that predate the writes (builder stubs).
        let on_write = platform.hv.mem.dedup_write_freed() - freed_before;
        platform.hv.mem.set_dedup_on_write(false);
        on_write + platform.dedup_memory()
    } else {
        platform.dedup_memory()
    };
    let total_kernel_frames = guests.len() as u64 * KERNEL_PAGES;
    let dedup_fraction = if total_kernel_frames == 0 {
        0.0
    } else {
        dedup_frames as f64 / total_kernel_frames as f64
    };
    // One 30 ms scheduler accounting period with every guest runnable.
    for &g in &guests {
        platform.hv.sched.set_runnable(g, true);
    }
    let granted = platform.hv.sched.account(30_000_000);
    let per_guest_cpu_ns = guests
        .iter()
        .map(|g| (*g, granted.get(g).copied().unwrap_or(0)))
        .collect();
    DensityResult {
        guests: guests.len(),
        service_memory_mib: platform.service_memory_mib(),
        dedup_frames,
        dedup_fraction,
        per_guest_cpu_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::XoarConfig;

    #[test]
    fn packs_forty_desktops_on_four_cores() {
        // The intro's best practice: 10 VMs per core on the 4-core box.
        let mut p = Platform::xoar(XoarConfig::default());
        let r = run(&mut p, 40);
        assert_eq!(r.guests, 40, "all forty desktops placed");
    }

    #[test]
    fn dedup_reclaims_nearly_all_duplicate_kernel_pages() {
        let mut p = Platform::xoar(XoarConfig::default());
        let r = run(&mut p, 10);
        // 10 copies of each kernel page collapse to 1: (n-1)/n reclaimed.
        assert!(r.dedup_fraction > 0.85, "fraction {}", r.dedup_fraction);
    }

    #[test]
    fn incremental_dedup_reclaims_what_the_bulk_pass_does() {
        let mut bulk = Platform::xoar(XoarConfig::default());
        let rb = run(&mut bulk, 10);
        let mut incr = Platform::xoar(XoarConfig::default());
        let ri = run_incremental(&mut incr, 10);
        assert_eq!(
            ri.dedup_frames, rb.dedup_frames,
            "merge-on-write reclaims exactly the bulk total"
        );
        assert_eq!(
            incr.hv.mem.shared_frames(),
            bulk.hv.mem.shared_frames(),
            "both fleets converge to the same shared-frame census"
        );
        // Guests stay isolated after merge-on-write: a write by one
        // desktop breaks the share instead of leaking.
        let g = ri.per_guest_cpu_ns[0].0;
        incr.hv.mem.write(g, Pfn(30), b"patched-kernel").unwrap();
        let other = ri.per_guest_cpu_ns[1].0;
        assert_eq!(incr.hv.mem.read(other, Pfn(30)).unwrap(), b"kernel-text-0");
    }

    #[test]
    fn scheduler_divides_cores_fairly() {
        let mut p = Platform::xoar(XoarConfig::default());
        let r = run(&mut p, 40);
        let times: Vec<u64> = r.per_guest_cpu_ns.iter().map(|(_, t)| *t).collect();
        let min = *times.iter().min().unwrap();
        let max = *times.iter().max().unwrap();
        assert!(min > 0, "every guest was scheduled");
        assert!(max <= min * 2, "fair shares: min {min} max {max}");
        // ~1/10 of a core each (shards idle in this experiment).
        let period = 30_000_000u64;
        assert!(
            max <= period / 5,
            "densely packed guests get fractional cores"
        );
    }

    #[test]
    fn service_memory_amortises_with_density() {
        let mut p = Platform::xoar(XoarConfig::default());
        let r = run(&mut p, 40);
        // 640 MiB of service shards over 40 guests = 16 MiB per guest,
        // well under the 750 MiB a Dom0 would cost regardless of count.
        let per_guest = r.service_memory_mib as f64 / r.guests as f64;
        assert!(
            per_guest < 20.0,
            "per-guest service memory {per_guest:.1} MiB"
        );
    }
}
