//! The Chapter 6 evaluation workloads.
//!
//! One module per experiment: [`postmark`] (Fig 6.1), [`wget`] (Fig 6.2),
//! [`restart_sweep`] (Fig 6.3), [`kernel_build`] (Fig 6.4), and
//! [`apache`] (Fig 6.5). Boot timing (Table 6.2) lives in
//! `xoar_core::boot`.

pub mod apache;
pub mod density;
pub mod fronttier;
pub mod kernel_build;
pub mod postmark;
pub mod restart_sweep;
pub mod serverless;
pub mod smp;
pub mod stagger;
pub mod wget;
