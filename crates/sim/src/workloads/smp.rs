//! SMP scaling workload: a multi-vcpu guest issuing XenStore-style
//! request bursts across a configurable number of simulated physical
//! CPUs (runqueues).
//!
//! Each simulated pcpu is a periodic tick event in the DES engine; on
//! every tick it picks a vcpu from its own runqueue (or steals one from
//! a neighbour) and executes one request: a `SchedYield`, an
//! `EvtchnSend` on that vcpu's private channel to the XenStore shard,
//! and an idempotent write to the vcpu's private page. All three are
//! commutative across vcpus within a tick — sends to distinct ports set
//! distinct pending bits, and each vcpu touches only its own page — so
//! the final platform state is identical no matter how many runqueues
//! the same vcpus were spread over. That invariance is what
//! `tests/sharding.rs` checks byte-for-byte.
//!
//! Every vcpu starts on runqueue 0: the steady-state balance emerges
//! through work stealing, which is the mechanism under test.

use crate::des::Engine;
use xoar_core::platform::Platform;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::sched::{RunQueues, VcpuRef};
use xoar_hypervisor::{DomId, Hypercall, HypercallId};

/// Simulated scheduling tick: 30 µs, matching the credit scheduler's
/// accounting quantum ratio used elsewhere in the suite.
pub const TICK_NS: u64 = 30_000;

/// Outcome of an SMP scaling run.
#[derive(Debug, Clone)]
pub struct SmpResult {
    /// Number of runqueues (simulated pcpus) the run used.
    pub runqueues: usize,
    /// Number of guest vcpus that participated.
    pub vcpus: u32,
    /// Total requests completed across all vcpus.
    pub ops: u64,
    /// Scheduling ticks elapsed (rounds of the DES engine).
    pub ticks: u64,
    /// Vcpus migrated between runqueues by work stealing.
    pub steals: u64,
    /// Simulated time consumed, in nanoseconds.
    pub elapsed_ns: u64,
    /// Requests completed by each vcpu, indexed by vcpu id — the
    /// starvation evidence the work-stealing property test inspects.
    pub ops_by_vcpu: Vec<u64>,
}

impl SmpResult {
    /// Requests completed per scheduling tick — the throughput figure
    /// the vcpu-scaling ablation reports.
    pub fn ops_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.ops as f64 / self.ticks as f64
    }
}

/// The prepared half of the workload: per-vcpu event channels to the
/// XenStore shard, set up once so the run loop can execute repeatedly
/// (benchmark iterations) without allocating fresh ports each time.
#[derive(Debug, Clone)]
pub struct SmpWorkload {
    guest: DomId,
    ports: Vec<u32>,
}

impl SmpWorkload {
    /// Sets up the workload for `guest`: one rendezvous channel per
    /// vcpu — the guest offers an unbound port, the shard completes the
    /// handshake. Sends on distinct ports coalesce independently,
    /// keeping per-vcpu signalling commutative.
    ///
    /// The workload is a host-side driver (like the density sweep): it
    /// pokes `platform.hv` directly where a real toolstack would, and
    /// issues the per-request hypercalls as the guest.
    pub fn prepare(platform: &mut Platform, guest: DomId) -> Self {
        let xs = platform.services.xenstore;
        // The XenStore shard binds the guest's offered ports below; make
        // sure it may issue the bind regardless of platform flavour.
        platform
            .hv
            .domain_mut(xs)
            .expect("xenstore shard exists")
            .privileges
            .permit_hypercall(HypercallId::EvtchnBindInterdomain);

        let vcpus = platform.hv.domain(guest).expect("guest exists").vcpus.len() as u32;
        let ports: Vec<u32> = (0..vcpus)
            .map(|_| {
                let port = platform
                    .hv
                    .hypercall(guest, Hypercall::EvtchnAllocUnbound { remote: xs })
                    .expect("guest offers event channel")
                    .port()
                    .unwrap();
                platform
                    .hv
                    .hypercall(
                        xs,
                        Hypercall::EvtchnBindInterdomain {
                            remote: guest,
                            remote_port: port,
                        },
                    )
                    .expect("xenstore shard binds");
                port
            })
            .collect();
        SmpWorkload { guest, ports }
    }

    /// Runs `rounds` scheduling ticks over `runqueues` simulated pcpus,
    /// returning the throughput accounting. Safe to call repeatedly on
    /// the same prepared workload: every operation is idempotent.
    pub fn run(&self, platform: &mut Platform, runqueues: usize, rounds: u64) -> SmpResult {
        run_prepared(platform, self.guest, &self.ports, runqueues, rounds)
    }
}

/// One-shot convenience: [`SmpWorkload::prepare`] followed by a single
/// [`SmpWorkload::run`].
pub fn run(platform: &mut Platform, guest: DomId, runqueues: usize, rounds: u64) -> SmpResult {
    SmpWorkload::prepare(platform, guest).run(platform, runqueues, rounds)
}

fn run_prepared(
    platform: &mut Platform,
    guest: DomId,
    ports: &[u32],
    runqueues: usize,
    rounds: u64,
) -> SmpResult {
    let vcpus = ports.len() as u32;
    let mut rq = RunQueues::new(runqueues);
    for v in 0..vcpus {
        rq.enqueue(
            0,
            VcpuRef {
                dom: guest,
                vcpu: v,
            },
        );
    }

    // One periodic tick event per pcpu. `next_tick` pops the whole
    // tick's worth in scheduling order, so pcpu 0 always runs before
    // pcpu 1 within a tick — deterministic regardless of runqueue count.
    let mut eng: Engine<usize> = Engine::new();
    for r in 0..rq.queue_count() {
        eng.schedule(TICK_NS, r);
    }

    let mut ops = 0u64;
    let mut ops_by_vcpu = vec![0u64; vcpus as usize];
    let mut ticks = 0u64;
    while ticks < rounds {
        let batch = eng.next_tick();
        if batch.is_empty() {
            break;
        }
        ticks += 1;
        let reschedule = ticks < rounds;
        for (_, r) in batch {
            let picked = rq.pick_next(r, &platform.hv.sched).or_else(|| rq.steal(r));
            if let Some(v) = picked {
                platform
                    .hv
                    .hypercall(guest, Hypercall::SchedYield)
                    .expect("yield");
                platform
                    .hv
                    .hypercall(
                        guest,
                        Hypercall::EvtchnSend {
                            port: ports[v.vcpu as usize],
                        },
                    )
                    .expect("send");
                // Idempotent: each vcpu stamps its own page with the
                // same bytes every round, so final memory contents do
                // not depend on execution order or interleaving.
                let stamp = [v.vcpu as u8, 0xA5];
                platform
                    .hv
                    .mem
                    .write(guest, Pfn(u64::from(v.vcpu)), &stamp)
                    .expect("guest page populated");
                ops += 1;
                ops_by_vcpu[v.vcpu as usize] += 1;
                rq.enqueue(r, v);
            }
            if reschedule {
                eng.schedule_in(TICK_NS, r);
            }
        }
    }

    platform.hv.advance_time(eng.now_ns());
    SmpResult {
        runqueues: rq.queue_count(),
        vcpus,
        ops,
        ticks,
        steals: rq.steals(),
        elapsed_ns: eng.now_ns(),
        ops_by_vcpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, Platform, XoarConfig};

    fn smp_platform(vcpus: u32) -> (Platform, DomId) {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest("smp-guest");
        cfg.vcpus = vcpus;
        let g = p.create_guest(ts, cfg).expect("guest boots");
        (p, g)
    }

    #[test]
    fn throughput_tracks_runqueue_count() {
        let (mut p1, g1) = smp_platform(4);
        let (mut p4, g4) = smp_platform(4);
        let one = run(&mut p1, g1, 1, 64);
        let four = run(&mut p4, g4, 4, 64);
        assert_eq!(one.ticks, 64);
        assert_eq!(four.ticks, 64);
        // With 4 vcpus, 4 pcpus complete ~4x the requests per tick.
        assert!(
            four.ops_per_tick() >= one.ops_per_tick() * 3.0,
            "expected near-linear scaling: 1rq={} ops/tick, 4rq={} ops/tick",
            one.ops_per_tick(),
            four.ops_per_tick()
        );
    }

    #[test]
    fn stealing_spreads_the_initial_pileup() {
        let (mut p, g) = smp_platform(4);
        let res = run(&mut p, g, 4, 32);
        assert!(
            res.steals > 0,
            "all vcpus start on runqueue 0; idle pcpus must steal"
        );
        assert_eq!(res.vcpus, 4);
        assert_eq!(res.runqueues, 4);
    }

    #[test]
    fn more_runqueues_than_vcpus_is_safe() {
        let (mut p, g) = smp_platform(2);
        let res = run(&mut p, g, 6, 16);
        assert_eq!(res.ticks, 16);
        // At most `vcpus` requests complete per tick.
        assert!(res.ops <= u64::from(res.vcpus) * res.ticks);
        assert!(res.ops > 0);
    }

    #[test]
    fn elapsed_time_depends_only_on_rounds() {
        let (mut p1, g1) = smp_platform(2);
        let (mut p3, g3) = smp_platform(2);
        let a = run(&mut p1, g1, 1, 20);
        let b = run(&mut p3, g3, 3, 20);
        assert_eq!(a.elapsed_ns, 20 * TICK_NS);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
    }
}
