//! Kernel build (Figure 6.4): local ext3 and remote NFS.
//!
//! A Linux kernel build is CPU-dominated with a steady stream of small
//! file I/O: source reads, object writes, and (in the NFS configuration)
//! every one of those crossing the network as a synchronous RPC. The
//! figure reports five bars: Dom0 (local), Xoar (local), Dom0 (NFS),
//! Xoar (NFS), and Xoar NFS with NetBack restarts at 10 s and 5 s.
//!
//! The model charges a fixed compile-CPU budget plus the measured service
//! time of the real block/network traffic the build generates; NFS RPCs
//! ride the TCP model, so restart configurations inherit the outage
//! behaviour of Figure 6.3 — "the overhead added by Xoar is much less
//! than 1%".

use xoar_core::platform::{Platform, PlatformMode};
use xoar_core::restart::RestartPath;
use xoar_devices::blk::BlkOp;
use xoar_hypervisor::DomId;

use crate::tcp::{self, TcpPath, SEC};

/// Where the source tree lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSource {
    /// Local ext3 volume (virtual disk).
    LocalExt3,
    /// Remote NFS mount (network path), optionally with NetBack restarts
    /// at the given interval.
    Nfs {
        /// NetBack restart interval in seconds (None = no restarts).
        restart_interval_s: Option<u64>,
    },
}

/// One bar of Figure 6.4.
#[derive(Debug, Clone, Copy)]
pub struct BuildResult {
    /// Total build time in seconds — the figure's y-axis.
    pub build_time_s: f64,
    /// CPU seconds of compilation.
    pub cpu_s: f64,
    /// I/O seconds (disk or NFS).
    pub io_s: f64,
}

/// Compile CPU time of the build (calibrated: a 2.6.31 defconfig build on
/// a 2.67 GHz Xeon with 2 VCPUs).
const COMPILE_CPU_S: f64 = 242.0;

/// Bytes read + written by the build (sources, headers, objects).
const BUILD_IO_BYTES: u64 = 1_100 << 20;

/// NFS RPC count for the build (each with a synchronous round trip).
const NFS_RPCS: u64 = 90_000;

/// Runs a kernel build in `guest`.
pub fn run(platform: &mut Platform, guest: DomId, source: BuildSource) -> BuildResult {
    // The PV overhead: every I/O batch crosses the split-driver ring.
    // Xoar's extra VM boundary adds a sliver of per-batch cost, the
    // "<1% overhead" of the paper.
    let pv_factor = match platform.mode {
        PlatformMode::StockXen => 1.000,
        PlatformMode::Xoar => 1.006,
    };
    let io_s = match source {
        BuildSource::LocalExt3 => {
            // Drive the real block path with a representative sample of
            // the build's I/O and scale up.
            const SAMPLE_BATCHES: u64 = 256;
            let batch_bytes = BUILD_IO_BYTES / SAMPLE_BATCHES;
            let mut sector = 0u64;
            let mut service_ns = 0u64;
            for i in 0..SAMPLE_BATCHES {
                let op = if i % 3 == 0 {
                    BlkOp::Read
                } else {
                    BlkOp::Write
                };
                let sectors = (batch_bytes / 512).min(64);
                while platform.blk_submit(guest, op, sector, sectors).is_err() {
                    service_ns += platform.process_blkbacks().service_ns;
                    while platform.blk_poll(guest).is_some() {}
                }
                sector += sectors;
            }
            service_ns += platform.process_blkbacks().service_ns;
            while platform.blk_poll(guest).is_some() {}
            // Scale the sampled service time to the full build volume.
            let sampled_bytes =
                SAMPLE_BATCHES * (BUILD_IO_BYTES / SAMPLE_BATCHES / 512).min(64) * 512;
            let scale = BUILD_IO_BYTES as f64 / sampled_bytes as f64;
            service_ns as f64 * scale / 1e9
        }
        BuildSource::Nfs { restart_interval_s } => {
            // Bulk data over TCP plus per-RPC round trips.
            let path = TcpPath::gigabit_lan();
            let outages = match restart_interval_s {
                None => Vec::new(),
                Some(i) => {
                    // Outage windows across the whole build duration.
                    tcp::periodic_outages(
                        i * SEC,
                        RestartPath::Slow.downtime_ns(),
                        (COMPILE_CPU_S as u64 + 120) * SEC,
                    )
                }
            };
            let bulk = tcp::simulate_transfer(path, BUILD_IO_BYTES, &outages);
            let rpc_s = NFS_RPCS as f64 * (path.rtt_ns as f64 / 1e9);
            // Restarts also stall in-flight RPCs: each outage eats one
            // retransmission cycle for the RPC stream.
            let rpc_stall_s = outages.len() as f64 * 0.35;
            bulk.elapsed_ns as f64 / 1e9 + rpc_s + rpc_stall_s
        }
    };
    let io_s = io_s * pv_factor;
    let cpu_s = COMPILE_CPU_S * pv_factor;
    // Compilation overlaps I/O partially (make -j keeps CPUs busy); the
    // non-overlapped tail is what lands on the wall clock.
    let build_time_s = cpu_s + io_s * 0.85;
    BuildResult {
        build_time_s,
        cpu_s,
        io_s,
    }
}

/// The figure's five configurations.
pub fn figure_6_4_cases() -> Vec<(&'static str, BuildSource)> {
    vec![
        ("local", BuildSource::LocalExt3),
        (
            "nfs",
            BuildSource::Nfs {
                restart_interval_s: None,
            },
        ),
        (
            "nfs+restarts(10s)",
            BuildSource::Nfs {
                restart_interval_s: Some(10),
            },
        ),
        (
            "nfs+restarts(5s)",
            BuildSource::Nfs {
                restart_interval_s: Some(5),
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    fn with_guest(mut p: Platform) -> (Platform, DomId) {
        let ts = p.services.toolstacks[0];
        let g = p
            .create_guest(ts, GuestConfig::evaluation_guest("build"))
            .unwrap();
        (p, g)
    }

    #[test]
    fn figure_6_4_xoar_overhead_under_one_percent() {
        for source in [
            BuildSource::LocalExt3,
            BuildSource::Nfs {
                restart_interval_s: None,
            },
        ] {
            let (mut d, gd) = with_guest(Platform::stock_xen());
            let (mut x, gx) = with_guest(Platform::xoar(XoarConfig::default()));
            let dom0 = run(&mut d, gd, source);
            let xoar = run(&mut x, gx, source);
            let overhead = xoar.build_time_s / dom0.build_time_s - 1.0;
            assert!(overhead >= 0.0, "{source:?}");
            assert!(
                overhead < 0.01,
                "{source:?}: overhead {overhead:.4} (paper: <1%)"
            );
        }
    }

    #[test]
    fn build_times_in_plausible_range() {
        let (mut p, g) = with_guest(Platform::stock_xen());
        let local = run(&mut p, g, BuildSource::LocalExt3);
        assert!(
            local.build_time_s > 200.0 && local.build_time_s < 320.0,
            "{}",
            local.build_time_s
        );
        let nfs = run(
            &mut p,
            g,
            BuildSource::Nfs {
                restart_interval_s: None,
            },
        );
        assert!(
            nfs.build_time_s > local.build_time_s,
            "NFS slower than local"
        );
    }

    #[test]
    fn restarts_inflate_nfs_builds_monotonically() {
        let (mut p, g) = with_guest(Platform::xoar(XoarConfig::default()));
        let clean = run(
            &mut p,
            g,
            BuildSource::Nfs {
                restart_interval_s: None,
            },
        );
        let r10 = run(
            &mut p,
            g,
            BuildSource::Nfs {
                restart_interval_s: Some(10),
            },
        );
        let r5 = run(
            &mut p,
            g,
            BuildSource::Nfs {
                restart_interval_s: Some(5),
            },
        );
        assert!(clean.build_time_s < r10.build_time_s);
        assert!(r10.build_time_s < r5.build_time_s);
        // The damage is bounded: even 5 s restarts stay within ~2× of the
        // clean build (the figure's bars are same order of magnitude).
        assert!(r5.build_time_s < clean.build_time_s * 2.0);
    }

    #[test]
    fn io_is_minor_next_to_cpu() {
        // Kernel builds are compute-bound; I/O must not dominate.
        let (mut p, g) = with_guest(Platform::stock_xen());
        let local = run(&mut p, g, BuildSource::LocalExt3);
        assert!(
            local.io_s < local.cpu_s / 4.0,
            "io {} cpu {}",
            local.io_s,
            local.cpu_s
        );
    }
}
