//! Serverless-density experiment: snapshot-fork clones under function churn.
//!
//! The paper's microreboot machinery makes *restarting* a domain cheap;
//! this experiment measures the complementary claim for *creating* one.
//! A fleet of serverless functions receives invocations over the DES
//! clock. The first invocation of a function pays the cold path — a full
//! Builder round-trip plus template capture — while every scale-out
//! after that is a snapshot-fork clone stamped from the sealed template.
//! Idle instances expire and are harvested; duplicate warm state across
//! instances of one function is reclaimed by the content-hash dedup
//! index, so steady-state memory grows with *written* pages, not with
//! instance count.

use std::time::Instant;

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::toolstack::Toolstack;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, Hypercall};

use crate::des::Engine;
use crate::rng::SimRng;

/// Shape of one churn run.
#[derive(Debug, Clone)]
pub struct ServerlessConfig {
    /// Distinct functions in the fleet.
    pub functions: usize,
    /// Total invocation arrivals to simulate.
    pub invocations: usize,
    /// Mean interarrival gap on the DES clock, ns.
    pub mean_interarrival_ns: u64,
    /// How long an instance is busy serving one invocation, ns.
    pub service_ns: u64,
    /// Idle grace before an instance is harvested, ns.
    pub keep_warm_ns: u64,
    /// Memory of each function instance, MiB.
    pub memory_mib: u64,
}

impl Default for ServerlessConfig {
    fn default() -> Self {
        ServerlessConfig {
            functions: 8,
            invocations: 400,
            mean_interarrival_ns: 2_000_000, // 2 ms between arrivals
            service_ns: 10_000_000,          // 10 ms of work each
            keep_warm_ns: 50_000_000,        // 50 ms idle grace
            memory_mib: 64,
        }
    }
}

/// Host-measured latency samples for one start class.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    /// Raw samples, ns, in completion order.
    pub samples: Vec<u64>,
}

impl LatencyStats {
    fn push(&mut self, ns: u64) {
        self.samples.push(ns);
    }

    /// Median sample, 0 when empty.
    pub fn median(&self) -> u64 {
        percentile(&self.samples, 50)
    }

    /// 95th-percentile sample, 0 when empty.
    pub fn p95(&self) -> u64 {
        percentile(&self.samples, 95)
    }
}

fn percentile(samples: &[u64], pct: usize) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Outcome of one churn run.
#[derive(Debug)]
pub struct ServerlessResult {
    /// Invocations served.
    pub invocations: u64,
    /// Builder round-trips (first sight of a function).
    pub cold_starts: u64,
    /// Snapshot-fork clones (scale-out and post-expiry restarts).
    pub warm_starts: u64,
    /// Invocations absorbed by an already-idle warm instance.
    pub warm_reuses: u64,
    /// Idle instances harvested by the keep-warm timer.
    pub harvested: u64,
    /// Most instances live at once (templates excluded).
    pub peak_instances: usize,
    /// Host-measured cold-path latency (build + capture + first clone).
    pub cold_start_ns: LatencyStats,
    /// Host-measured warm-path latency (one clone stamp).
    pub warm_start_ns: LatencyStats,
    /// Frames the fleet holds at the end of the run.
    pub frames_used: u64,
    /// Frames the same fleet would hold had every live instance been
    /// built instead of cloned.
    pub built_equivalent_frames: u64,
    /// Frames reclaimed by the end-of-run dedup harvest of warm state.
    pub dedup_frames: u64,
    /// Simulated time elapsed, ns.
    pub horizon_ns: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum Ev {
    /// An invocation of function `f` arrives.
    Arrive { f: usize },
    /// Instance `dom` of function `f` finishes its request.
    Complete { f: usize, dom: DomId },
    /// Keep-warm timer for `dom`, armed when it went idle at `since`.
    Expire { f: usize, dom: DomId, since: u64 },
}

#[derive(Debug, Default)]
struct FnState {
    template: Option<DomId>,
    /// Idle warm instances: (dom, idle-since).
    idle: Vec<(DomId, u64)>,
    busy: usize,
}

/// Runs `cfg.invocations` arrivals of function churn on `platform`,
/// driving every start, completion, and harvest through the live
/// toolstack. Deterministic for a given `seed` (latency samples are
/// host-measured and excluded from determinism).
pub fn run(platform: &mut Platform, cfg: &ServerlessConfig, seed: u64) -> ServerlessResult {
    let mut ts = Toolstack::new(platform, 0);
    let mut rng = SimRng::new(seed);
    let mut des: Engine<Ev> = Engine::new();
    let mut fns: Vec<FnState> = (0..cfg.functions).map(|_| FnState::default()).collect();

    // Pre-roll all arrivals so the churn profile is independent of how
    // the run unfolds.
    let mut at = 0u64;
    for _ in 0..cfg.invocations {
        at += rng.range(
            cfg.mean_interarrival_ns / 2,
            cfg.mean_interarrival_ns * 3 / 2,
        );
        let f = rng.below(cfg.functions as u64) as usize;
        des.schedule(at, Ev::Arrive { f });
    }

    let free_at_boot = platform.hv.mem.free_frames();
    let mut r = ServerlessResult {
        invocations: 0,
        cold_starts: 0,
        warm_starts: 0,
        warm_reuses: 0,
        harvested: 0,
        peak_instances: 0,
        cold_start_ns: LatencyStats::default(),
        warm_start_ns: LatencyStats::default(),
        frames_used: 0,
        built_equivalent_frames: 0,
        dedup_frames: 0,
        horizon_ns: 0,
    };
    let mut live = 0usize;

    while let Some((now, ev)) = des.next() {
        match ev {
            Ev::Arrive { f } => {
                r.invocations += 1;
                let dom = if let Some((dom, _)) = fns[f].idle.pop() {
                    r.warm_reuses += 1;
                    dom
                } else if let Some(tpl) = fns[f].template {
                    let t0 = Instant::now();
                    let dom = ts
                        .clone(platform, tpl, &format!("fn{f}-i{}", r.invocations))
                        .expect("clone within quota");
                    r.warm_start_ns.push(t0.elapsed().as_nanos() as u64);
                    r.warm_starts += 1;
                    live += 1;
                    dom
                } else {
                    // Cold path: build the golden instance, seal it as the
                    // function's template, and serve from the first clone.
                    let t0 = Instant::now();
                    let mut gc = GuestConfig::evaluation_guest(&format!("fn{f}-golden"));
                    gc.memory_mib = cfg.memory_mib;
                    gc.vcpus = 1;
                    gc.disk_bytes = 1 << 30;
                    let tpl = ts.create(platform, gc).expect("cold start within quota");
                    ts.capture_template(platform, tpl)
                        .expect("fresh guest seals");
                    let dom = ts
                        .clone(platform, tpl, &format!("fn{f}-i{}", r.invocations))
                        .expect("first clone");
                    r.cold_start_ns.push(t0.elapsed().as_nanos() as u64);
                    r.cold_starts += 1;
                    fns[f].template = Some(tpl);
                    live += 1;
                    dom
                };
                // Warm state: identical across instances of one function,
                // so the dedup harvest below can fold it back together.
                platform
                    .hv
                    .mem
                    .write(dom, Pfn(8), format!("warm-state-fn{f}").as_bytes())
                    .expect("instance frames");
                fns[f].busy += 1;
                r.peak_instances = r.peak_instances.max(live);
                des.schedule(now + cfg.service_ns, Ev::Complete { f, dom });
            }
            Ev::Complete { f, dom } => {
                fns[f].busy -= 1;
                fns[f].idle.push((dom, now));
                des.schedule(now + cfg.keep_warm_ns, Ev::Expire { f, dom, since: now });
            }
            Ev::Expire { f, dom, since } => {
                // Only harvest if the instance is still idle from the same
                // idle period the timer was armed in.
                if let Some(pos) = fns[f]
                    .idle
                    .iter()
                    .position(|&(d, s)| d == dom && s == since)
                {
                    fns[f].idle.remove(pos);
                    ts.destroy(platform, dom).expect("idle instance dies");
                    r.harvested += 1;
                    live -= 1;
                }
            }
        }
        r.horizon_ns = now;
    }

    // Idle-memory harvesting: fold identical warm-state pages across the
    // surviving instances back into shared frames.
    r.dedup_frames = platform.dedup_memory();
    // The harvest is a dirty-epoch materialization seam: after a
    // fleet-wide sweep no frame may be left carrying a stale hash.
    assert_eq!(platform.hv.mem.pending_rehash(), 0);
    r.frames_used = free_at_boot - platform.hv.mem.free_frames();
    // A built guest populates memory_mib frames up front; templates are
    // real builds either way, so only instances differ.
    r.built_equivalent_frames =
        (r.cold_starts + live as u64) * cfg.memory_mib.max(4) * frames_per_mib_model();
    r
}

/// Builder populate granularity: one frame per MiB at model scale.
fn frames_per_mib_model() -> u64 {
    1
}

/// One row of the memory-density table.
#[derive(Debug, Clone, Copy)]
pub struct DensityRow {
    /// Clones stamped from the single template.
    pub clones: usize,
    /// Frames actually held by template + clones.
    pub actual_frames: u64,
    /// Frames the same population of *built* guests would hold.
    pub built_equivalent_frames: u64,
    /// `built_equivalent_frames / actual_frames`.
    pub density: f64,
}

/// Memory of `frames` model frames, MiB, at the builder's one-frame-per-
/// MiB populate granularity.
pub fn frames_to_mib(frames: u64) -> u64 {
    frames / frames_per_mib_model()
}

/// Stamps `count` clones of one small template directly through
/// `DomctlCloneDomain` — no device wiring, no XenStore stamping — and
/// measures frame consumption against the built-guest equivalent. This
/// is the hypervisor-level density ceiling: each clone holds only its
/// privatized I/O ring pages until first write.
pub fn density_row(count: usize) -> DensityRow {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let mut gc = GuestConfig::evaluation_guest("lambda-golden");
    gc.memory_mib = 64;
    gc.vcpus = 1;
    gc.disk_bytes = 1 << 30;
    let tpl = p.create_guest(ts, gc).expect("template builds");
    let free_before = p.hv.mem.free_frames();
    for i in 0..count {
        p.hv.hypercall(
            ts,
            Hypercall::DomctlCloneDomain {
                template: tpl,
                name: format!("fx-{i}"),
            },
        )
        .expect("hypervisor-level clone");
    }
    let actual = free_before - p.hv.mem.free_frames();
    let built = count as u64 * 64 * frames_per_mib_model();
    DensityRow {
        clones: count,
        actual_frames: actual,
        built_equivalent_frames: built,
        density: if actual == 0 {
            f64::INFINITY
        } else {
            built as f64 / actual as f64
        },
    }
}

/// Runs [`density_row`] for each count, smallest first.
pub fn density_sweep(counts: &[usize]) -> Vec<DensityRow> {
    let mut counts = counts.to_vec();
    counts.sort_unstable();
    counts.into_iter().map(density_row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_pays_one_cold_start_per_function() {
        let mut p = Platform::xoar(XoarConfig::default());
        let cfg = ServerlessConfig::default();
        let r = run(&mut p, &cfg, 7);
        assert_eq!(r.invocations, cfg.invocations as u64);
        assert_eq!(
            r.cold_starts, cfg.functions as u64,
            "one build per function"
        );
        assert_eq!(
            r.cold_starts + r.warm_starts + r.warm_reuses,
            r.invocations,
            "every arrival is served"
        );
        assert!(
            r.warm_starts + r.warm_reuses > r.cold_starts * 10,
            "churn is dominated by the warm path"
        );
    }

    #[test]
    fn churn_is_deterministic_for_a_seed() {
        let mut a = Platform::xoar(XoarConfig::default());
        let mut b = Platform::xoar(XoarConfig::default());
        let cfg = ServerlessConfig::default();
        let ra = run(&mut a, &cfg, 42);
        let rb = run(&mut b, &cfg, 42);
        assert_eq!(ra.cold_starts, rb.cold_starts);
        assert_eq!(ra.warm_starts, rb.warm_starts);
        assert_eq!(ra.warm_reuses, rb.warm_reuses);
        assert_eq!(ra.harvested, rb.harvested);
        assert_eq!(ra.peak_instances, rb.peak_instances);
        assert_eq!(ra.frames_used, rb.frames_used);
    }

    #[test]
    fn warm_starts_undercut_cold_starts() {
        let mut p = Platform::xoar(XoarConfig::default());
        let r = run(&mut p, &ServerlessConfig::default(), 3);
        assert!(
            r.warm_start_ns.median() < r.cold_start_ns.median(),
            "clone stamp {} ns must beat builder round-trip {} ns",
            r.warm_start_ns.median(),
            r.cold_start_ns.median()
        );
    }

    #[test]
    fn keep_warm_timer_harvests_idle_instances() {
        let mut p = Platform::xoar(XoarConfig::default());
        let cfg = ServerlessConfig {
            // Sparse arrivals with a short grace: instances die between
            // invocations instead of being reused.
            functions: 2,
            invocations: 40,
            mean_interarrival_ns: 40_000_000,
            service_ns: 5_000_000,
            keep_warm_ns: 10_000_000,
            memory_mib: 64,
        };
        let r = run(&mut p, &cfg, 9);
        assert!(r.harvested > 20, "harvested only {}", r.harvested);
        // Everything died back: what remains is the two sealed templates,
        // not the 40 instances that passed through the fleet.
        assert!(
            r.frames_used <= cfg.functions as u64 * cfg.memory_mib,
            "footprint {} exceeds the template-only floor",
            r.frames_used
        );
    }

    #[test]
    fn dedup_harvests_identical_warm_state() {
        let mut p = Platform::xoar(XoarConfig::default());
        let cfg = ServerlessConfig {
            // A burst so wide every invocation runs concurrently: maximal
            // live instances with identical warm state.
            functions: 2,
            invocations: 60,
            mean_interarrival_ns: 1_000,
            service_ns: 1_000_000_000,
            keep_warm_ns: 1_000_000_000,
            memory_mib: 64,
        };
        let r = run(&mut p, &cfg, 11);
        assert!(
            r.dedup_frames > 0,
            "identical warm-state pages must fold together"
        );
    }

    #[test]
    fn density_row_shows_order_of_magnitude_gain() {
        let row = density_row(256);
        assert_eq!(row.clones, 256);
        assert!(
            row.density >= 10.0,
            "clones must be ≥10x denser than builds: {:.1}x",
            row.density
        );
    }

    /// The full memory-density sweep behind EXPERIMENTS.md's table; run
    /// by ci.sh in release mode. Prints the rows so the CI log doubles
    /// as the table's data source.
    #[test]
    #[ignore = "release-mode smoke; run via scripts/ci.sh"]
    fn density_sweep_smoke() {
        for row in density_sweep(&[1_000, 10_000, 100_000]) {
            println!(
                "density: {} clones, {} frames actual, {} frames built-equivalent, {:.1}x",
                row.clones, row.actual_frames, row.built_equivalent_frames, row.density
            );
            assert!(
                row.density >= 10.0,
                "{} clones only {:.1}x dense",
                row.clones,
                row.density
            );
        }
    }
}
