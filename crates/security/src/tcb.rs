//! TCB size accounting (§6.2).
//!
//! "Xoar restructures the Xen platform so that rather than a Linux shard,
//! only a single, small nanOS shard has the privileges required to
//! arbitrarily access a guest's memory; as a result, Xen's TCB is reduced
//! from Linux's 7.6 million (400,000 compiled) lines of code to 13,000
//! (8,000 compiled) lines of code, both on top of the Xen hypervisor's
//! 280,000 (70,000 compiled) lines of code."
//!
//! The accounting below follows the paper's definition of a subsystem's
//! TCB — "the set of components that S trusts not to violate the security
//! of S" — computed over the live privilege state of a [`Platform`]: a
//! component is in a guest's TCB if its compromise can violate the
//! guest's confidentiality or integrity (arbitrary memory access or
//! platform control), with the hypervisor always included.

use xoar_core::platform::{Platform, PlatformMode};
use xoar_hypervisor::{DomId, DomainState};

/// Line-count figures for a software component (source, compiled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// Source lines of code.
    pub source: u64,
    /// Lines reachable in the compiled configuration.
    pub compiled: u64,
}

/// A trusted component with its size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Its size.
    pub loc: Loc,
}

/// The paper's code-size figures.
pub mod sizes {
    use super::Loc;

    /// The Xen hypervisor.
    pub const XEN: Loc = Loc {
        source: 280_000,
        compiled: 70_000,
    };
    /// A full Dom0 Linux.
    pub const LINUX: Loc = Loc {
        source: 7_600_000,
        compiled: 400_000,
    };
    /// nanOS plus the Builder logic.
    pub const NANOS: Loc = Loc {
        source: 13_000,
        compiled: 8_000,
    };
}

/// A guest's TCB on a given platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcbReport {
    /// The trusted components.
    pub components: Vec<Component>,
    /// Total source lines.
    pub total_source: u64,
    /// Total compiled lines.
    pub total_compiled: u64,
}

/// Computes the TCB of `guest` on `platform`.
///
/// The hypervisor is always trusted. Beyond it, every live domain that
/// can arbitrarily access the guest's memory (blanket foreign mapping or
/// a `privileged_for` edge naming the guest) is trusted with the line
/// count of its OS stack.
pub fn tcb_of_guest(platform: &Platform, guest: DomId) -> TcbReport {
    let mut components = vec![Component {
        name: "xen-hypervisor".into(),
        loc: sizes::XEN,
    }];
    for id in platform.hv.domain_ids() {
        if id == guest {
            continue;
        }
        let Ok(d) = platform.hv.domain(id) else {
            continue;
        };
        if d.state == DomainState::Dead {
            continue;
        }
        let trusted = d.privileges.map_foreign_any || d.privileged_for.contains(&guest);
        if !trusted {
            continue;
        }
        let loc = match platform.mode {
            PlatformMode::StockXen => sizes::LINUX,
            PlatformMode::Xoar => {
                // The Builder runs nanOS; a per-guest QemuVM runs miniOS
                // (counted within the nanOS-scale figure as the paper
                // attributes the arbitrary-access TCB to nanOS alone).
                sizes::NANOS
            }
        };
        components.push(Component {
            name: d.name.clone(),
            loc,
        });
    }
    let total_source = components.iter().map(|c| c.loc.source).sum();
    let total_compiled = components.iter().map(|c| c.loc.compiled).sum();
    TcbReport {
        components,
        total_source,
        total_compiled,
    }
}

impl TcbReport {
    /// Source lines on top of the hypervisor.
    pub fn above_hypervisor_source(&self) -> u64 {
        self.total_source - sizes::XEN.source
    }

    /// Compiled lines on top of the hypervisor.
    pub fn above_hypervisor_compiled(&self) -> u64 {
        self.total_compiled - sizes::XEN.compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    fn guest_on(p: &mut Platform) -> DomId {
        let ts = p.services.toolstacks[0];
        p.create_guest(ts, GuestConfig::evaluation_guest("g"))
            .unwrap()
    }

    #[test]
    fn stock_xen_tcb_is_linux_plus_xen() {
        let mut p = Platform::stock_xen();
        let g = guest_on(&mut p);
        let tcb = tcb_of_guest(&p, g);
        assert_eq!(tcb.above_hypervisor_source(), 7_600_000);
        assert_eq!(tcb.above_hypervisor_compiled(), 400_000);
        assert_eq!(tcb.components.len(), 2, "xen + dom0");
    }

    #[test]
    fn xoar_tcb_is_nanos_plus_xen() {
        let mut p = Platform::xoar(XoarConfig::default());
        let g = guest_on(&mut p);
        let tcb = tcb_of_guest(&p, g);
        // Only the Builder (nanOS) retains arbitrary access.
        assert_eq!(tcb.above_hypervisor_source(), 13_000);
        assert_eq!(tcb.above_hypervisor_compiled(), 8_000);
        let names: Vec<&str> = tcb.components.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"Builder"), "{names:?}");
        assert!(
            !names.iter().any(|n| n.contains("NetBack")),
            "drivers not in the memory TCB"
        );
    }

    #[test]
    fn paper_headline_reduction_factor() {
        let mut stock = Platform::stock_xen();
        let gs = guest_on(&mut stock);
        let mut xoar = Platform::xoar(XoarConfig::default());
        let gx = guest_on(&mut xoar);
        let before = tcb_of_guest(&stock, gs).above_hypervisor_source();
        let after = tcb_of_guest(&xoar, gx).above_hypervisor_source();
        let factor = before as f64 / after as f64;
        assert!((factor - 584.6).abs() < 1.0, "7.6M/13K ≈ 585×: {factor:.1}");
    }

    #[test]
    fn hvm_guest_additionally_trusts_its_own_stub() {
        let mut p = Platform::xoar(XoarConfig::default());
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest("hvm");
        cfg.hvm = true;
        let g = p.create_guest(ts, cfg).unwrap();
        let other = guest_on(&mut p);
        let tcb_hvm = tcb_of_guest(&p, g);
        let tcb_pv = tcb_of_guest(&p, other);
        assert_eq!(
            tcb_hvm.components.len(),
            tcb_pv.components.len() + 1,
            "the stub QemuVM is in its own guest's TCB only"
        );
    }

    #[test]
    fn hypervisor_always_included() {
        let p = Platform::xoar(XoarConfig::default());
        let tcb = tcb_of_guest(&p, DomId(999));
        assert_eq!(tcb.components[0].name, "xen-hypervisor");
        assert!(tcb.total_source >= sizes::XEN.source);
    }
}
