//! Temporal attack surface quantification (§3.3).
//!
//! "Frequently resetting services to a known good state forces attackers
//! to constantly re-compromise these components, and temporally limits
//! the exposure to the end of the current execution cycle."
//!
//! For a component restarted every `T` seconds, an attacker who lands at
//! a uniformly random instant holds the component for `U(0, T)` — an
//! expected dwell of `T/2` — and must spend `t_exploit` of every cycle
//! re-compromising before doing anything useful. This module computes
//! those quantities plus the *useful occupation fraction*: the share of
//! wall-clock time a persistent attacker actually controls a working
//! foothold, which drops to zero once `t_exploit ≥ T`.

/// Temporal-exposure figures for one restart policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalExposure {
    /// Restart interval in seconds (`f64::INFINITY` = never restarted).
    pub interval_s: f64,
    /// Expected dwell time of a one-shot attacker, seconds.
    pub expected_dwell_s: f64,
    /// Worst-case dwell (a landing right after a restart), seconds.
    pub max_dwell_s: f64,
    /// For a persistent attacker who re-exploits after every restart:
    /// fraction of time they hold a useful foothold.
    pub occupation_fraction: f64,
}

/// Computes the exposure under restarts every `interval_s` seconds for an
/// exploit that takes `exploit_s` seconds to land.
pub fn exposure(interval_s: f64, exploit_s: f64) -> TemporalExposure {
    assert!(interval_s > 0.0 && exploit_s >= 0.0);
    if interval_s.is_infinite() {
        // The long-lived service of stock Xen: "once compromised,
        // attackers have essentially unlimited time".
        return TemporalExposure {
            interval_s,
            expected_dwell_s: f64::INFINITY,
            max_dwell_s: f64::INFINITY,
            occupation_fraction: 1.0,
        };
    }
    let useful = (interval_s - exploit_s).max(0.0);
    TemporalExposure {
        interval_s,
        // A random landing sees the remaining cycle: mean T/2, but no
        // more than the useful part of the cycle.
        expected_dwell_s: (interval_s / 2.0).min(useful),
        max_dwell_s: useful,
        occupation_fraction: useful / interval_s,
    }
}

/// The dwell-time reduction factor of restarting every `interval_s`
/// relative to a `horizon_s`-long deployment without restarts.
pub fn reduction_factor(interval_s: f64, horizon_s: f64) -> f64 {
    assert!(interval_s > 0.0 && horizon_s > 0.0);
    horizon_s / (interval_s / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_restarts_means_unlimited_dwell() {
        let e = exposure(f64::INFINITY, 1.0);
        assert!(e.expected_dwell_s.is_infinite());
        assert_eq!(e.occupation_fraction, 1.0);
    }

    #[test]
    fn ten_second_restarts_bound_dwell() {
        let e = exposure(10.0, 0.5);
        assert_eq!(e.max_dwell_s, 9.5);
        assert_eq!(e.expected_dwell_s, 5.0);
        assert!((e.occupation_fraction - 0.95).abs() < 1e-9);
    }

    #[test]
    fn slow_exploits_are_starved_out() {
        // An exploit chain needing 12 s never completes inside a 10 s
        // cycle: the attacker holds nothing, ever.
        let e = exposure(10.0, 12.0);
        assert_eq!(e.max_dwell_s, 0.0);
        assert_eq!(e.occupation_fraction, 0.0);
        assert_eq!(e.expected_dwell_s, 0.0);
    }

    #[test]
    fn occupation_shrinks_with_interval() {
        let exploit = 2.0;
        let occ: Vec<f64> = [60.0, 30.0, 10.0, 5.0, 3.0]
            .iter()
            .map(|i| exposure(*i, exploit).occupation_fraction)
            .collect();
        for w in occ.windows(2) {
            assert!(
                w[1] < w[0],
                "more frequent restarts, less occupation: {occ:?}"
            );
        }
    }

    #[test]
    fn reduction_factor_vs_long_lived_service() {
        // A 30-day deployment vs 10-second restarts: the expected dwell
        // shrinks by ~500,000x.
        let f = reduction_factor(10.0, 30.0 * 24.0 * 3600.0);
        assert!((f - 518_400.0).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        exposure(0.0, 1.0);
    }
}
