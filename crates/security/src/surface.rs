//! Attack-surface quantification (§2.1, §4.1).
//!
//! "A compromise of any component in the TCB affords the attacker two
//! benefits. First, they gain the privileges of that component … Second,
//! they gain access to other elements of the TCB" — so the quantity that
//! matters per component is *(interfaces exposed to untrusted guests) ×
//! (authority held)*. The paper's argument for disaggregation is not that
//! the total interface count shrinks (it does not — the same services
//! exist), but that the **weakest-link product** collapses: stock Xen
//! concentrates every guest-facing interface in the domain that also
//! holds blanket authority.
//!
//! [`survey`] measures both quantities from live platform state.

use xoar_core::platform::Platform;
use xoar_hypervisor::{DomId, DomainRole, DomainState};

/// The guest-facing interface count and authority of one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSurface {
    /// The component's domain.
    pub dom: DomId,
    /// Component name.
    pub name: String,
    /// Event-channel connections to guest domains.
    pub guest_event_channels: usize,
    /// Grant entries guests have extended to this component (ring pages
    /// it can map).
    pub guest_grants: usize,
    /// Guests this component serves on a data or control path.
    pub guests_served: usize,
    /// The component's privilege authority score
    /// ([`xoar_hypervisor::PrivilegeSet::authority_score`]).
    pub authority: u64,
}

impl ComponentSurface {
    /// Total guest-facing interface count.
    pub fn interfaces(&self) -> usize {
        self.guest_event_channels + self.guest_grants + self.guests_served
    }

    /// The risk product: interfaces × authority.
    pub fn risk_product(&self) -> u64 {
        self.interfaces() as u64 * self.authority.max(1)
    }
}

/// The whole platform's surface survey.
#[derive(Debug, Clone)]
pub struct SurfaceSurvey {
    /// Per-component rows, sorted by risk product (highest first).
    pub components: Vec<ComponentSurface>,
}

impl SurfaceSurvey {
    /// The weakest link: the component with the highest risk product.
    pub fn weakest_link(&self) -> Option<&ComponentSurface> {
        self.components.first()
    }

    /// Sum of guest-facing interfaces across all components.
    pub fn total_interfaces(&self) -> usize {
        self.components.iter().map(|c| c.interfaces()).sum()
    }
}

/// Surveys every live service component of `platform`.
pub fn survey(platform: &Platform) -> SurfaceSurvey {
    let guest_ids: Vec<DomId> = platform.guests().iter().map(|g| g.dom).collect();
    let mut components = Vec::new();
    for id in platform.hv.domain_ids() {
        let Ok(d) = platform.hv.domain(id) else {
            continue;
        };
        if d.state == DomainState::Dead || d.role == DomainRole::Guest {
            continue;
        }
        let guest_event_channels = platform
            .hv
            .peers_of(id)
            .into_iter()
            .filter(|p| guest_ids.contains(p))
            .count();
        let guest_grants = guest_ids
            .iter()
            .map(|g| {
                platform
                    .hv
                    .grant_table(*g)
                    .map(|t| t.granted_to(id).len())
                    .unwrap_or(0)
            })
            .sum();
        let guests_served = platform
            .guests()
            .iter()
            .filter(|g| {
                g.netback == Some(id)
                    || g.blkback == Some(id)
                    || g.toolstack == id
                    || g.qemu == Some(id)
            })
            .count();
        components.push(ComponentSurface {
            dom: id,
            name: d.name.clone(),
            guest_event_channels,
            guest_grants,
            guests_served,
            authority: d.privileges.authority_score(),
        });
    }
    components.sort_by(|a, b| b.risk_product().cmp(&a.risk_product()));
    SurfaceSurvey { components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    fn populate(p: &mut Platform, n: usize) {
        let ts = p.services.toolstacks[0];
        for i in 0..n {
            p.create_guest(ts, GuestConfig::evaluation_guest(&format!("g{i}")))
                .unwrap();
        }
    }

    #[test]
    fn stock_xen_concentrates_everything_in_dom0() {
        let mut p = Platform::stock_xen();
        populate(&mut p, 3);
        let s = survey(&p);
        assert_eq!(s.components.len(), 1, "one service component: Dom0");
        let dom0 = &s.components[0];
        assert!(
            dom0.guest_event_channels >= 3,
            "event channels to every guest"
        );
        assert!(dom0.guest_grants >= 6, "net + blk ring grants per guest");
        assert_eq!(dom0.guests_served, 3);
        assert!(dom0.authority > 100, "blanket privileges");
    }

    #[test]
    fn xoar_splits_the_surface_across_shards() {
        let mut p = Platform::xoar(XoarConfig::default());
        populate(&mut p, 3);
        let s = survey(&p);
        assert!(
            s.components.len() >= 6,
            "many service components: {}",
            s.components.len()
        );
        // No single Xoar component touches every interface class.
        for c in &s.components {
            assert!(
                c.interfaces() < s.total_interfaces(),
                "{} holds the whole surface",
                c.name
            );
        }
    }

    #[test]
    fn weakest_link_product_collapses_under_xoar() {
        let mut stock = Platform::stock_xen();
        populate(&mut stock, 3);
        let mut xoar = Platform::xoar(XoarConfig::default());
        populate(&mut xoar, 3);
        let worst_stock = survey(&stock).weakest_link().unwrap().risk_product();
        let worst_xoar = survey(&xoar).weakest_link().unwrap().risk_product();
        assert!(
            worst_stock > 10 * worst_xoar,
            "weakest link must collapse by an order of magnitude: {worst_stock} vs {worst_xoar}"
        );
    }

    #[test]
    fn total_interfaces_comparable_across_platforms() {
        // Disaggregation redistributes the surface; it does not magically
        // shrink the services guests need.
        let mut stock = Platform::stock_xen();
        populate(&mut stock, 3);
        let mut xoar = Platform::xoar(XoarConfig::default());
        populate(&mut xoar, 3);
        let t_stock = survey(&stock).total_interfaces() as f64;
        let t_xoar = survey(&xoar).total_interfaces() as f64;
        assert!(t_xoar / t_stock > 0.7, "ratio {}", t_xoar / t_stock);
        assert!(t_xoar / t_stock < 2.0, "ratio {}", t_xoar / t_stock);
    }

    #[test]
    fn data_path_shards_carry_interfaces_but_little_authority() {
        let mut p = Platform::xoar(XoarConfig::default());
        populate(&mut p, 2);
        let s = survey(&p);
        let netback = s
            .components
            .iter()
            .find(|c| c.name == "NetBack")
            .expect("netback surveyed");
        assert!(netback.interfaces() > 0, "guests talk to it");
        // Its authority is the PCI passthrough only.
        assert!(netback.authority <= 15, "authority {}", netback.authority);
        // The Builder is the mirror image: huge authority, no guest
        // interfaces.
        let builder = s.components.iter().find(|c| c.name == "Builder").unwrap();
        assert_eq!(builder.guest_event_channels, 0);
        assert!(builder.authority > netback.authority);
    }
}
