//! The vulnerability corpus (§2.2.1).
//!
//! The paper analysed the CERT registry and VMware's advisories for
//! Type-1-hypervisor vulnerabilities and found **44** in total, of which
//! **23** originate from within guest VMs against Xen: 12 buffer
//! overflows permitting arbitrary code execution with elevated
//! privileges and 11 denial-of-service attacks. By vector: 14 in the
//! device-emulation layer, 4 in the virtualized-device layer, 4 in
//! management components, and 1 in the hypervisor ("ironically in the
//! security extensions"). 22 of the 23 land in control-VM service
//! components.
//!
//! §6.2.1 then evaluates Xoar against the subset with reproducible
//! vectors: 7 device-emulation attacks, 6 virtualized-device attacks,
//! 1 toolstack attack, 2 debug-register exploits, 2 XenStore-write
//! exploits, and the hypervisor exploit.
//!
//! The corpus below encodes synthetic entries with exactly those
//! marginals; identifiers are synthetic (`XVE-*`) because the thesis does
//! not enumerate the underlying CVE numbers.

/// Where an attack lands: the component whose interface is exploited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// The QEMU device-emulation layer.
    DeviceEmulation,
    /// The paravirtual split-driver layer (NetBack/BlkBack).
    VirtualizedDevice,
    /// Management components (toolstack).
    Management,
    /// XenStore write paths.
    XenStore,
    /// Hardware debug registers exposed to guests.
    DebugRegister,
    /// The hypervisor itself.
    Hypervisor,
}

xoar_codec::impl_json_enum!(AttackVector {
    DeviceEmulation,
    VirtualizedDevice,
    Management,
    XenStore,
    DebugRegister,
    Hypervisor,
});

/// What a successful exploit yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackEffect {
    /// Arbitrary code execution with the component's privileges.
    CodeExecution,
    /// Denial of service of the component.
    DenialOfService,
}

xoar_codec::impl_json_enum!(AttackEffect {
    CodeExecution,
    DenialOfService
});

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct Vulnerability {
    /// Synthetic identifier.
    pub id: String,
    /// Exploited interface.
    pub vector: AttackVector,
    /// Effect on success.
    pub effect: AttackEffect,
    /// Whether the attack originates from within a guest VM (the threat
    /// model of §2.2). Non-guest-originated entries (e.g. VMware
    /// host-OS-assisted attacks) are retained for the census totals but
    /// excluded from the containment replay.
    pub guest_originated: bool,
    /// Whether the attack targets Xen (vs another Type-1 platform).
    pub targets_xen: bool,
    /// Whether the Xen version the paper used had already fixed it
    /// (the two XenStore-write bugs).
    pub fixed_in_baseline: bool,
    /// Number of distinct reproducible attacks derived from this
    /// vulnerability. §2.2.1 counts *vulnerabilities* (14/4/4/1 by
    /// vector); §6.2.1 replays *attacks* (7/6/1/2/2/1) — some
    /// vulnerabilities yield several attacks, others none that can be
    /// reproduced.
    pub attack_count: u32,
}

xoar_codec::impl_json_struct!(Vulnerability {
    id,
    vector,
    effect,
    guest_originated,
    targets_xen,
    fixed_in_baseline,
    attack_count,
});

/// Builds the full 44-entry corpus with the paper's marginals.
pub fn corpus() -> Vec<Vulnerability> {
    let mut v = Vec::new();
    let mut n = 0;
    let mut push = |vector: AttackVector,
                    effect: AttackEffect,
                    guest: bool,
                    xen: bool,
                    fixed: bool,
                    attacks: u32,
                    v: &mut Vec<Vulnerability>| {
        n += 1;
        v.push(Vulnerability {
            id: format!("XVE-{n:03}"),
            vector,
            effect,
            guest_originated: guest,
            targets_xen: xen,
            fixed_in_baseline: fixed,
            attack_count: attacks,
        });
    };

    use AttackEffect::*;
    use AttackVector::*;
    // --- The 23 guest-originated vulnerabilities against Xen ---
    // 14 device-emulation vector; 7 reproducible attacks (§6.2.1).
    for i in 0..14 {
        let effect = if i < 7 {
            CodeExecution
        } else {
            DenialOfService
        };
        push(
            DeviceEmulation,
            effect,
            true,
            true,
            false,
            u32::from(i < 7),
            &mut v,
        );
    }
    // 4 virtualized-device vector; §6.2.1 replays 6 attacks on the layer
    // (some vulnerabilities yield several distinct attacks).
    for i in 0..4 {
        let effect = if i < 2 {
            CodeExecution
        } else {
            DenialOfService
        };
        push(
            VirtualizedDevice,
            effect,
            true,
            true,
            false,
            if i < 2 { 2 } else { 1 },
            &mut v,
        );
    }
    // 4 management-component vulnerabilities: 1 toolstack attack, the 2
    // XenStore-write bugs (fixed in the baseline), 1 DoS without a
    // reproducible exploit.
    push(Management, CodeExecution, true, true, false, 1, &mut v);
    push(XenStore, CodeExecution, true, true, true, 1, &mut v);
    push(XenStore, DenialOfService, true, true, true, 1, &mut v);
    push(Management, DenialOfService, true, true, false, 0, &mut v);
    // 1 hypervisor exploit ("in the security extensions").
    push(Hypervisor, CodeExecution, true, true, false, 1, &mut v);

    // --- The 2 debug-register exploits (guest-originated, replayed in
    // §6.2.1 as mitigable on either platform) ---
    push(DebugRegister, CodeExecution, true, true, false, 1, &mut v);
    push(DebugRegister, DenialOfService, true, true, false, 1, &mut v);

    // --- The remaining 19 census entries: non-guest-originated or
    // non-Xen (VMware advisories, administrative-interface attacks) ---
    for i in 0..19 {
        let vector = match i % 3 {
            0 => DeviceEmulation,
            1 => Management,
            _ => VirtualizedDevice,
        };
        let effect = if i % 2 == 0 {
            CodeExecution
        } else {
            DenialOfService
        };
        push(vector, effect, false, i % 4 == 0, false, 0, &mut v);
    }
    v
}

/// The census marginals of §2.2.1 computed over the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Census {
    /// Total reported vulnerabilities.
    pub total: usize,
    /// Guest-originated attacks against Xen.
    pub guest_vs_xen: usize,
    /// Of those: arbitrary-code-execution entries.
    pub code_execution: usize,
    /// Of those: denial-of-service entries.
    pub denial_of_service: usize,
    /// Guest-vs-Xen entries landing in control-VM service components.
    pub against_control_vm: usize,
}

/// Computes the census.
pub fn census(corpus: &[Vulnerability]) -> Census {
    let guest_xen: Vec<&Vulnerability> = corpus
        .iter()
        .filter(|v| v.guest_originated && v.targets_xen)
        .filter(|v| v.vector != AttackVector::DebugRegister)
        .collect();
    Census {
        total: corpus.len(),
        guest_vs_xen: guest_xen.len(),
        code_execution: guest_xen
            .iter()
            .filter(|v| v.effect == AttackEffect::CodeExecution)
            .count(),
        denial_of_service: guest_xen
            .iter()
            .filter(|v| v.effect == AttackEffect::DenialOfService)
            .count(),
        against_control_vm: guest_xen
            .iter()
            .filter(|v| v.vector != AttackVector::Hypervisor)
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_paper_marginals() {
        let c = census(&corpus());
        assert_eq!(c.total, 44, "44 reported vulnerabilities");
        assert_eq!(c.guest_vs_xen, 23, "23 originated from within guest VMs");
        assert_eq!(c.code_execution, 12, "12 buffer overflows / code execution");
        assert_eq!(c.denial_of_service, 11, "11 denial-of-service");
        assert_eq!(
            c.against_control_vm, 22,
            "22 of 23 against control-VM services"
        );
    }

    #[test]
    fn vector_breakdown_matches_chapter_2() {
        let all = corpus();
        let guest_xen: Vec<_> = all
            .iter()
            .filter(|v| {
                v.guest_originated && v.targets_xen && v.vector != AttackVector::DebugRegister
            })
            .collect();
        let count = |vec: AttackVector| guest_xen.iter().filter(|v| v.vector == vec).count();
        assert_eq!(count(AttackVector::DeviceEmulation), 14);
        assert_eq!(count(AttackVector::VirtualizedDevice), 4);
        assert_eq!(
            count(AttackVector::Management) + count(AttackVector::XenStore),
            4,
            "4 in management components (incl. the XenStore bugs)"
        );
        assert_eq!(count(AttackVector::Hypervisor), 1);
    }

    #[test]
    fn section_6_2_1_replay_set() {
        let all = corpus();
        let attacks = |vec: AttackVector| -> u32 {
            all.iter()
                .filter(|v| v.guest_originated && v.targets_xen && v.vector == vec)
                .map(|v| v.attack_count)
                .sum()
        };
        // "Xoar entirely contains the 7 device emulation attacks."
        assert_eq!(attacks(AttackVector::DeviceEmulation), 7);
        // "The 6 attacks on the virtualized device layer."
        assert_eq!(attacks(AttackVector::VirtualizedDevice), 6);
        // "The 1 attack on the toolstack."
        assert_eq!(attacks(AttackVector::Management), 1);
        // "2 exploits on debug registers."
        assert_eq!(attacks(AttackVector::DebugRegister), 2);
        // "2 exploits on XenStore write access … already … fixed."
        assert_eq!(attacks(AttackVector::XenStore), 2);
        let xenstore_fixed = all
            .iter()
            .filter(|v| v.vector == AttackVector::XenStore && v.fixed_in_baseline)
            .count();
        assert_eq!(xenstore_fixed, 2);
        // The hypervisor exploit exists and is not fixed.
        assert_eq!(attacks(AttackVector::Hypervisor), 1);
    }

    #[test]
    fn ids_unique() {
        let all = corpus();
        let mut ids: Vec<&str> = all.iter().map(|v| v.id.as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
