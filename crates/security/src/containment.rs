//! Attack replay and containment analysis (§6.2, §6.2.1).
//!
//! Each guest-originated vulnerability is replayed against a live
//! [`Platform`]: the attack lands in the component its vector names, the
//! attacker gains that component's privileges, and the analysis computes
//! the blast radius — which domains' memory the attacker can now touch,
//! which guests' traffic it can intercept, and whether the whole host
//! falls.
//!
//! On stock Xen every control-VM vector lands in Dom0, so every such
//! exploit is a full-platform compromise. On Xoar the same exploit is
//! confined to one shard, and the verdicts of §6.2.1 emerge from the
//! actual privilege state rather than from assertion.

use std::collections::BTreeSet;

use xoar_core::platform::{Platform, PlatformMode};
use xoar_hypervisor::{DomId, DomainState};

use crate::corpus::{AttackVector, Vulnerability};

/// The blast radius of a successful exploit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlastRadius {
    /// The domain the attacker now controls.
    pub compromised: DomId,
    /// Domains whose memory the attacker can read or write (foreign
    /// mapping rights and writable grant mappings).
    pub memory_of: BTreeSet<DomId>,
    /// Guests whose I/O the attacker can intercept (served by the
    /// compromised component).
    pub traffic_of: BTreeSet<DomId>,
    /// Whether the attacker can manage (create/destroy) other VMs.
    pub can_manage_vms: bool,
    /// Whether the compromise takes down the entire host.
    pub host_compromised: bool,
}

/// The §6.2.1 verdict classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The attacker owns the platform (stock Xen control-VM attacks).
    FullPlatformCompromise,
    /// Contained entirely to the component; "no rights over any other
    /// VM" beyond the attacking guest itself.
    ContainedToComponent,
    /// Limited to the guests sharing the compromised component.
    LimitedToSharers,
    /// Mitigable by deprivileging guests (debug registers) — on either
    /// platform.
    Mitigable,
    /// Already fixed in the baseline version (the XenStore bugs).
    FixedInBaseline,
    /// Not protected: the hypervisor itself is compromised.
    NotProtected,
}

/// Resolves which domain an attack vector lands in on `platform`,
/// launched from `attacker`.
pub fn landing_domain(platform: &Platform, attacker: DomId, vector: AttackVector) -> Option<DomId> {
    let s = &platform.services;
    match vector {
        AttackVector::DeviceEmulation => {
            // The attacker's own device model (stub domain on Xoar, Dom0
            // on stock Xen).
            platform.guest(attacker).and_then(|g| g.qemu).or({
                // PV guests have no device model; the vector is moot, but
                // the census replays it against a platform with HVM
                // guests, so fall back to the platform's model host.
                match platform.mode {
                    PlatformMode::StockXen => Some(s.builder),
                    PlatformMode::Xoar => None,
                }
            })
        }
        AttackVector::VirtualizedDevice => platform.guest(attacker).and_then(|g| g.netback),
        AttackVector::Management => platform.guest(attacker).map(|g| g.toolstack),
        AttackVector::XenStore => Some(s.xenstore),
        AttackVector::DebugRegister | AttackVector::Hypervisor => None,
    }
}

/// Computes the blast radius of controlling `dom` on `platform`.
pub fn blast_radius(platform: &Platform, dom: DomId) -> BlastRadius {
    let d = platform.hv.domain(dom).expect("live domain");
    let mut memory_of = BTreeSet::new();
    let mut traffic_of = BTreeSet::new();

    // Blanket foreign mapping: every live domain's memory.
    if d.privileges.map_foreign_any {
        for id in platform.hv.domain_ids() {
            if id != dom {
                memory_of.insert(id);
            }
        }
    }
    // Targeted mapping rights (QEMU stub model).
    for id in &d.privileged_for {
        if platform
            .hv
            .domain(*id)
            .is_ok_and(|t| t.state != DomainState::Dead)
        {
            memory_of.insert(*id);
        }
    }
    // Writable grants mapped from other domains (ring pages): these give
    // data-plane access, counted as traffic interception below.
    for g in platform.guests() {
        if g.netback == Some(dom) || g.blkback == Some(dom) {
            traffic_of.insert(g.dom);
        }
        if g.toolstack == dom {
            traffic_of.insert(g.dom);
        }
    }
    let can_manage_vms = d.privileges.map_foreign_any
        || platform.guests().iter().any(|g| g.toolstack == dom)
        || !d.privileges.delegated_to.is_empty() && platform.services.toolstacks.contains(&dom);
    let host_compromised = dom.is_dom0() && platform.hv.dom0_failure_is_fatal
        || d.privileges.map_foreign_any && platform.mode == PlatformMode::StockXen;

    BlastRadius {
        compromised: dom,
        memory_of,
        traffic_of,
        can_manage_vms,
        host_compromised,
    }
}

/// Replays one vulnerability from `attacker` and classifies the outcome.
pub fn replay(platform: &Platform, attacker: DomId, vuln: &Vulnerability) -> Verdict {
    if vuln.fixed_in_baseline {
        return Verdict::FixedInBaseline;
    }
    match vuln.vector {
        AttackVector::Hypervisor => Verdict::NotProtected,
        AttackVector::DebugRegister => Verdict::Mitigable,
        vector => {
            let Some(dom) = landing_domain(platform, attacker, vector) else {
                return Verdict::ContainedToComponent;
            };
            let radius = blast_radius(platform, dom);
            if radius.host_compromised {
                return Verdict::FullPlatformCompromise;
            }
            // Does the attacker reach anything beyond itself?
            let beyond_self = |set: &BTreeSet<DomId>| set.iter().any(|d| *d != attacker);
            if beyond_self(&radius.memory_of) {
                // Memory of other domains: on Xoar only the Builder has
                // that, and it is not on any attack vector.
                Verdict::FullPlatformCompromise
            } else if radius.traffic_of.iter().any(|d| *d != attacker) {
                Verdict::LimitedToSharers
            } else {
                Verdict::ContainedToComponent
            }
        }
    }
}

/// The containment table: per-verdict counts for one platform.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContainmentReport {
    /// (verdict, count) pairs in a stable order.
    pub counts: Vec<(Verdict, usize)>,
}

/// Replays every guest-originated Xen attack from `attacker` against
/// `platform` and tabulates the verdicts.
pub fn evaluate(
    platform: &Platform,
    attacker: DomId,
    corpus: &[Vulnerability],
) -> ContainmentReport {
    use Verdict::*;
    let mut counts = vec![
        (FullPlatformCompromise, 0),
        (ContainedToComponent, 0),
        (LimitedToSharers, 0),
        (Mitigable, 0),
        (FixedInBaseline, 0),
        (NotProtected, 0),
    ];
    for vuln in corpus
        .iter()
        .filter(|v| v.guest_originated && v.targets_xen && v.attack_count > 0)
    {
        let verdict = replay(platform, attacker, vuln);
        counts
            .iter_mut()
            .find(|(v, _)| *v == verdict)
            .expect("all verdicts enumerated")
            .1 += vuln.attack_count as usize;
    }
    ContainmentReport { counts }
}

impl ContainmentReport {
    /// Count for one verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.counts
            .iter()
            .find(|(k, _)| *k == v)
            .map_or(0, |(_, c)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use xoar_core::platform::{GuestConfig, XoarConfig};

    fn hvm_guest(p: &mut Platform, name: &str) -> DomId {
        let ts = p.services.toolstacks[0];
        let mut cfg = GuestConfig::evaluation_guest(name);
        cfg.hvm = true;
        p.create_guest(ts, cfg).unwrap()
    }

    #[test]
    fn stock_xen_control_vm_attacks_own_the_host() {
        let mut p = Platform::stock_xen();
        let attacker = hvm_guest(&mut p, "attacker");
        let _victim = hvm_guest(&mut p, "victim");
        for vector in [
            AttackVector::DeviceEmulation,
            AttackVector::VirtualizedDevice,
            AttackVector::Management,
            AttackVector::XenStore,
        ] {
            let dom = landing_domain(&p, attacker, vector).unwrap();
            assert_eq!(dom, DomId::DOM0, "{vector:?} lands in Dom0");
            let radius = blast_radius(&p, dom);
            assert!(
                radius.host_compromised,
                "{vector:?} owns the host on stock Xen"
            );
        }
    }

    #[test]
    fn xoar_device_emulation_contained() {
        let mut p = Platform::xoar(XoarConfig::default());
        let attacker = hvm_guest(&mut p, "attacker");
        let victim = hvm_guest(&mut p, "victim");
        let qemu = landing_domain(&p, attacker, AttackVector::DeviceEmulation).unwrap();
        let radius = blast_radius(&p, qemu);
        assert!(!radius.host_compromised);
        // "An attacker exploiting a vulnerability in the emulated device
        // model will now have the full privileges of the QemuVM … and has
        // no rights over any other VM."
        assert_eq!(radius.memory_of.iter().collect::<Vec<_>>(), vec![&attacker]);
        assert!(!radius.memory_of.contains(&victim));
        assert!(!radius.can_manage_vms);
    }

    #[test]
    fn xoar_netback_compromise_limited_to_sharers() {
        let mut p = Platform::xoar(XoarConfig::default());
        let attacker = hvm_guest(&mut p, "attacker");
        let victim = hvm_guest(&mut p, "victim");
        let nb = landing_domain(&p, attacker, AttackVector::VirtualizedDevice).unwrap();
        let radius = blast_radius(&p, nb);
        assert!(!radius.host_compromised);
        // "compromising NetBack would allow intercepting the network
        // traffic of another VM relying on the same NetBack, but not
        // reading or writing its memory."
        assert!(radius.traffic_of.contains(&victim));
        assert!(radius.memory_of.is_empty());
    }

    #[test]
    fn section_6_2_1_verdicts_on_xoar() {
        let mut p = Platform::xoar(XoarConfig::default());
        let attacker = hvm_guest(&mut p, "attacker");
        let _victim = hvm_guest(&mut p, "victim");
        let report = evaluate(&p, attacker, &corpus::corpus());
        // 7 device-emulation attacks entirely contained.
        assert_eq!(report.count(Verdict::ContainedToComponent), 7);
        // "The 6 attacks on the virtualized device layer and the 1 attack
        // on the toolstack would yield control only over those VMs that
        // shared the same BlkBack, NetBack and Toolstack components."
        assert_eq!(report.count(Verdict::LimitedToSharers), 7);
        // 2 debug-register exploits mitigable.
        assert_eq!(report.count(Verdict::Mitigable), 2);
        // 2 XenStore bugs already fixed.
        assert_eq!(report.count(Verdict::FixedInBaseline), 2);
        // 1 hypervisor exploit not protected.
        assert_eq!(report.count(Verdict::NotProtected), 1);
        // Nothing yields a full platform compromise on Xoar.
        assert_eq!(report.count(Verdict::FullPlatformCompromise), 0);
    }

    #[test]
    fn same_attacks_on_stock_xen_are_catastrophic() {
        let mut p = Platform::stock_xen();
        let attacker = hvm_guest(&mut p, "attacker");
        let report = evaluate(&p, attacker, &corpus::corpus());
        // All 14 control-VM attacks (7 emulation + 6 virtualized-device +
        // 1 toolstack) own the host on stock Xen.
        assert_eq!(report.count(Verdict::FullPlatformCompromise), 14);
        assert_eq!(report.count(Verdict::ContainedToComponent), 0);
        assert_eq!(report.count(Verdict::LimitedToSharers), 0);
    }

    #[test]
    fn toolstack_compromise_reaches_only_its_vms() {
        let mut p = Platform::xoar(XoarConfig {
            toolstacks: 2,
            ..Default::default()
        });
        let ts1 = p.services.toolstacks[0];
        let ts2 = p.services.toolstacks[1];
        let g1 = p
            .create_guest(ts1, GuestConfig::evaluation_guest("a"))
            .unwrap();
        let g2 = p
            .create_guest(ts2, GuestConfig::evaluation_guest("b"))
            .unwrap();
        let radius = blast_radius(&p, ts1);
        assert!(radius.traffic_of.contains(&g1));
        assert!(
            !radius.traffic_of.contains(&g2),
            "other toolstack's guests unreachable"
        );
        assert!(radius.can_manage_vms);
        assert!(!radius.host_compromised);
    }

    #[test]
    fn builder_is_the_remaining_crown_jewel() {
        // §6.2: only the Builder retains arbitrary memory access — the
        // analysis must reflect that it is the one shard whose compromise
        // would be platform-fatal, which is why it runs nanOS.
        let mut p = Platform::xoar(XoarConfig::default());
        let _g = hvm_guest(&mut p, "g");
        let radius = blast_radius(&p, p.services.builder);
        assert!(!radius.memory_of.is_empty());
        assert!(radius.can_manage_vms);
        // But no §6.2.1 attack vector lands in the Builder.
        for vector in [
            AttackVector::DeviceEmulation,
            AttackVector::VirtualizedDevice,
            AttackVector::Management,
            AttackVector::XenStore,
        ] {
            assert_ne!(
                landing_domain(&p, DomId(99), vector),
                Some(p.services.builder)
            );
        }
    }
}
