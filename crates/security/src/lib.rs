//! # xoar-security
//!
//! The security evaluation of §6.2: the vulnerability census of §2.2.1,
//! attack replay with blast-radius analysis, and TCB accounting.

#![warn(missing_docs)]

pub mod containment;
pub mod corpus;
pub mod freshness;
pub mod surface;
pub mod tcb;

pub use containment::{blast_radius, evaluate, BlastRadius, ContainmentReport, Verdict};
pub use corpus::{census, corpus, AttackVector, Vulnerability};
pub use freshness::{exposure, TemporalExposure};
pub use surface::{survey, ComponentSurface, SurfaceSurvey};
pub use tcb::{tcb_of_guest, Component, TcbReport};
