//! Cross-region operations: the only paths that touch two domains'
//! state regions at once.
//!
//! The state-region refactor (see [`crate::region`]) gives every domain
//! its own shard of hypervisor hot state. The paper's isolation argument
//! then reduces to an enumeration problem: the channels between two
//! domains are exactly the operations in this module, each named by a
//! typed [`CrossRegionOp`] value that spells out both endpoints. The
//! analyzer's `no-undeclared-cross-region-access` rule checks precisely
//! that every reachability edge it derives from a platform snapshot
//! corresponds to a cross-region kind declared here.
//!
//! Mechanically, [`region_pair_mut`] is the single place that splits a
//! mutable borrow across two regions (`xoar-lint` forbids the token
//! anywhere else in the crate), and [`object_region_mut`] is the
//! single-sided variant for operations like grant maps whose mutation
//! lands entirely in the *object* region while the subject is named for
//! auditability. Operations that cross domains through globally-shared
//! machine memory (foreign maps, CoW rollback) take the typed op too,
//! and derive the touched domain from it.

use crate::fasthash::FastMap;

use crate::domain::DomId;
use crate::error::{EventError, HvError, HvResult, MemError};
use crate::event::{PendingEvent, PortState};
use crate::grant::{GrantAccess, GrantCopyDir, GrantCopyOp, GrantOpStatus, GrantRef};
use crate::memory::{MemoryManager, Mfn, Pfn};
use crate::region::Region;
use crate::snapshot::SnapshotManager;

/// A typed cross-region operation, naming both regions it touches.
///
/// By convention the first field is the *subject* (the domain acting)
/// and the second the *object* (the domain whose region or memory is
/// reached into). [`CrossRegionOp::kind`] gives the coarse channel
/// class the analyzer audits against declared sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrossRegionOp {
    /// Event notification from `from`'s port into `to`'s pending bitmap.
    EventSend {
        /// Sending domain.
        from: DomId,
        /// Receiving domain.
        to: DomId,
    },
    /// Interdomain bind handshake completing both ends of a channel.
    EventBind {
        /// Domain binding its new local port.
        binder: DomId,
        /// Domain owning the pre-allocated unbound port.
        remote: DomId,
    },
    /// Close of an interdomain channel propagating to the peer's half.
    EventClose {
        /// Domain closing its end.
        from: DomId,
        /// Peer whose half-open end is reclaimed.
        to: DomId,
    },
    /// Grant-table map/unmap of `granter`'s page by `grantee`.
    GrantMap {
        /// Mapping domain.
        grantee: DomId,
        /// Domain whose table holds the entry.
        granter: DomId,
    },
    /// Hypervisor-mediated page copy audited against `granter`'s table.
    GrantCopy {
        /// Copying domain.
        grantee: DomId,
        /// Domain whose table holds the entry.
        granter: DomId,
    },
    /// Page-flip transfer acceptance (ownership moves between regions).
    GrantTransfer {
        /// Accepting domain.
        grantee: DomId,
        /// Domain that offered the page.
        granter: DomId,
    },
    /// Builder installing a grant in `owner`'s table on its behalf
    /// (§5.6 foreign grant setup).
    ForeignSetup {
        /// The privileged builder.
        builder: DomId,
        /// Domain whose table receives the entry.
        owner: DomId,
    },
    /// Blanket / privileged-for foreign mapping of `owner`'s memory.
    ForeignMap {
        /// Mapping domain.
        accessor: DomId,
        /// Domain whose frames are reached.
        owner: DomId,
    },
    /// CoW snapshot rollback of `target` requested by `manager`.
    Rollback {
        /// Managing toolstack/builder.
        manager: DomId,
        /// Domain being rolled back.
        target: DomId,
    },
    /// Region teardown on domain destruction (peers' half-open channel
    /// ends are reclaimed).
    Teardown {
        /// Domain whose region is destroyed.
        target: DomId,
    },
    /// Snapshot-fork region stamp: the clone's fresh region receives a
    /// grant posture equivalent to the template's, re-established
    /// against the clone's own (privatised) frames.
    CloneStamp {
        /// The sealed template whose grant entries are replayed.
        template: DomId,
        /// The new clone whose region is stamped.
        clone: DomId,
    },
}

impl CrossRegionOp {
    /// The acting domain.
    pub fn subject(self) -> DomId {
        match self {
            CrossRegionOp::EventSend { from, .. } => from,
            CrossRegionOp::EventBind { binder, .. } => binder,
            CrossRegionOp::EventClose { from, .. } => from,
            CrossRegionOp::GrantMap { grantee, .. } => grantee,
            CrossRegionOp::GrantCopy { grantee, .. } => grantee,
            CrossRegionOp::GrantTransfer { grantee, .. } => grantee,
            CrossRegionOp::ForeignSetup { builder, .. } => builder,
            CrossRegionOp::ForeignMap { accessor, .. } => accessor,
            CrossRegionOp::Rollback { manager, .. } => manager,
            CrossRegionOp::Teardown { target } => target,
            CrossRegionOp::CloneStamp { template, .. } => template,
        }
    }

    /// The domain whose region or memory is reached into.
    pub fn object(self) -> DomId {
        match self {
            CrossRegionOp::EventSend { to, .. } => to,
            CrossRegionOp::EventBind { remote, .. } => remote,
            CrossRegionOp::EventClose { to, .. } => to,
            CrossRegionOp::GrantMap { granter, .. } => granter,
            CrossRegionOp::GrantCopy { granter, .. } => granter,
            CrossRegionOp::GrantTransfer { granter, .. } => granter,
            CrossRegionOp::ForeignSetup { owner, .. } => owner,
            CrossRegionOp::ForeignMap { owner, .. } => owner,
            CrossRegionOp::Rollback { target, .. } => target,
            CrossRegionOp::Teardown { target } => target,
            CrossRegionOp::CloneStamp { clone, .. } => clone,
        }
    }

    /// The coarse channel class, matching the declared-sharing kinds the
    /// analyzer audits (`"event"`, `"grant"`, `"foreign"`, …).
    pub fn kind(self) -> &'static str {
        match self {
            CrossRegionOp::EventSend { .. }
            | CrossRegionOp::EventBind { .. }
            | CrossRegionOp::EventClose { .. } => "event",
            CrossRegionOp::GrantMap { .. }
            | CrossRegionOp::GrantCopy { .. }
            | CrossRegionOp::GrantTransfer { .. }
            | CrossRegionOp::ForeignSetup { .. }
            | CrossRegionOp::CloneStamp { .. } => "grant",
            CrossRegionOp::ForeignMap { .. } => "foreign",
            CrossRegionOp::Rollback { .. } => "rollback",
            CrossRegionOp::Teardown { .. } => "teardown",
        }
    }
}

/// Splits a mutable borrow across the two regions a [`CrossRegionOp`]
/// names, running `f(subject, object)`.
///
/// This is the *only* split-borrow helper in the crate (`xoar-lint`
/// enforces the confinement): it temporarily lifts the subject region
/// out of the table so both sides are plain `&mut Region`, with no
/// `unsafe` and no aliasing. Ops whose endpoints coincide are rejected —
/// a same-domain operation is by definition intra-region and must not
/// take this path.
pub(crate) fn region_pair_mut<R>(
    regions: &mut FastMap<DomId, Region>,
    op: CrossRegionOp,
    f: impl FnOnce(&mut Region, &mut Region) -> R,
) -> HvResult<R> {
    let (a, b) = (op.subject(), op.object());
    if a == b {
        return Err(HvError::InvalidArgument(format!(
            "cross-region op {op:?} names a single region"
        )));
    }
    let mut ra = regions.remove(&a).ok_or(HvError::NoSuchDomain(a))?;
    let out = match regions.get_mut(&b) {
        Some(rb) => Ok(f(&mut ra, rb)),
        None => Err(HvError::NoSuchDomain(b)),
    };
    regions.insert(a, ra);
    out
}

/// Borrows only the *object* region of `op` — for cross-region
/// operations (grant map/copy/transfer validation) whose mutation lands
/// entirely in the object's region while the subject is named by the op
/// for access-control and audit.
pub(crate) fn object_region_mut<R>(
    regions: &mut FastMap<DomId, Region>,
    op: CrossRegionOp,
    f: impl FnOnce(&mut Region) -> R,
) -> HvResult<R> {
    let obj = op.object();
    let r = regions.get_mut(&obj).ok_or(HvError::NoSuchDomain(obj))?;
    Ok(f(r))
}

// ----- event channels -----

/// Sends a notification through `port` of `sender`.
///
/// For interdomain ports the peer's port is marked pending; the data-
/// free nature of channels means delivery is just a bit set, so a send
/// on an already-pending port coalesces (Xen semantics). The bit is set
/// even while the receiver is masked — masking defers delivery, it does
/// not drop it. A send whose receiver has died is silently dropped, as
/// on real hardware. `delivered` counts clear→pending transitions.
pub(crate) fn event_send(
    regions: &mut FastMap<DomId, Region>,
    delivered: &mut u64,
    sender: DomId,
    port: u32,
) -> HvResult<()> {
    let sr = regions.get(&sender).ok_or(EventError::BadRemote)?;
    let (remote, remote_port) = match sr.ports.ports.get(&port) {
        Some(PortState::Interdomain {
            remote,
            remote_port,
        }) => (*remote, *remote_port),
        _ => return Err(EventError::BadPort(port).into()),
    };
    if remote == sender {
        // A shard's self-channel: intra-region by definition.
        if let Some(r) = regions.get_mut(&sender) {
            if r.ports.pending.set(remote_port) {
                *delivered += 1;
            }
        }
        return Ok(());
    }
    // Delivery is a bit set in the *receiver's* bitmap only — a
    // cross-region op by name (the analyzer audits the "event" edge
    // declared at bind time) but single-sided mechanically, so the hot
    // path stays two map lookups instead of moving the sender's region
    // through the pair borrow.
    let op = CrossRegionOp::EventSend {
        from: sender,
        to: remote,
    };
    if let Some(receiver) = regions.get_mut(&op.object()) {
        if receiver.ports.pending.set(remote_port) {
            *delivered += 1;
        }
    }
    Ok(())
}

/// Binds `binder`'s new local port to (`remote`, `remote_port`),
/// completing both ends of the interdomain handshake.
///
/// Succeeds only if the remote port is unbound and names `binder` as
/// the permitted remote — the access-control core of the mechanism.
pub(crate) fn bind_interdomain(
    regions: &mut FastMap<DomId, Region>,
    binder: DomId,
    remote: DomId,
    remote_port: u32,
) -> HvResult<u32> {
    // Validate the remote side first.
    {
        let rd = regions.get(&remote).ok_or(EventError::BadRemote)?;
        match rd.ports.ports.get(&remote_port) {
            Some(PortState::Unbound { remote: permitted }) if *permitted == binder => {}
            Some(PortState::Unbound { .. }) => return Err(EventError::BindMismatch.into()),
            Some(_) => return Err(EventError::AlreadyBound(remote_port).into()),
            None => return Err(EventError::BadPort(remote_port).into()),
        }
    }
    if binder == remote {
        // Shard self-channel: both ends in one region.
        let r = regions.get_mut(&binder).ok_or(EventError::BadRemote)?;
        let local_port = r.ports.alloc_port()?;
        r.ports.ports.insert(
            local_port,
            PortState::Interdomain {
                remote,
                remote_port,
            },
        );
        r.ports.ports.insert(
            remote_port,
            PortState::Interdomain {
                remote: binder,
                remote_port: local_port,
            },
        );
        return Ok(local_port);
    }
    if !regions.contains_key(&binder) {
        return Err(EventError::BadRemote.into());
    }
    let op = CrossRegionOp::EventBind { binder, remote };
    region_pair_mut(regions, op, |b, r| -> HvResult<u32> {
        let local_port = b.ports.alloc_port()?;
        b.ports.ports.insert(
            local_port,
            PortState::Interdomain {
                remote,
                remote_port,
            },
        );
        r.ports.ports.insert(
            remote_port,
            PortState::Interdomain {
                remote: binder,
                remote_port: local_port,
            },
        );
        Ok(local_port)
    })?
}

/// Closes `port` on `dom`, reclaiming it; the peer's end (if any) is
/// reclaimed too. Port *numbers* are never reused — freshness of
/// numbers keeps stale rendezvous data in XenStore harmless.
pub(crate) fn event_close(
    regions: &mut FastMap<DomId, Region>,
    dom: DomId,
    port: u32,
) -> HvResult<()> {
    let peer = {
        let dr = regions.get_mut(&dom).ok_or(EventError::BadRemote)?;
        let state = dr
            .ports
            .ports
            .remove(&port)
            .ok_or(EventError::BadPort(port))?;
        match state {
            PortState::Interdomain {
                remote,
                remote_port,
            } => Some((remote, remote_port)),
            _ => None,
        }
    };
    if let Some((peer, pport)) = peer {
        if peer == dom {
            if let Some(r) = regions.get_mut(&dom) {
                r.ports.ports.remove(&pport);
            }
        } else {
            // Like delivery, peer reclamation mutates only the object
            // region; a dead peer is simply gone.
            let op = CrossRegionOp::EventClose {
                from: dom,
                to: peer,
            };
            if let Some(pr) = regions.get_mut(&op.object()) {
                pr.ports.ports.remove(&pport);
            }
        }
    }
    Ok(())
}

// ----- grant tables -----

/// Validates a map of `granter`'s grant `gref` by `grantee` and records
/// the mapping (the audit point of §4.3), pinning the frame against
/// dedup/reclaim in the global frame table.
pub(crate) fn grant_map(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    grantee: DomId,
    granter: DomId,
    gref: GrantRef,
) -> HvResult<Mfn> {
    let op = CrossRegionOp::GrantMap { grantee, granter };
    let (mfn, _access) = object_region_mut(regions, op, |r| r.grants.map(grantee, gref))??;
    mem.inc_grant_mapping(mfn)?;
    Ok(mfn)
}

/// Releases one mapping of `granter`'s grant `gref` by `grantee`.
pub(crate) fn grant_unmap(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    grantee: DomId,
    granter: DomId,
    gref: GrantRef,
) -> HvResult<Mfn> {
    let op = CrossRegionOp::GrantMap { grantee, granter };
    let mfn = object_region_mut(regions, op, |r| r.grants.unmap(grantee, gref))??;
    mem.dec_grant_mapping(mfn)?;
    Ok(mfn)
}

/// Batched [`grant_map`] (GNTTABOP-style): one region lookup for the
/// whole (granter, grantee) pair; per-entry compact status after that,
/// as in GNTTABOP result arrays. A bad entry never aborts the batch.
#[inline(never)]
pub(crate) fn grant_map_batch(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    grantee: DomId,
    granter: DomId,
    refs: &[GrantRef],
) -> HvResult<Vec<GrantOpStatus>> {
    let op = CrossRegionOp::GrantMap { grantee, granter };
    let obj = op.object();
    let table = &mut regions
        .get_mut(&obj)
        .ok_or(HvError::NoSuchDomain(obj))?
        .grants;
    let mut results = Vec::with_capacity(refs.len());
    for &gref in refs {
        results.push(match table.map_compact(grantee, gref) {
            Ok((mfn, _access)) => match mem.inc_grant_mapping(mfn) {
                Ok(()) => GrantOpStatus::Done(mfn),
                Err(e) => GrantOpStatus::Memory(e),
            },
            Err(e) => GrantOpStatus::Grant(e),
        });
    }
    Ok(results)
}

/// Batched [`grant_unmap`], mirroring [`grant_map_batch`].
#[inline(never)]
pub(crate) fn grant_unmap_batch(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    grantee: DomId,
    granter: DomId,
    refs: &[GrantRef],
) -> HvResult<Vec<GrantOpStatus>> {
    let op = CrossRegionOp::GrantMap { grantee, granter };
    let obj = op.object();
    let table = &mut regions
        .get_mut(&obj)
        .ok_or(HvError::NoSuchDomain(obj))?
        .grants;
    let mut results = Vec::with_capacity(refs.len());
    for &gref in refs {
        results.push(match table.unmap_compact(grantee, gref) {
            Ok(mfn) => match mem.dec_grant_mapping(mfn) {
                Ok(()) => GrantOpStatus::Done(mfn),
                Err(e) => GrantOpStatus::Memory(e),
            },
            Err(e) => GrantOpStatus::Grant(e),
        });
    }
    Ok(results)
}

/// Batched GNTTABOP_copy: audits each op against `granter`'s table and
/// moves the page bytes through globally-shared machine memory. Copies
/// leave no mapping behind.
#[inline(never)]
pub(crate) fn grant_copy_batch(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    grantee: DomId,
    granter: DomId,
    ops: &[GrantCopyOp],
) -> HvResult<Vec<GrantOpStatus>> {
    let op = CrossRegionOp::GrantCopy { grantee, granter };
    let resolved = object_region_mut(regions, op, |r| r.grants.grant_copy_batch(grantee, ops))?;
    let results = resolved
        .into_iter()
        .map(|r| {
            let (mfn, entry) = match r {
                Ok(pair) => pair,
                Err(e) => return GrantOpStatus::Grant(e),
            };
            let copied = match entry.dir {
                GrantCopyDir::FromGrant => mem.read_mfn(mfn).and_then(|page| {
                    // The caller's frame may be CoW-shared;
                    // break sharing before clobbering it.
                    let local = mem.exclusive_mfn(grantee, entry.local_pfn)?;
                    mem.write_mfn_page(local, page)
                }),
                GrantCopyDir::ToGrant => mem
                    .read(grantee, entry.local_pfn)
                    .and_then(|page| mem.write_mfn_page(mfn, page)),
            };
            match copied {
                Ok(()) => GrantOpStatus::Done(mfn),
                Err(HvError::Memory(e)) => GrantOpStatus::Memory(e),
                // read/exclusive/write only surface memory faults
                // on this path; keep the match total regardless.
                Err(_) => GrantOpStatus::Memory(MemError::BadMfn(mfn.0)),
            }
        })
        .collect();
    Ok(results)
}

/// Accepts a page-flip transfer: consumes the spent entry in the
/// granter's table and re-points frame ownership in machine memory.
/// Returns the accepted frame's PFN in the grantee's address space.
pub(crate) fn accept_transfer(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    grantee: DomId,
    granter: DomId,
    gref: GrantRef,
) -> HvResult<Pfn> {
    let op = CrossRegionOp::GrantTransfer { grantee, granter };
    let (pfn, _mfn) = object_region_mut(regions, op, |r| r.grants.accept_transfer(grantee, gref))??;
    mem.transfer_frame(granter, pfn, grantee)
}

/// Builder-only (§5.6): installs a grant for `grantee` in `owner`'s
/// table on the owner's behalf, breaking CoW sharing on the page first.
pub(crate) fn foreign_setup(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    builder: DomId,
    owner: DomId,
    grantee: DomId,
    pfn: Pfn,
    access: GrantAccess,
) -> HvResult<GrantRef> {
    let op = CrossRegionOp::ForeignSetup { builder, owner };
    let mfn = mem.exclusive_mfn(op.object(), pfn)?;
    object_region_mut(regions, op, |r| r.grants.grant(grantee, pfn, mfn, access))?
}

/// A sealed template's precompiled stamp plan.
///
/// The plan is computed once per template and cached by the hypervisor
/// (a sealed template is paused and frozen, so its grant table cannot
/// change under the cache); the per-clone stamp then replays it without
/// walking the template's region at all — the same precompiled-plan
/// move the microreboot engine makes for restarts.
#[derive(Debug, Clone)]
pub(crate) struct StampPlan {
    /// Every live grant entry of the template as
    /// `(grantee, pfn, access)`, in grant-ref order.
    pub entries: Vec<(DomId, Pfn, GrantAccess)>,
    /// The granted PFNs alone, in the same order (the batch the memory
    /// manager privatises per clone).
    pub pfns: Vec<Pfn>,
}

/// Compiles the stamp plan of a sealed template.
pub(crate) fn stamp_plan(regions: &FastMap<DomId, Region>, template: DomId) -> HvResult<StampPlan> {
    let entries: Vec<(DomId, Pfn, GrantAccess)> = regions
        .get(&template)
        .ok_or(HvError::NoSuchDomain(template))?
        .grant_table()
        .entries_sorted()
        .into_iter()
        .map(|(_, e)| (e.grantee, e.pfn, e.access))
        .collect();
    let pfns = entries.iter().map(|&(_, pfn, _)| pfn).collect();
    Ok(StampPlan { entries, pfns })
}

/// Snapshot-fork region stamp: replays the template's precompiled stamp
/// plan into the clone's fresh region. Each stamped grant is
/// established against a fresh private frame of the clone
/// ([`MemoryManager::stamp_private_zero_batch`]): ring contents are
/// re-initialised when the backend connects, and a backend mapping the
/// clone's ring must never reach the template frame the clone still
/// aliases elsewhere.
pub(crate) fn clone_stamp(
    regions: &mut FastMap<DomId, Region>,
    mem: &mut MemoryManager,
    template: DomId,
    clone: DomId,
    plan: &StampPlan,
) -> HvResult<()> {
    let op = CrossRegionOp::CloneStamp { template, clone };
    let mut mfns = Vec::with_capacity(plan.pfns.len());
    mem.stamp_private_zero_batch(clone, &plan.pfns, &mut mfns)?;
    object_region_mut(regions, op, |r| {
        for (&(grantee, pfn, access), &mfn) in plan.entries.iter().zip(&mfns) {
            r.grants.grant(grantee, pfn, mfn, access)?;
        }
        Ok(())
    })?
}

// ----- foreign memory and rollback (global machine memory) -----

/// Maps a frame of the object domain's memory for the accessor (blanket
/// or `privileged_for`-scoped), pinning it against reclaim.
pub(crate) fn foreign_map(
    mem: &mut MemoryManager,
    accessor: DomId,
    owner: DomId,
    pfn: Pfn,
) -> HvResult<Mfn> {
    let op = CrossRegionOp::ForeignMap { accessor, owner };
    let mfn = mem.exclusive_mfn(op.object(), pfn)?;
    mem.inc_foreign_mapping(mfn)?;
    Ok(mfn)
}

/// Writes into the object domain's memory (builder populating a guest
/// image, device-model emulation).
pub(crate) fn foreign_write(
    mem: &mut MemoryManager,
    accessor: DomId,
    owner: DomId,
    pfn: Pfn,
    data: &[u8],
) -> HvResult<()> {
    let op = CrossRegionOp::ForeignMap { accessor, owner };
    mem.write(op.object(), pfn, data)
}

/// Rolls the target domain's memory back to its snapshot image
/// (the microreboot path), returning how many pages were restored.
pub(crate) fn rollback(
    snapshots: &mut SnapshotManager,
    mem: &mut MemoryManager,
    manager: DomId,
    target: DomId,
) -> HvResult<u64> {
    let op = CrossRegionOp::Rollback { manager, target };
    snapshots.rollback(op.object(), mem)
}

// ----- teardown -----

/// Destroys `target`'s region, reclaiming the peers' half-open ends of
/// its interdomain channels (as when a real backend observes the
/// frontend's death and closes its end).
pub(crate) fn teardown(regions: &mut FastMap<DomId, Region>, target: DomId) {
    let op = CrossRegionOp::Teardown { target };
    let Some(region) = regions.remove(&op.object()) else {
        return;
    };
    let peers: Vec<(DomId, u32)> = region
        .ports
        .ports
        .values()
        .filter_map(|s| match s {
            PortState::Interdomain {
                remote,
                remote_port,
            } => Some((*remote, *remote_port)),
            _ => None,
        })
        .collect();
    for (peer, pport) in peers {
        if let Some(pr) = regions.get_mut(&peer) {
            pr.ports.ports.remove(&pport);
        }
    }
}

// ----- test-only switch mirroring the old system-wide API -----

/// Applies a drained event batch to a map (test/bench convenience kept
/// out of the hot path).
pub fn ports_of(events: &[PendingEvent]) -> Vec<u32> {
    events.iter().map(|e| e.port).collect()
}

/// A standalone region table with the pre-refactor system-wide
/// event-switch API, used by the unit/property tests in this module to
/// exercise the cross-region paths without a full hypervisor. The field
/// names mirror [`crate::hypervisor::Hypervisor`]'s.
#[cfg(test)]
pub(crate) struct TestSwitch {
    regions: FastMap<DomId, Region>,
    delivered: u64,
}

#[cfg(test)]
impl TestSwitch {
    pub(crate) fn new() -> Self {
        TestSwitch {
            regions: FastMap::default(),
            delivered: 0,
        }
    }

    pub(crate) fn register_domain(&mut self, dom: DomId) {
        self.regions.entry(dom).or_insert_with(|| Region::new(dom));
    }

    pub(crate) fn remove_domain(&mut self, dom: DomId) {
        teardown(&mut self.regions, dom);
    }

    fn region_mut(&mut self, dom: DomId) -> HvResult<&mut Region> {
        self.regions
            .get_mut(&dom)
            .ok_or(EventError::BadRemote.into())
    }

    pub(crate) fn alloc_unbound(&mut self, owner: DomId, remote: DomId) -> HvResult<u32> {
        self.region_mut(owner)?.alloc_unbound(remote)
    }

    pub(crate) fn bind_interdomain(
        &mut self,
        binder: DomId,
        remote: DomId,
        remote_port: u32,
    ) -> HvResult<u32> {
        bind_interdomain(&mut self.regions, binder, remote, remote_port)
    }

    pub(crate) fn bind_virq(&mut self, dom: DomId, virq: crate::event::VirqKind) -> HvResult<u32> {
        self.region_mut(dom)?.bind_virq(virq)
    }

    pub(crate) fn raise_virq(&mut self, dom: DomId, virq: crate::event::VirqKind) -> bool {
        match self.regions.get_mut(&dom).and_then(|r| r.raise_virq(virq)) {
            Some(fresh) => {
                if fresh {
                    self.delivered += 1;
                }
                true
            }
            None => false,
        }
    }

    pub(crate) fn send(&mut self, sender: DomId, port: u32) -> HvResult<()> {
        event_send(&mut self.regions, &mut self.delivered, sender, port)
    }

    pub(crate) fn poll(&mut self, dom: DomId) -> Option<PendingEvent> {
        self.regions.get_mut(&dom)?.poll()
    }

    pub(crate) fn drain_pending(&mut self, dom: DomId) -> Vec<PendingEvent> {
        let mut out = Vec::new();
        if let Some(r) = self.regions.get_mut(&dom) {
            r.drain_pending_into(&mut out);
        }
        out
    }

    pub(crate) fn pending_count(&self, dom: DomId) -> usize {
        self.regions.get(&dom).map_or(0, |r| r.pending_count())
    }

    pub(crate) fn set_masked(&mut self, dom: DomId, masked: bool) {
        if let Some(r) = self.regions.get_mut(&dom) {
            r.set_event_mask(masked);
        }
    }

    pub(crate) fn close(&mut self, dom: DomId, port: u32) -> HvResult<()> {
        event_close(&mut self.regions, dom, port)
    }

    pub(crate) fn is_connected(&self, dom: DomId, port: u32) -> bool {
        self.regions
            .get(&dom)
            .is_some_and(|r| r.event_connected(port))
    }

    pub(crate) fn delivered_count(&self) -> u64 {
        self.delivered
    }

    pub(crate) fn peers_of(&self, dom: DomId) -> Vec<DomId> {
        self.regions
            .get(&dom)
            .map_or(Vec::new(), |r| r.event_peers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VirqKind;
    use crate::grant::GrantAccess;

    fn two_domains() -> (TestSwitch, DomId, DomId) {
        let mut ev = TestSwitch::new();
        let a = DomId(1);
        let b = DomId(2);
        ev.register_domain(a);
        ev.register_domain(b);
        (ev, a, b)
    }

    #[test]
    fn pair_borrow_rejects_single_region() {
        let mut regions: FastMap<DomId, Region> = FastMap::default();
        regions.insert(DomId(1), Region::new(DomId(1)));
        let op = CrossRegionOp::EventSend {
            from: DomId(1),
            to: DomId(1),
        };
        let err = region_pair_mut(&mut regions, op, |_, _| ()).unwrap_err();
        assert!(matches!(err, HvError::InvalidArgument(_)));
        assert!(regions.contains_key(&DomId(1)), "region not lost");
    }

    #[test]
    fn pair_borrow_restores_subject_on_missing_object() {
        let mut regions: FastMap<DomId, Region> = FastMap::default();
        regions.insert(DomId(1), Region::new(DomId(1)));
        let op = CrossRegionOp::EventSend {
            from: DomId(1),
            to: DomId(9),
        };
        let err = region_pair_mut(&mut regions, op, |_, _| ()).unwrap_err();
        assert!(matches!(err, HvError::NoSuchDomain(DomId(9))));
        assert!(
            regions.contains_key(&DomId(1)),
            "subject region must be reinserted on failure"
        );
    }

    #[test]
    fn op_names_both_regions() {
        let op = CrossRegionOp::GrantMap {
            grantee: DomId(3),
            granter: DomId(5),
        };
        assert_eq!(op.subject(), DomId(3));
        assert_eq!(op.object(), DomId(5));
        assert_eq!(op.kind(), "grant");
        let op = CrossRegionOp::EventBind {
            binder: DomId(1),
            remote: DomId(2),
        };
        assert_eq!(op.kind(), "event");
        let op = CrossRegionOp::ForeignMap {
            accessor: DomId(1),
            owner: DomId(2),
        };
        assert_eq!(op.kind(), "foreign");
    }

    #[test]
    fn handshake_connects_both_ends() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        assert!(ev.is_connected(a, pa));
        assert!(ev.is_connected(b, pb));
        assert_eq!(ev.peers_of(a), vec![b]);
    }

    #[test]
    fn bind_by_wrong_domain_rejected() {
        let (mut ev, a, b) = two_domains();
        let c = DomId(3);
        ev.register_domain(c);
        let pa = ev.alloc_unbound(a, b).unwrap();
        let err = ev.bind_interdomain(c, a, pa).unwrap_err();
        assert!(matches!(err, HvError::Event(EventError::BindMismatch)));
    }

    #[test]
    fn bind_to_bound_port_rejected() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        ev.bind_interdomain(b, a, pa).unwrap();
        let err = ev.bind_interdomain(b, a, pa).unwrap_err();
        assert!(matches!(err, HvError::Event(EventError::AlreadyBound(_))));
    }

    #[test]
    fn send_delivers_to_peer_port() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.send(a, pa).unwrap();
        let got = ev.poll(b).unwrap();
        assert_eq!(got.port, pb);
        assert!(ev.poll(b).is_none());
        // And in the other direction.
        ev.send(b, pb).unwrap();
        assert_eq!(ev.poll(a).unwrap().port, pa);
        assert_eq!(ev.delivered_count(), 2);
    }

    #[test]
    fn send_on_unbound_port_fails() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        assert!(ev.send(a, pa).is_err());
    }

    #[test]
    fn masked_domain_defers_events() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.set_masked(b, true);
        ev.send(a, pa).unwrap();
        // Masking defers: the bit is set but invisible to poll.
        assert_eq!(ev.pending_count(b), 1);
        assert!(ev.poll(b).is_none());
        assert!(ev.drain_pending(b).is_empty());
        ev.set_masked(b, false);
        assert_eq!(ev.poll(b).unwrap().port, pb);
        assert!(ev.poll(b).is_none());
    }

    #[test]
    fn repeated_sends_coalesce() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        for _ in 0..5 {
            ev.send(a, pa).unwrap();
        }
        assert_eq!(ev.pending_count(b), 1);
        assert_eq!(ev.delivered_count(), 1);
        assert_eq!(ev.poll(b).unwrap().port, pb);
        assert!(ev.poll(b).is_none());
        // Once consumed, the next send is a fresh notification.
        ev.send(a, pa).unwrap();
        assert_eq!(ev.delivered_count(), 2);
        assert_eq!(ev.poll(b).unwrap().port, pb);
    }

    #[test]
    fn repeated_virq_raises_coalesce() {
        let (mut ev, a, _) = two_domains();
        let p = ev.bind_virq(a, VirqKind::Timer).unwrap();
        assert!(ev.raise_virq(a, VirqKind::Timer));
        assert!(
            ev.raise_virq(a, VirqKind::Timer),
            "coalesced raise still reported"
        );
        assert_eq!(ev.pending_count(a), 1);
        assert_eq!(ev.delivered_count(), 1);
        assert_eq!(ev.poll(a).unwrap().port, p);
    }

    #[test]
    fn poll_returns_lowest_port_first() {
        let (mut ev, a, b) = two_domains();
        let pa1 = ev.alloc_unbound(a, b).unwrap();
        let pb1 = ev.bind_interdomain(b, a, pa1).unwrap();
        let pa2 = ev.alloc_unbound(a, b).unwrap();
        let pb2 = ev.bind_interdomain(b, a, pa2).unwrap();
        assert!(pb1 < pb2);
        ev.send(a, pa2).unwrap();
        ev.send(a, pa1).unwrap();
        assert_eq!(ev.poll(b).unwrap().port, pb1);
        assert_eq!(ev.poll(b).unwrap().port, pb2);
    }

    #[test]
    fn drain_pending_returns_all_in_port_order() {
        let (mut ev, a, b) = two_domains();
        let mut peer_ports = Vec::new();
        for _ in 0..3 {
            let pa = ev.alloc_unbound(a, b).unwrap();
            peer_ports.push((pa, ev.bind_interdomain(b, a, pa).unwrap()));
        }
        // Send in reverse, with a duplicate thrown in.
        for &(pa, _) in peer_ports.iter().rev() {
            ev.send(a, pa).unwrap();
        }
        ev.send(a, peer_ports[1].0).unwrap();
        let drained = ev.drain_pending(b);
        let expected: Vec<u32> = peer_ports.iter().map(|&(_, pb)| pb).collect();
        assert_eq!(ports_of(&drained), expected);
        assert_eq!(ev.pending_count(b), 0);
        assert!(ev.drain_pending(b).is_empty());
    }

    #[test]
    fn virq_bind_and_raise() {
        let (mut ev, a, _) = two_domains();
        let p = ev.bind_virq(a, VirqKind::Console).unwrap();
        assert!(ev.raise_virq(a, VirqKind::Console));
        assert_eq!(ev.poll(a).unwrap().port, p);
        assert!(
            !ev.raise_virq(a, VirqKind::Timer),
            "unbound VIRQ not delivered"
        );
    }

    #[test]
    fn close_propagates_to_peer() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.close(a, pa).unwrap();
        assert!(!ev.is_connected(a, pa));
        assert!(!ev.is_connected(b, pb));
        assert!(ev.send(b, pb).is_err());
    }

    #[test]
    fn remove_domain_breaks_channels() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.remove_domain(a);
        assert!(!ev.is_connected(b, pb));
        assert!(ev.send(b, pb).is_err());
    }

    #[test]
    fn send_to_dead_peer_is_silently_dropped() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        // Remove the receiver's region out from under the channel,
        // leaving a's half-open end in place (the reverse of teardown):
        // the send must not error, matching the old switch's behaviour.
        let removed = ev.regions.remove(&b).unwrap();
        assert!(ev.send(a, pa).is_err() == false);
        ev.regions.insert(b, removed);
        // Nothing was delivered while the peer was gone.
        assert_eq!(ev.pending_count(b), 0);
        let _ = pb;
    }

    #[test]
    fn self_channel_stays_intra_region() {
        // A shard binding a channel to itself exercises the same-domain
        // special case that must NOT take the pair-borrow path.
        let mut ev = TestSwitch::new();
        let a = DomId(4);
        ev.register_domain(a);
        let unbound = ev.alloc_unbound(a, a).unwrap();
        let local = ev.bind_interdomain(a, a, unbound).unwrap();
        assert!(ev.is_connected(a, unbound));
        assert!(ev.is_connected(a, local));
        ev.send(a, local).unwrap();
        assert_eq!(ev.poll(a).unwrap().port, unbound);
        ev.close(a, local).unwrap();
        assert!(!ev.is_connected(a, unbound));
    }

    #[test]
    fn grant_map_across_regions_round_trips() {
        let mut regions: FastMap<DomId, Region> = FastMap::default();
        let (granter, grantee) = (DomId(1), DomId(2));
        regions.insert(granter, Region::new(granter));
        regions.insert(grantee, Region::new(grantee));
        let mut mem = MemoryManager::new(64);
        mem.populate(granter, 4).unwrap();
        mem.populate(grantee, 4).unwrap();
        let mfn = mem.exclusive_mfn(granter, Pfn(0)).unwrap();
        let gref = regions
            .get_mut(&granter)
            .unwrap()
            .grants
            .grant(grantee, Pfn(0), mfn, GrantAccess::ReadWrite)
            .unwrap();
        let mapped = grant_map(&mut regions, &mut mem, grantee, granter, gref).unwrap();
        assert_eq!(mapped, mfn);
        grant_unmap(&mut regions, &mut mem, grantee, granter, gref).unwrap();
        // Batch path agrees with the single-op path.
        let statuses = grant_map_batch(&mut regions, &mut mem, grantee, granter, &[gref]).unwrap();
        assert_eq!(statuses[0], GrantOpStatus::Done(mfn));
        let statuses =
            grant_unmap_batch(&mut regions, &mut mem, grantee, granter, &[gref]).unwrap();
        assert_eq!(statuses[0], GrantOpStatus::Done(mfn));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Every *signalled port* is delivered exactly once no matter how
    /// many sends hit it: repeated sends on a pending port coalesce
    /// (Xen bitmap semantics), so what poll yields is the set of
    /// distinct signalled ports, in ascending port order.
    #[test]
    fn signalled_ports_delivered_exactly_once() {
        Runner::cases(64).run("signalled ports delivered exactly once", |g| {
            let channels = g.usize(1..8);
            let sends = g.usize(1..100);
            let mut ev = TestSwitch::new();
            let (a, b) = (DomId(1), DomId(2));
            ev.register_domain(a);
            ev.register_domain(b);
            let mut pairs = Vec::new();
            for _ in 0..channels {
                let pa = ev.alloc_unbound(a, b).unwrap();
                let pb = ev.bind_interdomain(b, a, pa).unwrap();
                pairs.push((pa, pb));
            }
            let mut signalled = std::collections::BTreeSet::new();
            for _ in 0..sends {
                let (pa, pb) = pairs[g.usize(0..pairs.len())];
                ev.send(a, pa).unwrap();
                signalled.insert(pb);
            }
            assert_eq!(ev.pending_count(b), signalled.len());
            let mut received = Vec::new();
            while let Some(e) = ev.poll(b) {
                received.push(e.port);
            }
            let expected: Vec<u32> = signalled.into_iter().collect();
            assert_eq!(received, expected);
            assert_eq!(ev.delivered_count(), expected.len() as u64);
        });
    }

    /// drain_pending is equivalent to polling until empty.
    #[test]
    fn drain_equals_poll_until_empty() {
        Runner::cases(64).run("drain equals poll until empty", |g| {
            let channels = g.usize(1..6);
            let sends = g.usize(0..40);
            let mk = || {
                let mut ev = TestSwitch::new();
                let (a, b) = (DomId(1), DomId(2));
                ev.register_domain(a);
                ev.register_domain(b);
                let mut ports = Vec::new();
                for _ in 0..channels {
                    let pa = ev.alloc_unbound(a, b).unwrap();
                    ev.bind_interdomain(b, a, pa).unwrap();
                    ports.push(pa);
                }
                (ev, a, b, ports)
            };
            let (mut ev1, a1, b1, ports1) = mk();
            let (mut ev2, _, b2, _) = mk();
            for _ in 0..sends {
                let i = g.usize(0..ports1.len());
                ev1.send(a1, ports1[i]).unwrap();
                ev2.send(a1, ports1[i]).unwrap();
            }
            let drained = ports_of(&ev1.drain_pending(b1));
            let mut polled = Vec::new();
            while let Some(e) = ev2.poll(b2) {
                polled.push(e.port);
            }
            assert_eq!(drained, polled);
        });
    }

    /// The handshake is symmetric: after binding, both sides report
    /// each other as peers.
    #[test]
    fn handshake_symmetry() {
        Runner::cases(64).run("handshake symmetry", |g| {
            let a_id = g.u32(1..50);
            let b_id = g.u32(51..100);
            let mut ev = TestSwitch::new();
            let (a, b) = (DomId(a_id), DomId(b_id));
            ev.register_domain(a);
            ev.register_domain(b);
            let pa = ev.alloc_unbound(a, b).unwrap();
            ev.bind_interdomain(b, a, pa).unwrap();
            assert_eq!(ev.peers_of(a), vec![b]);
            assert_eq!(ev.peers_of(b), vec![a]);
        });
    }

    /// The pair-borrow helper never loses a region, whatever the op and
    /// whichever endpoints exist.
    #[test]
    fn pair_borrow_preserves_regions() {
        Runner::cases(64).run("pair borrow preserves regions", |g| {
            let n = g.usize(1..6);
            let mut regions: FastMap<DomId, Region> = FastMap::default();
            for i in 0..n {
                let d = DomId(i as u32);
                regions.insert(d, Region::new(d));
            }
            let a = DomId(g.u32(0..8));
            let b = DomId(g.u32(0..8));
            let op = CrossRegionOp::EventSend { from: a, to: b };
            let before = regions.len();
            let _ = region_pair_mut(&mut regions, op, |ra, rb| {
                assert_eq!(ra.owner(), a);
                assert_eq!(rb.owner(), b);
            });
            assert_eq!(regions.len(), before, "no region may be lost");
            for i in 0..n {
                assert!(regions.contains_key(&DomId(i as u32)));
            }
        });
    }
}
