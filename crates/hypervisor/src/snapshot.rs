//! Snapshot and rollback: microreboots without full reboots (§3.3).
//!
//! A shard calls `vm_snapshot()` once it has booted and initialized, *before*
//! offering services over any external interface. The hypervisor freezes the
//! domain lazily ([`MemoryManager::freeze`]): nothing is copied at snapshot
//! time, the first post-snapshot write to each page captures its pre-image
//! (a `PageRef` handle clone, not a byte copy), and a rollback walks only
//! the set words of the domain's dirty bitmap — so both the snapshot and
//! the microreboot cost are proportional to the pages *touched*, never to
//! the size of the VM.
//!
//! Side-effectful state that must survive rollbacks (open connections,
//! renegotiated ring details for the "fast" restart path of Figure 6.3)
//! is placed in a **recovery box** [Baker & Sullivan '92]: a designated
//! PFN range excluded from restoration.

use std::collections::HashMap;

use crate::domain::DomId;
use crate::error::{HvError, HvResult};
use crate::memory::{MemoryManager, Pfn};

/// A contiguous PFN range registered as a recovery box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryBox {
    /// First PFN of the box.
    pub start: Pfn,
    /// Number of frames.
    pub frames: u64,
}

impl RecoveryBox {
    /// Whether `pfn` lies within the box.
    pub fn contains(&self, pfn: Pfn) -> bool {
        pfn.0 >= self.start.0 && pfn.0 < self.start.0 + self.frames
    }
}

/// The snapshot image of one domain.
///
/// Page contents live in the [`MemoryManager`]'s frozen baseline (captured
/// copy-on-write at first post-snapshot touch); the image itself carries
/// only the policy metadata the hypervisor keeps per snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotImage {
    /// Pages covered by the snapshot at freeze time.
    page_count: u64,
    /// Recovery boxes excluded from rollback.
    boxes: Vec<RecoveryBox>,
    /// Simulation time at which the snapshot was taken (ns).
    pub taken_at_ns: u64,
    /// Number of rollbacks performed from this image.
    pub rollback_count: u64,
}

impl SnapshotImage {
    /// Number of pages covered by the snapshot.
    pub fn page_count(&self) -> usize {
        self.page_count as usize
    }

    /// Whether `pfn` is shielded by a recovery box.
    pub fn in_recovery_box(&self, pfn: Pfn) -> bool {
        self.boxes.iter().any(|b| b.contains(pfn))
    }
}

/// Manages snapshot images for all domains.
#[derive(Debug, Default)]
pub struct SnapshotManager {
    images: HashMap<DomId, SnapshotImage>,
    /// Pending recovery-box registrations for domains that have not yet
    /// snapshotted.
    pending_boxes: HashMap<DomId, Vec<RecoveryBox>>,
}

impl SnapshotManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a recovery box for `dom`. Must be called before
    /// [`SnapshotManager::snapshot`]; boxes registered afterwards apply to
    /// the *next* snapshot.
    pub fn register_recovery_box(&mut self, dom: DomId, rbox: RecoveryBox) {
        self.pending_boxes.entry(dom).or_default().push(rbox);
    }

    /// Takes a snapshot of `dom`: freezes the domain's pages lazily and
    /// clears the dirty tracking so subsequent writes are recorded as CoW
    /// deltas.
    ///
    /// No page bytes are copied here — pre-images are captured by the
    /// first post-snapshot write to each page — so the cost is independent
    /// of how many (clean) pages the domain holds.
    pub fn snapshot(&mut self, dom: DomId, mem: &mut MemoryManager, now_ns: u64) -> HvResult<()> {
        let page_count = mem.freeze(dom);
        if page_count == 0 {
            mem.discard_frozen(dom);
            return Err(HvError::Snapshot(format!(
                "{dom} has no populated memory to snapshot"
            )));
        }
        let boxes = self.pending_boxes.get(&dom).cloned().unwrap_or_default();
        self.images.insert(
            dom,
            SnapshotImage {
                page_count,
                boxes,
                taken_at_ns: now_ns,
                rollback_count: 0,
            },
        );
        Ok(())
    }

    /// Rolls `dom` back to its snapshot image.
    ///
    /// Only frames dirtied since the snapshot are restored (the CoW
    /// optimisation that makes microreboots cheap), and frames inside a
    /// recovery box are skipped. Returns the number of frames restored.
    pub fn rollback(&mut self, dom: DomId, mem: &mut MemoryManager) -> HvResult<u64> {
        let image = self
            .images
            .get_mut(&dom)
            .ok_or_else(|| HvError::Snapshot(format!("{dom} has no snapshot")))?;
        let restored = mem.rollback_frozen(dom, |pfn| image.in_recovery_box(pfn))?;
        image.rollback_count += 1;
        Ok(restored)
    }

    /// Whether `dom` has a snapshot image.
    pub fn has_snapshot(&self, dom: DomId) -> bool {
        self.images.contains_key(&dom)
    }

    /// Read-only access to a domain's image.
    pub fn image(&self, dom: DomId) -> Option<&SnapshotImage> {
        self.images.get(&dom)
    }

    /// Discards a domain's snapshot and pending boxes (domain death).
    pub fn discard(&mut self, dom: DomId) {
        self.images.remove(&dom);
        self.pending_boxes.remove(&dom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SnapshotManager, MemoryManager, DomId) {
        let mut mem = MemoryManager::new(1024);
        let dom = DomId(7);
        mem.populate(dom, 8).unwrap();
        (SnapshotManager::new(), mem, dom)
    }

    #[test]
    fn snapshot_captures_all_pages() {
        let (mut sm, mut mem, dom) = setup();
        mem.write(dom, Pfn(0), b"boot").unwrap();
        sm.snapshot(dom, &mut mem, 100).unwrap();
        let img = sm.image(dom).unwrap();
        assert_eq!(img.page_count(), 8);
        assert_eq!(img.taken_at_ns, 100);
    }

    #[test]
    fn snapshot_of_empty_domain_fails() {
        let mut sm = SnapshotManager::new();
        let mut mem = MemoryManager::new(16);
        assert!(sm.snapshot(DomId(9), &mut mem, 0).is_err());
    }

    #[test]
    fn rollback_restores_dirty_pages_only() {
        let (mut sm, mut mem, dom) = setup();
        mem.write(dom, Pfn(0), b"initialized").unwrap();
        sm.snapshot(dom, &mut mem, 0).unwrap();
        // Attacker scribbles over two pages.
        mem.write(dom, Pfn(0), b"pwned").unwrap();
        mem.write(dom, Pfn(3), b"implant").unwrap();
        let restored = sm.rollback(dom, &mut mem).unwrap();
        assert_eq!(restored, 2, "only the dirty pages are copied back");
        assert_eq!(mem.read(dom, Pfn(0)).unwrap(), b"initialized");
        assert_eq!(mem.read(dom, Pfn(3)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rollback_without_snapshot_fails() {
        let (mut sm, mut mem, dom) = setup();
        assert!(sm.rollback(dom, &mut mem).is_err());
    }

    #[test]
    fn repeated_rollbacks_restore_repeatedly() {
        let (mut sm, mut mem, dom) = setup();
        mem.write(dom, Pfn(1), b"good").unwrap();
        sm.snapshot(dom, &mut mem, 0).unwrap();
        for i in 0..5 {
            mem.write(dom, Pfn(1), format!("bad{i}").as_bytes())
                .unwrap();
            sm.rollback(dom, &mut mem).unwrap();
            assert_eq!(mem.read(dom, Pfn(1)).unwrap(), b"good");
        }
        assert_eq!(sm.image(dom).unwrap().rollback_count, 5);
    }

    #[test]
    fn second_rollback_is_cheap_when_nothing_dirtied() {
        let (mut sm, mut mem, dom) = setup();
        sm.snapshot(dom, &mut mem, 0).unwrap();
        mem.write(dom, Pfn(2), b"z").unwrap();
        assert_eq!(sm.rollback(dom, &mut mem).unwrap(), 1);
        // Nothing written since: zero pages to restore.
        assert_eq!(sm.rollback(dom, &mut mem).unwrap(), 0);
    }

    #[test]
    fn recovery_box_survives_rollback() {
        let (mut sm, mut mem, dom) = setup();
        sm.register_recovery_box(
            dom,
            RecoveryBox {
                start: Pfn(6),
                frames: 2,
            },
        );
        sm.snapshot(dom, &mut mem, 0).unwrap();
        // Connection state lands in the recovery box; attack state outside.
        mem.write(dom, Pfn(6), b"open-connections").unwrap();
        mem.write(dom, Pfn(1), b"attack-state").unwrap();
        sm.rollback(dom, &mut mem).unwrap();
        assert_eq!(
            mem.read(dom, Pfn(6)).unwrap(),
            b"open-connections",
            "recovery box persists across rollback"
        );
        assert_eq!(mem.read(dom, Pfn(1)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn new_snapshot_replaces_old() {
        let (mut sm, mut mem, dom) = setup();
        mem.write(dom, Pfn(0), b"v1").unwrap();
        sm.snapshot(dom, &mut mem, 0).unwrap();
        mem.write(dom, Pfn(0), b"v2").unwrap();
        sm.snapshot(dom, &mut mem, 50).unwrap();
        mem.write(dom, Pfn(0), b"garbage").unwrap();
        sm.rollback(dom, &mut mem).unwrap();
        assert_eq!(
            mem.read(dom, Pfn(0)).unwrap(),
            b"v2",
            "rolls back to latest image"
        );
    }

    #[test]
    fn snapshot_of_clean_domain_copies_zero_page_bytes() {
        let (mut sm, mut mem, dom) = setup();
        for pfn in 0..8u64 {
            mem.write(dom, Pfn(pfn), format!("boot{pfn}").as_bytes())
                .unwrap();
        }
        sm.snapshot(dom, &mut mem, 0).unwrap();
        assert_eq!(
            mem.frozen_baseline_len(dom),
            Some(0),
            "freezing a clean domain captures no pre-images at all"
        );
        assert_eq!(mem.frozen_page_count(dom), Some(8));
        // A write to one page captures exactly one pre-image — the CoW
        // fault — and leaves the other seven untouched.
        mem.write(dom, Pfn(3), b"touched").unwrap();
        assert_eq!(mem.frozen_baseline_len(dom), Some(1));
    }

    #[test]
    fn discard_removes_image() {
        let (mut sm, mut mem, dom) = setup();
        sm.snapshot(dom, &mut mem, 0).unwrap();
        assert!(sm.has_snapshot(dom));
        sm.discard(dom);
        assert!(!sm.has_snapshot(dom));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// After any sequence of writes followed by a rollback, every page
    /// outside recovery boxes equals its snapshot-time contents.
    #[test]
    fn rollback_restores_baseline() {
        Runner::cases(48).run("rollback restores baseline", |g| {
            let writes = g.vec(0..20, |g| {
                (g.u64(0..8), g.vec(0..32, |g| g.u64(0..256) as u8))
            });
            let mut mem = MemoryManager::new(64);
            let dom = DomId(1);
            mem.populate(dom, 8).unwrap();
            let mut sm = SnapshotManager::new();
            // Baseline contents.
            for pfn in 0..8u64 {
                mem.write(dom, Pfn(pfn), format!("base{pfn}").as_bytes())
                    .unwrap();
            }
            sm.snapshot(dom, &mut mem, 0).unwrap();
            for (pfn, data) in &writes {
                mem.write(dom, Pfn(*pfn), data).unwrap();
            }
            sm.rollback(dom, &mut mem).unwrap();
            for pfn in 0..8u64 {
                assert_eq!(
                    mem.read(dom, Pfn(pfn)).unwrap(),
                    format!("base{pfn}").into_bytes()
                );
            }
        });
    }

    /// Differential test against the retired eager-copy implementation:
    /// snapshot-time contents are copied into a shadow model up front, an
    /// arbitrary write sequence runs, and after rollback every page
    /// outside recovery boxes must equal the shadow while box pages keep
    /// their post-write contents.
    #[test]
    fn cow_rollback_matches_eager_copy_semantics() {
        Runner::cases(64).run("CoW rollback ≡ eager copy", |g| {
            let mut mem = MemoryManager::new(64);
            let dom = DomId(1);
            mem.populate(dom, 8).unwrap();
            let mut sm = SnapshotManager::new();
            let rbox = RecoveryBox {
                start: Pfn(g.u64(0..8)),
                frames: g.u64(0..3),
            };
            sm.register_recovery_box(dom, rbox);
            for pfn in 0..8u64 {
                mem.write(dom, Pfn(pfn), format!("init{pfn}").as_bytes())
                    .unwrap();
            }
            // Shadow of the old implementation: eagerly copy every page
            // at snapshot time.
            let eager: Vec<Vec<u8>> = (0..8)
                .map(|p| mem.read(dom, Pfn(p)).unwrap().to_vec())
                .collect();
            sm.snapshot(dom, &mut mem, 0).unwrap();
            let writes = g.vec(0..24, |g| {
                (g.u64(0..8), g.vec(0..16, |g| g.u64(0..256) as u8))
            });
            for (pfn, data) in &writes {
                mem.write(dom, Pfn(*pfn), data).unwrap();
            }
            let post: Vec<Vec<u8>> = (0..8)
                .map(|p| mem.read(dom, Pfn(p)).unwrap().to_vec())
                .collect();
            sm.rollback(dom, &mut mem).unwrap();
            for pfn in 0..8u64 {
                let expect = if rbox.contains(Pfn(pfn)) {
                    &post[pfn as usize]
                } else {
                    &eager[pfn as usize]
                };
                assert_eq!(
                    &mem.read(dom, Pfn(pfn)).unwrap().to_vec(),
                    expect,
                    "pfn {pfn} diverges from the eager-copy shadow"
                );
            }
        });
    }

    /// The number of restored frames never exceeds the number of
    /// distinct pages written (CoW proportionality).
    #[test]
    fn rollback_cost_proportional_to_dirty() {
        Runner::cases(64).run("rollback cost proportional to dirty pages", |g| {
            let pfns = g.vec(0..30, |g| g.u64(0..8));
            let mut mem = MemoryManager::new(64);
            let dom = DomId(1);
            mem.populate(dom, 8).unwrap();
            let mut sm = SnapshotManager::new();
            sm.snapshot(dom, &mut mem, 0).unwrap();
            for pfn in &pfns {
                mem.write(dom, Pfn(*pfn), b"dirty").unwrap();
            }
            let mut distinct = pfns.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let restored = sm.rollback(dom, &mut mem).unwrap();
            assert_eq!(restored, distinct.len() as u64);
        });
    }
}
