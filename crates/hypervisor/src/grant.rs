//! Grant tables: page-granularity, capability-style memory sharing (§4.3).
//!
//! A domain exports its own pages through its *grant table*, an access
//! control list maintained by the hypervisor. Grant *references* act as
//! capabilities: the granting domain passes a [`GrantRef`] to a peer out of
//! band (normally through XenStore), and the peer's use of it is audited
//! against the table by the hypervisor on every map.
//!
//! Grant tables are the non-privileged alternative to blanket foreign
//! mapping, and the mechanism Xoar uses (§5.6) to deprivilege XenStore and
//! the Console Manager.

use std::collections::HashMap;

use crate::domain::DomId;
use crate::error::{GrantError, HvResult};
use crate::memory::{Mfn, Pfn};

/// A grant reference: an index into the granting domain's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GrantRef(pub u32);

xoar_codec::impl_json_newtype!(GrantRef(u32));

/// Access mode carried by a grant entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantAccess {
    /// Grantee may only read the page.
    ReadOnly,
    /// Grantee may read and write the page.
    ReadWrite,
    /// Ownership of the page is offered to the grantee (page flipping).
    Transfer,
}

xoar_codec::impl_json_enum!(GrantAccess {
    ReadOnly,
    ReadWrite,
    Transfer,
});

/// One entry in a grant table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantEntry {
    /// The domain allowed to map this entry.
    pub grantee: DomId,
    /// The granting domain's frame, both as PFN and resolved MFN.
    pub pfn: Pfn,
    /// Resolved machine frame at grant time.
    pub mfn: Mfn,
    /// Permitted access mode.
    pub access: GrantAccess,
    /// Number of active mappings through this entry.
    pub map_count: u32,
}

/// A single domain's grant table.
#[derive(Debug, Default)]
pub struct GrantTable {
    entries: HashMap<u32, GrantEntry>,
    /// Secondary index: grantee → sorted refs of live entries naming it.
    /// Maintained by grant/transfer/revoke so [`GrantTable::granted_to`]
    /// (the per-backend audit query) never scans the whole table.
    by_grantee: HashMap<DomId, Vec<u32>>,
    next_ref: u32,
    capacity: u32,
}

/// Default maximum number of grant entries per domain (matches Xen's
/// default of 32 frames of 512 v1 entries = 16384, scaled down for the
/// model).
pub const DEFAULT_GRANT_CAPACITY: u32 = 4096;

impl GrantTable {
    /// Creates an empty table with the default capacity.
    pub fn new() -> Self {
        GrantTable {
            entries: HashMap::new(),
            by_grantee: HashMap::new(),
            next_ref: 0,
            capacity: DEFAULT_GRANT_CAPACITY,
        }
    }

    /// Creates a table with an explicit capacity (tests, quota experiments).
    pub fn with_capacity(capacity: u32) -> Self {
        GrantTable {
            entries: HashMap::new(),
            by_grantee: HashMap::new(),
            next_ref: 0,
            capacity,
        }
    }

    /// Installs a new entry granting `grantee` access to (`pfn`, `mfn`).
    pub fn grant(
        &mut self,
        grantee: DomId,
        pfn: Pfn,
        mfn: Mfn,
        access: GrantAccess,
    ) -> HvResult<GrantRef> {
        if self.entries.len() as u32 >= self.capacity {
            return Err(GrantError::TableFull.into());
        }
        let gref = GrantRef(self.next_ref);
        self.next_ref += 1;
        self.entries.insert(
            gref.0,
            GrantEntry {
                grantee,
                pfn,
                mfn,
                access,
                map_count: 0,
            },
        );
        self.index_add(grantee, gref.0);
        Ok(gref)
    }

    /// Validates a map attempt by `caller` and records the mapping.
    ///
    /// This is the audit point the paper describes: "grant references act
    /// as capabilities and are passed to other VMs, whose use of them is
    /// audited against the grant table by the hypervisor".
    pub fn map(&mut self, caller: DomId, gref: GrantRef) -> HvResult<(Mfn, GrantAccess)> {
        let entry = self
            .entries
            .get_mut(&gref.0)
            .ok_or(GrantError::BadRef(gref.0))?;
        if entry.grantee != caller {
            return Err(GrantError::AccessDenied.into());
        }
        if entry.access == GrantAccess::Transfer {
            // Transfer grants are accepted, not mapped.
            return Err(GrantError::NotGranted.into());
        }
        entry.map_count += 1;
        Ok((entry.mfn, entry.access))
    }

    /// Releases one mapping by `caller`.
    pub fn unmap(&mut self, caller: DomId, gref: GrantRef) -> HvResult<Mfn> {
        let entry = self
            .entries
            .get_mut(&gref.0)
            .ok_or(GrantError::BadRef(gref.0))?;
        if entry.grantee != caller {
            return Err(GrantError::AccessDenied.into());
        }
        if entry.map_count == 0 {
            return Err(GrantError::NotMapped.into());
        }
        entry.map_count -= 1;
        Ok(entry.mfn)
    }

    /// Installs a *transfer* grant: an offer to give the page away
    /// entirely rather than share it (the mechanism behind classic
    /// netfront/netback page-flipping). The grantee accepts with
    /// [`GrantTable::accept_transfer`], after which the entry is spent.
    pub fn grant_transfer(&mut self, grantee: DomId, pfn: Pfn, mfn: Mfn) -> HvResult<GrantRef> {
        if self.entries.len() as u32 >= self.capacity {
            return Err(GrantError::TableFull.into());
        }
        let gref = GrantRef(self.next_ref);
        self.next_ref += 1;
        self.entries.insert(
            gref.0,
            GrantEntry {
                grantee,
                pfn,
                mfn,
                access: GrantAccess::Transfer,
                map_count: 0,
            },
        );
        self.index_add(grantee, gref.0);
        Ok(gref)
    }

    /// Accepts a transfer grant, consuming the entry and yielding the
    /// transferred frame. The caller (the hypervisor) is responsible for
    /// re-pointing page ownership.
    pub fn accept_transfer(&mut self, caller: DomId, gref: GrantRef) -> HvResult<(Pfn, Mfn)> {
        let entry = self
            .entries
            .get(&gref.0)
            .ok_or(GrantError::BadRef(gref.0))?;
        if entry.grantee != caller {
            return Err(GrantError::AccessDenied.into());
        }
        if entry.access != GrantAccess::Transfer {
            return Err(GrantError::NotGranted.into());
        }
        let entry = self
            .entries
            .remove(&gref.0)
            .ok_or(GrantError::BadRef(gref.0))?;
        self.index_remove(entry.grantee, gref.0);
        Ok((entry.pfn, entry.mfn))
    }

    /// Revokes an entry. Fails with [`GrantError::InUse`] while mapped.
    pub fn end_access(&mut self, gref: GrantRef) -> HvResult<()> {
        let entry = self
            .entries
            .get(&gref.0)
            .ok_or(GrantError::BadRef(gref.0))?;
        if entry.map_count > 0 {
            return Err(GrantError::InUse.into());
        }
        let grantee = entry.grantee;
        self.entries.remove(&gref.0);
        self.index_remove(grantee, gref.0);
        Ok(())
    }

    /// Looks up an entry without mapping it.
    pub fn entry(&self, gref: GrantRef) -> Option<&GrantEntry> {
        self.entries.get(&gref.0)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total active mappings across all entries.
    pub fn active_mappings(&self) -> u32 {
        self.entries.values().map(|e| e.map_count).sum()
    }

    /// All live entries in ascending ref order (audit/analysis surface;
    /// sorted so downstream reports are deterministic).
    pub fn entries_sorted(&self) -> Vec<(GrantRef, &GrantEntry)> {
        let mut out: Vec<(GrantRef, &GrantEntry)> = self
            .entries
            .iter()
            .map(|(&r, e)| (GrantRef(r), e))
            .collect();
        out.sort_by_key(|(r, _)| r.0);
        out
    }

    /// Entries granted to a specific domain (for audit). Served from the
    /// per-grantee index in O(entries for that grantee); refs come out
    /// ascending because grants are issued with monotonically increasing
    /// refs and removals preserve order.
    pub fn granted_to(&self, grantee: DomId) -> Vec<(GrantRef, &GrantEntry)> {
        let Some(refs) = self.by_grantee.get(&grantee) else {
            return Vec::new();
        };
        refs.iter()
            .filter_map(|&r| self.entries.get(&r).map(|e| (GrantRef(r), e)))
            .collect()
    }

    fn index_add(&mut self, grantee: DomId, r: u32) {
        self.by_grantee.entry(grantee).or_default().push(r);
    }

    fn index_remove(&mut self, grantee: DomId, r: u32) {
        if let Some(refs) = self.by_grantee.get_mut(&grantee) {
            if let Ok(i) = refs.binary_search(&r) {
                refs.remove(i);
            }
            if refs.is_empty() {
                self.by_grantee.remove(&grantee);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HvError;

    fn table() -> GrantTable {
        GrantTable::new()
    }

    #[test]
    fn grant_and_map_round_trip() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(3), Mfn(0x100), GrantAccess::ReadWrite)
            .unwrap();
        let (mfn, access) = t.map(DomId(2), gref).unwrap();
        assert_eq!(mfn, Mfn(0x100));
        assert_eq!(access, GrantAccess::ReadWrite);
        assert_eq!(t.active_mappings(), 1);
    }

    #[test]
    fn map_by_wrong_domain_denied() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(0x100), GrantAccess::ReadOnly)
            .unwrap();
        let err = t.map(DomId(3), gref).unwrap_err();
        assert!(matches!(err, HvError::Grant(GrantError::AccessDenied)));
    }

    #[test]
    fn map_bad_ref_rejected() {
        let mut t = table();
        assert!(matches!(
            t.map(DomId(2), GrantRef(42)).unwrap_err(),
            HvError::Grant(GrantError::BadRef(42))
        ));
    }

    #[test]
    fn unmap_decrements_and_requires_mapping() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(0x1), GrantAccess::ReadOnly)
            .unwrap();
        assert!(matches!(
            t.unmap(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::NotMapped)
        ));
        t.map(DomId(2), gref).unwrap();
        t.unmap(DomId(2), gref).unwrap();
        assert_eq!(t.active_mappings(), 0);
    }

    #[test]
    fn end_access_blocked_while_mapped() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(0x1), GrantAccess::ReadWrite)
            .unwrap();
        t.map(DomId(2), gref).unwrap();
        assert!(matches!(
            t.end_access(gref).unwrap_err(),
            HvError::Grant(GrantError::InUse)
        ));
        t.unmap(DomId(2), gref).unwrap();
        t.end_access(gref).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut t = GrantTable::with_capacity(2);
        t.grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        t.grant(DomId(2), Pfn(1), Mfn(2), GrantAccess::ReadOnly)
            .unwrap();
        assert!(matches!(
            t.grant(DomId(2), Pfn(2), Mfn(3), GrantAccess::ReadOnly)
                .unwrap_err(),
            HvError::Grant(GrantError::TableFull)
        ));
    }

    #[test]
    fn refs_are_not_reused() {
        let mut t = table();
        let a = t
            .grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        t.end_access(a).unwrap();
        let b = t
            .grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        assert_ne!(a, b, "grant refs must not be recycled immediately");
    }

    #[test]
    fn grantee_index_stays_consistent_under_revocation() {
        let mut t = table();
        // Interleave grants to three grantees with transfers.
        let mut refs = Vec::new();
        for i in 0..30u64 {
            let grantee = DomId(2 + (i % 3) as u32);
            let gref = if i % 5 == 4 {
                t.grant_transfer(grantee, Pfn(i), Mfn(i)).unwrap()
            } else {
                t.grant(grantee, Pfn(i), Mfn(i), GrantAccess::ReadOnly)
                    .unwrap()
            };
            refs.push((grantee, gref));
        }
        // Revoke every other access grant and accept every transfer.
        for (grantee, gref) in &refs {
            match t.entry(*gref).map(|e| e.access) {
                Some(GrantAccess::Transfer) => {
                    t.accept_transfer(*grantee, *gref).unwrap();
                }
                Some(_) if gref.0 % 2 == 0 => t.end_access(*gref).unwrap(),
                _ => {}
            }
        }
        // The index answer must equal a linear scan, for every grantee,
        // in ascending ref order.
        for d in [DomId(2), DomId(3), DomId(4), DomId(9)] {
            let via_index: Vec<u32> = t.granted_to(d).iter().map(|(r, _)| r.0).collect();
            let mut via_scan: Vec<u32> = refs
                .iter()
                .filter(|(g, r)| *g == d && t.entry(*r).is_some())
                .map(|(_, r)| r.0)
                .collect();
            via_scan.sort_unstable();
            assert_eq!(via_index, via_scan, "index diverged for {d:?}");
        }
    }

    #[test]
    fn granted_to_filters_by_grantee() {
        let mut t = table();
        t.grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        t.grant(DomId(3), Pfn(1), Mfn(2), GrantAccess::ReadOnly)
            .unwrap();
        t.grant(DomId(2), Pfn(2), Mfn(3), GrantAccess::ReadWrite)
            .unwrap();
        assert_eq!(t.granted_to(DomId(2)).len(), 2);
        assert_eq!(t.granted_to(DomId(3)).len(), 1);
        assert_eq!(t.granted_to(DomId(4)).len(), 0);
    }
}

#[cfg(test)]
mod transfer_tests {
    use super::*;
    use crate::error::HvError;

    #[test]
    fn transfer_round_trip() {
        let mut t = GrantTable::new();
        let gref = t.grant_transfer(DomId(2), Pfn(5), Mfn(0x77)).unwrap();
        let (pfn, mfn) = t.accept_transfer(DomId(2), gref).unwrap();
        assert_eq!(pfn, Pfn(5));
        assert_eq!(mfn, Mfn(0x77));
        // Spent: cannot be accepted twice.
        assert!(matches!(
            t.accept_transfer(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::BadRef(_))
        ));
    }

    #[test]
    fn transfer_grant_cannot_be_mapped() {
        let mut t = GrantTable::new();
        let gref = t.grant_transfer(DomId(2), Pfn(0), Mfn(1)).unwrap();
        assert!(matches!(
            t.map(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::NotGranted)
        ));
    }

    #[test]
    fn access_grant_cannot_be_accepted() {
        let mut t = GrantTable::new();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadWrite)
            .unwrap();
        assert!(matches!(
            t.accept_transfer(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::NotGranted)
        ));
        // The entry survives the failed acceptance.
        assert!(t.entry(gref).is_some());
    }

    #[test]
    fn only_named_grantee_accepts() {
        let mut t = GrantTable::new();
        let gref = t.grant_transfer(DomId(2), Pfn(0), Mfn(1)).unwrap();
        assert!(matches!(
            t.accept_transfer(DomId(3), gref).unwrap_err(),
            HvError::Grant(GrantError::AccessDenied)
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Mapping then unmapping any number of times leaves the table
    /// with zero active mappings, and end_access then succeeds.
    #[test]
    fn map_unmap_balanced() {
        Runner::cases(64).run("map/unmap balanced", |g| {
            let n = g.usize(1..50);
            let mut t = GrantTable::new();
            let gref = t
                .grant(DomId(2), Pfn(0), Mfn(7), GrantAccess::ReadWrite)
                .unwrap();
            for _ in 0..n {
                t.map(DomId(2), gref).unwrap();
            }
            for _ in 0..n {
                t.unmap(DomId(2), gref).unwrap();
            }
            assert_eq!(t.active_mappings(), 0);
            assert!(t.end_access(gref).is_ok());
        });
    }

    /// No sequence of grants ever exceeds the configured capacity.
    #[test]
    fn capacity_invariant() {
        Runner::cases(64).run("capacity invariant", |g| {
            let cap = g.u32(1..64);
            let attempts = g.usize(1..200);
            let mut t = GrantTable::with_capacity(cap);
            let mut ok = 0usize;
            for i in 0..attempts {
                if t.grant(
                    DomId(2),
                    Pfn(i as u64),
                    Mfn(i as u64),
                    GrantAccess::ReadOnly,
                )
                .is_ok()
                {
                    ok += 1;
                }
            }
            assert!(ok as u32 <= cap);
            assert!(t.len() as u32 <= cap);
        });
    }

    /// A grantee other than the one named in the entry can never map it.
    #[test]
    fn only_grantee_maps() {
        Runner::cases(64).run("only the grantee maps", |g| {
            let grantee = g.u32(1..10);
            let caller = g.u32(1..10);
            let mut t = GrantTable::new();
            let gref = t
                .grant(DomId(grantee), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
                .unwrap();
            let res = t.map(DomId(caller), gref);
            if caller == grantee {
                assert!(res.is_ok());
            } else {
                assert!(res.is_err());
            }
        });
    }
}
