//! Grant tables: page-granularity, capability-style memory sharing (§4.3).
//!
//! A domain exports its own pages through its *grant table*, an access
//! control list maintained by the hypervisor. Grant *references* act as
//! capabilities: the granting domain passes a [`GrantRef`] to a peer out of
//! band (normally through XenStore), and the peer's use of it is audited
//! against the table by the hypervisor on every map.
//!
//! Grant tables are the non-privileged alternative to blanket foreign
//! mapping, and the mechanism Xoar uses (§5.6) to deprivilege XenStore and
//! the Console Manager.

use crate::fasthash::FastMap;

use crate::domain::DomId;
use crate::error::{GrantError, HvResult, MemError};
use crate::memory::{Mfn, Pfn};

/// A grant reference: an index into the granting domain's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GrantRef(pub u32);

xoar_codec::impl_json_newtype!(GrantRef(u32));

/// Access mode carried by a grant entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantAccess {
    /// Grantee may only read the page.
    ReadOnly,
    /// Grantee may read and write the page.
    ReadWrite,
    /// Ownership of the page is offered to the grantee (page flipping).
    Transfer,
}

xoar_codec::impl_json_enum!(GrantAccess {
    ReadOnly,
    ReadWrite,
    Transfer,
});

/// Direction of one entry in a batched grant copy (GNTTABOP_copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantCopyDir {
    /// Copy the granted page into the caller's local frame.
    FromGrant,
    /// Copy the caller's local frame into the granted page.
    ToGrant,
}

xoar_codec::impl_json_enum!(GrantCopyDir { FromGrant, ToGrant });

/// One entry of a batched hypervisor-mediated page copy.
///
/// Copies move whole pages (the model is page-granular): `gref` names
/// the remote end in the granter's table, `local_pfn` the caller-local
/// frame on the other side of the copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantCopyOp {
    /// Grant reference in the granting domain's table.
    pub gref: GrantRef,
    /// Which way the bytes flow.
    pub dir: GrantCopyDir,
    /// The caller's local frame.
    pub local_pfn: Pfn,
}

xoar_codec::impl_json_struct!(GrantCopyOp {
    gref,
    dir,
    local_pfn,
});

/// Compact per-entry status of one op in a grant batch, the analogue of
/// Xen's `GNTST_*` codes in GNTTABOP result arrays. Deliberately flat
/// and `Copy` (no strings, no heap): a 32-entry batch materialises its
/// status array for a few nanoseconds per entry, which is the whole
/// point of batching the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOpStatus {
    /// The op succeeded; the machine frame it resolved to.
    Done(Mfn),
    /// Grant-table fault (bad ref, wrong grantee, access mode…).
    Grant(GrantError),
    /// Memory fault (bad local frame in a copy, out of frames…).
    Memory(MemError),
}

impl GrantOpStatus {
    /// Whether the entry succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, GrantOpStatus::Done(_))
    }

    /// The resolved frame of a successful entry.
    pub fn mfn(&self) -> Option<Mfn> {
        match self {
            GrantOpStatus::Done(mfn) => Some(*mfn),
            _ => None,
        }
    }
}

/// One entry in a grant table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantEntry {
    /// The domain allowed to map this entry.
    pub grantee: DomId,
    /// The granting domain's frame, both as PFN and resolved MFN.
    pub pfn: Pfn,
    /// Resolved machine frame at grant time.
    pub mfn: Mfn,
    /// Permitted access mode.
    pub access: GrantAccess,
    /// Number of active mappings through this entry.
    pub map_count: u32,
}

/// How many grant refs are indexed inline per grantee before spilling
/// to the heap. A backend typically holds one or two refs into any
/// given frontend (its ring pages), so the common posture — including
/// every snapshot-fork clone's stamped table — allocates nothing.
const GREF_INLINE: usize = 2;

/// Inline-first list of sorted grant refs (a hand-rolled smallvec; refs
/// are allocated monotonically and pushed in order, so the slice stays
/// sorted by construction).
#[derive(Debug, Clone)]
enum GrefList {
    Inline { len: u8, slots: [u32; GREF_INLINE] },
    Heap(Vec<u32>),
}

impl Default for GrefList {
    fn default() -> Self {
        GrefList::Inline {
            len: 0,
            slots: [0; GREF_INLINE],
        }
    }
}

impl GrefList {
    fn push(&mut self, r: u32) {
        match self {
            GrefList::Inline { len, slots } => {
                if (*len as usize) < GREF_INLINE {
                    slots[*len as usize] = r;
                    *len += 1;
                } else {
                    let mut v = slots.to_vec();
                    v.push(r);
                    *self = GrefList::Heap(v);
                }
            }
            GrefList::Heap(v) => v.push(r),
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            GrefList::Inline { len, slots } => &slots[..*len as usize],
            GrefList::Heap(v) => v,
        }
    }

    /// Removes `r` if present, preserving sorted order.
    fn remove(&mut self, r: u32) {
        match self {
            GrefList::Inline { len, slots } => {
                let n = *len as usize;
                if let Ok(i) = slots[..n].binary_search(&r) {
                    for j in i..n - 1 {
                        slots[j] = slots[j + 1];
                    }
                    *len -= 1;
                }
            }
            GrefList::Heap(v) => {
                if let Ok(i) = v.binary_search(&r) {
                    v.remove(i);
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

/// A single domain's grant table.
///
/// Entries live in a dense array indexed by grant ref, exactly like
/// Xen's grant-table frames: refs are allocated monotonically, so
/// `entries[r]` is the entry for ref `r` (`None` once revoked). The
/// batched map/unmap path indexes this array once per op with no
/// hashing.
#[derive(Debug, Default)]
pub struct GrantTable {
    entries: Vec<Option<GrantEntry>>,
    /// Number of live (non-`None`) entries; bounded by `capacity`.
    live: u32,
    /// Secondary index: grantee → sorted refs of live entries naming it.
    /// Maintained by grant/transfer/revoke so [`GrantTable::granted_to`]
    /// (the per-backend audit query) never scans the whole table.
    by_grantee: FastMap<DomId, GrefList>,
    next_ref: u32,
    capacity: u32,
}

/// Default maximum number of grant entries per domain (matches Xen's
/// default of 32 frames of 512 v1 entries = 16384, scaled down for the
/// model).
pub const DEFAULT_GRANT_CAPACITY: u32 = 4096;

impl GrantTable {
    /// Creates an empty table with the default capacity.
    pub fn new() -> Self {
        GrantTable {
            // Sized for the common device posture (xenstore + console
            // rings plus one vif and one vbd) so a freshly stamped
            // guest's grants never grow the vector.
            entries: Vec::with_capacity(4),
            live: 0,
            by_grantee: FastMap::default(),
            next_ref: 0,
            capacity: DEFAULT_GRANT_CAPACITY,
        }
    }

    /// Creates a table with an explicit capacity (tests, quota experiments).
    pub fn with_capacity(capacity: u32) -> Self {
        GrantTable {
            entries: Vec::new(),
            live: 0,
            by_grantee: FastMap::default(),
            next_ref: 0,
            capacity,
        }
    }

    #[inline]
    fn slot(&self, gref: GrantRef) -> HvResult<&GrantEntry> {
        self.entries
            .get(gref.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| GrantError::BadRef(gref.0).into())
    }

    /// Installs a new entry granting `grantee` access to (`pfn`, `mfn`).
    pub fn grant(
        &mut self,
        grantee: DomId,
        pfn: Pfn,
        mfn: Mfn,
        access: GrantAccess,
    ) -> HvResult<GrantRef> {
        if self.live >= self.capacity {
            return Err(GrantError::TableFull.into());
        }
        let gref = GrantRef(self.next_ref);
        self.next_ref += 1;
        debug_assert_eq!(gref.0 as usize, self.entries.len());
        self.entries.push(Some(GrantEntry {
            grantee,
            pfn,
            mfn,
            access,
            map_count: 0,
        }));
        self.live += 1;
        self.index_add(grantee, gref.0);
        Ok(gref)
    }

    /// Validates a map attempt by `caller` and records the mapping.
    ///
    /// This is the audit point the paper describes: "grant references act
    /// as capabilities and are passed to other VMs, whose use of them is
    /// audited against the grant table by the hypervisor".
    pub fn map(&mut self, caller: DomId, gref: GrantRef) -> HvResult<(Mfn, GrantAccess)> {
        self.map_compact(caller, gref).map_err(Into::into)
    }

    /// [`Self::map`] with a compact error — the batched path's per-entry
    /// core, which never materialises an [`crate::error::HvError`].
    #[inline]
    pub(crate) fn map_compact(
        &mut self,
        caller: DomId,
        gref: GrantRef,
    ) -> Result<(Mfn, GrantAccess), GrantError> {
        let entry = self
            .entries
            .get_mut(gref.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(GrantError::BadRef(gref.0))?;
        if entry.grantee != caller {
            return Err(GrantError::AccessDenied);
        }
        if entry.access == GrantAccess::Transfer {
            // Transfer grants are accepted, not mapped.
            return Err(GrantError::NotGranted);
        }
        entry.map_count += 1;
        Ok((entry.mfn, entry.access))
    }

    /// Releases one mapping by `caller`.
    pub fn unmap(&mut self, caller: DomId, gref: GrantRef) -> HvResult<Mfn> {
        self.unmap_compact(caller, gref).map_err(Into::into)
    }

    /// [`Self::unmap`] with a compact error (batched path core).
    #[inline]
    pub(crate) fn unmap_compact(
        &mut self,
        caller: DomId,
        gref: GrantRef,
    ) -> Result<Mfn, GrantError> {
        let entry = self
            .entries
            .get_mut(gref.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(GrantError::BadRef(gref.0))?;
        if entry.grantee != caller {
            return Err(GrantError::AccessDenied);
        }
        if entry.map_count == 0 {
            return Err(GrantError::NotMapped);
        }
        entry.map_count -= 1;
        Ok(entry.mfn)
    }

    /// Batched [`GrantTable::map`] (GNTTABOP-style): validates and
    /// applies an array of map attempts by `caller` against this one
    /// table, producing a per-entry status vector. A bad entry never
    /// aborts the batch — Xen semantics — and the caller amortises the
    /// per-domain-pair table lookup across the whole array.
    pub fn grant_map_batch(&mut self, caller: DomId, refs: &[GrantRef]) -> Vec<GrantOpStatus> {
        refs.iter()
            .map(|&gref| match self.map_compact(caller, gref) {
                Ok((mfn, _access)) => GrantOpStatus::Done(mfn),
                Err(e) => GrantOpStatus::Grant(e),
            })
            .collect()
    }

    /// Batched [`GrantTable::unmap`], mirroring [`Self::grant_map_batch`].
    pub fn grant_unmap_batch(&mut self, caller: DomId, refs: &[GrantRef]) -> Vec<GrantOpStatus> {
        refs.iter()
            .map(|&gref| match self.unmap_compact(caller, gref) {
                Ok(mfn) => GrantOpStatus::Done(mfn),
                Err(e) => GrantOpStatus::Grant(e),
            })
            .collect()
    }

    /// Batched GNTTABOP_copy validation: audits each op against the
    /// table (right grantee, not a transfer entry, writable for
    /// [`GrantCopyDir::ToGrant`]) and resolves the granted frame. The
    /// byte copy itself is the hypervisor's job — it owns machine
    /// memory — so this returns the resolved `(Mfn, op)` pairs.
    /// Copies leave no mapping behind: `map_count` is untouched.
    pub fn grant_copy_batch(
        &mut self,
        caller: DomId,
        ops: &[GrantCopyOp],
    ) -> Vec<Result<(Mfn, GrantCopyOp), GrantError>> {
        ops.iter()
            .map(|&op| {
                let entry = self
                    .entries
                    .get(op.gref.0 as usize)
                    .and_then(|s| s.as_ref())
                    .ok_or(GrantError::BadRef(op.gref.0))?;
                if entry.grantee != caller {
                    return Err(GrantError::AccessDenied);
                }
                match (entry.access, op.dir) {
                    (GrantAccess::Transfer, _) => Err(GrantError::NotGranted),
                    (GrantAccess::ReadOnly, GrantCopyDir::ToGrant) => Err(GrantError::AccessDenied),
                    _ => Ok((entry.mfn, op)),
                }
            })
            .collect()
    }

    /// Installs a *transfer* grant: an offer to give the page away
    /// entirely rather than share it (the mechanism behind classic
    /// netfront/netback page-flipping). The grantee accepts with
    /// [`GrantTable::accept_transfer`], after which the entry is spent.
    pub fn grant_transfer(&mut self, grantee: DomId, pfn: Pfn, mfn: Mfn) -> HvResult<GrantRef> {
        if self.live >= self.capacity {
            return Err(GrantError::TableFull.into());
        }
        let gref = GrantRef(self.next_ref);
        self.next_ref += 1;
        debug_assert_eq!(gref.0 as usize, self.entries.len());
        self.entries.push(Some(GrantEntry {
            grantee,
            pfn,
            mfn,
            access: GrantAccess::Transfer,
            map_count: 0,
        }));
        self.live += 1;
        self.index_add(grantee, gref.0);
        Ok(gref)
    }

    /// Accepts a transfer grant, consuming the entry and yielding the
    /// transferred frame. The caller (the hypervisor) is responsible for
    /// re-pointing page ownership.
    pub fn accept_transfer(&mut self, caller: DomId, gref: GrantRef) -> HvResult<(Pfn, Mfn)> {
        let entry = self.slot(gref)?;
        if entry.grantee != caller {
            return Err(GrantError::AccessDenied.into());
        }
        if entry.access != GrantAccess::Transfer {
            return Err(GrantError::NotGranted.into());
        }
        let entry = self.entries[gref.0 as usize]
            .take()
            .ok_or(GrantError::BadRef(gref.0))?;
        self.live -= 1;
        self.index_remove(entry.grantee, gref.0);
        Ok((entry.pfn, entry.mfn))
    }

    /// Revokes an entry. Fails with [`GrantError::InUse`] while mapped.
    pub fn end_access(&mut self, gref: GrantRef) -> HvResult<()> {
        let entry = self.slot(gref)?;
        if entry.map_count > 0 {
            return Err(GrantError::InUse.into());
        }
        let grantee = entry.grantee;
        self.entries[gref.0 as usize] = None;
        self.live -= 1;
        self.index_remove(grantee, gref.0);
        Ok(())
    }

    /// Looks up an entry without mapping it.
    pub fn entry(&self, gref: GrantRef) -> Option<&GrantEntry> {
        self.entries.get(gref.0 as usize).and_then(|s| s.as_ref())
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total active mappings across all entries.
    pub fn active_mappings(&self) -> u32 {
        self.entries.iter().flatten().map(|e| e.map_count).sum()
    }

    /// All live entries in ascending ref order (audit/analysis surface;
    /// the dense array is already in ref order).
    pub fn entries_sorted(&self) -> Vec<(GrantRef, &GrantEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(r, s)| s.as_ref().map(|e| (GrantRef(r as u32), e)))
            .collect()
    }

    /// Entries granted to a specific domain (for audit). Served from the
    /// per-grantee index in O(entries for that grantee); refs come out
    /// ascending because grants are issued with monotonically increasing
    /// refs and removals preserve order.
    pub fn granted_to(&self, grantee: DomId) -> Vec<(GrantRef, &GrantEntry)> {
        let Some(refs) = self.by_grantee.get(&grantee) else {
            return Vec::new();
        };
        refs.as_slice()
            .iter()
            .filter_map(|&r| {
                self.entries
                    .get(r as usize)
                    .and_then(|s| s.as_ref())
                    .map(|e| (GrantRef(r), e))
            })
            .collect()
    }

    fn index_add(&mut self, grantee: DomId, r: u32) {
        self.by_grantee.entry(grantee).or_default().push(r);
    }

    fn index_remove(&mut self, grantee: DomId, r: u32) {
        if let Some(refs) = self.by_grantee.get_mut(&grantee) {
            refs.remove(r);
            if refs.is_empty() {
                self.by_grantee.remove(&grantee);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HvError;

    fn table() -> GrantTable {
        GrantTable::new()
    }

    #[test]
    fn grant_and_map_round_trip() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(3), Mfn(0x100), GrantAccess::ReadWrite)
            .unwrap();
        let (mfn, access) = t.map(DomId(2), gref).unwrap();
        assert_eq!(mfn, Mfn(0x100));
        assert_eq!(access, GrantAccess::ReadWrite);
        assert_eq!(t.active_mappings(), 1);
    }

    #[test]
    fn map_by_wrong_domain_denied() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(0x100), GrantAccess::ReadOnly)
            .unwrap();
        let err = t.map(DomId(3), gref).unwrap_err();
        assert!(matches!(err, HvError::Grant(GrantError::AccessDenied)));
    }

    #[test]
    fn map_bad_ref_rejected() {
        let mut t = table();
        assert!(matches!(
            t.map(DomId(2), GrantRef(42)).unwrap_err(),
            HvError::Grant(GrantError::BadRef(42))
        ));
    }

    #[test]
    fn unmap_decrements_and_requires_mapping() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(0x1), GrantAccess::ReadOnly)
            .unwrap();
        assert!(matches!(
            t.unmap(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::NotMapped)
        ));
        t.map(DomId(2), gref).unwrap();
        t.unmap(DomId(2), gref).unwrap();
        assert_eq!(t.active_mappings(), 0);
    }

    #[test]
    fn end_access_blocked_while_mapped() {
        let mut t = table();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(0x1), GrantAccess::ReadWrite)
            .unwrap();
        t.map(DomId(2), gref).unwrap();
        assert!(matches!(
            t.end_access(gref).unwrap_err(),
            HvError::Grant(GrantError::InUse)
        ));
        t.unmap(DomId(2), gref).unwrap();
        t.end_access(gref).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut t = GrantTable::with_capacity(2);
        t.grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        t.grant(DomId(2), Pfn(1), Mfn(2), GrantAccess::ReadOnly)
            .unwrap();
        assert!(matches!(
            t.grant(DomId(2), Pfn(2), Mfn(3), GrantAccess::ReadOnly)
                .unwrap_err(),
            HvError::Grant(GrantError::TableFull)
        ));
    }

    #[test]
    fn refs_are_not_reused() {
        let mut t = table();
        let a = t
            .grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        t.end_access(a).unwrap();
        let b = t
            .grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        assert_ne!(a, b, "grant refs must not be recycled immediately");
    }

    #[test]
    fn grantee_index_stays_consistent_under_revocation() {
        let mut t = table();
        // Interleave grants to three grantees with transfers.
        let mut refs = Vec::new();
        for i in 0..30u64 {
            let grantee = DomId(2 + (i % 3) as u32);
            let gref = if i % 5 == 4 {
                t.grant_transfer(grantee, Pfn(i), Mfn(i)).unwrap()
            } else {
                t.grant(grantee, Pfn(i), Mfn(i), GrantAccess::ReadOnly)
                    .unwrap()
            };
            refs.push((grantee, gref));
        }
        // Revoke every other access grant and accept every transfer.
        for (grantee, gref) in &refs {
            match t.entry(*gref).map(|e| e.access) {
                Some(GrantAccess::Transfer) => {
                    t.accept_transfer(*grantee, *gref).unwrap();
                }
                Some(_) if gref.0 % 2 == 0 => t.end_access(*gref).unwrap(),
                _ => {}
            }
        }
        // The index answer must equal a linear scan, for every grantee,
        // in ascending ref order.
        for d in [DomId(2), DomId(3), DomId(4), DomId(9)] {
            let via_index: Vec<u32> = t.granted_to(d).iter().map(|(r, _)| r.0).collect();
            let mut via_scan: Vec<u32> = refs
                .iter()
                .filter(|(g, r)| *g == d && t.entry(*r).is_some())
                .map(|(_, r)| r.0)
                .collect();
            via_scan.sort_unstable();
            assert_eq!(via_index, via_scan, "index diverged for {d:?}");
        }
    }

    #[test]
    fn map_batch_reports_per_entry_status() {
        let mut t = table();
        let good = t
            .grant(DomId(2), Pfn(0), Mfn(0x10), GrantAccess::ReadWrite)
            .unwrap();
        let foreign = t
            .grant(DomId(3), Pfn(1), Mfn(0x11), GrantAccess::ReadWrite)
            .unwrap();
        let results = t.grant_map_batch(DomId(2), &[good, foreign, GrantRef(99)]);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], GrantOpStatus::Done(Mfn(0x10)));
        assert_eq!(results[1], GrantOpStatus::Grant(GrantError::AccessDenied));
        assert_eq!(results[2], GrantOpStatus::Grant(GrantError::BadRef(99)));
        // The bad entries did not abort the good one.
        assert_eq!(t.active_mappings(), 1);
        let un = t.grant_unmap_batch(DomId(2), &[good, foreign]);
        assert_eq!(un[0], GrantOpStatus::Done(Mfn(0x10)));
        assert!(!un[1].is_ok());
        assert_eq!(t.active_mappings(), 0);
    }

    #[test]
    fn copy_batch_validates_direction_against_access() {
        let mut t = table();
        let ro = t
            .grant(DomId(2), Pfn(0), Mfn(0x20), GrantAccess::ReadOnly)
            .unwrap();
        let rw = t
            .grant(DomId(2), Pfn(1), Mfn(0x21), GrantAccess::ReadWrite)
            .unwrap();
        let xfer = t.grant_transfer(DomId(2), Pfn(2), Mfn(0x22)).unwrap();
        let op = |gref, dir| GrantCopyOp {
            gref,
            dir,
            local_pfn: Pfn(9),
        };
        let results = t.grant_copy_batch(
            DomId(2),
            &[
                op(ro, GrantCopyDir::FromGrant),
                op(ro, GrantCopyDir::ToGrant),
                op(rw, GrantCopyDir::ToGrant),
                op(xfer, GrantCopyDir::FromGrant),
            ],
        );
        assert!(matches!(results[0], Ok((Mfn(0x20), _))));
        assert_eq!(results[1], Err(GrantError::AccessDenied));
        assert!(matches!(results[2], Ok((Mfn(0x21), _))));
        assert_eq!(results[3], Err(GrantError::NotGranted));
        // Copies leave no mappings behind.
        assert_eq!(t.active_mappings(), 0);
    }

    #[test]
    fn granted_to_filters_by_grantee() {
        let mut t = table();
        t.grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
            .unwrap();
        t.grant(DomId(3), Pfn(1), Mfn(2), GrantAccess::ReadOnly)
            .unwrap();
        t.grant(DomId(2), Pfn(2), Mfn(3), GrantAccess::ReadWrite)
            .unwrap();
        assert_eq!(t.granted_to(DomId(2)).len(), 2);
        assert_eq!(t.granted_to(DomId(3)).len(), 1);
        assert_eq!(t.granted_to(DomId(4)).len(), 0);
    }
}

#[cfg(test)]
mod transfer_tests {
    use super::*;
    use crate::error::HvError;

    #[test]
    fn transfer_round_trip() {
        let mut t = GrantTable::new();
        let gref = t.grant_transfer(DomId(2), Pfn(5), Mfn(0x77)).unwrap();
        let (pfn, mfn) = t.accept_transfer(DomId(2), gref).unwrap();
        assert_eq!(pfn, Pfn(5));
        assert_eq!(mfn, Mfn(0x77));
        // Spent: cannot be accepted twice.
        assert!(matches!(
            t.accept_transfer(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::BadRef(_))
        ));
    }

    #[test]
    fn transfer_grant_cannot_be_mapped() {
        let mut t = GrantTable::new();
        let gref = t.grant_transfer(DomId(2), Pfn(0), Mfn(1)).unwrap();
        assert!(matches!(
            t.map(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::NotGranted)
        ));
    }

    #[test]
    fn access_grant_cannot_be_accepted() {
        let mut t = GrantTable::new();
        let gref = t
            .grant(DomId(2), Pfn(0), Mfn(1), GrantAccess::ReadWrite)
            .unwrap();
        assert!(matches!(
            t.accept_transfer(DomId(2), gref).unwrap_err(),
            HvError::Grant(GrantError::NotGranted)
        ));
        // The entry survives the failed acceptance.
        assert!(t.entry(gref).is_some());
    }

    #[test]
    fn only_named_grantee_accepts() {
        let mut t = GrantTable::new();
        let gref = t.grant_transfer(DomId(2), Pfn(0), Mfn(1)).unwrap();
        assert!(matches!(
            t.accept_transfer(DomId(3), gref).unwrap_err(),
            HvError::Grant(GrantError::AccessDenied)
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Mapping then unmapping any number of times leaves the table
    /// with zero active mappings, and end_access then succeeds.
    #[test]
    fn map_unmap_balanced() {
        Runner::cases(64).run("map/unmap balanced", |g| {
            let n = g.usize(1..50);
            let mut t = GrantTable::new();
            let gref = t
                .grant(DomId(2), Pfn(0), Mfn(7), GrantAccess::ReadWrite)
                .unwrap();
            for _ in 0..n {
                t.map(DomId(2), gref).unwrap();
            }
            for _ in 0..n {
                t.unmap(DomId(2), gref).unwrap();
            }
            assert_eq!(t.active_mappings(), 0);
            assert!(t.end_access(gref).is_ok());
        });
    }

    /// No sequence of grants ever exceeds the configured capacity.
    #[test]
    fn capacity_invariant() {
        Runner::cases(64).run("capacity invariant", |g| {
            let cap = g.u32(1..64);
            let attempts = g.usize(1..200);
            let mut t = GrantTable::with_capacity(cap);
            let mut ok = 0usize;
            for i in 0..attempts {
                if t.grant(
                    DomId(2),
                    Pfn(i as u64),
                    Mfn(i as u64),
                    GrantAccess::ReadOnly,
                )
                .is_ok()
                {
                    ok += 1;
                }
            }
            assert!(ok as u32 <= cap);
            assert!(t.len() as u32 <= cap);
        });
    }

    /// A grantee other than the one named in the entry can never map it.
    #[test]
    fn only_grantee_maps() {
        Runner::cases(64).run("only the grantee maps", |g| {
            let grantee = g.u32(1..10);
            let caller = g.u32(1..10);
            let mut t = GrantTable::new();
            let gref = t
                .grant(DomId(grantee), Pfn(0), Mfn(1), GrantAccess::ReadOnly)
                .unwrap();
            let res = t.map(DomId(caller), gref);
            if caller == grantee {
                assert!(res.is_ok());
            } else {
                assert!(res.is_err());
            }
        });
    }
}
