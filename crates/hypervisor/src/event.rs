//! Event channels: data-free signalling between VMs and from the
//! hypervisor (§4.2).
//!
//! Two flavours exist:
//!
//! * **VIRQs** — uni-directional upcalls from the hypervisor used for
//!   virtualized interrupt delivery (timer, console, debug);
//! * **interdomain channels** — bi-directional notification pairs used
//!   between the two halves of split drivers and for XenStore wakeups.
//!
//! An interdomain channel is established with the classic Xen handshake:
//! side A allocates an *unbound* port naming B as the permitted remote,
//! passes the port number out of band, and B binds its own port to it.

use std::collections::{HashMap, VecDeque};

use crate::domain::DomId;
use crate::error::{EventError, HvResult};

/// Kinds of virtual IRQ the hypervisor can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VirqKind {
    /// Periodic timer tick.
    Timer,
    /// Console input available (Xen serial console, §5.5).
    Console,
    /// Debug/diagnostic interrupt.
    Debug,
    /// A domain has been destroyed (toolstack wakeups).
    DomExc,
}

xoar_codec::impl_json_enum!(VirqKind {
    Timer,
    Console,
    Debug,
    DomExc,
});

/// State of one port in a domain's event-channel table.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PortState {
    /// Allocated, waiting for `remote` to bind.
    Unbound {
        /// Domain permitted to bind the other end.
        remote: DomId,
    },
    /// Connected to (`remote`, `remote_port`).
    Interdomain {
        /// Peer domain.
        remote: DomId,
        /// Peer's port number.
        remote_port: u32,
    },
    /// Bound to a virtual IRQ.
    Virq(VirqKind),
}

/// A pending notification delivered to a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEvent {
    /// Local port that fired.
    pub port: u32,
}

#[derive(Debug, Default)]
struct DomainPorts {
    ports: HashMap<u32, PortState>,
    next_port: u32,
    pending: VecDeque<PendingEvent>,
    masked: bool,
}

/// Per-domain limit on event-channel ports (Xen's default for PV guests is
/// 1024 with the 2-level ABI).
pub const MAX_PORTS_PER_DOMAIN: u32 = 1024;

/// The system-wide event-channel switch.
#[derive(Debug, Default)]
pub struct EventChannels {
    domains: HashMap<DomId, DomainPorts>,
    /// Count of notifications delivered, for the evaluation harness.
    delivered: u64,
}

impl EventChannels {
    /// Creates an empty switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a domain (idempotent).
    pub fn register_domain(&mut self, dom: DomId) {
        self.domains.entry(dom).or_default();
    }

    /// Removes a domain, reclaiming all its ports and the peers' ends of
    /// its interdomain channels.
    pub fn remove_domain(&mut self, dom: DomId) {
        let Some(ports) = self.domains.remove(&dom) else {
            return;
        };
        let peers: Vec<(DomId, u32)> = ports
            .ports
            .values()
            .filter_map(|s| match s {
                PortState::Interdomain {
                    remote,
                    remote_port,
                } => Some((*remote, *remote_port)),
                _ => None,
            })
            .collect();
        // The peers' half-open ports are reclaimed immediately (as when a
        // real backend observes the frontend's death and closes its end).
        for (peer, pport) in peers {
            if let Some(pd) = self.domains.get_mut(&peer) {
                pd.ports.remove(&pport);
            }
        }
    }

    fn dom_mut(&mut self, dom: DomId) -> HvResult<&mut DomainPorts> {
        self.domains
            .get_mut(&dom)
            .ok_or_else(|| EventError::BadRemote.into())
    }

    fn alloc_port(dp: &mut DomainPorts) -> HvResult<u32> {
        if dp.ports.len() as u32 >= MAX_PORTS_PER_DOMAIN {
            return Err(EventError::NoFreePorts.into());
        }
        let p = dp.next_port;
        dp.next_port += 1;
        Ok(p)
    }

    /// Allocates an unbound port on `owner`, bindable only by `remote`.
    pub fn alloc_unbound(&mut self, owner: DomId, remote: DomId) -> HvResult<u32> {
        let dp = self.dom_mut(owner)?;
        let port = Self::alloc_port(dp)?;
        dp.ports.insert(port, PortState::Unbound { remote });
        Ok(port)
    }

    /// Binds `binder`'s new local port to (`remote`, `remote_port`).
    ///
    /// Succeeds only if the remote port is unbound and names `binder` as
    /// the permitted remote — the access-control core of the mechanism.
    pub fn bind_interdomain(
        &mut self,
        binder: DomId,
        remote: DomId,
        remote_port: u32,
    ) -> HvResult<u32> {
        // Validate the remote side first.
        {
            let rd = self.domains.get(&remote).ok_or(EventError::BadRemote)?;
            match rd.ports.get(&remote_port) {
                Some(PortState::Unbound { remote: permitted }) if *permitted == binder => {}
                Some(PortState::Unbound { .. }) => return Err(EventError::BindMismatch.into()),
                Some(_) => return Err(EventError::AlreadyBound(remote_port).into()),
                None => return Err(EventError::BadPort(remote_port).into()),
            }
        }
        let local_port = {
            let bd = self.dom_mut(binder)?;
            let p = Self::alloc_port(bd)?;
            bd.ports.insert(
                p,
                PortState::Interdomain {
                    remote,
                    remote_port,
                },
            );
            p
        };
        // Complete the remote side.
        let rd = self.dom_mut(remote)?;
        rd.ports.insert(
            remote_port,
            PortState::Interdomain {
                remote: binder,
                remote_port: local_port,
            },
        );
        Ok(local_port)
    }

    /// Binds a VIRQ to a fresh local port on `dom`.
    pub fn bind_virq(&mut self, dom: DomId, virq: VirqKind) -> HvResult<u32> {
        let dp = self.dom_mut(dom)?;
        if dp
            .ports
            .values()
            .any(|s| matches!(s, PortState::Virq(v) if *v == virq))
        {
            return Err(EventError::AlreadyBound(0).into());
        }
        let port = Self::alloc_port(dp)?;
        dp.ports.insert(port, PortState::Virq(virq));
        Ok(port)
    }

    /// Sends a notification through `port` of `sender`.
    ///
    /// For interdomain ports the peer's port is marked pending; the data-
    /// free nature of channels means delivery is just an enqueue.
    pub fn send(&mut self, sender: DomId, port: u32) -> HvResult<()> {
        let (remote, remote_port) = {
            let dp = self.domains.get(&sender).ok_or(EventError::BadRemote)?;
            match dp.ports.get(&port) {
                Some(PortState::Interdomain {
                    remote,
                    remote_port,
                }) => (*remote, *remote_port),
                Some(PortState::Virq(_)) | Some(PortState::Unbound { .. }) => {
                    return Err(EventError::BadPort(port).into())
                }
                _ => return Err(EventError::BadPort(port).into()),
            }
        };
        if let Some(rd) = self.domains.get_mut(&remote) {
            if !rd.masked {
                rd.pending.push_back(PendingEvent { port: remote_port });
                self.delivered += 1;
            }
        }
        Ok(())
    }

    /// Hypervisor-side: raise a VIRQ on `dom` if bound.
    pub fn raise_virq(&mut self, dom: DomId, virq: VirqKind) -> bool {
        let Some(dp) = self.domains.get_mut(&dom) else {
            return false;
        };
        let port = dp.ports.iter().find_map(|(&p, s)| match s {
            PortState::Virq(v) if *v == virq => Some(p),
            _ => None,
        });
        match port {
            Some(p) if !dp.masked => {
                dp.pending.push_back(PendingEvent { port: p });
                self.delivered += 1;
                true
            }
            _ => false,
        }
    }

    /// Dequeues the next pending event for `dom`.
    pub fn poll(&mut self, dom: DomId) -> Option<PendingEvent> {
        self.domains.get_mut(&dom)?.pending.pop_front()
    }

    /// Number of queued events for `dom`.
    pub fn pending_count(&self, dom: DomId) -> usize {
        self.domains.get(&dom).map_or(0, |d| d.pending.len())
    }

    /// Masks or unmasks event delivery for `dom`.
    pub fn set_masked(&mut self, dom: DomId, masked: bool) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.masked = masked;
        }
    }

    /// Closes `port` on `dom`, reclaiming it; the peer's end (if any) is
    /// reclaimed too. Port *numbers* are never reused — freshness of
    /// numbers keeps stale rendezvous data in XenStore harmless — but the
    /// table slots count against [`MAX_PORTS_PER_DOMAIN`] only while
    /// open, so long-lived backends do not leak capacity across guest
    /// churn.
    pub fn close(&mut self, dom: DomId, port: u32) -> HvResult<()> {
        let peer = {
            let dp = self.dom_mut(dom)?;
            let state = dp.ports.remove(&port).ok_or(EventError::BadPort(port))?;
            match state {
                PortState::Interdomain {
                    remote,
                    remote_port,
                } => Some((remote, remote_port)),
                _ => None,
            }
        };
        if let Some((peer, pport)) = peer {
            if let Some(pd) = self.domains.get_mut(&peer) {
                pd.ports.remove(&pport);
            }
        }
        Ok(())
    }

    /// Whether `port` on `dom` is connected to a live peer.
    pub fn is_connected(&self, dom: DomId, port: u32) -> bool {
        matches!(
            self.domains.get(&dom).and_then(|d| d.ports.get(&port)),
            Some(PortState::Interdomain { .. })
        )
    }

    /// Total notifications delivered (evaluation counter).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// The interdomain peers of `dom` (for the audit dependency graph).
    pub fn peers_of(&self, dom: DomId) -> Vec<DomId> {
        let Some(dp) = self.domains.get(&dom) else {
            return Vec::new();
        };
        let mut peers: Vec<DomId> = dp
            .ports
            .values()
            .filter_map(|s| match s {
                PortState::Interdomain { remote, .. } => Some(*remote),
                _ => None,
            })
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HvError;

    fn two_domains() -> (EventChannels, DomId, DomId) {
        let mut ev = EventChannels::new();
        let a = DomId(1);
        let b = DomId(2);
        ev.register_domain(a);
        ev.register_domain(b);
        (ev, a, b)
    }

    #[test]
    fn handshake_connects_both_ends() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        assert!(ev.is_connected(a, pa));
        assert!(ev.is_connected(b, pb));
        assert_eq!(ev.peers_of(a), vec![b]);
    }

    #[test]
    fn bind_by_wrong_domain_rejected() {
        let (mut ev, a, b) = two_domains();
        let c = DomId(3);
        ev.register_domain(c);
        let pa = ev.alloc_unbound(a, b).unwrap();
        let err = ev.bind_interdomain(c, a, pa).unwrap_err();
        assert!(matches!(err, HvError::Event(EventError::BindMismatch)));
    }

    #[test]
    fn bind_to_bound_port_rejected() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        ev.bind_interdomain(b, a, pa).unwrap();
        let err = ev.bind_interdomain(b, a, pa).unwrap_err();
        assert!(matches!(err, HvError::Event(EventError::AlreadyBound(_))));
    }

    #[test]
    fn send_delivers_to_peer_port() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.send(a, pa).unwrap();
        let got = ev.poll(b).unwrap();
        assert_eq!(got.port, pb);
        assert!(ev.poll(b).is_none());
        // And in the other direction.
        ev.send(b, pb).unwrap();
        assert_eq!(ev.poll(a).unwrap().port, pa);
        assert_eq!(ev.delivered_count(), 2);
    }

    #[test]
    fn send_on_unbound_port_fails() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        assert!(ev.send(a, pa).is_err());
    }

    #[test]
    fn masked_domain_drops_events() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        ev.bind_interdomain(b, a, pa).unwrap();
        ev.set_masked(b, true);
        ev.send(a, pa).unwrap();
        assert_eq!(ev.pending_count(b), 0);
        ev.set_masked(b, false);
        ev.send(a, pa).unwrap();
        assert_eq!(ev.pending_count(b), 1);
    }

    #[test]
    fn virq_bind_and_raise() {
        let (mut ev, a, _) = two_domains();
        let p = ev.bind_virq(a, VirqKind::Console).unwrap();
        assert!(ev.raise_virq(a, VirqKind::Console));
        assert_eq!(ev.poll(a).unwrap().port, p);
        assert!(
            !ev.raise_virq(a, VirqKind::Timer),
            "unbound VIRQ not delivered"
        );
    }

    #[test]
    fn duplicate_virq_bind_rejected() {
        let (mut ev, a, _) = two_domains();
        ev.bind_virq(a, VirqKind::Timer).unwrap();
        assert!(ev.bind_virq(a, VirqKind::Timer).is_err());
    }

    #[test]
    fn close_propagates_to_peer() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.close(a, pa).unwrap();
        assert!(!ev.is_connected(a, pa));
        assert!(!ev.is_connected(b, pb));
        assert!(ev.send(b, pb).is_err());
    }

    #[test]
    fn remove_domain_breaks_channels() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.remove_domain(a);
        assert!(!ev.is_connected(b, pb));
        assert!(ev.send(b, pb).is_err());
    }

    #[test]
    fn port_limit_enforced() {
        let mut ev = EventChannels::new();
        let a = DomId(1);
        ev.register_domain(a);
        ev.register_domain(DomId(2));
        for _ in 0..MAX_PORTS_PER_DOMAIN {
            ev.alloc_unbound(a, DomId(2)).unwrap();
        }
        assert!(matches!(
            ev.alloc_unbound(a, DomId(2)).unwrap_err(),
            HvError::Event(EventError::NoFreePorts)
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Every event sent while unmasked is delivered exactly once, in
    /// FIFO order.
    #[test]
    fn delivery_is_exactly_once() {
        Runner::cases(64).run("delivery is exactly once", |g| {
            let n = g.usize(1..100);
            let mut ev = EventChannels::new();
            let (a, b) = (DomId(1), DomId(2));
            ev.register_domain(a);
            ev.register_domain(b);
            let pa = ev.alloc_unbound(a, b).unwrap();
            let pb = ev.bind_interdomain(b, a, pa).unwrap();
            for _ in 0..n {
                ev.send(a, pa).unwrap();
            }
            let mut received = 0;
            while let Some(e) = ev.poll(b) {
                assert_eq!(e.port, pb);
                received += 1;
            }
            assert_eq!(received, n);
        });
    }

    /// The handshake is symmetric: after binding, both sides report
    /// each other as peers.
    #[test]
    fn handshake_symmetry() {
        Runner::cases(64).run("handshake symmetry", |g| {
            let a_id = g.u32(1..50);
            let b_id = g.u32(51..100);
            let mut ev = EventChannels::new();
            let (a, b) = (DomId(a_id), DomId(b_id));
            ev.register_domain(a);
            ev.register_domain(b);
            let pa = ev.alloc_unbound(a, b).unwrap();
            ev.bind_interdomain(b, a, pa).unwrap();
            assert_eq!(ev.peers_of(a), vec![b]);
            assert_eq!(ev.peers_of(b), vec![a]);
        });
    }
}
