//! Event channels: data-free signalling between VMs and from the
//! hypervisor (§4.2).
//!
//! Two flavours exist:
//!
//! * **VIRQs** — uni-directional upcalls from the hypervisor used for
//!   virtualized interrupt delivery (timer, console, debug);
//! * **interdomain channels** — bi-directional notification pairs used
//!   between the two halves of split drivers and for XenStore wakeups.
//!
//! An interdomain channel is established with the classic Xen handshake:
//! side A allocates an *unbound* port naming B as the permitted remote,
//! passes the port number out of band, and B binds its own port to it.
//!
//! Since the state-region refactor the event-channel switch is no longer
//! a system-wide table: each domain's port table and pending bitmap live
//! in its own [`crate::region::Region`], and the only operation that
//! touches two domains at once — delivering a notification across the
//! boundary, completing a bind handshake, propagating a close — goes
//! through the typed [`crate::xregion`] paths. This module keeps the
//! *per-domain* half: [`DomainPorts`] and the 2-level pending bitmap.
//!
//! Pending delivery uses Xen's 2-level bitmap ABI rather than an event
//! queue: each domain keeps one pending *bit* per port plus a selector
//! layer with one bit per nonzero word. Repeated sends on an
//! already-pending port therefore coalesce into a single notification
//! (events are data-free, so nothing is lost), and polling or draining
//! scans only the words the selector says are live — O(words), not
//! O(sends).

use crate::fasthash::FastMap;

use crate::domain::DomId;
use crate::error::{EventError, HvResult};

/// Kinds of virtual IRQ the hypervisor can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VirqKind {
    /// Periodic timer tick.
    Timer,
    /// Console input available (Xen serial console, §5.5).
    Console,
    /// Debug/diagnostic interrupt.
    Debug,
    /// A domain has been destroyed (toolstack wakeups).
    DomExc,
}

xoar_codec::impl_json_enum!(VirqKind {
    Timer,
    Console,
    Debug,
    DomExc,
});

/// State of one port in a domain's event-channel table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PortState {
    /// Allocated, waiting for `remote` to bind.
    Unbound {
        /// Domain permitted to bind the other end.
        remote: DomId,
    },
    /// Connected to (`remote`, `remote_port`).
    Interdomain {
        /// Peer domain.
        remote: DomId,
        /// Peer's port number.
        remote_port: u32,
    },
    /// Bound to a virtual IRQ.
    Virq(VirqKind),
}

/// A pending notification delivered to a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEvent {
    /// Local port that fired.
    pub port: u32,
}

/// Two-level pending bitmap, the in-model analogue of Xen's 2-level
/// event-channel ABI.
///
/// Level 2 is one bit per port (`words[port / 64]`); level 1 is one
/// selector bit per nonzero level-2 word. A single selector word spans
/// 64 × 64 = 4096 ports, exactly Xen's 2-level span; because port
/// *numbers* are never reused (see [`crate::xregion::event_close`]) both
/// layers grow on demand so long-lived domains that churn past 4096
/// allocations keep working.
#[derive(Debug, Default)]
pub(crate) struct PendingBitmap {
    /// Level 2: bit `port % 64` of `words[port / 64]` ⇔ port pending.
    words: Vec<u64>,
    /// Level 1: bit `w % 64` of `selectors[w / 64]` ⇔ `words[w] != 0`.
    selectors: Vec<u64>,
    /// Cached popcount over `words`.
    count: usize,
}

impl PendingBitmap {
    /// Sets the pending bit for `port`. Returns `true` iff the bit was
    /// previously clear — i.e. whether this send produced a new
    /// notification rather than coalescing into an existing one.
    pub(crate) fn set(&mut self, port: u32) -> bool {
        let w = (port / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (port % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        let s = w / 64;
        if s >= self.selectors.len() {
            self.selectors.resize(s + 1, 0);
        }
        self.selectors[s] |= 1u64 << (w % 64);
        self.count += 1;
        true
    }

    /// Clears and returns the lowest pending port, if any.
    fn take_lowest(&mut self) -> Option<u32> {
        for (s, sel) in self.selectors.iter_mut().enumerate() {
            if *sel == 0 {
                continue;
            }
            let w = s * 64 + sel.trailing_zeros() as usize;
            let word = self.words[w];
            let b = word.trailing_zeros();
            self.words[w] = word & (word - 1);
            if self.words[w] == 0 {
                *sel &= !(1u64 << (w % 64));
            }
            self.count -= 1;
            return Some(w as u32 * 64 + b);
        }
        None
    }

    /// Drains every pending port in ascending order into `out`,
    /// returning how many were drained.
    fn drain_into(&mut self, out: &mut Vec<PendingEvent>) -> usize {
        let mut drained = 0;
        for (s, sel) in self.selectors.iter_mut().enumerate() {
            while *sel != 0 {
                let w = s * 64 + sel.trailing_zeros() as usize;
                let mut word = self.words[w];
                while word != 0 {
                    let b = word.trailing_zeros();
                    out.push(PendingEvent {
                        port: w as u32 * 64 + b,
                    });
                    word &= word - 1;
                    drained += 1;
                }
                self.words[w] = 0;
                *sel &= *sel - 1;
            }
        }
        self.count -= drained;
        drained
    }
}

/// Per-domain limit on event-channel ports (Xen's default for PV guests is
/// 1024 with the 2-level ABI).
pub const MAX_PORTS_PER_DOMAIN: u32 = 1024;

/// One domain's half of the event-channel mechanism: its port table, the
/// 2-level pending bitmap, and the delivery mask. Owned by the domain's
/// [`crate::region::Region`]; every operation here touches exactly this
/// domain's state.
#[derive(Debug, Default)]
pub(crate) struct DomainPorts {
    /// Port number → state. Port numbers are never reused.
    pub(crate) ports: FastMap<u32, PortState>,
    /// Next port number to hand out.
    next_port: u32,
    /// The 2-level pending bitmap.
    pub(crate) pending: PendingBitmap,
    /// While set, `poll`/`drain` return nothing (delivery is deferred,
    /// not dropped).
    masked: bool,
}

impl DomainPorts {
    /// Allocates a fresh port number, enforcing the per-domain limit.
    /// Port *numbers* are never reused — freshness keeps stale
    /// rendezvous data in XenStore harmless — but table slots count
    /// against [`MAX_PORTS_PER_DOMAIN`] only while open.
    pub(crate) fn alloc_port(&mut self) -> HvResult<u32> {
        if self.ports.len() as u32 >= MAX_PORTS_PER_DOMAIN {
            return Err(EventError::NoFreePorts.into());
        }
        let p = self.next_port;
        self.next_port += 1;
        Ok(p)
    }

    /// Allocates an unbound port, bindable only by `remote`.
    pub(crate) fn alloc_unbound(&mut self, remote: DomId) -> HvResult<u32> {
        let port = self.alloc_port()?;
        self.ports.insert(port, PortState::Unbound { remote });
        Ok(port)
    }

    /// Binds a VIRQ to a fresh local port (one port per VIRQ kind).
    pub(crate) fn bind_virq(&mut self, virq: VirqKind) -> HvResult<u32> {
        if self
            .ports
            .values()
            .any(|s| matches!(s, PortState::Virq(v) if *v == virq))
        {
            return Err(EventError::AlreadyBound(0).into());
        }
        let port = self.alloc_port()?;
        self.ports.insert(port, PortState::Virq(virq));
        Ok(port)
    }

    /// Marks the port bound to `virq` pending, if one exists.
    ///
    /// `Some(fresh)` when the VIRQ is bound (with `fresh` reporting a
    /// clear→pending transition), `None` when unbound.
    pub(crate) fn raise_virq(&mut self, virq: VirqKind) -> Option<bool> {
        let port = self.ports.iter().find_map(|(&p, s)| match s {
            PortState::Virq(v) if *v == virq => Some(p),
            _ => None,
        })?;
        Some(self.pending.set(port))
    }

    /// Dequeues the lowest-numbered pending event, or `None` while
    /// masked (the bits stay set and reappear on unmask).
    pub(crate) fn poll(&mut self) -> Option<PendingEvent> {
        if self.masked {
            return None;
        }
        self.pending.take_lowest().map(|port| PendingEvent { port })
    }

    /// Drains every pending event (ascending port order) into `out`,
    /// returning how many were appended; 0 while masked.
    pub(crate) fn drain_pending_into(&mut self, out: &mut Vec<PendingEvent>) -> usize {
        if self.masked {
            return 0;
        }
        self.pending.drain_into(out)
    }

    /// Number of distinct pending ports.
    pub(crate) fn pending_count(&self) -> usize {
        self.pending.count
    }

    /// Masks or unmasks event delivery. Masking defers delivery: sends
    /// still set pending bits, but nothing is visible until unmask.
    pub(crate) fn set_masked(&mut self, masked: bool) {
        self.masked = masked;
    }

    /// Whether `port` is connected to a live peer.
    pub(crate) fn is_connected(&self, port: u32) -> bool {
        matches!(self.ports.get(&port), Some(PortState::Interdomain { .. }))
    }

    /// The interdomain peers of this domain (for the audit dependency
    /// graph), sorted and deduplicated.
    pub(crate) fn peers(&self) -> Vec<DomId> {
        let mut peers: Vec<DomId> = self
            .ports
            .values()
            .filter_map(|s| match s {
                PortState::Interdomain { remote, .. } => Some(*remote),
                _ => None,
            })
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HvError;

    #[test]
    fn bitmap_sets_and_takes_in_order() {
        let mut bm = PendingBitmap::default();
        assert!(bm.set(70));
        assert!(bm.set(3));
        assert!(!bm.set(3), "second set coalesces");
        assert_eq!(bm.count, 2);
        assert_eq!(bm.take_lowest(), Some(3));
        assert_eq!(bm.take_lowest(), Some(70));
        assert_eq!(bm.take_lowest(), None);
    }

    #[test]
    fn bitmap_drain_matches_ascending_order() {
        let mut bm = PendingBitmap::default();
        for p in [500u32, 1, 64, 4097] {
            bm.set(p);
        }
        let mut out = Vec::new();
        assert_eq!(bm.drain_into(&mut out), 4);
        let ports: Vec<u32> = out.iter().map(|e| e.port).collect();
        assert_eq!(ports, vec![1, 64, 500, 4097]);
        assert_eq!(bm.count, 0);
    }

    #[test]
    fn bitmap_survives_port_number_growth() {
        // Port numbers are never reused, so a long-lived domain can push
        // its port numbers past the 4096 a single selector word spans;
        // the bitmap layers must grow with it.
        let mut bm = PendingBitmap::default();
        assert!(bm.set(5000));
        assert_eq!(bm.take_lowest(), Some(5000));
    }

    #[test]
    fn port_limit_enforced() {
        let mut dp = DomainPorts::default();
        for _ in 0..MAX_PORTS_PER_DOMAIN {
            dp.alloc_unbound(DomId(2)).unwrap();
        }
        assert!(matches!(
            dp.alloc_unbound(DomId(2)).unwrap_err(),
            HvError::Event(EventError::NoFreePorts)
        ));
    }

    #[test]
    fn port_numbers_not_reused_after_close() {
        let mut dp = DomainPorts::default();
        let a = dp.alloc_unbound(DomId(2)).unwrap();
        dp.ports.remove(&a);
        let b = dp.alloc_unbound(DomId(2)).unwrap();
        assert_ne!(a, b, "port numbers must stay fresh");
    }

    #[test]
    fn duplicate_virq_bind_rejected() {
        let mut dp = DomainPorts::default();
        dp.bind_virq(VirqKind::Timer).unwrap();
        assert!(dp.bind_virq(VirqKind::Timer).is_err());
        dp.bind_virq(VirqKind::Console).unwrap();
    }

    #[test]
    fn masked_ports_defer_delivery() {
        let mut dp = DomainPorts::default();
        let p = dp.bind_virq(VirqKind::Debug).unwrap();
        dp.set_masked(true);
        assert_eq!(dp.raise_virq(VirqKind::Debug), Some(true));
        assert_eq!(dp.pending_count(), 1);
        assert!(dp.poll().is_none());
        let mut out = Vec::new();
        assert_eq!(dp.drain_pending_into(&mut out), 0);
        dp.set_masked(false);
        assert_eq!(dp.poll().unwrap().port, p);
    }

    #[test]
    fn raise_virq_reports_binding_and_freshness() {
        let mut dp = DomainPorts::default();
        assert_eq!(dp.raise_virq(VirqKind::Timer), None, "unbound");
        dp.bind_virq(VirqKind::Timer).unwrap();
        assert_eq!(dp.raise_virq(VirqKind::Timer), Some(true), "fresh");
        assert_eq!(dp.raise_virq(VirqKind::Timer), Some(false), "coalesced");
    }
}
