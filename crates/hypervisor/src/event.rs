//! Event channels: data-free signalling between VMs and from the
//! hypervisor (§4.2).
//!
//! Two flavours exist:
//!
//! * **VIRQs** — uni-directional upcalls from the hypervisor used for
//!   virtualized interrupt delivery (timer, console, debug);
//! * **interdomain channels** — bi-directional notification pairs used
//!   between the two halves of split drivers and for XenStore wakeups.
//!
//! An interdomain channel is established with the classic Xen handshake:
//! side A allocates an *unbound* port naming B as the permitted remote,
//! passes the port number out of band, and B binds its own port to it.
//!
//! Pending delivery uses Xen's 2-level bitmap ABI rather than an event
//! queue: each domain keeps one pending *bit* per port plus a selector
//! layer with one bit per nonzero word. Repeated sends on an
//! already-pending port therefore coalesce into a single notification
//! (events are data-free, so nothing is lost), and [`EventChannels::poll`]
//! / [`EventChannels::drain_pending`] scan only the words the selector
//! says are live — O(words), not O(sends).

use crate::fasthash::FastMap;

use crate::domain::DomId;
use crate::error::{EventError, HvResult};

/// Kinds of virtual IRQ the hypervisor can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VirqKind {
    /// Periodic timer tick.
    Timer,
    /// Console input available (Xen serial console, §5.5).
    Console,
    /// Debug/diagnostic interrupt.
    Debug,
    /// A domain has been destroyed (toolstack wakeups).
    DomExc,
}

xoar_codec::impl_json_enum!(VirqKind {
    Timer,
    Console,
    Debug,
    DomExc,
});

/// State of one port in a domain's event-channel table.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PortState {
    /// Allocated, waiting for `remote` to bind.
    Unbound {
        /// Domain permitted to bind the other end.
        remote: DomId,
    },
    /// Connected to (`remote`, `remote_port`).
    Interdomain {
        /// Peer domain.
        remote: DomId,
        /// Peer's port number.
        remote_port: u32,
    },
    /// Bound to a virtual IRQ.
    Virq(VirqKind),
}

/// A pending notification delivered to a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEvent {
    /// Local port that fired.
    pub port: u32,
}

/// Two-level pending bitmap, the in-model analogue of Xen's 2-level
/// event-channel ABI.
///
/// Level 2 is one bit per port (`words[port / 64]`); level 1 is one
/// selector bit per nonzero level-2 word. A single selector word spans
/// 64 × 64 = 4096 ports, exactly Xen's 2-level span; because port
/// *numbers* are never reused (see [`EventChannels::close`]) both layers
/// grow on demand so long-lived domains that churn past 4096 allocations
/// keep working.
#[derive(Debug, Default)]
struct PendingBitmap {
    /// Level 2: bit `port % 64` of `words[port / 64]` ⇔ port pending.
    words: Vec<u64>,
    /// Level 1: bit `w % 64` of `selectors[w / 64]` ⇔ `words[w] != 0`.
    selectors: Vec<u64>,
    /// Cached popcount over `words`.
    count: usize,
}

impl PendingBitmap {
    /// Sets the pending bit for `port`. Returns `true` iff the bit was
    /// previously clear — i.e. whether this send produced a new
    /// notification rather than coalescing into an existing one.
    fn set(&mut self, port: u32) -> bool {
        let w = (port / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (port % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        let s = w / 64;
        if s >= self.selectors.len() {
            self.selectors.resize(s + 1, 0);
        }
        self.selectors[s] |= 1u64 << (w % 64);
        self.count += 1;
        true
    }

    /// Clears and returns the lowest pending port, if any.
    fn take_lowest(&mut self) -> Option<u32> {
        for (s, sel) in self.selectors.iter_mut().enumerate() {
            if *sel == 0 {
                continue;
            }
            let w = s * 64 + sel.trailing_zeros() as usize;
            let word = self.words[w];
            let b = word.trailing_zeros();
            self.words[w] = word & (word - 1);
            if self.words[w] == 0 {
                *sel &= !(1u64 << (w % 64));
            }
            self.count -= 1;
            return Some(w as u32 * 64 + b);
        }
        None
    }

    /// Drains every pending port in ascending order into `out`,
    /// returning how many were drained.
    fn drain_into(&mut self, out: &mut Vec<PendingEvent>) -> usize {
        let mut drained = 0;
        for (s, sel) in self.selectors.iter_mut().enumerate() {
            while *sel != 0 {
                let w = s * 64 + sel.trailing_zeros() as usize;
                let mut word = self.words[w];
                while word != 0 {
                    let b = word.trailing_zeros();
                    out.push(PendingEvent {
                        port: w as u32 * 64 + b,
                    });
                    word &= word - 1;
                    drained += 1;
                }
                self.words[w] = 0;
                *sel &= *sel - 1;
            }
        }
        self.count -= drained;
        drained
    }
}

#[derive(Debug, Default)]
struct DomainPorts {
    ports: FastMap<u32, PortState>,
    next_port: u32,
    pending: PendingBitmap,
    masked: bool,
}

/// Per-domain limit on event-channel ports (Xen's default for PV guests is
/// 1024 with the 2-level ABI).
pub const MAX_PORTS_PER_DOMAIN: u32 = 1024;

/// The system-wide event-channel switch.
#[derive(Debug, Default)]
pub struct EventChannels {
    domains: FastMap<DomId, DomainPorts>,
    /// Count of notifications delivered, for the evaluation harness.
    delivered: u64,
}

impl EventChannels {
    /// Creates an empty switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a domain (idempotent).
    pub fn register_domain(&mut self, dom: DomId) {
        self.domains.entry(dom).or_default();
    }

    /// Removes a domain, reclaiming all its ports and the peers' ends of
    /// its interdomain channels.
    pub fn remove_domain(&mut self, dom: DomId) {
        let Some(ports) = self.domains.remove(&dom) else {
            return;
        };
        let peers: Vec<(DomId, u32)> = ports
            .ports
            .values()
            .filter_map(|s| match s {
                PortState::Interdomain {
                    remote,
                    remote_port,
                } => Some((*remote, *remote_port)),
                _ => None,
            })
            .collect();
        // The peers' half-open ports are reclaimed immediately (as when a
        // real backend observes the frontend's death and closes its end).
        for (peer, pport) in peers {
            if let Some(pd) = self.domains.get_mut(&peer) {
                pd.ports.remove(&pport);
            }
        }
    }

    fn dom_mut(&mut self, dom: DomId) -> HvResult<&mut DomainPorts> {
        self.domains
            .get_mut(&dom)
            .ok_or_else(|| EventError::BadRemote.into())
    }

    fn alloc_port(dp: &mut DomainPorts) -> HvResult<u32> {
        if dp.ports.len() as u32 >= MAX_PORTS_PER_DOMAIN {
            return Err(EventError::NoFreePorts.into());
        }
        let p = dp.next_port;
        dp.next_port += 1;
        Ok(p)
    }

    /// Allocates an unbound port on `owner`, bindable only by `remote`.
    pub fn alloc_unbound(&mut self, owner: DomId, remote: DomId) -> HvResult<u32> {
        let dp = self.dom_mut(owner)?;
        let port = Self::alloc_port(dp)?;
        dp.ports.insert(port, PortState::Unbound { remote });
        Ok(port)
    }

    /// Binds `binder`'s new local port to (`remote`, `remote_port`).
    ///
    /// Succeeds only if the remote port is unbound and names `binder` as
    /// the permitted remote — the access-control core of the mechanism.
    pub fn bind_interdomain(
        &mut self,
        binder: DomId,
        remote: DomId,
        remote_port: u32,
    ) -> HvResult<u32> {
        // Validate the remote side first.
        {
            let rd = self.domains.get(&remote).ok_or(EventError::BadRemote)?;
            match rd.ports.get(&remote_port) {
                Some(PortState::Unbound { remote: permitted }) if *permitted == binder => {}
                Some(PortState::Unbound { .. }) => return Err(EventError::BindMismatch.into()),
                Some(_) => return Err(EventError::AlreadyBound(remote_port).into()),
                None => return Err(EventError::BadPort(remote_port).into()),
            }
        }
        let local_port = {
            let bd = self.dom_mut(binder)?;
            let p = Self::alloc_port(bd)?;
            bd.ports.insert(
                p,
                PortState::Interdomain {
                    remote,
                    remote_port,
                },
            );
            p
        };
        // Complete the remote side.
        let rd = self.dom_mut(remote)?;
        rd.ports.insert(
            remote_port,
            PortState::Interdomain {
                remote: binder,
                remote_port: local_port,
            },
        );
        Ok(local_port)
    }

    /// Binds a VIRQ to a fresh local port on `dom`.
    pub fn bind_virq(&mut self, dom: DomId, virq: VirqKind) -> HvResult<u32> {
        let dp = self.dom_mut(dom)?;
        if dp
            .ports
            .values()
            .any(|s| matches!(s, PortState::Virq(v) if *v == virq))
        {
            return Err(EventError::AlreadyBound(0).into());
        }
        let port = Self::alloc_port(dp)?;
        dp.ports.insert(port, PortState::Virq(virq));
        Ok(port)
    }

    /// Sends a notification through `port` of `sender`.
    ///
    /// For interdomain ports the peer's port is marked pending; the data-
    /// free nature of channels means delivery is just a bit set, so a
    /// send on an already-pending port coalesces (Xen semantics). The
    /// bit is set even while the receiver is masked — masking defers
    /// delivery, it does not drop it.
    pub fn send(&mut self, sender: DomId, port: u32) -> HvResult<()> {
        let (remote, remote_port) = {
            let dp = self.domains.get(&sender).ok_or(EventError::BadRemote)?;
            match dp.ports.get(&port) {
                Some(PortState::Interdomain {
                    remote,
                    remote_port,
                }) => (*remote, *remote_port),
                Some(PortState::Virq(_)) | Some(PortState::Unbound { .. }) => {
                    return Err(EventError::BadPort(port).into())
                }
                _ => return Err(EventError::BadPort(port).into()),
            }
        };
        if let Some(rd) = self.domains.get_mut(&remote) {
            if rd.pending.set(remote_port) {
                self.delivered += 1;
            }
        }
        Ok(())
    }

    /// Hypervisor-side: raise a VIRQ on `dom` if bound.
    ///
    /// Returns whether the VIRQ is now pending on some port (a raise on
    /// an already-pending port coalesces but still reports `true`).
    pub fn raise_virq(&mut self, dom: DomId, virq: VirqKind) -> bool {
        let Some(dp) = self.domains.get_mut(&dom) else {
            return false;
        };
        let port = dp.ports.iter().find_map(|(&p, s)| match s {
            PortState::Virq(v) if *v == virq => Some(p),
            _ => None,
        });
        match port {
            Some(p) => {
                if dp.pending.set(p) {
                    self.delivered += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Dequeues the lowest-numbered pending event for `dom`.
    ///
    /// Returns `None` while the domain is masked; the pending bits stay
    /// set and become visible again on unmask.
    pub fn poll(&mut self, dom: DomId) -> Option<PendingEvent> {
        let dp = self.domains.get_mut(&dom)?;
        if dp.masked {
            return None;
        }
        dp.pending.take_lowest().map(|port| PendingEvent { port })
    }

    /// Drains every pending event for `dom` (ascending port order) into
    /// `out`, returning how many were appended. O(nonzero bitmap words).
    pub fn drain_pending_into(&mut self, dom: DomId, out: &mut Vec<PendingEvent>) -> usize {
        match self.domains.get_mut(&dom) {
            Some(dp) if !dp.masked => dp.pending.drain_into(out),
            _ => 0,
        }
    }

    /// Allocating convenience wrapper around [`Self::drain_pending_into`].
    pub fn drain_pending(&mut self, dom: DomId) -> Vec<PendingEvent> {
        let mut out = Vec::new();
        self.drain_pending_into(dom, &mut out);
        out
    }

    /// Number of distinct pending ports for `dom`.
    pub fn pending_count(&self, dom: DomId) -> usize {
        self.domains.get(&dom).map_or(0, |d| d.pending.count)
    }

    /// Masks or unmasks event delivery for `dom`. Masking defers
    /// delivery: sends still set pending bits, but `poll`/`drain_pending`
    /// return nothing until the domain is unmasked.
    pub fn set_masked(&mut self, dom: DomId, masked: bool) {
        if let Some(d) = self.domains.get_mut(&dom) {
            d.masked = masked;
        }
    }

    /// Closes `port` on `dom`, reclaiming it; the peer's end (if any) is
    /// reclaimed too. Port *numbers* are never reused — freshness of
    /// numbers keeps stale rendezvous data in XenStore harmless — but the
    /// table slots count against [`MAX_PORTS_PER_DOMAIN`] only while
    /// open, so long-lived backends do not leak capacity across guest
    /// churn.
    pub fn close(&mut self, dom: DomId, port: u32) -> HvResult<()> {
        let peer = {
            let dp = self.dom_mut(dom)?;
            let state = dp.ports.remove(&port).ok_or(EventError::BadPort(port))?;
            match state {
                PortState::Interdomain {
                    remote,
                    remote_port,
                } => Some((remote, remote_port)),
                _ => None,
            }
        };
        if let Some((peer, pport)) = peer {
            if let Some(pd) = self.domains.get_mut(&peer) {
                pd.ports.remove(&pport);
            }
        }
        Ok(())
    }

    /// Whether `port` on `dom` is connected to a live peer.
    pub fn is_connected(&self, dom: DomId, port: u32) -> bool {
        matches!(
            self.domains.get(&dom).and_then(|d| d.ports.get(&port)),
            Some(PortState::Interdomain { .. })
        )
    }

    /// Total notifications delivered (evaluation counter). Counts
    /// clear→pending transitions, so sends coalesced into an
    /// already-pending port count once — matching what a real guest
    /// observes as distinct upcalls.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// The interdomain peers of `dom` (for the audit dependency graph).
    pub fn peers_of(&self, dom: DomId) -> Vec<DomId> {
        let Some(dp) = self.domains.get(&dom) else {
            return Vec::new();
        };
        let mut peers: Vec<DomId> = dp
            .ports
            .values()
            .filter_map(|s| match s {
                PortState::Interdomain { remote, .. } => Some(*remote),
                _ => None,
            })
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HvError;

    fn two_domains() -> (EventChannels, DomId, DomId) {
        let mut ev = EventChannels::new();
        let a = DomId(1);
        let b = DomId(2);
        ev.register_domain(a);
        ev.register_domain(b);
        (ev, a, b)
    }

    #[test]
    fn handshake_connects_both_ends() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        assert!(ev.is_connected(a, pa));
        assert!(ev.is_connected(b, pb));
        assert_eq!(ev.peers_of(a), vec![b]);
    }

    #[test]
    fn bind_by_wrong_domain_rejected() {
        let (mut ev, a, b) = two_domains();
        let c = DomId(3);
        ev.register_domain(c);
        let pa = ev.alloc_unbound(a, b).unwrap();
        let err = ev.bind_interdomain(c, a, pa).unwrap_err();
        assert!(matches!(err, HvError::Event(EventError::BindMismatch)));
    }

    #[test]
    fn bind_to_bound_port_rejected() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        ev.bind_interdomain(b, a, pa).unwrap();
        let err = ev.bind_interdomain(b, a, pa).unwrap_err();
        assert!(matches!(err, HvError::Event(EventError::AlreadyBound(_))));
    }

    #[test]
    fn send_delivers_to_peer_port() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.send(a, pa).unwrap();
        let got = ev.poll(b).unwrap();
        assert_eq!(got.port, pb);
        assert!(ev.poll(b).is_none());
        // And in the other direction.
        ev.send(b, pb).unwrap();
        assert_eq!(ev.poll(a).unwrap().port, pa);
        assert_eq!(ev.delivered_count(), 2);
    }

    #[test]
    fn send_on_unbound_port_fails() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        assert!(ev.send(a, pa).is_err());
    }

    #[test]
    fn masked_domain_defers_events() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.set_masked(b, true);
        ev.send(a, pa).unwrap();
        // Masking defers: the bit is set but invisible to poll.
        assert_eq!(ev.pending_count(b), 1);
        assert!(ev.poll(b).is_none());
        assert!(ev.drain_pending(b).is_empty());
        ev.set_masked(b, false);
        assert_eq!(ev.poll(b).unwrap().port, pb);
        assert!(ev.poll(b).is_none());
    }

    #[test]
    fn repeated_sends_coalesce() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        for _ in 0..5 {
            ev.send(a, pa).unwrap();
        }
        assert_eq!(ev.pending_count(b), 1);
        assert_eq!(ev.delivered_count(), 1);
        assert_eq!(ev.poll(b).unwrap().port, pb);
        assert!(ev.poll(b).is_none());
        // Once consumed, the next send is a fresh notification.
        ev.send(a, pa).unwrap();
        assert_eq!(ev.delivered_count(), 2);
        assert_eq!(ev.poll(b).unwrap().port, pb);
    }

    #[test]
    fn repeated_virq_raises_coalesce() {
        let (mut ev, a, _) = two_domains();
        let p = ev.bind_virq(a, VirqKind::Timer).unwrap();
        assert!(ev.raise_virq(a, VirqKind::Timer));
        assert!(
            ev.raise_virq(a, VirqKind::Timer),
            "coalesced raise still reported"
        );
        assert_eq!(ev.pending_count(a), 1);
        assert_eq!(ev.delivered_count(), 1);
        assert_eq!(ev.poll(a).unwrap().port, p);
    }

    #[test]
    fn poll_returns_lowest_port_first() {
        let (mut ev, a, b) = two_domains();
        let pa1 = ev.alloc_unbound(a, b).unwrap();
        let pb1 = ev.bind_interdomain(b, a, pa1).unwrap();
        let pa2 = ev.alloc_unbound(a, b).unwrap();
        let pb2 = ev.bind_interdomain(b, a, pa2).unwrap();
        assert!(pb1 < pb2);
        ev.send(a, pa2).unwrap();
        ev.send(a, pa1).unwrap();
        assert_eq!(ev.poll(b).unwrap().port, pb1);
        assert_eq!(ev.poll(b).unwrap().port, pb2);
    }

    #[test]
    fn drain_pending_returns_all_in_port_order() {
        let (mut ev, a, b) = two_domains();
        let mut peer_ports = Vec::new();
        for _ in 0..3 {
            let pa = ev.alloc_unbound(a, b).unwrap();
            peer_ports.push((pa, ev.bind_interdomain(b, a, pa).unwrap()));
        }
        // Send in reverse, with a duplicate thrown in.
        for &(pa, _) in peer_ports.iter().rev() {
            ev.send(a, pa).unwrap();
        }
        ev.send(a, peer_ports[1].0).unwrap();
        let drained = ev.drain_pending(b);
        let expected: Vec<u32> = peer_ports.iter().map(|&(_, pb)| pb).collect();
        let got: Vec<u32> = drained.iter().map(|e| e.port).collect();
        assert_eq!(got, expected);
        assert_eq!(ev.pending_count(b), 0);
        assert!(ev.drain_pending(b).is_empty());
    }

    #[test]
    fn bitmap_survives_port_number_growth() {
        // Port numbers are never reused, so a long-lived domain can push
        // its port numbers past the 4096 a single selector word spans;
        // the bitmap layers must grow with it.
        let (mut ev, a, b) = two_domains();
        for _ in 0..5000 {
            let pa = ev.alloc_unbound(a, b).unwrap();
            ev.close(a, pa).unwrap();
        }
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        assert!(pa >= 5000);
        ev.send(b, pb).unwrap();
        assert_eq!(ev.poll(a).unwrap().port, pa);
    }

    #[test]
    fn virq_bind_and_raise() {
        let (mut ev, a, _) = two_domains();
        let p = ev.bind_virq(a, VirqKind::Console).unwrap();
        assert!(ev.raise_virq(a, VirqKind::Console));
        assert_eq!(ev.poll(a).unwrap().port, p);
        assert!(
            !ev.raise_virq(a, VirqKind::Timer),
            "unbound VIRQ not delivered"
        );
    }

    #[test]
    fn duplicate_virq_bind_rejected() {
        let (mut ev, a, _) = two_domains();
        ev.bind_virq(a, VirqKind::Timer).unwrap();
        assert!(ev.bind_virq(a, VirqKind::Timer).is_err());
    }

    #[test]
    fn close_propagates_to_peer() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.close(a, pa).unwrap();
        assert!(!ev.is_connected(a, pa));
        assert!(!ev.is_connected(b, pb));
        assert!(ev.send(b, pb).is_err());
    }

    #[test]
    fn remove_domain_breaks_channels() {
        let (mut ev, a, b) = two_domains();
        let pa = ev.alloc_unbound(a, b).unwrap();
        let pb = ev.bind_interdomain(b, a, pa).unwrap();
        ev.remove_domain(a);
        assert!(!ev.is_connected(b, pb));
        assert!(ev.send(b, pb).is_err());
    }

    #[test]
    fn port_limit_enforced() {
        let mut ev = EventChannels::new();
        let a = DomId(1);
        ev.register_domain(a);
        ev.register_domain(DomId(2));
        for _ in 0..MAX_PORTS_PER_DOMAIN {
            ev.alloc_unbound(a, DomId(2)).unwrap();
        }
        assert!(matches!(
            ev.alloc_unbound(a, DomId(2)).unwrap_err(),
            HvError::Event(EventError::NoFreePorts)
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Every *signalled port* is delivered exactly once no matter how
    /// many sends hit it: repeated sends on a pending port coalesce
    /// (Xen bitmap semantics), so what poll yields is the set of
    /// distinct signalled ports, in ascending port order.
    #[test]
    fn signalled_ports_delivered_exactly_once() {
        Runner::cases(64).run("signalled ports delivered exactly once", |g| {
            let channels = g.usize(1..8);
            let sends = g.usize(1..100);
            let mut ev = EventChannels::new();
            let (a, b) = (DomId(1), DomId(2));
            ev.register_domain(a);
            ev.register_domain(b);
            let mut pairs = Vec::new();
            for _ in 0..channels {
                let pa = ev.alloc_unbound(a, b).unwrap();
                let pb = ev.bind_interdomain(b, a, pa).unwrap();
                pairs.push((pa, pb));
            }
            let mut signalled = std::collections::BTreeSet::new();
            for _ in 0..sends {
                let (pa, pb) = pairs[g.usize(0..pairs.len())];
                ev.send(a, pa).unwrap();
                signalled.insert(pb);
            }
            assert_eq!(ev.pending_count(b), signalled.len());
            let mut received = Vec::new();
            while let Some(e) = ev.poll(b) {
                received.push(e.port);
            }
            let expected: Vec<u32> = signalled.into_iter().collect();
            assert_eq!(received, expected);
            assert_eq!(ev.delivered_count(), expected.len() as u64);
        });
    }

    /// drain_pending is equivalent to polling until empty.
    #[test]
    fn drain_equals_poll_until_empty() {
        Runner::cases(64).run("drain equals poll until empty", |g| {
            let channels = g.usize(1..6);
            let sends = g.usize(0..40);
            let mk = || {
                let mut ev = EventChannels::new();
                let (a, b) = (DomId(1), DomId(2));
                ev.register_domain(a);
                ev.register_domain(b);
                let mut ports = Vec::new();
                for _ in 0..channels {
                    let pa = ev.alloc_unbound(a, b).unwrap();
                    ev.bind_interdomain(b, a, pa).unwrap();
                    ports.push(pa);
                }
                (ev, a, b, ports)
            };
            let (mut ev1, a1, b1, ports1) = mk();
            let (mut ev2, _, b2, _) = mk();
            for _ in 0..sends {
                let i = g.usize(0..ports1.len());
                ev1.send(a1, ports1[i]).unwrap();
                ev2.send(a1, ports1[i]).unwrap();
            }
            let drained: Vec<u32> = ev1.drain_pending(b1).iter().map(|e| e.port).collect();
            let mut polled = Vec::new();
            while let Some(e) = ev2.poll(b2) {
                polled.push(e.port);
            }
            assert_eq!(drained, polled);
        });
    }

    /// The handshake is symmetric: after binding, both sides report
    /// each other as peers.
    #[test]
    fn handshake_symmetry() {
        Runner::cases(64).run("handshake symmetry", |g| {
            let a_id = g.u32(1..50);
            let b_id = g.u32(51..100);
            let mut ev = EventChannels::new();
            let (a, b) = (DomId(a_id), DomId(b_id));
            ev.register_domain(a);
            ev.register_domain(b);
            let pa = ev.alloc_unbound(a, b).unwrap();
            ev.bind_interdomain(b, a, pa).unwrap();
            assert_eq!(ev.peers_of(a), vec![b]);
            assert_eq!(ev.peers_of(b), vec![a]);
        });
    }
}
