//! The hypercall interface: the narrow gate between VMs and the hypervisor.
//!
//! Xen exposes roughly forty hypercalls (§4.1); this module models the
//! subset that carries the platform's security weight, split into the
//! *unprivileged* calls every guest may issue (event channels, grant table
//! manipulation of one's own entries, console writes, scheduling yields)
//! and the *privileged* calls that stock Xen gates on "caller == Dom0" and
//! Xoar gates on per-domain whitelists ([`crate::privilege::PrivilegeSet`]).
//!
//! [`HypercallId`] enumerates the calls for whitelisting purposes;
//! [`Hypercall`] carries the full argument payloads and is dispatched by
//! [`crate::hypervisor::Hypervisor::hypercall`].

use crate::domain::DomId;
use crate::error::{HvError, HvResult};
use crate::event::VirqKind;
use crate::grant::{GrantAccess, GrantCopyOp, GrantOpStatus, GrantRef};
use crate::memory::{Mfn, Pfn};
use crate::privilege::{IoPortRange, MmioRange, PciAddress};

/// Identifier of a hypercall class, used for privilege whitelisting.
///
/// Mirrors Xen's `__HYPERVISOR_*` numbers plus the domctl/sysctl
/// sub-operations that matter for disaggregation. The paper notes that a
/// single hypercall may carry "dozens of sub-operations"; we surface the
/// security-relevant sub-operations as distinct IDs so least privilege can
/// be expressed at the granularity Xoar requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum HypercallId {
    // -- Unprivileged: available to every guest --
    /// Send an event-channel notification.
    EvtchnSend,
    /// Allocate an unbound event-channel port.
    EvtchnAllocUnbound,
    /// Bind to a remote domain's unbound port.
    EvtchnBindInterdomain,
    /// Bind a virtual IRQ.
    EvtchnBindVirq,
    /// Close an event-channel port.
    EvtchnClose,
    /// Set up or update one's own grant-table entries.
    GnttabSetup,
    /// Yield / block the current VCPU.
    SchedOp,
    /// Write to the domain's virtual console ring.
    ConsoleIo,
    /// Query wall-clock / version info.
    XenVersion,
    /// Update one's own page tables (guest PT management).
    MmuUpdateSelf,
    /// Take a snapshot of the calling domain (Xoar: `vm_snapshot()`).
    VmSnapshot,

    // -- Privileged: whitelisted per shard in Xoar, Dom0-only in Xen --
    /// Create a new (empty) domain.
    DomctlCreateDomain,
    /// Destroy a domain.
    DomctlDestroyDomain,
    /// Pause a domain.
    DomctlPauseDomain,
    /// Unpause a domain.
    DomctlUnpauseDomain,
    /// Set a domain's memory reservation.
    DomctlSetMaxMem,
    /// Set the number of VCPUs of a domain.
    DomctlSetVcpus,
    /// Mark a domain as a shard / set its role.
    DomctlSetRole,
    /// Assign a PCI device to a domain.
    DomctlAssignDevice,
    /// Grant another domain delegated management of a domain.
    DomctlDelegate,
    /// Set the privileged-for flag (QEMU stub domains, §5.6).
    DomctlSetPrivilegedFor,
    /// Set I/O-port access for a domain (§5.8 re-mapping of Dom0 rights).
    DomctlIoPortPermission,
    /// Set MMIO access for a domain.
    DomctlMmioPermission,
    /// Route a physical IRQ to a domain.
    DomctlIrqPermission,
    /// Whitelist a privileged hypercall for a domain.
    DomctlPermitHypercall,
    /// Map another domain's memory (foreign mapping).
    MmuMapForeign,
    /// Write into another domain's memory (builder: page tables,
    /// start-info page).
    MmuWriteForeign,
    /// Populate a domain's physical memory at build time.
    MemoryPopulate,
    /// Map a grant reference from another domain.
    GnttabMapGrantRef,
    /// Create a grant entry *on behalf of* another domain (Builder-only:
    /// used to deprivilege XenStore and the console, §5.6).
    GnttabForeignSetup,
    /// Roll a snapshotted domain back to its image.
    VmRollback,
    /// Read platform/host state (sysctl: physinfo etc.).
    SysctlPhysinfo,
    /// Reboot or power off the host.
    PlatformReboot,

    // -- Unprivileged, appended after the initial ABI to keep existing
    //    whitelist bit positions stable --
    /// Batch of sub-calls executed with one boundary crossing
    /// (`__HYPERVISOR_multicall`). Each sub-call is still screened
    /// against the caller's whitelist individually.
    Multicall,

    // -- Privileged, appended after the initial ABI to keep existing
    //    whitelist bit positions stable --
    /// Stamp a new domain out of a sealed template (snapshot-fork
    /// cloning): the clone aliases every template frame copy-on-write,
    /// so creation copies no pages and reserves no frames up front.
    DomctlCloneDomain,
}

xoar_codec::impl_json_enum!(HypercallId {
    EvtchnSend,
    EvtchnAllocUnbound,
    EvtchnBindInterdomain,
    EvtchnBindVirq,
    EvtchnClose,
    GnttabSetup,
    SchedOp,
    ConsoleIo,
    XenVersion,
    MmuUpdateSelf,
    VmSnapshot,
    DomctlCreateDomain,
    DomctlDestroyDomain,
    DomctlPauseDomain,
    DomctlUnpauseDomain,
    DomctlSetMaxMem,
    DomctlSetVcpus,
    DomctlSetRole,
    DomctlAssignDevice,
    DomctlDelegate,
    DomctlSetPrivilegedFor,
    DomctlIoPortPermission,
    DomctlMmioPermission,
    DomctlIrqPermission,
    DomctlPermitHypercall,
    MmuMapForeign,
    MmuWriteForeign,
    MemoryPopulate,
    GnttabMapGrantRef,
    GnttabForeignSetup,
    VmRollback,
    SysctlPhysinfo,
    PlatformReboot,
    Multicall,
    DomctlCloneDomain,
});

/// Number of defined hypercall IDs — the width of the whitelist bitset.
pub const HYPERCALL_COUNT: usize = 35;

impl HypercallId {
    /// Every ID in declaration (= `Ord`) order. The whitelist bitset
    /// iterates this array, which keeps its JSON encoding identical to
    /// the ordered-set encoding.
    pub const ALL: [HypercallId; HYPERCALL_COUNT] = [
        HypercallId::EvtchnSend,
        HypercallId::EvtchnAllocUnbound,
        HypercallId::EvtchnBindInterdomain,
        HypercallId::EvtchnBindVirq,
        HypercallId::EvtchnClose,
        HypercallId::GnttabSetup,
        HypercallId::SchedOp,
        HypercallId::ConsoleIo,
        HypercallId::XenVersion,
        HypercallId::MmuUpdateSelf,
        HypercallId::VmSnapshot,
        HypercallId::DomctlCreateDomain,
        HypercallId::DomctlDestroyDomain,
        HypercallId::DomctlPauseDomain,
        HypercallId::DomctlUnpauseDomain,
        HypercallId::DomctlSetMaxMem,
        HypercallId::DomctlSetVcpus,
        HypercallId::DomctlSetRole,
        HypercallId::DomctlAssignDevice,
        HypercallId::DomctlDelegate,
        HypercallId::DomctlSetPrivilegedFor,
        HypercallId::DomctlIoPortPermission,
        HypercallId::DomctlMmioPermission,
        HypercallId::DomctlIrqPermission,
        HypercallId::DomctlPermitHypercall,
        HypercallId::MmuMapForeign,
        HypercallId::MmuWriteForeign,
        HypercallId::MemoryPopulate,
        HypercallId::GnttabMapGrantRef,
        HypercallId::GnttabForeignSetup,
        HypercallId::VmRollback,
        HypercallId::SysctlPhysinfo,
        HypercallId::PlatformReboot,
        HypercallId::Multicall,
        HypercallId::DomctlCloneDomain,
    ];

    /// Dense index of this ID (declaration order) — the bit position in
    /// the whitelist bitset.
    pub fn index(self) -> u32 {
        self as u32
    }

    /// Whether the call requires whitelisting.
    pub fn is_privileged(self) -> bool {
        use HypercallId::*;
        !matches!(
            self,
            EvtchnSend
                | EvtchnAllocUnbound
                | EvtchnBindInterdomain
                | EvtchnBindVirq
                | EvtchnClose
                | GnttabSetup
                | SchedOp
                | ConsoleIo
                | XenVersion
                | MmuUpdateSelf
                | VmSnapshot
                | GnttabMapGrantRef
                | Multicall
        )
    }

    /// All privileged hypercall IDs (the Dom0 whitelist).
    pub fn all_privileged() -> Vec<HypercallId> {
        use HypercallId::*;
        vec![
            DomctlCreateDomain,
            DomctlDestroyDomain,
            DomctlPauseDomain,
            DomctlUnpauseDomain,
            DomctlSetMaxMem,
            DomctlSetVcpus,
            DomctlSetRole,
            DomctlAssignDevice,
            DomctlDelegate,
            DomctlSetPrivilegedFor,
            DomctlIoPortPermission,
            DomctlMmioPermission,
            DomctlIrqPermission,
            DomctlPermitHypercall,
            MmuMapForeign,
            MmuWriteForeign,
            MemoryPopulate,
            GnttabForeignSetup,
            VmRollback,
            SysctlPhysinfo,
            PlatformReboot,
            DomctlCloneDomain,
        ]
    }

    /// All unprivileged hypercall IDs.
    pub fn all_unprivileged() -> Vec<HypercallId> {
        use HypercallId::*;
        vec![
            EvtchnSend,
            EvtchnAllocUnbound,
            EvtchnBindInterdomain,
            EvtchnBindVirq,
            EvtchnClose,
            GnttabSetup,
            GnttabMapGrantRef,
            SchedOp,
            ConsoleIo,
            XenVersion,
            MmuUpdateSelf,
            VmSnapshot,
            Multicall,
        ]
    }

    /// A coarse weight for how dangerous holding this call is, used by the
    /// security analysis to compare attack surfaces.
    pub fn risk_weight(self) -> u32 {
        use HypercallId::*;
        match self {
            MmuMapForeign | MmuWriteForeign => 10,
            DomctlCreateDomain | DomctlDestroyDomain | DomctlCloneDomain | MemoryPopulate
            | GnttabForeignSetup => 8,
            DomctlPermitHypercall | DomctlDelegate | DomctlSetPrivilegedFor | DomctlSetRole => 7,
            DomctlAssignDevice
            | DomctlIrqPermission
            | DomctlIoPortPermission
            | DomctlMmioPermission => 6,
            PlatformReboot => 6,
            DomctlPauseDomain | DomctlUnpauseDomain | DomctlSetMaxMem | DomctlSetVcpus
            | VmRollback => 4,
            GnttabMapGrantRef => 3,
            SysctlPhysinfo => 1,
            _ => 0,
        }
    }

    /// Short symbolic name (for audit-log records).
    pub fn name(self) -> &'static str {
        use HypercallId::*;
        match self {
            EvtchnSend => "evtchn.send",
            EvtchnAllocUnbound => "evtchn.alloc_unbound",
            EvtchnBindInterdomain => "evtchn.bind_interdomain",
            EvtchnBindVirq => "evtchn.bind_virq",
            EvtchnClose => "evtchn.close",
            GnttabSetup => "gnttab.setup",
            SchedOp => "sched.op",
            ConsoleIo => "console.io",
            XenVersion => "xen.version",
            MmuUpdateSelf => "mmu.update_self",
            VmSnapshot => "vm.snapshot",
            DomctlCreateDomain => "domctl.create",
            DomctlDestroyDomain => "domctl.destroy",
            DomctlPauseDomain => "domctl.pause",
            DomctlUnpauseDomain => "domctl.unpause",
            DomctlSetMaxMem => "domctl.set_max_mem",
            DomctlSetVcpus => "domctl.set_vcpus",
            DomctlSetRole => "domctl.set_role",
            DomctlAssignDevice => "domctl.assign_device",
            DomctlDelegate => "domctl.delegate",
            DomctlSetPrivilegedFor => "domctl.set_privileged_for",
            DomctlIoPortPermission => "domctl.ioport_permission",
            DomctlMmioPermission => "domctl.mmio_permission",
            DomctlIrqPermission => "domctl.irq_permission",
            DomctlPermitHypercall => "domctl.permit_hypercall",
            MmuMapForeign => "mmu.map_foreign",
            MmuWriteForeign => "mmu.write_foreign",
            MemoryPopulate => "memory.populate",
            GnttabMapGrantRef => "gnttab.map_grant_ref",
            GnttabForeignSetup => "gnttab.foreign_setup",
            VmRollback => "vm.rollback",
            SysctlPhysinfo => "sysctl.physinfo",
            PlatformReboot => "platform.reboot",
            Multicall => "multicall",
            DomctlCloneDomain => "domctl.clone",
        }
    }
}

/// A fully-populated hypercall request.
///
/// Dispatched via [`crate::hypervisor::Hypervisor::hypercall`], which first
/// checks the caller's whitelist (`HypercallId`-level) and then performs
/// per-argument access control (e.g. "is the target delegated to the
/// caller?").
#[derive(Debug, Clone)]
pub enum Hypercall {
    /// Allocate an unbound event channel for `remote` to bind to.
    EvtchnAllocUnbound {
        /// Domain allowed to bind the other end.
        remote: DomId,
    },
    /// Bind to an unbound port previously allocated by `remote`.
    EvtchnBindInterdomain {
        /// Domain owning the unbound port.
        remote: DomId,
        /// Port number on the remote side.
        remote_port: u32,
    },
    /// Bind a virtual IRQ to a local port.
    EvtchnBindVirq {
        /// Which VIRQ.
        virq: VirqKind,
    },
    /// Signal a local port.
    EvtchnSend {
        /// Local port to signal.
        port: u32,
    },
    /// Close a local port.
    EvtchnClose {
        /// Local port to close.
        port: u32,
    },
    /// Install a grant entry in the caller's grant table.
    GnttabGrantAccess {
        /// Grantee domain.
        grantee: DomId,
        /// Caller-local frame to share.
        pfn: Pfn,
        /// Read-only or read-write.
        access: GrantAccess,
    },
    /// Revoke one of the caller's grant entries.
    GnttabEndAccess {
        /// Reference to revoke.
        gref: GrantRef,
    },
    /// Offer ownership of one of the caller's pages to another domain
    /// (page flipping). Carried by the unprivileged `GnttabSetup` class.
    GnttabGrantTransfer {
        /// Receiving domain.
        grantee: DomId,
        /// Caller-local frame to give away.
        pfn: Pfn,
    },
    /// Accept a transfer grant, taking ownership of the page.
    GnttabAcceptTransfer {
        /// Offering domain.
        granter: DomId,
        /// The transfer grant reference.
        gref: GrantRef,
    },
    /// Map a foreign grant into the caller.
    GnttabMapGrantRef {
        /// Granting domain.
        granter: DomId,
        /// Grant reference communicated out of band (XenStore).
        gref: GrantRef,
    },
    /// Unmap a previously mapped grant.
    GnttabUnmapGrantRef {
        /// Granting domain.
        granter: DomId,
        /// Grant reference.
        gref: GrantRef,
    },
    /// Map an array of grants from one granter with a single table
    /// lookup (GNTTABOP batch). Per-entry status; no partial abort.
    ///
    /// The op array is carried as a shared slice handle — the model's
    /// analogue of Xen's guest-handle *pointer* to an array in guest
    /// memory: re-issuing a batch clones a refcount, not the array.
    GnttabMapBatch {
        /// Granting domain (one table lookup per batch).
        granter: DomId,
        /// Grant references to map, in order.
        refs: std::rc::Rc<[GrantRef]>,
    },
    /// Unmap an array of grants from one granter.
    GnttabUnmapBatch {
        /// Granting domain.
        granter: DomId,
        /// Grant references to unmap, in order.
        refs: std::rc::Rc<[GrantRef]>,
    },
    /// Hypervisor-mediated page copies through grants (GNTTABOP_copy):
    /// moves data without leaving a mapping behind.
    GnttabCopyBatch {
        /// Granting domain.
        granter: DomId,
        /// Copy descriptors, in order.
        ops: std::rc::Rc<[GrantCopyOp]>,
    },
    /// Builder-only: install a grant entry in *another* domain's table so
    /// deprivileged services (XenStore, console) can be reached without
    /// foreign mapping (§5.6).
    GnttabForeignSetup {
        /// Domain whose table is edited.
        owner: DomId,
        /// Grantee.
        grantee: DomId,
        /// Owner-local frame.
        pfn: Pfn,
        /// Access mode.
        access: GrantAccess,
    },
    /// Create a new domain shell.
    DomctlCreateDomain {
        /// Name for the new domain.
        name: String,
        /// Memory reservation in MiB.
        memory_mib: u64,
        /// Number of VCPUs.
        vcpus: u32,
    },
    /// Destroy a domain.
    DomctlDestroyDomain {
        /// Target.
        target: DomId,
    },
    /// Pause a domain.
    DomctlPauseDomain {
        /// Target.
        target: DomId,
    },
    /// Unpause (or first-run) a domain.
    DomctlUnpauseDomain {
        /// Target.
        target: DomId,
    },
    /// Adjust a domain's memory reservation.
    DomctlSetMaxMem {
        /// Target.
        target: DomId,
        /// New reservation in MiB.
        memory_mib: u64,
    },
    /// Set VCPU count.
    DomctlSetVcpus {
        /// Target.
        target: DomId,
        /// New VCPU count.
        vcpus: u32,
    },
    /// Pass a PCI device through to `target`.
    DomctlAssignDevice {
        /// Target.
        target: DomId,
        /// Device address.
        device: PciAddress,
    },
    /// Delegate management of `target` to `manager`.
    DomctlDelegate {
        /// Shard or guest whose management is delegated.
        target: DomId,
        /// The domain receiving management rights.
        manager: DomId,
    },
    /// Set a domain's role (promote a freshly built VM to a shard).
    DomctlSetRole {
        /// Target.
        target: DomId,
        /// Whether the domain becomes a shard (`true`) or a plain guest.
        shard: bool,
    },
    /// Mark `subject` as privileged for `object` (QEMU stub model).
    DomctlSetPrivilegedFor {
        /// The domain receiving the limited mapping privilege.
        subject: DomId,
        /// The domain whose memory may be mapped.
        object: DomId,
    },
    /// Grant `target` access to an I/O port range.
    DomctlIoPortPermission {
        /// Target.
        target: DomId,
        /// Range granted.
        range: IoPortRange,
    },
    /// Grant `target` access to an MMIO region.
    DomctlMmioPermission {
        /// Target.
        target: DomId,
        /// Region granted.
        range: MmioRange,
    },
    /// Route IRQ `irq` to `target`.
    DomctlIrqPermission {
        /// Target.
        target: DomId,
        /// IRQ line.
        irq: u32,
    },
    /// Whitelist `id` for `target`.
    DomctlPermitHypercall {
        /// Target.
        target: DomId,
        /// Call to whitelist.
        id: HypercallId,
    },
    /// Populate `frames` frames of physical memory into a building domain.
    MemoryPopulate {
        /// Target (must be `Building`).
        target: DomId,
        /// Number of frames to allocate.
        frames: u64,
    },
    /// Map one frame of a foreign domain (requires `map_foreign_any` or a
    /// `privileged_for` edge).
    MmuMapForeign {
        /// Domain whose memory is mapped.
        target: DomId,
        /// Target-local frame.
        pfn: Pfn,
    },
    /// Write bytes into a foreign domain's frame (builder path).
    MmuWriteForeign {
        /// Domain whose memory is written.
        target: DomId,
        /// Target-local frame.
        pfn: Pfn,
        /// Payload (at most one page).
        data: Vec<u8>,
    },
    /// Snapshot the calling domain (returns nothing; image kept hypervisor-side).
    VmSnapshot,
    /// Roll `target` back to its snapshot image.
    VmRollback {
        /// Target (must have a snapshot).
        target: DomId,
    },
    /// Query host physical info.
    SysctlPhysinfo,
    /// Yield the CPU.
    SchedYield,
    /// Write a line to the caller's console.
    ConsoleWrite {
        /// Bytes to emit.
        data: Vec<u8>,
    },
    /// Stamp a new domain out of `template` (snapshot-fork cloning).
    /// The template must be sealed (or is sealed on first clone); the
    /// clone starts `Running` with an empty p2m that falls through to
    /// the template's frames copy-on-write.
    DomctlCloneDomain {
        /// Sealed template domain to fork from.
        template: DomId,
        /// Name for the clone.
        name: String,
    },
    /// A vector of sub-calls executed back-to-back with a single
    /// boundary crossing. The caller lookup and liveness screen happen
    /// once; each sub-call is then checked against the caller's
    /// whitelist and executed, yielding per-entry results (Xen
    /// semantics: a failed entry never aborts the rest). Nested
    /// multicalls are rejected.
    Multicall {
        /// Sub-calls, executed in order.
        calls: Vec<Hypercall>,
    },
}

impl Hypercall {
    /// The whitelist class of this call.
    pub fn id(&self) -> HypercallId {
        use Hypercall::*;
        match self {
            EvtchnAllocUnbound { .. } => HypercallId::EvtchnAllocUnbound,
            EvtchnBindInterdomain { .. } => HypercallId::EvtchnBindInterdomain,
            EvtchnBindVirq { .. } => HypercallId::EvtchnBindVirq,
            EvtchnSend { .. } => HypercallId::EvtchnSend,
            EvtchnClose { .. } => HypercallId::EvtchnClose,
            GnttabGrantAccess { .. } | GnttabEndAccess { .. } | GnttabGrantTransfer { .. } => {
                HypercallId::GnttabSetup
            }
            GnttabAcceptTransfer { .. } => HypercallId::GnttabMapGrantRef,
            GnttabMapGrantRef { .. } | GnttabUnmapGrantRef { .. } => HypercallId::GnttabMapGrantRef,
            GnttabMapBatch { .. } | GnttabUnmapBatch { .. } | GnttabCopyBatch { .. } => {
                HypercallId::GnttabMapGrantRef
            }
            GnttabForeignSetup { .. } => HypercallId::GnttabForeignSetup,
            DomctlCreateDomain { .. } => HypercallId::DomctlCreateDomain,
            DomctlCloneDomain { .. } => HypercallId::DomctlCloneDomain,
            DomctlDestroyDomain { .. } => HypercallId::DomctlDestroyDomain,
            DomctlPauseDomain { .. } => HypercallId::DomctlPauseDomain,
            DomctlUnpauseDomain { .. } => HypercallId::DomctlUnpauseDomain,
            DomctlSetMaxMem { .. } => HypercallId::DomctlSetMaxMem,
            DomctlSetVcpus { .. } => HypercallId::DomctlSetVcpus,
            DomctlAssignDevice { .. } => HypercallId::DomctlAssignDevice,
            DomctlDelegate { .. } => HypercallId::DomctlDelegate,
            DomctlSetRole { .. } => HypercallId::DomctlSetRole,
            DomctlSetPrivilegedFor { .. } => HypercallId::DomctlSetPrivilegedFor,
            DomctlIoPortPermission { .. } => HypercallId::DomctlIoPortPermission,
            DomctlMmioPermission { .. } => HypercallId::DomctlMmioPermission,
            DomctlIrqPermission { .. } => HypercallId::DomctlIrqPermission,
            DomctlPermitHypercall { .. } => HypercallId::DomctlPermitHypercall,
            MemoryPopulate { .. } => HypercallId::MemoryPopulate,
            MmuMapForeign { .. } => HypercallId::MmuMapForeign,
            MmuWriteForeign { .. } => HypercallId::MmuWriteForeign,
            VmSnapshot => HypercallId::VmSnapshot,
            VmRollback { .. } => HypercallId::VmRollback,
            SysctlPhysinfo => HypercallId::SysctlPhysinfo,
            SchedYield => HypercallId::SchedOp,
            ConsoleWrite { .. } => HypercallId::ConsoleIo,
            Multicall { .. } => HypercallId::Multicall,
        }
    }
}

/// The result value of a successful hypercall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypercallRet {
    /// No payload.
    Ok,
    /// A newly created domain ID.
    DomId(DomId),
    /// An event-channel port number.
    Port(u32),
    /// A grant reference.
    GrantRef(GrantRef),
    /// A machine frame number (map operations).
    Mfn(Mfn),
    /// A pseudo-physical frame number (transfer acceptance).
    Pfn(Pfn),
    /// A count (e.g. pages restored by a rollback).
    Count(u64),
    /// Host physical info: (total frames, free frames, nr cpus).
    Physinfo {
        /// Total machine frames.
        total_frames: u64,
        /// Free machine frames.
        free_frames: u64,
        /// Number of physical CPUs.
        cpus: u32,
    },
    /// Per-entry results of a [`Hypercall::Multicall`], in sub-call
    /// order. Entries fail independently (no partial abort).
    Multi(Vec<HvResult<HypercallRet>>),
    /// Compact per-entry statuses of a batched grant operation
    /// (GNTTABOP-style `GNTST_*` array): `Copy`, no heap per entry.
    GrantBatch(Vec<GrantOpStatus>),
}

impl HypercallRet {
    /// Extracts a port number, or [`HvError::InvalidArgument`] if the
    /// variant does not match (a caller-side typing mistake).
    pub fn port(self) -> HvResult<u32> {
        match self {
            HypercallRet::Port(p) => Ok(p),
            other => Err(HvError::InvalidArgument(format!(
                "expected Port, got {other:?}"
            ))),
        }
    }

    /// Extracts a grant reference.
    pub fn grant_ref(self) -> HvResult<GrantRef> {
        match self {
            HypercallRet::GrantRef(g) => Ok(g),
            other => Err(HvError::InvalidArgument(format!(
                "expected GrantRef, got {other:?}"
            ))),
        }
    }

    /// Extracts a pseudo-physical frame number.
    pub fn pfn(self) -> HvResult<Pfn> {
        match self {
            HypercallRet::Pfn(p) => Ok(p),
            other => Err(HvError::InvalidArgument(format!(
                "expected Pfn, got {other:?}"
            ))),
        }
    }

    /// Extracts a domain ID.
    pub fn dom_id(self) -> HvResult<DomId> {
        match self {
            HypercallRet::DomId(d) => Ok(d),
            other => Err(HvError::InvalidArgument(format!(
                "expected DomId, got {other:?}"
            ))),
        }
    }

    /// Extracts the per-entry results of a multicall.
    pub fn multi(self) -> HvResult<Vec<HvResult<HypercallRet>>> {
        match self {
            HypercallRet::Multi(v) => Ok(v),
            other => Err(HvError::InvalidArgument(format!(
                "expected Multi, got {other:?}"
            ))),
        }
    }

    /// Extracts the per-entry statuses of a batched grant operation.
    pub fn grant_batch(self) -> HvResult<Vec<GrantOpStatus>> {
        match self {
            HypercallRet::GrantBatch(v) => Ok(v),
            other => Err(HvError::InvalidArgument(format!(
                "expected GrantBatch, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privileged_and_unprivileged_partition() {
        for id in HypercallId::all_privileged() {
            assert!(id.is_privileged(), "{id:?} should be privileged");
        }
        for id in HypercallId::all_unprivileged() {
            assert!(!id.is_privileged(), "{id:?} should be unprivileged");
        }
    }

    #[test]
    fn interface_is_narrow() {
        // The paper: "around 40 hypercalls". Our model keeps the same
        // order of magnitude.
        let n = HypercallId::all_privileged().len() + HypercallId::all_unprivileged().len();
        assert!(n >= 30 && n <= 45, "hypercall count {n} out of range");
    }

    #[test]
    fn risk_weights_rank_foreign_mapping_highest() {
        assert!(
            HypercallId::MmuMapForeign.risk_weight() > HypercallId::DomctlPauseDomain.risk_weight()
        );
        assert!(
            HypercallId::MmuWriteForeign.risk_weight()
                > HypercallId::GnttabMapGrantRef.risk_weight()
        );
        assert_eq!(HypercallId::EvtchnSend.risk_weight(), 0);
    }

    #[test]
    fn hypercall_maps_to_id() {
        let hc = Hypercall::DomctlCreateDomain {
            name: "x".into(),
            memory_mib: 64,
            vcpus: 1,
        };
        assert_eq!(hc.id(), HypercallId::DomctlCreateDomain);
        assert!(hc.id().is_privileged());
        let hc = Hypercall::EvtchnSend { port: 1 };
        assert!(!hc.id().is_privileged());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = HypercallId::all_privileged()
            .into_iter()
            .chain(HypercallId::all_unprivileged())
            .map(|h| h.name())
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn ret_extractors_error_on_mismatch() {
        let err = HypercallRet::Ok.port().unwrap_err();
        assert!(
            matches!(&err, HvError::InvalidArgument(m) if m.contains("expected Port")),
            "got {err:?}"
        );
        assert!(HypercallRet::Ok.grant_ref().is_err());
        assert!(HypercallRet::Ok.pfn().is_err());
        assert!(HypercallRet::Ok.dom_id().is_err());
        assert!(HypercallRet::Ok.multi().is_err());
        assert!(HypercallRet::Ok.grant_batch().is_err());
        // Matching variants extract cleanly.
        assert_eq!(HypercallRet::Port(7).port().unwrap(), 7);
        assert_eq!(HypercallRet::DomId(DomId(3)).dom_id().unwrap(), DomId(3));
    }

    #[test]
    fn multicall_is_unprivileged_and_batches_map_to_gnttab() {
        let mc = Hypercall::Multicall {
            calls: vec![Hypercall::SchedYield, Hypercall::VmSnapshot],
        };
        assert_eq!(mc.id(), HypercallId::Multicall);
        assert!(!mc.id().is_privileged());
        let batch = Hypercall::GnttabMapBatch {
            granter: DomId(1),
            refs: vec![GrantRef(0)].into(),
        };
        assert_eq!(batch.id(), HypercallId::GnttabMapGrantRef);
    }
}
