//! The Xoar privilege-assignment model (§3.1, Figure 3.1).
//!
//! A VM is configured as a shard via a `shard` block in its config file,
//! which makes three kinds of capability assignable:
//!
//! 1. `assign_pci_device(PCI domain, bus, slot)` — direct hardware access;
//! 2. `permit_hypercall(hypercall id)` — whitelisting individual privileged
//!    hypercalls beyond the default unprivileged set;
//! 3. `allow_delegation(guest id)` — delegating the shard's administrative
//!    control to another VM (used for per-user toolstacks in private
//!    clouds, §3.4.2).
//!
//! The [`PrivilegeSet`] records exactly these assignments plus the handful
//! of hardware privileges (I/O ports, MMIO ranges, IRQ lines) that §5.8
//! shows were implicitly granted to Dom0 by hard-coded checks in Xen.

use std::collections::BTreeSet;
use std::fmt;

use crate::domain::DomId;
use crate::hypercall::HypercallId;

/// Address of a device on the PCI bus: `(domain, bus, slot)` as in the
/// paper's `assign_pci_device(PCI domain, bus, slot)` API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PciAddress {
    /// PCI segment/domain.
    pub domain: u16,
    /// Bus number.
    pub bus: u8,
    /// Slot (device) number.
    pub slot: u8,
}

xoar_codec::impl_json_struct!(PciAddress { domain, bus, slot });

impl PciAddress {
    /// Creates a PCI address.
    pub fn new(domain: u16, bus: u8, slot: u8) -> Self {
        PciAddress { domain, bus, slot }
    }
}

impl fmt::Display for PciAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}:{:02x}:{:02x}", self.domain, self.bus, self.slot)
    }
}

/// An inclusive range of x86 I/O ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct IoPortRange {
    /// First port in the range.
    pub start: u16,
    /// Last port in the range (inclusive).
    pub end: u16,
}

xoar_codec::impl_json_struct!(IoPortRange { start, end });

impl IoPortRange {
    /// Creates a range; `start` must not exceed `end`.
    pub fn new(start: u16, end: u16) -> Self {
        assert!(start <= end, "inverted I/O port range");
        IoPortRange { start, end }
    }

    /// Whether `port` lies within the range.
    pub fn contains(&self, port: u16) -> bool {
        (self.start..=self.end).contains(&port)
    }
}

/// An MMIO region expressed in machine frame numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MmioRange {
    /// First frame of the region.
    pub start_mfn: u64,
    /// Number of frames.
    pub frames: u64,
}

xoar_codec::impl_json_struct!(MmioRange { start_mfn, frames });

impl MmioRange {
    /// Whether `mfn` lies within the region.
    pub fn contains(&self, mfn: u64) -> bool {
        mfn >= self.start_mfn && mfn < self.start_mfn + self.frames
    }
}

/// Fixed-size bitset over [`HypercallId`]: the hypercall whitelist.
///
/// `permits_hypercall` sits on every hypercall dispatch, so membership
/// must be a single bit test rather than an ordered-set probe. Iteration
/// and the JSON encoding follow declaration (= `Ord`) order, keeping the
/// encoding byte-identical to the `BTreeSet<HypercallId>` this replaced
/// (the audit-log hash chains pin those bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HypercallSet {
    bits: u64,
}

impl HypercallSet {
    /// Creates an empty whitelist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `id`; returns whether it was newly added.
    pub fn insert(&mut self, id: HypercallId) -> bool {
        let m = 1u64 << id.index();
        let fresh = self.bits & m == 0;
        self.bits |= m;
        fresh
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: HypercallId) -> bool {
        let m = 1u64 << id.index();
        let had = self.bits & m != 0;
        self.bits &= !m;
        had
    }

    /// Whether `id` is whitelisted. One bit test.
    pub fn contains(&self, id: HypercallId) -> bool {
        self.bits & (1u64 << id.index()) != 0
    }

    /// Number of whitelisted calls.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the whitelist is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Whitelisted IDs in `Ord` order.
    pub fn iter(&self) -> impl Iterator<Item = HypercallId> + '_ {
        HypercallId::ALL
            .iter()
            .copied()
            .filter(move |id| self.contains(*id))
    }
}

impl FromIterator<HypercallId> for HypercallSet {
    fn from_iter<I: IntoIterator<Item = HypercallId>>(iter: I) -> Self {
        let mut s = HypercallSet::default();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

impl xoar_codec::ToJson for HypercallSet {
    fn to_json(&self) -> xoar_codec::Json {
        xoar_codec::Json::Arr(self.iter().map(|id| id.to_json()).collect())
    }
}

impl xoar_codec::FromJson for HypercallSet {
    fn from_json(value: &xoar_codec::Json) -> Result<Self, xoar_codec::JsonError> {
        match value {
            xoar_codec::Json::Arr(items) => items.iter().map(HypercallId::from_json).collect(),
            _ => Err(xoar_codec::JsonError::expected("array", "HypercallSet")),
        }
    }
}

/// An ordered set of [`IoPortRange`]s answering point queries by binary
/// search.
///
/// Ranges are kept sorted by `(start, end)`; `prefix_max_end[i]` holds the
/// largest inclusive end among `ranges[..=i]`, so a port check is a
/// partition-point search plus one comparison even when ranges overlap
/// (Dom0 holds `0..=0xffff` alongside narrower grants). Inserts are
/// config-time and rebuild the prefix array; checks are the hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoPortSet {
    ranges: Vec<IoPortRange>,
    prefix_max_end: Vec<u16>,
}

impl IoPortSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `range`; returns whether it was newly added.
    pub fn insert(&mut self, range: IoPortRange) -> bool {
        match self.ranges.binary_search(&range) {
            Ok(_) => false,
            Err(pos) => {
                self.ranges.insert(pos, range);
                self.rebuild_prefix();
                true
            }
        }
    }

    /// Whether any range contains `port`.
    pub fn contains_port(&self, port: u16) -> bool {
        let n = self.ranges.partition_point(|r| r.start <= port);
        n > 0 && self.prefix_max_end[n - 1] >= port
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the set has no ranges.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Ranges in `(start, end)` order.
    pub fn iter(&self) -> impl Iterator<Item = &IoPortRange> {
        self.ranges.iter()
    }

    fn rebuild_prefix(&mut self) {
        self.prefix_max_end.clear();
        let mut max = 0u16;
        for r in &self.ranges {
            max = max.max(r.end);
            self.prefix_max_end.push(max);
        }
    }
}

impl FromIterator<IoPortRange> for IoPortSet {
    fn from_iter<I: IntoIterator<Item = IoPortRange>>(iter: I) -> Self {
        let mut s = IoPortSet::default();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl xoar_codec::ToJson for IoPortSet {
    fn to_json(&self) -> xoar_codec::Json {
        xoar_codec::Json::Arr(self.iter().map(|r| r.to_json()).collect())
    }
}

impl xoar_codec::FromJson for IoPortSet {
    fn from_json(value: &xoar_codec::Json) -> Result<Self, xoar_codec::JsonError> {
        match value {
            xoar_codec::Json::Arr(items) => items.iter().map(IoPortRange::from_json).collect(),
            _ => Err(xoar_codec::JsonError::expected("array", "IoPortSet")),
        }
    }
}

/// An ordered set of [`MmioRange`]s answering frame queries by binary
/// search, mirroring [`IoPortSet`] (ends here are exclusive:
/// `start_mfn + frames`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MmioSet {
    ranges: Vec<MmioRange>,
    prefix_max_end: Vec<u64>,
}

impl MmioSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `range`; returns whether it was newly added.
    pub fn insert(&mut self, range: MmioRange) -> bool {
        match self.ranges.binary_search(&range) {
            Ok(_) => false,
            Err(pos) => {
                self.ranges.insert(pos, range);
                self.rebuild_prefix();
                true
            }
        }
    }

    /// Whether any region contains `mfn`.
    pub fn contains_mfn(&self, mfn: u64) -> bool {
        let n = self.ranges.partition_point(|r| r.start_mfn <= mfn);
        n > 0 && self.prefix_max_end[n - 1] > mfn
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the set has no regions.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Regions in `(start_mfn, frames)` order.
    pub fn iter(&self) -> impl Iterator<Item = &MmioRange> {
        self.ranges.iter()
    }

    fn rebuild_prefix(&mut self) {
        self.prefix_max_end.clear();
        let mut max = 0u64;
        for r in &self.ranges {
            max = max.max(r.start_mfn + r.frames);
            self.prefix_max_end.push(max);
        }
    }
}

impl FromIterator<MmioRange> for MmioSet {
    fn from_iter<I: IntoIterator<Item = MmioRange>>(iter: I) -> Self {
        let mut s = MmioSet::default();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl xoar_codec::ToJson for MmioSet {
    fn to_json(&self) -> xoar_codec::Json {
        xoar_codec::Json::Arr(self.iter().map(|r| r.to_json()).collect())
    }
}

impl xoar_codec::FromJson for MmioSet {
    fn from_json(value: &xoar_codec::Json) -> Result<Self, xoar_codec::JsonError> {
        match value {
            xoar_codec::Json::Arr(items) => items.iter().map(MmioRange::from_json).collect(),
            _ => Err(xoar_codec::JsonError::expected("array", "MmioSet")),
        }
    }
}

/// The complete set of extra privileges assigned to a domain.
///
/// An ordinary guest has `PrivilegeSet::default()`: no assigned devices, no
/// privileged hypercalls, no delegation. Stock Xen's Dom0 is modelled by
/// [`PrivilegeSet::dom0`], which holds everything — the "monolithic trust
/// domain" of Figure 2.1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrivilegeSet {
    /// PCI devices passed through to this domain.
    pub pci_devices: BTreeSet<PciAddress>,
    /// Privileged hypercalls this domain may issue beyond the unprivileged
    /// default set.
    pub hypercalls: HypercallSet,
    /// Domains to which this shard's administration is delegated.
    pub delegated_to: BTreeSet<DomId>,
    /// I/O port ranges this domain may access.
    pub io_ports: IoPortSet,
    /// MMIO regions this domain may map.
    pub mmio: MmioSet,
    /// Physical IRQ lines routed to this domain.
    pub irqs: BTreeSet<u32>,
    /// Whether the domain may map arbitrary guest memory (the blanket
    /// "Dom0 privilege"; in Xoar only the Builder holds this).
    pub map_foreign_any: bool,
}

xoar_codec::impl_json_struct!(PrivilegeSet {
    pci_devices,
    hypercalls,
    delegated_to,
    io_ports,
    mmio,
    irqs,
    map_foreign_any,
});

impl PrivilegeSet {
    /// The blanket privilege set of stock Xen's Dom0.
    pub fn dom0() -> Self {
        PrivilegeSet {
            map_foreign_any: true,
            hypercalls: HypercallId::all_privileged().into_iter().collect(),
            io_ports: [IoPortRange::new(0, u16::MAX)].into_iter().collect(),
            ..Default::default()
        }
    }

    /// Implements `assign_pci_device` from Figure 3.1.
    pub fn assign_pci_device(&mut self, addr: PciAddress) {
        self.pci_devices.insert(addr);
    }

    /// Implements `permit_hypercall` from Figure 3.1.
    pub fn permit_hypercall(&mut self, id: HypercallId) {
        self.hypercalls.insert(id);
    }

    /// Implements `allow_delegation` from Figure 3.1.
    pub fn allow_delegation(&mut self, guest: DomId) {
        self.delegated_to.insert(guest);
    }

    /// Whether the domain may issue privileged hypercall `id` — one bit
    /// test on the whitelist bitset.
    pub fn permits_hypercall(&self, id: HypercallId) -> bool {
        !id.is_privileged() || self.hypercalls.contains(id)
    }

    /// Whether the domain may access I/O port `port` — binary search over
    /// the sorted ranges.
    pub fn permits_io_port(&self, port: u16) -> bool {
        self.io_ports.contains_port(port)
    }

    /// Whether the domain may map MMIO frame `mfn` — binary search over
    /// the sorted regions.
    pub fn permits_mmio(&self, mfn: u64) -> bool {
        self.mmio.contains_mfn(mfn)
    }

    /// Whether the set is completely empty (a plain guest).
    pub fn is_unprivileged(&self) -> bool {
        self.pci_devices.is_empty()
            && self.hypercalls.is_empty()
            && self.delegated_to.is_empty()
            && self.io_ports.is_empty()
            && self.mmio.is_empty()
            && self.irqs.is_empty()
            && !self.map_foreign_any
    }

    /// A coarse scalar measure of how much authority the set carries; used
    /// by the security-evaluation crate to compare configurations.
    pub fn authority_score(&self) -> u64 {
        let mut score = 0u64;
        score += self.pci_devices.len() as u64 * 10;
        score += self
            .hypercalls
            .iter()
            .map(|h| h.risk_weight() as u64)
            .sum::<u64>();
        score += self.delegated_to.len() as u64;
        score += self.io_ports.len() as u64 * 2;
        score += self.mmio.len() as u64 * 2;
        score += self.irqs.len() as u64;
        if self.map_foreign_any {
            score += 100;
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_is_unprivileged() {
        let p = PrivilegeSet::default();
        assert!(p.is_unprivileged());
        assert_eq!(p.authority_score(), 0);
    }

    #[test]
    fn dom0_set_is_maximal() {
        let p = PrivilegeSet::dom0();
        assert!(p.map_foreign_any);
        assert!(p.permits_io_port(0x3f8));
        assert!(p.permits_hypercall(HypercallId::DomctlCreateDomain));
        assert!(p.authority_score() > 100);
    }

    #[test]
    fn figure_3_1_api() {
        let mut p = PrivilegeSet::default();
        p.assign_pci_device(PciAddress::new(0, 2, 0));
        p.permit_hypercall(HypercallId::GnttabMapGrantRef);
        p.allow_delegation(DomId(5));
        assert!(p.pci_devices.contains(&PciAddress::new(0, 2, 0)));
        assert!(p.permits_hypercall(HypercallId::GnttabMapGrantRef));
        assert!(p.delegated_to.contains(&DomId(5)));
        assert!(!p.is_unprivileged());
    }

    #[test]
    fn unprivileged_hypercalls_always_permitted() {
        let p = PrivilegeSet::default();
        assert!(p.permits_hypercall(HypercallId::EvtchnSend));
        assert!(!p.permits_hypercall(HypercallId::DomctlDestroyDomain));
    }

    #[test]
    fn io_port_ranges() {
        let r = IoPortRange::new(0x3f8, 0x3ff);
        assert!(r.contains(0x3f8));
        assert!(r.contains(0x3ff));
        assert!(!r.contains(0x400));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_io_range_panics() {
        IoPortRange::new(10, 5);
    }

    #[test]
    fn mmio_ranges() {
        let r = MmioRange {
            start_mfn: 100,
            frames: 4,
        };
        assert!(r.contains(100));
        assert!(r.contains(103));
        assert!(!r.contains(104));
        assert!(!r.contains(99));
    }

    #[test]
    fn pci_address_display() {
        let a = PciAddress::new(0, 2, 1);
        assert_eq!(a.to_string(), "0000:02:01");
    }
}
